"""k-ary first-order reductions (Definition 2.2).

A reduction ``I = lambda_{x1..xd} <phi_1, .., phi_r, t_1, .., t_s>`` maps a
structure with universe {0..n-1} to one with universe {0..n^k - 1}: target
relation ``R_i`` holds on encoded k-tuples wherever ``phi_i`` holds on the
underlying source elements, and each target constant is the encoding of a
k-tuple of source constants.  The tuple encoding is the paper's

    <u1, .., uk>  =  u_k + u_{k-1} n + ... + u_1 n^{k-1}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..logic.relational import RelationalEvaluator
from ..logic.structure import Structure
from ..logic.syntax import Formula
from ..logic.transform import free_vars
from ..logic.vocabulary import Vocabulary

__all__ = ["FirstOrderReduction", "encode_tuple", "decode_element"]


def encode_tuple(values: Sequence[int], n: int) -> int:
    """The paper's <u1, .., uk> encoding into {0..n^k - 1}."""
    out = 0
    for value in values:
        if not 0 <= value < n:
            raise ValueError(f"element {value} outside universe of size {n}")
        out = out * n + value
    return out


def decode_element(element: int, n: int, k: int) -> tuple[int, ...]:
    """Inverse of :func:`encode_tuple`."""
    values = []
    for _ in range(k):
        values.append(element % n)
        element //= n
    return tuple(reversed(values))


@dataclass(frozen=True)
class FirstOrderReduction:
    """An executable k-ary first-order reduction.

    ``formulas[R]`` defines target relation R of arity a over the frame
    ``x1 .. x_{k*a}`` (any variable names, given per formula via
    ``frames[R]``); ``constant_map[c]`` is the k-tuple of *source constant
    names* interpreting target constant c.
    """

    name: str
    k: int
    source: Vocabulary
    target: Vocabulary
    formulas: Mapping[str, Formula]
    frames: Mapping[str, tuple[str, ...]]
    constant_map: Mapping[str, tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        for rel in self.target:
            if rel.name not in self.formulas:
                raise ValueError(f"no defining formula for {rel.name!r}")
            frame = self.frames[rel.name]
            if len(frame) != self.k * rel.arity:
                raise ValueError(
                    f"frame for {rel.name!r} must have {self.k * rel.arity} "
                    f"variables, got {len(frame)}"
                )
            loose = free_vars(self.formulas[rel.name]) - set(frame)
            if loose:
                raise ValueError(
                    f"formula for {rel.name!r} has unbound variables {sorted(loose)}"
                )
        for const in self.target.constant_names():
            names = self.constant_map.get(const)
            if names is None or len(names) != self.k:
                raise ValueError(
                    f"target constant {const!r} needs a {self.k}-tuple of "
                    "source constants"
                )

    def apply(self, structure: Structure) -> Structure:
        """Compute ``I(structure)``."""
        if structure.vocabulary != self.source:
            raise ValueError("structure has the wrong vocabulary")
        n = structure.n
        out = Structure(self.target, n ** self.k)
        evaluator = RelationalEvaluator(structure)
        for rel in self.target:
            frame = self.frames[rel.name]
            rows = evaluator.rows(self.formulas[rel.name], frame)
            encoded = {
                tuple(
                    encode_tuple(row[i * self.k : (i + 1) * self.k], n)
                    for i in range(rel.arity)
                )
                for row in rows
            }
            out.set_relation(rel.name, encoded)
        for const in self.target.constant_names():
            source_values = [
                structure.constant(name) for name in self.constant_map[const]
            ]
            out.set_constant(const, encode_tuple(source_values, n))
        return out

    def is_many_one_for(
        self,
        source_member,
        target_member,
        structures,
    ) -> bool:
        """Spot-check the many-one property on an iterable of structures."""
        return all(
            source_member(structure) == target_member(self.apply(structure))
            for structure in structures
        )
