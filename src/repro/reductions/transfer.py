"""The transfer theorem, Proposition 5.3, as an executable construction.

If ``S <=_bfo T`` and ``T in Dyn-FO``, then ``S in Dyn-FO``: a request to
the S-input changes only a bounded number of tuples of the reduced
structure ``I(A)``, and each of those changes is fed to T's Dyn-FO program
as its own request.

:class:`TransferredEngine` wires a :class:`FirstOrderReduction` to a target
:class:`DynFOEngine`.  The translated request list is computed by diffing
``I(A)`` before and after the source request; for a genuinely
bounded-expansion reduction that diff is small, and the engine *asserts*
the bound (``max_expansion``) on every request — running it is itself an
ongoing test of Definition 5.1.  (A cleverer implementation would examine
only the obliviously-dependent tuples; diffing keeps the construction
honest and simple, and the per-request *target work* — what Prop 5.3 is
about — is identical.)
"""

from __future__ import annotations

from ..dynfo.engine import DynFOEngine
from ..dynfo.program import DynFOProgram
from ..dynfo.requests import Delete, Insert, Request, SetConst, apply_request
from ..logic.structure import Structure
from .first_order import FirstOrderReduction

__all__ = ["TransferredEngine", "ExpansionExceeded"]


class ExpansionExceeded(AssertionError):
    """A request changed more reduced tuples than the declared bound."""


class TransferredEngine:
    """Runs problem S through ``reduction`` on top of T's Dyn-FO engine."""

    def __init__(
        self,
        reduction: FirstOrderReduction,
        target_program: DynFOProgram,
        n: int,
        max_expansion: int = 8,
        backend: str = "relational",
    ) -> None:
        if reduction.target.relation_names() != tuple(
            r.name for r in target_program.input_vocabulary
        ):
            raise ValueError(
                "reduction target vocabulary does not match the target "
                "program's input vocabulary"
            )
        self.reduction = reduction
        self.n = n
        self.max_expansion = max_expansion
        self.source_inputs = Structure.initial(reduction.source, n)
        self.target_engine = DynFOEngine(
            target_program, n ** reduction.k, backend=backend
        )
        # Target constants the target program does not model as input
        # constants (e.g. REACH_u takes s, t as query parameters instead)
        # are tracked here and injected into queries via ask().
        self.target_constants: dict[str, int] = {}
        self._reduced = reduction.apply(self.source_inputs)
        self._sync_initial()
        self.requests_translated = 0
        self.max_delta_seen = 0

    def _sync_initial(self) -> None:
        """Feed the (boundedly many, for a bfo reduction) tuples of
        ``I(A_0)`` to the target engine."""
        for request in self._diff(
            Structure(self._reduced.vocabulary, self._reduced.n), self._reduced
        ):
            self.target_engine.apply(request)

    def _diff(self, before: Structure, after: Structure) -> list[Request]:
        requests: list[Request] = []
        for rel in before.vocabulary:
            old = before.relation_view(rel.name)
            new = after.relation_view(rel.name)
            requests.extend(Delete(rel.name, row) for row in sorted(old - new))
            requests.extend(Insert(rel.name, row) for row in sorted(new - old))
        for name in before.vocabulary.constant_names():
            if before.constant(name) != after.constant(name):
                requests.append(SetConst(name, after.constant(name)))
        # also surface initial constants on the very first sync
        for name in before.vocabulary.constant_names():
            if name not in self.target_constants:
                self.target_constants[name] = after.constant(name)
        return requests

    def apply(self, request: Request) -> list[Request]:
        """Apply one S-request; returns the translated T-requests."""
        apply_request(self.source_inputs, request)
        new_reduced = self.reduction.apply(self.source_inputs)
        translated = self._diff(self._reduced, new_reduced)
        if len(translated) > self.max_expansion:
            raise ExpansionExceeded(
                f"{self.reduction.name}: request {request} changed "
                f"{len(translated)} reduced tuples (> {self.max_expansion})"
            )
        program = self.target_engine.program
        for target_request in translated:
            if isinstance(target_request, SetConst):
                self.target_constants[target_request.name] = target_request.value
                if program.input_vocabulary.has_constant(target_request.name):
                    self.target_engine.apply(target_request)
            else:
                self.target_engine.apply(target_request)
        self._reduced = new_reduced
        self.requests_translated += len(translated)
        self.max_delta_seen = max(self.max_delta_seen, len(translated))
        return translated

    # convenience pass-throughs ------------------------------------------------

    def insert(self, rel: str, *tup: int) -> None:
        self.apply(Insert(rel, tuple(tup)))

    def delete(self, rel: str, *tup: int) -> None:
        self.apply(Delete(rel, tuple(tup)))

    def set_const(self, name: str, value: int) -> None:
        self.apply(SetConst(name, value))

    def ask(self, query: str, **params: int) -> bool:
        """Ask a boolean query of the target engine.  Query parameters that
        name tracked target constants (e.g. ``s``, ``t``) default to their
        current values."""
        spec = self.target_engine.program.queries[query]
        merged = dict(params)
        for name in spec.params:
            if name not in merged and name in self.target_constants:
                merged[name] = self.target_constants[name]
        return self.target_engine.ask(query, **merged)
