"""Concrete reductions and padded problems from the paper.

* :func:`reduction_d_to_u` — Example 2.1's unary bfo reduction
  ``I_{d-u}`` from REACH_d to REACH_u: drop edges out of t, drop the
  out-edges of any vertex with out-degree > 1, make the rest undirected.
* :func:`pad_structure` / :func:`pad_requests` — Definition 5.13's padding
  PAD(S): n copies of the input, so one real change costs n requests.
* :func:`color_reach_structure` — the COLOR-REACH encoding of [MSV94]
  (Fact 5.11): out-degree-<=2 graphs with a color vector choosing, per
  vertex class, which of the two out-edges is active.
"""

from __future__ import annotations

from typing import Sequence

from ..logic.dsl import Rel, c, eq, forall, neq
from ..logic.structure import Structure
from ..logic.syntax import Formula
from ..logic.vocabulary import Vocabulary
from .first_order import FirstOrderReduction

__all__ = [
    "reduction_d_to_u",
    "pad_structure",
    "color_reach_reachable",
    "ColorReachInstance",
]

_E = Rel("E")


def _alpha(x: str, y: str) -> Formula:
    """The paper's alpha(x, y): (x, y) is x's unique out-edge and x != t."""
    return (
        _E(x, y)
        & neq(x, c("t"))
        & forall("zr", _E(x, "zr") >> eq("zr", y))
    )


def reduction_d_to_u() -> FirstOrderReduction:
    """``I_{d-u}``: REACH_d <=_bfo REACH_u (Example 2.1).

    Bounded expansion: one edge change at x touches only alpha(x, .) — the
    unique out-edge before and after — so at most 4 target tuples change
    (two per orientation); a change of t touches the out-edges of the old
    and new t.
    """
    source = Vocabulary.parse("E^2, s, t")
    target = Vocabulary.parse("E^2, s, t")
    phi = _alpha("x", "y") | _alpha("y", "x")
    return FirstOrderReduction(
        name="I_d-u",
        k=1,
        source=source,
        target=target,
        formulas={"E": phi},
        frames={"E": ("x", "y")},
        constant_map={"s": ("s",), "t": ("t",)},
    )


# ---------------------------------------------------------------------------
# PAD (Definition 5.13)
# ---------------------------------------------------------------------------


def pad_structure(structure: Structure, copies: int | None = None) -> Structure:
    """PAD(S)'s input form: ``copies`` identical copies of ``structure``,
    each relation gaining a leading copy-index column."""
    n = structure.n
    copies = n if copies is None else copies
    vocabulary = Vocabulary.make(
        relations=[
            (rel.name, rel.arity + 1) for rel in structure.vocabulary
        ],
        constants=structure.vocabulary.constant_names(),
    )
    out = Structure(vocabulary, n)
    for rel in structure.vocabulary:
        rows = structure.relation_view(rel.name)
        out.set_relation(
            rel.name,
            {(i,) + row for i in range(copies) for row in rows},
        )
    for name in structure.vocabulary.constant_names():
        out.set_constant(name, structure.constant(name))
    return out


# ---------------------------------------------------------------------------
# COLOR-REACH ([MSV94], Fact 5.11)
# ---------------------------------------------------------------------------


class ColorReachInstance:
    """An instance of COLOR-REACH: a digraph of out-degree <= 2 with labeled
    zero/one out-edges, a partition V = V_0 u V_1 u .. u V_r, and a color
    bit per class choosing which out-edge is active for its vertices
    (class 0 keeps both).  Flipping one color bit rewires a whole class —
    the trick that makes the standard L/NL-hardness reductions bounded
    expansion."""

    def __init__(
        self,
        n: int,
        zero_edges: dict[int, int],
        one_edges: dict[int, int],
        vertex_class: Sequence[int],
        colors: dict[int, bool],
    ) -> None:
        self.n = n
        self.zero_edges = dict(zero_edges)
        self.one_edges = dict(one_edges)
        self.vertex_class = list(vertex_class)
        self.colors = dict(colors)

    def active_edges(self) -> set[tuple[int, int]]:
        edges: set[tuple[int, int]] = set()
        for v in range(self.n):
            cls = self.vertex_class[v]
            if cls == 0:
                if v in self.zero_edges:
                    edges.add((v, self.zero_edges[v]))
                if v in self.one_edges:
                    edges.add((v, self.one_edges[v]))
            else:
                table = self.one_edges if self.colors.get(cls, False) else self.zero_edges
                if v in table:
                    edges.add((v, table[v]))
        return edges

    def set_color(self, cls: int, value: bool) -> None:
        if cls == 0:
            raise ValueError("class 0 has no color bit")
        self.colors[cls] = value


def color_reach_reachable(instance: ColorReachInstance, s: int, t: int) -> bool:
    """Plain reachability over the instance's active edges."""
    seen: set[int] = set()
    stack = [s]
    targets = {u: v for (u, v) in instance.active_edges()}
    adjacency: dict[int, list[int]] = {}
    for (u, v) in instance.active_edges():
        adjacency.setdefault(u, []).append(v)
    while stack:
        u = stack.pop()
        if u == t:
            return True
        if u in seen:
            continue
        seen.add(u)
        stack.extend(adjacency.get(u, ()))
    return False
