"""Section 5 of the paper: reductions honoring dynamic complexity.

* :class:`FirstOrderReduction` — executable k-ary FO reductions (Def. 2.2);
* :func:`measure_expansion` — empirical bounded-expansion checking
  (Def. 5.1);
* :class:`TransferredEngine` — the constructive transfer theorem
  (Prop. 5.3): a bfo reduction + a Dyn-FO program for the target yields a
  dynamic solver for the source;
* the catalog: ``I_{d-u}`` (Example 2.1), PAD (Def. 5.13), COLOR-REACH
  ([MSV94], Fact 5.11).
"""

from .bounded import ExpansionReport, measure_expansion, structure_delta
from .catalog import (
    ColorReachInstance,
    color_reach_reachable,
    pad_structure,
    reduction_d_to_u,
)
from .first_order import FirstOrderReduction, decode_element, encode_tuple
from .transfer import ExpansionExceeded, TransferredEngine

__all__ = [
    "FirstOrderReduction",
    "encode_tuple",
    "decode_element",
    "measure_expansion",
    "structure_delta",
    "ExpansionReport",
    "TransferredEngine",
    "ExpansionExceeded",
    "reduction_d_to_u",
    "pad_structure",
    "ColorReachInstance",
    "color_reach_reachable",
]
