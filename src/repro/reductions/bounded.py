"""Empirical bounded-expansion checking (Definition 5.1).

A first-order reduction is *bounded expansion* when each input tuple or
constant affects at most a constant number of output tuples and constants,
obliviously (through the numeric predicates only).  ``measure_expansion``
replays single requests against random source structures and records how
many target tuples actually change; tests assert the observed maximum stays
under the reduction's declared constant, and that a structure-independent
request keeps touching the same bounded region (the obliviousness probe).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..dynfo.requests import Delete, Insert, Request, SetConst, apply_request
from ..logic.structure import Structure
from .first_order import FirstOrderReduction

__all__ = ["ExpansionReport", "measure_expansion", "structure_delta"]


def structure_delta(before: Structure, after: Structure) -> int:
    """Number of differing tuples + constants between two structures."""
    if before.vocabulary != after.vocabulary or before.n != after.n:
        raise ValueError("structures are not comparable")
    delta = 0
    for rel in before.vocabulary:
        delta += len(
            before.relation_view(rel.name) ^ after.relation_view(rel.name)
        )
    for name in before.vocabulary.constant_names():
        if before.constant(name) != after.constant(name):
            delta += 1
    return delta


@dataclass
class ExpansionReport:
    """Outcome of an expansion measurement."""

    reduction: str
    trials: int
    max_delta: int
    worst_request: Request | None

    def is_bounded_by(self, constant: int) -> bool:
        return self.max_delta <= constant


def measure_expansion(
    reduction: FirstOrderReduction,
    n: int,
    trials: int = 100,
    seed: int = 0,
    request_maker: Callable[[random.Random, Structure], Request] | None = None,
) -> ExpansionReport:
    """Apply random single requests to random source structures and record
    the largest induced change in the reduction's output."""
    rng = random.Random(seed)
    maker = request_maker or _default_request
    max_delta = 0
    worst: Request | None = None
    for _ in range(trials):
        source = _random_structure(reduction.source, n, rng)
        request = maker(rng, source)
        before = reduction.apply(source)
        apply_request(source, request)
        after = reduction.apply(source)
        delta = structure_delta(before, after)
        if delta > max_delta:
            max_delta = delta
            worst = request
    return ExpansionReport(
        reduction=reduction.name,
        trials=trials,
        max_delta=max_delta,
        worst_request=worst,
    )


def _random_structure(vocabulary, n: int, rng: random.Random) -> Structure:
    structure = Structure(vocabulary, n)
    for rel in vocabulary:
        count = rng.randrange(0, max(2, n * rel.arity))
        for _ in range(count):
            structure.add(
                rel.name, tuple(rng.randrange(n) for _ in range(rel.arity))
            )
    for name in vocabulary.constant_names():
        structure.set_constant(name, rng.randrange(n))
    return structure


def _default_request(rng: random.Random, structure: Structure) -> Request:
    vocabulary = structure.vocabulary
    choices: list[Request] = []
    for rel in vocabulary:
        tup = tuple(rng.randrange(structure.n) for _ in range(rel.arity))
        choices.append(Insert(rel.name, tup))
        rows = structure.relation_view(rel.name)
        if rows:
            choices.append(Delete(rel.name, rng.choice(sorted(rows))))
    for name in vocabulary.constant_names():
        choices.append(SetConst(name, rng.randrange(structure.n)))
    return rng.choice(choices)
