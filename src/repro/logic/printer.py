"""Pretty-printing of formulas to a concrete text syntax.

The syntax round-trips through :mod:`repro.logic.parser`::

    exists u v. Eq(u, v) & P(x, u) -> x = y

Precedence (loosest to tightest): ``<->``, ``->``, ``|``, ``&``,
``~`` / quantifiers, atoms.
"""

from __future__ import annotations

from .syntax import (
    And,
    Atom,
    Bit,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    Le,
    Lt,
    Not,
    Or,
    Term,
    TrueF,
)

__all__ = ["format_formula", "format_term"]

_PREC_IFF = 0
_PREC_IMPLIES = 1
_PREC_OR = 2
_PREC_AND = 3
_PREC_UNARY = 4
_PREC_ATOM = 5


def format_term(term: Term) -> str:
    return str(term)


def _fmt(formula: Formula, parent_prec: int) -> str:
    text, prec = _render(formula)
    if prec < parent_prec:
        return f"({text})"
    return text


def _render(formula: Formula) -> tuple[str, int]:
    if isinstance(formula, TrueF):
        return "true", _PREC_ATOM
    if isinstance(formula, FalseF):
        return "false", _PREC_ATOM
    if isinstance(formula, Atom):
        args = ", ".join(format_term(a) for a in formula.args)
        return f"{formula.rel}({args})", _PREC_ATOM
    if isinstance(formula, Eq):
        return f"{format_term(formula.left)} = {format_term(formula.right)}", _PREC_ATOM
    if isinstance(formula, Le):
        return f"{format_term(formula.left)} <= {format_term(formula.right)}", _PREC_ATOM
    if isinstance(formula, Lt):
        return f"{format_term(formula.left)} < {format_term(formula.right)}", _PREC_ATOM
    if isinstance(formula, Bit):
        return (
            f"BIT({format_term(formula.number)}, {format_term(formula.index)})",
            _PREC_ATOM,
        )
    if isinstance(formula, Not):
        return f"~{_fmt(formula.body, _PREC_UNARY + 1)}", _PREC_UNARY
    if isinstance(formula, And):
        # parts render one level tighter so a *nested* And keeps its parens
        # and the parse tree round-trips exactly
        inner = " & ".join(_fmt(p, _PREC_AND + 1) for p in formula.parts)
        return inner, _PREC_AND
    if isinstance(formula, Or):
        inner = " | ".join(_fmt(p, _PREC_OR + 1) for p in formula.parts)
        return inner, _PREC_OR
    if isinstance(formula, Implies):
        left = _fmt(formula.left, _PREC_IMPLIES + 1)
        right = _fmt(formula.right, _PREC_IMPLIES)
        return f"{left} -> {right}", _PREC_IMPLIES
    if isinstance(formula, Iff):
        left = _fmt(formula.left, _PREC_IFF + 1)
        right = _fmt(formula.right, _PREC_IFF + 1)
        return f"{left} <-> {right}", _PREC_IFF
    if isinstance(formula, Exists):
        body = _fmt(formula.body, _PREC_UNARY)
        return f"exists {' '.join(formula.vars)}. {body}", _PREC_UNARY
    if isinstance(formula, Forall):
        body = _fmt(formula.body, _PREC_UNARY)
        return f"forall {' '.join(formula.vars)}. {body}", _PREC_UNARY
    raise TypeError(f"unknown formula node {formula!r}")  # pragma: no cover


def format_formula(formula: Formula) -> str:
    """Render ``formula`` as parseable text."""
    return _fmt(formula, 0)
