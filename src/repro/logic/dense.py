"""Dense boolean-tensor evaluation of FO formulas — an executable CRAM[1].

FO = CRAM[1] (Immerman): a first-order formula can be evaluated by a CRCW
PRAM with polynomially many processors in *constant* parallel time — one
parallel step per connective or quantifier block.  This evaluator realizes
that model literally: every variable is a tensor axis, every subformula
evaluates to a boolean ndarray broadcast over the mentioned axes, and every
connective / quantifier is a single vectorized NumPy operation (the
"parallel step").

The number of parallel steps performed therefore equals
:func:`repro.logic.transform.connective_depth` of the formula — a quantity
independent of the structure size ``n`` — while the *hardware* (tensor
cells) is polynomial, ``n^v`` for ``v`` distinct variables.  Experiment E16
measures exactly this.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .evaluation import EvaluationError, eval_term
from .structure import Structure
from .syntax import (
    And,
    Atom,
    Bit,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    Le,
    Lt,
    Not,
    Or,
    Term,
    TrueF,
    Var,
)
from .transform import free_vars, standardize_apart

__all__ = ["DenseEvaluator"]


class DenseEvaluator:
    """Evaluates formulas as boolean tensors over one fixed structure.

    API-compatible with :class:`repro.logic.relational.RelationalEvaluator`
    (``rows`` and ``truth``), so the Dyn-FO engine can swap backends.
    """

    def __init__(
        self,
        structure: Structure,
        params: Mapping[str, int] | None = None,
        max_cells: int = 200_000_000,
    ) -> None:
        self.structure = structure
        self.params = dict(params) if params else {}
        self.max_cells = max_cells
        self._relation_arrays: dict[str, np.ndarray] = {}
        self.parallel_steps = 0  # connective/quantifier ops in the last call

    # -- public API ----------------------------------------------------------

    def rows(self, formula: Formula, frame: tuple[str, ...]) -> set[tuple[int, ...]]:
        missing = free_vars(formula) - set(frame)
        if missing:
            raise EvaluationError(f"frame {frame} does not bind {sorted(missing)}")
        if not frame:
            return {()} if self.truth(formula) else set()
        array, axes = self._run(formula, frame)
        n = self.structure.n
        # collapse bound-variable axes (all size one after quantification)
        frame_axes = [axes[v] for v in frame]
        slicer = tuple(
            slice(None) if i in frame_axes else 0 for i in range(array.ndim)
        )
        collapsed = array[slicer]
        # collapsed now has one axis per frame variable, ordered by axis index
        order = np.argsort(np.argsort(frame_axes))
        full = np.broadcast_to(collapsed, (n,) * len(frame))
        hits = np.argwhere(full)
        return {tuple(int(hit[order[i]]) for i in range(len(frame))) for hit in hits}

    def truth(self, sentence: Formula) -> bool:
        if free_vars(sentence):
            raise EvaluationError("truth() requires a sentence")
        array, _ = self._run(sentence, ())
        return bool(array.reshape(-1)[0])

    # -- setup -----------------------------------------------------------------

    def _run(self, formula: Formula, frame: tuple[str, ...]):
        formula = standardize_apart(formula)
        axes, total = _assign_axes(formula, frame)
        n = self.structure.n
        if total > 0 and n ** total > self.max_cells:
            raise EvaluationError(
                f"dense evaluation needs n^{total} cells; "
                f"n={n} exceeds the {self.max_cells}-cell budget"
            )
        self.parallel_steps = 0
        array = self._eval(formula, axes, total)
        return array, axes

    # -- term and atom tensors ----------------------------------------------------

    def _axis_shape(self, axis: int, total: int) -> tuple[int, ...]:
        shape = [1] * total
        shape[axis] = self.structure.n
        return tuple(shape)

    def _term_array(self, term: Term, axes: Mapping[str, int], total: int):
        """An integer ndarray (broadcastable) holding the term's value."""
        if isinstance(term, Var):
            axis = axes[term.name]
            return np.arange(self.structure.n).reshape(self._axis_shape(axis, total))
        value = eval_term(term, self.structure, {}, self.params)
        return np.array(value)

    def _relation_array(self, name: str) -> np.ndarray:
        cached = self._relation_arrays.get(name)
        if cached is not None:
            return cached
        n = self.structure.n
        arity = self.structure.vocabulary.arity(name)
        array = np.zeros((n,) * arity, dtype=bool)
        rows = self.structure.relation_view(name)
        if rows:
            if arity == 0:
                array = np.array(True)
            else:
                idx = np.array(sorted(rows), dtype=np.intp)
                array[tuple(idx[:, i] for i in range(arity))] = True
        self._relation_arrays[name] = array
        return array

    def _eval_atom(self, atom: Atom, axes: Mapping[str, int], total: int):
        rel = self._relation_array(atom.rel)
        if not atom.args:
            return rel  # scalar; reshaped by the caller
        index = []
        for arg in atom.args:
            index.append(self._term_array(arg, axes, total))
        # advanced indexing broadcasts the index arrays together
        result = rel[tuple(index)]
        return result

    # -- recursive evaluation ---------------------------------------------------------

    def _eval(self, formula: Formula, axes: Mapping[str, int], total: int):
        ones = (1,) * total

        def lift(value: bool):
            return np.full(ones, value, dtype=bool)

        if isinstance(formula, TrueF):
            return lift(True)
        if isinstance(formula, FalseF):
            return lift(False)
        if isinstance(formula, Atom):
            result = self._eval_atom(formula, axes, total)
            return np.reshape(result, ones) if result.ndim == 0 else result
        if isinstance(formula, (Eq, Le, Lt)):
            left = self._term_array(formula.left, axes, total)
            right = self._term_array(formula.right, axes, total)
            self.parallel_steps += 1
            op = {Eq: np.equal, Le: np.less_equal, Lt: np.less}[type(formula)]
            result = op(left, right)
            return np.reshape(result, ones) if result.ndim == 0 else result
        if isinstance(formula, Bit):
            number = self._term_array(formula.number, axes, total)
            index = self._term_array(formula.index, axes, total)
            self.parallel_steps += 1
            result = ((number >> index) & 1).astype(bool)
            return np.reshape(result, ones) if result.ndim == 0 else result
        if isinstance(formula, Not):
            self.parallel_steps += 1
            return ~self._eval(formula.body, axes, total)
        if isinstance(formula, And):
            arrays = [self._eval(p, axes, total) for p in formula.parts]
            self.parallel_steps += 1
            result = arrays[0]
            for array in arrays[1:]:
                result = result & array
            return result
        if isinstance(formula, Or):
            arrays = [self._eval(p, axes, total) for p in formula.parts]
            self.parallel_steps += 1
            result = arrays[0]
            for array in arrays[1:]:
                result = result | array
            return result
        if isinstance(formula, Implies):
            left = self._eval(formula.left, axes, total)
            right = self._eval(formula.right, axes, total)
            self.parallel_steps += 1
            return ~left | right
        if isinstance(formula, Iff):
            left = self._eval(formula.left, axes, total)
            right = self._eval(formula.right, axes, total)
            self.parallel_steps += 1
            return left == right
        if isinstance(formula, (Exists, Forall)):
            body = self._eval(formula.body, axes, total)
            reducer = np.any if isinstance(formula, Exists) else np.all
            target_axes = tuple(axes[v] for v in formula.vars)
            self.parallel_steps += 1
            live = tuple(a for a in target_axes if body.shape[a] != 1)
            if not live:
                return body
            return reducer(body, axis=live, keepdims=True)
        raise TypeError(f"unknown formula node {formula!r}")  # pragma: no cover


def _assign_axes(
    formula: Formula, frame: tuple[str, ...]
) -> tuple[dict[str, int], int]:
    """Scope-aware axis assignment: frame variables get dedicated leading
    axes; bound variables (unique names after standardize-apart) are
    allocated from a free pool on quantifier entry and released on exit, so
    *sibling* quantifier scopes share axes.  The tensor rank is therefore
    |frame| + maximum quantifier-nesting width, not the total number of
    distinct variables — the difference between n^26 and n^7 on the larger
    update formulas."""
    axes: dict[str, int] = {name: i for i, name in enumerate(frame)}
    free_pool: list[int] = []
    allocated = len(frame)

    def rec(node: Formula) -> None:
        nonlocal allocated
        if isinstance(node, (Exists, Forall)):
            taken: list[int] = []
            for var in node.vars:
                if free_pool:
                    axis = free_pool.pop()
                else:
                    axis = allocated
                    allocated += 1
                axes[var] = axis
                taken.append(axis)
            rec(node.body)
            free_pool.extend(taken)
        elif isinstance(node, Not):
            rec(node.body)
        elif isinstance(node, (And, Or)):
            for part in node.parts:
                rec(part)
        elif isinstance(node, (Implies, Iff)):
            rec(node.left)
            rec(node.right)

    rec(formula)
    return axes, allocated
