"""Dense boolean-tensor evaluation of FO formulas — an executable CRAM[1].

FO = CRAM[1] (Immerman): a first-order formula can be evaluated by a CRCW
PRAM with polynomially many processors in *constant* parallel time — one
parallel step per connective or quantifier block.  This evaluator realizes
that model literally, executing the same compiled physical plans as the
relational backend (:mod:`repro.logic.plan`) but with a tensor
interpretation: every plan node materializes a boolean ndarray with one axis
per output column, and every join / filter / union / complement / projection
is a single vectorized NumPy operation (the "parallel step").

The number of parallel steps performed is a property of the *plan* — a
quantity independent of the structure size ``n``, compiled once per formula
— while the *hardware* (tensor cells) is polynomial: ``n^w`` for the widest
plan node, which the compiler keeps at |frame| plus the quantifier-nesting
width rather than the total variable count.  Experiment E16 measures exactly
this.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .evaluation import EvaluationError, eval_term
from .plan import (
    AtomScan,
    CompareScan,
    Complement,
    ConstBind,
    EmptyScan,
    Extend,
    Filter,
    HashJoin,
    Plan,
    Project,
    Union,
    UnitScan,
    cached_plan,
    plan_nodes,
)
from .structure import Structure
from .syntax import (
    And,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Term,
    Var,
)
from .transform import free_vars

__all__ = ["DenseEvaluator"]

_COMPARE_UFUNCS = {
    "eq": np.equal,
    "le": np.less_equal,
    "lt": np.less,
}


class DenseEvaluator:
    """Executes compiled plans as boolean tensors over one fixed structure.

    API-compatible with :class:`repro.logic.relational.RelationalEvaluator`
    (``rows``, ``truth``, and ``execute``), so the Dyn-FO engine can swap
    backends.  Node results are memoized per plan-node object, like the
    relational executor — but *every* node is always evaluated (no
    data-dependent short-circuits), so ``parallel_steps`` depends only on
    the plan shape, never on the data.
    """

    def __init__(
        self,
        structure: Structure,
        params: Mapping[str, int] | None = None,
        max_cells: int = 200_000_000,
        array_cache: dict[str, tuple[int, np.ndarray]] | None = None,
    ) -> None:
        self.structure = structure
        self.params = dict(params) if params else {}
        self.max_cells = max_cells
        # Optional cross-request relation-tensor cache owned by the caller:
        # name -> (relation_version, array).  Entries are reused only when
        # the version stamp still matches the structure, so the owner may
        # keep arrays current in place (the engine's delta path does) or let
        # stale entries rebuild lazily.  Cached arrays are never mutated by
        # the evaluator.
        self.array_cache = array_cache
        self._relation_arrays: dict[str, np.ndarray] = {}
        # id-keyed per-node memo; the node is pinned so its id stays valid
        self._results: dict[int, tuple[Plan, np.ndarray]] = {}
        self.parallel_steps = 0  # vectorized ops in the last call

    # -- public API ----------------------------------------------------------

    def rows(self, formula: Formula, frame: tuple[str, ...]) -> set[tuple[int, ...]]:
        missing = free_vars(formula) - set(frame)
        if missing:
            raise EvaluationError(f"frame {frame} does not bind {sorted(missing)}")
        return self.execute(cached_plan(formula, tuple(frame), distribute=False))

    def truth(self, sentence: Formula) -> bool:
        if free_vars(sentence):
            raise EvaluationError("truth() requires a sentence")
        return bool(self.execute(cached_plan(sentence, (), distribute=False)))

    def execute(self, plan: Plan) -> set[tuple[int, ...]]:
        """Run a compiled plan; returns the result rows over its columns."""
        self._check_budget(plan)
        self.parallel_steps = 0
        array = self._exec(plan)
        if not plan.columns:
            return {()} if array.reshape(-1)[0] else set()
        full = np.broadcast_to(array, (self.structure.n,) * len(plan.columns))
        return {tuple(int(v) for v in hit) for hit in np.argwhere(full)}

    # -- setup -----------------------------------------------------------------

    def _check_budget(self, plan: Plan) -> None:
        widest = max(len(node.columns) for node in plan_nodes(plan))
        n = self.structure.n
        if widest > 0 and n**widest > self.max_cells:
            raise EvaluationError(
                f"dense evaluation needs n^{widest} cells; "
                f"n={n} exceeds the {self.max_cells}-cell budget"
            )

    # -- term and relation tensors ----------------------------------------------

    def _term_array(self, term: Term, columns: tuple[str, ...]):
        """An integer ndarray (broadcastable over ``columns``) holding the
        term's value."""
        if isinstance(term, Var):
            axis = columns.index(term.name)
            shape = [1] * len(columns)
            shape[axis] = self.structure.n
            return np.arange(self.structure.n).reshape(shape)
        return np.array(eval_term(term, self.structure, {}, self.params))

    def _relation_array(self, name: str) -> np.ndarray:
        cached = self._relation_arrays.get(name)
        if cached is not None:
            return cached
        version = None
        if self.array_cache is not None:
            version = self.structure.relation_version(name)
            entry = self.array_cache.get(name)
            if entry is not None and entry[0] == version:
                self._relation_arrays[name] = entry[1]
                return entry[1]
        n = self.structure.n
        arity = self.structure.vocabulary.arity(name)
        array = np.zeros((n,) * arity, dtype=bool)
        rows = self.structure.relation_view(name)
        if rows:
            if arity == 0:
                array = np.array(True)
            else:
                idx = np.array(sorted(rows), dtype=np.intp)
                array[tuple(idx[:, i] for i in range(arity))] = True
        self._relation_arrays[name] = array
        if self.array_cache is not None:
            self.array_cache[name] = (version, array)
        return array

    # -- plan execution ---------------------------------------------------------

    def _exec(self, plan: Plan) -> np.ndarray:
        cached = self._results.get(id(plan))
        if cached is not None:
            return cached[1]
        result = self._exec_node(plan)
        self._results[id(plan)] = (plan, result)
        return result

    def _expand(
        self, array: np.ndarray, columns: tuple[str, ...], out: tuple[str, ...]
    ) -> np.ndarray:
        """Permute ``array``'s axes (one per column) into the order of
        ``out`` and insert broadcast axes for missing columns.  Axes may be
        size one (broadcast semantics: the value is column-independent), so
        this never materializes anything."""
        order = sorted(range(len(columns)), key=lambda i: out.index(columns[i]))
        if order != list(range(len(columns))):
            array = np.transpose(array, order)
        if len(out) != len(columns):
            ordered = [columns[i] for i in order]
            shape = []
            j = 0
            for column in out:
                if j < len(ordered) and ordered[j] == column:
                    shape.append(array.shape[j])
                    j += 1
                else:
                    shape.append(1)
            array = array.reshape(shape)
        return array

    def _exec_node(self, plan: Plan) -> np.ndarray:
        if isinstance(plan, UnitScan):
            return np.array(True)
        if isinstance(plan, EmptyScan):
            return np.zeros((1,) * len(plan.columns), dtype=bool)
        if isinstance(plan, AtomScan):
            return self._exec_atom(plan)
        if isinstance(plan, CompareScan):
            return self._exec_compare(plan)
        if isinstance(plan, ConstBind):
            self.parallel_steps += 1
            value = eval_term(plan.term, self.structure, {}, self.params)
            return np.arange(self.structure.n) == value
        if isinstance(plan, HashJoin):
            left = self._exec(plan.left)
            right = self._exec(plan.right)
            self.parallel_steps += 1
            return self._expand(left, plan.left.columns, plan.columns) & self._expand(
                right, plan.right.columns, plan.columns
            )
        if isinstance(plan, Filter):
            source = self._exec(plan.source)
            condition = self._exec(plan.condition)
            self.parallel_steps += 1
            aligned = self._expand(condition, plan.condition.columns, plan.columns)
            return source & ~aligned if plan.negated else source & aligned
        if isinstance(plan, Project):
            source = self._exec(plan.source)
            src_cols = plan.source.columns
            drop = tuple(i for i, c in enumerate(src_cols) if c not in plan.columns)
            self.parallel_steps += 1
            # a size-one dropped axis is already column-independent; only
            # reduce the live ones, then squeeze all dropped axes away
            live = tuple(a for a in drop if source.shape[a] != 1)
            if live:
                source = np.any(source, axis=live, keepdims=True)
            if drop:
                source = source.reshape(
                    [s for i, s in enumerate(source.shape) if i not in drop]
                )
            kept = tuple(c for c in src_cols if c in plan.columns)
            return self._expand(source, kept, plan.columns)
        if isinstance(plan, Extend):
            source = self._exec(plan.source)
            self.parallel_steps += 1
            return self._expand(source, plan.source.columns, plan.columns)
        if isinstance(plan, Complement):
            # negation is broadcast-safe: size-one axes stay size one
            source = self._exec(plan.source)
            self.parallel_steps += 1
            return ~source
        if isinstance(plan, Union):
            arrays = [self._exec(part) for part in plan.parts]
            self.parallel_steps += 1
            result = arrays[0]
            for array in arrays[1:]:
                result = result | array
            return result
        raise TypeError(f"unknown plan node {plan!r}")  # pragma: no cover

    def _exec_atom(self, plan: AtomScan) -> np.ndarray:
        rel = self._relation_array(plan.rel)
        if not plan.args:
            return rel  # scalar
        index = [self._term_array(arg, plan.columns) for arg in plan.args]
        # advanced indexing broadcasts the index arrays together, yielding
        # one axis per output column
        return rel[tuple(index)]

    def _exec_compare(self, plan: CompareScan) -> np.ndarray:
        left = self._term_array(plan.left, plan.columns)
        right = self._term_array(plan.right, plan.columns)
        self.parallel_steps += 1
        if plan.op == "bit":
            result = ((left >> right) & 1).astype(bool)
        else:
            result = _COMPARE_UFUNCS[plan.op](left, right)
        if result.ndim != len(plan.columns):
            result = np.reshape(result, (1,) * len(plan.columns))
        return result


def _assign_axes(
    formula: Formula, frame: tuple[str, ...]
) -> tuple[dict[str, int], int]:
    """Scope-aware axis assignment: frame variables get dedicated leading
    axes; bound variables (unique names after standardize-apart) are
    allocated from a free pool on quantifier entry and released on exit, so
    *sibling* quantifier scopes share axes.  The tensor rank is therefore
    |frame| + maximum quantifier-nesting width, not the total number of
    distinct variables — the difference between n^26 and n^7 on the larger
    update formulas.  (The plan compiler achieves the same bound via
    projection; this function remains the direct formula-level analysis used
    by experiment E16 and the width diagnostics.)"""
    axes: dict[str, int] = {name: i for i, name in enumerate(frame)}
    free_pool: list[int] = []
    allocated = len(frame)

    def rec(node: Formula) -> None:
        nonlocal allocated
        if isinstance(node, (Exists, Forall)):
            taken: list[int] = []
            for var in node.vars:
                if free_pool:
                    axis = free_pool.pop()
                else:
                    axis = allocated
                    allocated += 1
                axes[var] = axis
                taken.append(axis)
            rec(node.body)
            free_pool.extend(taken)
        elif isinstance(node, Not):
            rec(node.body)
        elif isinstance(node, (And, Or)):
            for part in node.parts:
                rec(part)
        elif isinstance(node, (Implies, Iff)):
            rec(node.left)
            rec(node.right)

    rec(formula)
    return axes, allocated
