"""Database-style evaluation of first-order formulas.

This is the default engine used by the Dyn-FO machinery.  Since PR 2 it is a
*plan executor*: :func:`repro.logic.plan.compile_formula` normalizes a
formula and fixes a greedy join order **once**, and this module replays the
resulting physical plan against the current structure — sets of tuples over
named columns, joined with the classic relational-algebra toolkit:

* atom and numeric-predicate scans materialize directly (an atom that is
  exactly a stored relation is borrowed zero-copy; a fully ground atom is an
  O(1) membership probe);
* conjunctions execute the compiled join order — cheap conjuncts are
  hash-joined, and any conjunct whose variables are already bound runs as a
  per-row *filter* (so negations and universal guards never materialize huge
  complements), with empty intermediates short-circuiting the chain;
* existential quantification is projection; universal quantification was
  compiled away as a negated existential.

The executor is exact (tested against :func:`repro.logic.evaluation.holds`
on random formulas) and is typically orders of magnitude faster than naive
enumeration on the update formulas of the paper.
"""

from __future__ import annotations

import itertools
import operator
from dataclasses import dataclass
from typing import Mapping

from .evaluation import EvaluationError, eval_term, holds
from .plan import (
    AtomScan,
    CompareScan,
    Complement,
    ConstBind,
    EmptyScan,
    Extend,
    Filter,
    HashJoin,
    Plan,
    Project,
    Union,
    UnitScan,
    cached_plan,
)
from .structure import Structure
from .syntax import Formula, Var
from .transform import free_vars

__all__ = ["Relation", "RelationalEvaluator", "query"]

# Refuse to materialize relations larger than this many rows; it means a
# formula was written in a shape the planner cannot keep narrow.
DEFAULT_MAX_ROWS = 20_000_000

_COMPARE_TESTS = {
    "eq": lambda a, b: a == b,
    "le": lambda a, b: a <= b,
    "lt": lambda a, b: a < b,
    "bit": lambda a, b: bool((a >> b) & 1),
}

# A CompareScan's row set depends only on the operator, the fixed side's
# value (if any), and n — never on relation data — so the delta-path
# evaluator shares the materialized sets process-wide instead of rebuilding
# an O(n^2) set per evaluation.  Entries are read-only by convention: every
# consumer of Relation.rows in this module only reads, and execute() copies
# at the boundary.
_COMPARE_ROWS_CACHE: dict[tuple, set[tuple[int, ...]]] = {}


def _tuple_getter(positions: tuple[int, ...]):
    """Row projector always returning a tuple (itemgetter returns a bare
    value for a single position, and rejects zero positions)."""
    if len(positions) == 1:
        single = positions[0]
        return lambda row: (row[single],)
    if not positions:
        return lambda row: ()
    return operator.itemgetter(*positions)


@dataclass
class Relation:
    """A finite relation with named columns (an intermediate result)."""

    vars: tuple[str, ...]
    rows: set[tuple[int, ...]]

    @staticmethod
    def unit() -> "Relation":
        return Relation((), {()})

    @staticmethod
    def empty(vars: tuple[str, ...] = ()) -> "Relation":
        return Relation(vars, set())

    def project(self, onto: tuple[str, ...]) -> "Relation":
        index = [self.vars.index(v) for v in onto]
        return Relation(tuple(onto), {tuple(row[i] for i in index) for row in self.rows})

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        return Relation(tuple(mapping.get(v, v) for v in self.vars), set(self.rows))

    def extend(self, var: str, universe: range) -> "Relation":
        """Cross product with the universe on a new column."""
        return Relation(
            self.vars + (var,),
            {row + (value,) for row in self.rows for value in universe},
        )

    def join(self, other: "Relation") -> "Relation":
        """Natural (hash) join on shared columns."""
        shared = [v for v in self.vars if v in other.vars]
        if not shared:
            out_vars = self.vars + other.vars
            return Relation(
                out_vars, {a + b for a in self.rows for b in other.rows}
            )
        # index the smaller side
        left, right = (self, other) if len(self.rows) <= len(other.rows) else (other, self)
        left_key = [left.vars.index(v) for v in shared]
        right_key = [right.vars.index(v) for v in shared]
        right_extra = [i for i, v in enumerate(right.vars) if v not in left.vars]
        index: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
        for row in left.rows:
            index.setdefault(tuple(row[i] for i in left_key), []).append(row)
        out_vars = left.vars + tuple(right.vars[i] for i in right_extra)
        out_rows: set[tuple[int, ...]] = set()
        for row in right.rows:
            key = tuple(row[i] for i in right_key)
            for match in index.get(key, ()):
                out_rows.add(match + tuple(row[i] for i in right_extra))
        return Relation(out_vars, out_rows)

    def __len__(self) -> int:
        return len(self.rows)


class RelationalEvaluator:
    """Executes compiled plans against one fixed structure (and params).

    Node results are memoized per plan-node object, so create one evaluator
    per update step and reuse it for every update formula of that step —
    plan nodes shared between formulas (a guard used by several definitions)
    are then evaluated once.
    """

    def __init__(
        self,
        structure: Structure,
        params: Mapping[str, int] | None = None,
        max_rows: int = DEFAULT_MAX_ROWS,
        trace: list | None = None,
        use_indexes: bool = True,
    ) -> None:
        self.structure = structure
        self.params = dict(params) if params else {}
        self.max_rows = max_rows
        # probe Structure hash indexes for atoms with fixed columns instead
        # of scanning; False restores the pre-delta full-scan path
        self.use_indexes = use_indexes
        # optional plan trace: (depth, event, columns, rows) tuples appended
        # as the executor works — see repro.logic.explain
        self.trace = trace
        self._depth = 0
        # id-keyed to avoid hashing plan trees; the node is pinned in the
        # value so its id cannot be recycled.
        self._results: dict[int, tuple[Plan, Relation]] = {}

    def _record(self, event: str, relation: Relation | None = None) -> None:
        if self.trace is not None:
            columns = relation.vars if relation is not None else ()
            rows = len(relation.rows) if relation is not None else 0
            self.trace.append((self._depth, event, columns, rows))

    # -- public API ---------------------------------------------------------

    def rows(self, formula: Formula, frame: tuple[str, ...]) -> set[tuple[int, ...]]:
        """Satisfying assignments of ``formula`` over the columns ``frame``."""
        missing = free_vars(formula) - set(frame)
        if missing:
            raise EvaluationError(f"frame {frame} does not bind {sorted(missing)}")
        return self.execute(cached_plan(formula, tuple(frame)))

    def truth(self, sentence: Formula) -> bool:
        """Truth value of a sentence (no free variables)."""
        if free_vars(sentence):
            raise EvaluationError("truth() requires a sentence")
        return bool(self._exec(cached_plan(sentence, ())).rows)

    def execute(self, plan: Plan) -> set[tuple[int, ...]]:
        """Run a compiled plan; returns a fresh set of result rows."""
        # copy at the boundary: the memoized relation may borrow a live
        # structure view (direct atom scan) or be shared between plans
        return set(self._exec(plan).rows)

    # -- helpers -------------------------------------------------------------

    def _check_size(self, relation: Relation) -> Relation:
        if len(relation.rows) > self.max_rows:
            raise EvaluationError(
                f"intermediate relation exceeded {self.max_rows} rows over "
                f"columns {relation.vars}; reshape the formula"
            )
        return relation

    def _value(self, term) -> int:
        return eval_term(term, self.structure, {}, self.params)

    # -- core dispatch --------------------------------------------------------

    def _exec(self, plan: Plan) -> Relation:
        cached = self._results.get(id(plan))
        if cached is not None:
            self._record(f"cached {plan.label or type(plan).__name__}", cached[1])
            return cached[1]
        self._depth += 1
        try:
            result = self._exec_node(plan)
        finally:
            self._depth -= 1
        self._check_size(result)
        self._results[id(plan)] = (plan, result)
        self._record(plan.label or type(plan).__name__, result)
        return result

    def _exec_node(self, plan: Plan) -> Relation:
        if isinstance(plan, UnitScan):
            return Relation.unit()
        if isinstance(plan, EmptyScan):
            return Relation.empty(plan.columns)
        if isinstance(plan, AtomScan):
            return self._exec_atom(plan)
        if isinstance(plan, CompareScan):
            return self._exec_compare(plan)
        if isinstance(plan, ConstBind):
            value = self._value(plan.term)
            if 0 <= value < self.structure.n:
                return Relation(plan.columns, {(value,)})
            return Relation.empty(plan.columns)
        if isinstance(plan, HashJoin):
            return self._exec_join(plan)
        if isinstance(plan, Filter):
            return self._exec_filter(plan)
        if isinstance(plan, Project):
            source = self._exec(plan.source)
            if self.use_indexes:
                project = _tuple_getter(tuple(plan.positions))
                return Relation(
                    plan.columns, {project(row) for row in source.rows}
                )
            return Relation(
                plan.columns,
                {tuple(row[p] for p in plan.positions) for row in source.rows},
            )
        if isinstance(plan, Extend):
            relation = self._exec(plan.source)
            for var in plan.fresh:
                relation = self._check_size(
                    relation.extend(var, self.structure.universe)
                )
            return relation
        if isinstance(plan, Complement):
            return self._exec_complement(plan)
        if isinstance(plan, Union):
            out: set[tuple[int, ...]] = set()
            for part in plan.parts:
                out |= self._exec(part).rows
            return Relation(plan.columns, out)
        raise TypeError(f"unknown plan node {plan!r}")  # pragma: no cover

    # -- leaves ---------------------------------------------------------------

    def _exec_atom(self, plan: AtomScan) -> Relation:
        view = self.structure.relation_view(plan.rel)
        if plan.direct:
            # borrowed zero-copy view: never mutated by the executor, and
            # copied at the execute()/rows() boundary
            return Relation(plan.columns, view)
        fixed = [(pos, self._value(term)) for pos, term in plan.fixed]
        if not plan.var_cols:
            # fully ground atom: O(1) membership instead of a full scan
            probe = tuple(value for _, value in sorted(fixed))
            return Relation.unit() if probe in view else Relation.empty()
        if self.use_indexes:
            if fixed:
                # indexed probe: O(matches) via the structure's hash index on
                # the fixed column positions instead of an O(|rel|) scan
                positions = tuple(pos for pos, _ in fixed)
                key = tuple(value for _, value in fixed)
                bucket = self.structure.index_on(plan.rel, positions).get(key)
                if not bucket:
                    return Relation.empty(plan.columns)
                return Relation(plan.columns, self._scan_project(bucket, plan))
            # no fixed columns to index on (permuted or repeated variables):
            # same full scan as the generic path below, tighter loop
            return Relation(plan.columns, self._scan_project(view, plan))
        out_rows = set()
        for row in view:
            if any(row[pos] != value for pos, value in fixed):
                continue
            ok = True
            for _, positions in plan.var_cols:
                first = row[positions[0]]
                if any(row[p] != first for p in positions[1:]):
                    ok = False
                    break
            if ok:
                out_rows.add(tuple(row[pos[0]] for _, pos in plan.var_cols))
        return Relation(plan.columns, out_rows)

    @staticmethod
    def _scan_project(rows, plan: AtomScan) -> set[tuple[int, ...]]:
        """Project ``rows`` (full-arity tuples of ``plan.rel``) onto the
        plan's output columns, enforcing repeated-variable agreement.  The
        delta-path scan kernel: one pass, precompiled projector, and the
        overwhelmingly common repeated-variable shape (one pair) gets a
        direct comparison instead of generic group machinery."""
        project = _tuple_getter(tuple(pos[0] for _, pos in plan.var_cols))
        groups = [pos for _, pos in plan.var_cols if len(pos) > 1]
        if not groups:
            return {project(row) for row in rows}
        if len(groups) == 1 and len(groups[0]) == 2:
            first, second = groups[0]
            return {project(row) for row in rows if row[first] == row[second]}
        return {
            project(row)
            for row in rows
            if all(row[g[0]] == row[p] for g in groups for p in g[1:])
        }

    def _exec_compare(self, plan: CompareScan) -> Relation:
        test = _COMPARE_TESTS[plan.op]
        universe = self.structure.universe
        left_var = isinstance(plan.left, Var)
        right_var = isinstance(plan.right, Var)
        if not left_var and not right_var:
            lval, rval = self._value(plan.left), self._value(plan.right)
            return Relation.unit() if test(lval, rval) else Relation.empty()
        if not left_var:
            lval = self._value(plan.left)
            return Relation(
                plan.columns,
                self._compare_rows(
                    ("l", plan.op, lval),
                    lambda: {(b,) for b in universe if test(lval, b)},
                ),
            )
        if not right_var:
            rval = self._value(plan.right)
            return Relation(
                plan.columns,
                self._compare_rows(
                    ("r", plan.op, rval),
                    lambda: {(a,) for a in universe if test(a, rval)},
                ),
            )
        if len(plan.columns) == 1:  # same variable on both sides
            return Relation(
                plan.columns,
                self._compare_rows(
                    ("s", plan.op),
                    lambda: {(a,) for a in universe if test(a, a)},
                ),
            )
        return Relation(
            plan.columns,
            self._compare_rows(
                ("2", plan.op),
                lambda: {(a, b) for a in universe for b in universe if test(a, b)},
            ),
        )

    def _compare_rows(self, key: tuple, build) -> set[tuple[int, ...]]:
        """Comparison row sets via the process-wide cache (delta path only;
        the ``--no-delta`` evaluator rebuilds them, the PR-4 behavior)."""
        if not self.use_indexes:
            return build()
        key = key + (self.structure.n,)
        rows = _COMPARE_ROWS_CACHE.get(key)
        if rows is None:
            rows = _COMPARE_ROWS_CACHE[key] = build()
        return rows

    # -- compound nodes ---------------------------------------------------------

    def _exec_join(self, plan: HashJoin) -> Relation:
        left = self._exec(plan.left)
        if not left.rows:
            return Relation.empty(plan.columns)
        right = self._exec(plan.right)
        if self.use_indexes:
            # semijoin fast path (delta-path only): when one side's columns
            # are a subset of the other's, the join is a membership filter —
            # no hash index to build, and the surviving rows are reused
            # rather than rebuilt.  Typical shape: a comparison predicate
            # (x <= y) or a param-bound atom joined against a wide relation.
            semi = self._semijoin(left, right) or self._semijoin(right, left)
            if semi is not None:
                if semi.vars != plan.columns:
                    semi = semi.project(plan.columns)
                return semi
            return self._fused_join(left, right, plan.columns)
        joined = left.join(right)
        if joined.vars != plan.columns:  # join ordered by the smaller side
            joined = joined.project(plan.columns)
        return joined

    @staticmethod
    def _fused_join(
        left: Relation, right: Relation, columns: tuple[str, ...]
    ) -> Relation:
        """Hash join emitting ``columns`` directly (delta path): the build
        side's payload is projected once while indexing, and each output row
        is shaped in the same pass — no intermediate relation, no second
        projection sweep."""
        shared = [v for v in left.vars if v in right.vars]
        build, probe = (
            (left, right) if len(left.rows) <= len(right.rows) else (right, left)
        )
        extra_pos = tuple(i for i, v in enumerate(build.vars) if v not in probe.vars)
        combined = probe.vars + tuple(build.vars[i] for i in extra_pos)
        out_pos = tuple(combined.index(c) for c in columns)
        identity = out_pos == tuple(range(len(combined)))
        shape = _tuple_getter(out_pos)
        # extras are never empty: a build side fully inside the probe's
        # columns is a semijoin, handled before we get here
        extras = _tuple_getter(extra_pos)
        rows: set[tuple[int, ...]] = set()
        if not shared:  # cross product
            for prow in probe.rows:
                for brow in build.rows:
                    row = prow + extras(brow)
                    rows.add(row if identity else shape(row))
            return Relation(columns, rows)
        # scalar keys when one column is shared (cheaper to hash); both
        # sides use the same key shape, so lookups agree
        build_key = operator.itemgetter(*(build.vars.index(v) for v in shared))
        probe_key = operator.itemgetter(*(probe.vars.index(v) for v in shared))
        index: dict = {}
        setdefault = index.setdefault
        for row in build.rows:
            setdefault(build_key(row), []).append(extras(row))
        get = index.get
        for prow in probe.rows:
            matches = get(probe_key(prow))
            if not matches:
                continue
            if identity:
                for extra in matches:
                    rows.add(prow + extra)
            else:
                for extra in matches:
                    rows.add(shape(prow + extra))
        return Relation(columns, rows)

    @staticmethod
    def _semijoin(wide: Relation, narrow: Relation) -> Relation | None:
        """``wide`` filtered to rows whose ``narrow``-columns projection is
        in ``narrow``; None when ``narrow``'s columns aren't a subset."""
        if not set(narrow.vars) <= set(wide.vars):
            return None
        if not narrow.vars:  # nullary: non-empty means keep everything
            return wide if narrow.rows else Relation.empty(wide.vars)
        positions = tuple(wide.vars.index(v) for v in narrow.vars)
        allowed = narrow.rows
        if len(positions) == 1:
            single = positions[0]
            rows = {row for row in wide.rows if (row[single],) in allowed}
        else:
            project = operator.itemgetter(*positions)
            rows = {row for row in wide.rows if project(row) in allowed}
        return Relation(wide.vars, rows)

    def _exec_filter(self, plan: Filter) -> Relation:
        source = self._exec(plan.source)
        if not source.rows:
            return source
        try:
            condition = self._exec(plan.condition)
        except EvaluationError:
            if plan.fallback is None:
                raise
            # the condition's shape is too hostile to materialize under the
            # size guard; test per row via the reference oracle instead
            out_rows = {
                row
                for row in source.rows
                if holds(
                    plan.fallback,
                    self.structure,
                    dict(zip(source.vars, row)),
                    self.params,
                )
            }
            return Relation(plan.columns, out_rows)
        if not condition.vars:
            # boolean guard, evaluated once: keep all rows or none
            satisfied = bool(condition.rows) != plan.negated
            return source if satisfied else Relation.empty(plan.columns)
        allowed = condition.rows
        positions = plan.positions
        if plan.negated:
            out_rows = {
                row
                for row in source.rows
                if tuple(row[p] for p in positions) not in allowed
            }
        else:
            out_rows = {
                row
                for row in source.rows
                if tuple(row[p] for p in positions) in allowed
            }
        return Relation(plan.columns, out_rows)

    def _exec_complement(self, plan: Complement) -> Relation:
        width = len(plan.columns)
        n = self.structure.n
        if n**width > self.max_rows:
            raise EvaluationError(
                f"complement over {width} columns of a size-{n} universe "
                "is too large; let the conjunction planner bind it first"
            )
        inner = self._exec(plan.source)
        rows = {
            row
            for row in itertools.product(range(n), repeat=width)
            if row not in inner.rows
        }
        return Relation(plan.columns, rows)


def query(
    formula: Formula,
    structure: Structure,
    frame: tuple[str, ...],
    params: Mapping[str, int] | None = None,
) -> set[tuple[int, ...]]:
    """One-shot convenience wrapper around :class:`RelationalEvaluator`."""
    return RelationalEvaluator(structure, params).rows(formula, frame)
