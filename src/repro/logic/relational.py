"""Database-style evaluation of first-order formulas.

This is the default engine used by the Dyn-FO machinery.  Since PR 2 it is a
*plan executor*: :func:`repro.logic.plan.compile_formula` normalizes a
formula and fixes a greedy join order **once**, and this module replays the
resulting physical plan against the current structure — sets of tuples over
named columns, joined with the classic relational-algebra toolkit:

* atom and numeric-predicate scans materialize directly (an atom that is
  exactly a stored relation is borrowed zero-copy; a fully ground atom is an
  O(1) membership probe);
* conjunctions execute the compiled join order — cheap conjuncts are
  hash-joined, and any conjunct whose variables are already bound runs as a
  per-row *filter* (so negations and universal guards never materialize huge
  complements), with empty intermediates short-circuiting the chain;
* existential quantification is projection; universal quantification was
  compiled away as a negated existential.

The executor is exact (tested against :func:`repro.logic.evaluation.holds`
on random formulas) and is typically orders of magnitude faster than naive
enumeration on the update formulas of the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping

from .evaluation import EvaluationError, eval_term, holds
from .plan import (
    AtomScan,
    CompareScan,
    Complement,
    ConstBind,
    EmptyScan,
    Extend,
    Filter,
    HashJoin,
    Plan,
    Project,
    Union,
    UnitScan,
    cached_plan,
)
from .structure import Structure
from .syntax import Formula, Var
from .transform import free_vars

__all__ = ["Relation", "RelationalEvaluator", "query"]

# Refuse to materialize relations larger than this many rows; it means a
# formula was written in a shape the planner cannot keep narrow.
DEFAULT_MAX_ROWS = 20_000_000

_COMPARE_TESTS = {
    "eq": lambda a, b: a == b,
    "le": lambda a, b: a <= b,
    "lt": lambda a, b: a < b,
    "bit": lambda a, b: bool((a >> b) & 1),
}


@dataclass
class Relation:
    """A finite relation with named columns (an intermediate result)."""

    vars: tuple[str, ...]
    rows: set[tuple[int, ...]]

    @staticmethod
    def unit() -> "Relation":
        return Relation((), {()})

    @staticmethod
    def empty(vars: tuple[str, ...] = ()) -> "Relation":
        return Relation(vars, set())

    def project(self, onto: tuple[str, ...]) -> "Relation":
        index = [self.vars.index(v) for v in onto]
        return Relation(tuple(onto), {tuple(row[i] for i in index) for row in self.rows})

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        return Relation(tuple(mapping.get(v, v) for v in self.vars), set(self.rows))

    def extend(self, var: str, universe: range) -> "Relation":
        """Cross product with the universe on a new column."""
        return Relation(
            self.vars + (var,),
            {row + (value,) for row in self.rows for value in universe},
        )

    def join(self, other: "Relation") -> "Relation":
        """Natural (hash) join on shared columns."""
        shared = [v for v in self.vars if v in other.vars]
        if not shared:
            out_vars = self.vars + other.vars
            return Relation(
                out_vars, {a + b for a in self.rows for b in other.rows}
            )
        # index the smaller side
        left, right = (self, other) if len(self.rows) <= len(other.rows) else (other, self)
        left_key = [left.vars.index(v) for v in shared]
        right_key = [right.vars.index(v) for v in shared]
        right_extra = [i for i, v in enumerate(right.vars) if v not in left.vars]
        index: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
        for row in left.rows:
            index.setdefault(tuple(row[i] for i in left_key), []).append(row)
        out_vars = left.vars + tuple(right.vars[i] for i in right_extra)
        out_rows: set[tuple[int, ...]] = set()
        for row in right.rows:
            key = tuple(row[i] for i in right_key)
            for match in index.get(key, ()):
                out_rows.add(match + tuple(row[i] for i in right_extra))
        return Relation(out_vars, out_rows)

    def __len__(self) -> int:
        return len(self.rows)


class RelationalEvaluator:
    """Executes compiled plans against one fixed structure (and params).

    Node results are memoized per plan-node object, so create one evaluator
    per update step and reuse it for every update formula of that step —
    plan nodes shared between formulas (a guard used by several definitions)
    are then evaluated once.
    """

    def __init__(
        self,
        structure: Structure,
        params: Mapping[str, int] | None = None,
        max_rows: int = DEFAULT_MAX_ROWS,
        trace: list | None = None,
    ) -> None:
        self.structure = structure
        self.params = dict(params) if params else {}
        self.max_rows = max_rows
        # optional plan trace: (depth, event, columns, rows) tuples appended
        # as the executor works — see repro.logic.explain
        self.trace = trace
        self._depth = 0
        # id-keyed to avoid hashing plan trees; the node is pinned in the
        # value so its id cannot be recycled.
        self._results: dict[int, tuple[Plan, Relation]] = {}

    def _record(self, event: str, relation: Relation | None = None) -> None:
        if self.trace is not None:
            columns = relation.vars if relation is not None else ()
            rows = len(relation.rows) if relation is not None else 0
            self.trace.append((self._depth, event, columns, rows))

    # -- public API ---------------------------------------------------------

    def rows(self, formula: Formula, frame: tuple[str, ...]) -> set[tuple[int, ...]]:
        """Satisfying assignments of ``formula`` over the columns ``frame``."""
        missing = free_vars(formula) - set(frame)
        if missing:
            raise EvaluationError(f"frame {frame} does not bind {sorted(missing)}")
        return self.execute(cached_plan(formula, tuple(frame)))

    def truth(self, sentence: Formula) -> bool:
        """Truth value of a sentence (no free variables)."""
        if free_vars(sentence):
            raise EvaluationError("truth() requires a sentence")
        return bool(self._exec(cached_plan(sentence, ())).rows)

    def execute(self, plan: Plan) -> set[tuple[int, ...]]:
        """Run a compiled plan; returns a fresh set of result rows."""
        # copy at the boundary: the memoized relation may borrow a live
        # structure view (direct atom scan) or be shared between plans
        return set(self._exec(plan).rows)

    # -- helpers -------------------------------------------------------------

    def _check_size(self, relation: Relation) -> Relation:
        if len(relation.rows) > self.max_rows:
            raise EvaluationError(
                f"intermediate relation exceeded {self.max_rows} rows over "
                f"columns {relation.vars}; reshape the formula"
            )
        return relation

    def _value(self, term) -> int:
        return eval_term(term, self.structure, {}, self.params)

    # -- core dispatch --------------------------------------------------------

    def _exec(self, plan: Plan) -> Relation:
        cached = self._results.get(id(plan))
        if cached is not None:
            self._record(f"cached {plan.label or type(plan).__name__}", cached[1])
            return cached[1]
        self._depth += 1
        try:
            result = self._exec_node(plan)
        finally:
            self._depth -= 1
        self._check_size(result)
        self._results[id(plan)] = (plan, result)
        self._record(plan.label or type(plan).__name__, result)
        return result

    def _exec_node(self, plan: Plan) -> Relation:
        if isinstance(plan, UnitScan):
            return Relation.unit()
        if isinstance(plan, EmptyScan):
            return Relation.empty(plan.columns)
        if isinstance(plan, AtomScan):
            return self._exec_atom(plan)
        if isinstance(plan, CompareScan):
            return self._exec_compare(plan)
        if isinstance(plan, ConstBind):
            value = self._value(plan.term)
            if 0 <= value < self.structure.n:
                return Relation(plan.columns, {(value,)})
            return Relation.empty(plan.columns)
        if isinstance(plan, HashJoin):
            return self._exec_join(plan)
        if isinstance(plan, Filter):
            return self._exec_filter(plan)
        if isinstance(plan, Project):
            source = self._exec(plan.source)
            return Relation(
                plan.columns,
                {tuple(row[p] for p in plan.positions) for row in source.rows},
            )
        if isinstance(plan, Extend):
            relation = self._exec(plan.source)
            for var in plan.fresh:
                relation = self._check_size(
                    relation.extend(var, self.structure.universe)
                )
            return relation
        if isinstance(plan, Complement):
            return self._exec_complement(plan)
        if isinstance(plan, Union):
            out: set[tuple[int, ...]] = set()
            for part in plan.parts:
                out |= self._exec(part).rows
            return Relation(plan.columns, out)
        raise TypeError(f"unknown plan node {plan!r}")  # pragma: no cover

    # -- leaves ---------------------------------------------------------------

    def _exec_atom(self, plan: AtomScan) -> Relation:
        view = self.structure.relation_view(plan.rel)
        if plan.direct:
            # borrowed zero-copy view: never mutated by the executor, and
            # copied at the execute()/rows() boundary
            return Relation(plan.columns, view)
        fixed = [(pos, self._value(term)) for pos, term in plan.fixed]
        if not plan.var_cols:
            # fully ground atom: O(1) membership instead of a full scan
            probe = tuple(value for _, value in sorted(fixed))
            return Relation.unit() if probe in view else Relation.empty()
        out_rows: set[tuple[int, ...]] = set()
        for row in view:
            if any(row[pos] != value for pos, value in fixed):
                continue
            ok = True
            for _, positions in plan.var_cols:
                first = row[positions[0]]
                if any(row[p] != first for p in positions[1:]):
                    ok = False
                    break
            if ok:
                out_rows.add(tuple(row[pos[0]] for _, pos in plan.var_cols))
        return Relation(plan.columns, out_rows)

    def _exec_compare(self, plan: CompareScan) -> Relation:
        test = _COMPARE_TESTS[plan.op]
        universe = self.structure.universe
        left_var = isinstance(plan.left, Var)
        right_var = isinstance(plan.right, Var)
        if not left_var and not right_var:
            lval, rval = self._value(plan.left), self._value(plan.right)
            return Relation.unit() if test(lval, rval) else Relation.empty()
        if not left_var:
            lval = self._value(plan.left)
            return Relation(plan.columns, {(b,) for b in universe if test(lval, b)})
        if not right_var:
            rval = self._value(plan.right)
            return Relation(plan.columns, {(a,) for a in universe if test(a, rval)})
        if len(plan.columns) == 1:  # same variable on both sides
            return Relation(plan.columns, {(a,) for a in universe if test(a, a)})
        return Relation(
            plan.columns,
            {(a, b) for a in universe for b in universe if test(a, b)},
        )

    # -- compound nodes ---------------------------------------------------------

    def _exec_join(self, plan: HashJoin) -> Relation:
        left = self._exec(plan.left)
        if not left.rows:
            return Relation.empty(plan.columns)
        joined = left.join(self._exec(plan.right))
        if joined.vars != plan.columns:  # join ordered by the smaller side
            joined = joined.project(plan.columns)
        return joined

    def _exec_filter(self, plan: Filter) -> Relation:
        source = self._exec(plan.source)
        if not source.rows:
            return source
        try:
            condition = self._exec(plan.condition)
        except EvaluationError:
            if plan.fallback is None:
                raise
            # the condition's shape is too hostile to materialize under the
            # size guard; test per row via the reference oracle instead
            out_rows = {
                row
                for row in source.rows
                if holds(
                    plan.fallback,
                    self.structure,
                    dict(zip(source.vars, row)),
                    self.params,
                )
            }
            return Relation(plan.columns, out_rows)
        if not condition.vars:
            # boolean guard, evaluated once: keep all rows or none
            satisfied = bool(condition.rows) != plan.negated
            return source if satisfied else Relation.empty(plan.columns)
        allowed = condition.rows
        positions = plan.positions
        if plan.negated:
            out_rows = {
                row
                for row in source.rows
                if tuple(row[p] for p in positions) not in allowed
            }
        else:
            out_rows = {
                row
                for row in source.rows
                if tuple(row[p] for p in positions) in allowed
            }
        return Relation(plan.columns, out_rows)

    def _exec_complement(self, plan: Complement) -> Relation:
        width = len(plan.columns)
        n = self.structure.n
        if n**width > self.max_rows:
            raise EvaluationError(
                f"complement over {width} columns of a size-{n} universe "
                "is too large; let the conjunction planner bind it first"
            )
        inner = self._exec(plan.source)
        rows = {
            row
            for row in itertools.product(range(n), repeat=width)
            if row not in inner.rows
        }
        return Relation(plan.columns, rows)


def query(
    formula: Formula,
    structure: Structure,
    frame: tuple[str, ...],
    params: Mapping[str, int] | None = None,
) -> set[tuple[int, ...]]:
    """One-shot convenience wrapper around :class:`RelationalEvaluator`."""
    return RelationalEvaluator(structure, params).rows(formula, frame)
