"""Database-style evaluation of first-order formulas.

This is the default engine used by the Dyn-FO machinery.  It compiles a
formula bottom-up into finite relations (sets of tuples over named columns),
using the classic relational-algebra toolkit:

* relation atoms and numeric predicates materialize directly;
* conjunction runs a greedy join plan — cheap conjuncts are materialized and
  hash-joined, and any conjunct whose variables are already bound is applied
  as a per-row *filter* (so negations and universal guards never materialize
  huge complements);
* conjunction distributes over disjunction, and quantifiers push into
  disjunctions, so that every joined block stays narrow;
* existential quantification is projection; universal quantification is
  rewritten as a negated existential.

The engine is exact (tested against :func:`repro.logic.evaluation.holds` on
random formulas) and is typically orders of magnitude faster than naive
enumeration on the update formulas of the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping

from .evaluation import EvaluationError, eval_term, holds
from .structure import Structure
from .syntax import (
    And,
    Atom,
    Bit,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    Le,
    Lt,
    Not,
    Or,
    Term,
    TrueF,
    Var,
)
from .transform import free_vars, quantifier_rank

__all__ = ["Relation", "RelationalEvaluator", "query"]

# Refuse to materialize relations larger than this many rows; it means a
# formula was written in a shape the planner cannot keep narrow.
DEFAULT_MAX_ROWS = 20_000_000


@dataclass
class Relation:
    """A finite relation with named columns (an intermediate result)."""

    vars: tuple[str, ...]
    rows: set[tuple[int, ...]]

    @staticmethod
    def unit() -> "Relation":
        return Relation((), {()})

    @staticmethod
    def empty(vars: tuple[str, ...] = ()) -> "Relation":
        return Relation(vars, set())

    def project(self, onto: tuple[str, ...]) -> "Relation":
        index = [self.vars.index(v) for v in onto]
        return Relation(tuple(onto), {tuple(row[i] for i in index) for row in self.rows})

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        return Relation(tuple(mapping.get(v, v) for v in self.vars), set(self.rows))

    def extend(self, var: str, universe: range) -> "Relation":
        """Cross product with the universe on a new column."""
        return Relation(
            self.vars + (var,),
            {row + (value,) for row in self.rows for value in universe},
        )

    def join(self, other: "Relation") -> "Relation":
        """Natural (hash) join on shared columns."""
        shared = [v for v in self.vars if v in other.vars]
        if not shared:
            out_vars = self.vars + other.vars
            return Relation(
                out_vars, {a + b for a in self.rows for b in other.rows}
            )
        # index the smaller side
        left, right = (self, other) if len(self.rows) <= len(other.rows) else (other, self)
        left_key = [left.vars.index(v) for v in shared]
        right_key = [right.vars.index(v) for v in shared]
        right_extra = [i for i, v in enumerate(right.vars) if v not in left.vars]
        index: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
        for row in left.rows:
            index.setdefault(tuple(row[i] for i in left_key), []).append(row)
        out_vars = left.vars + tuple(right.vars[i] for i in right_extra)
        out_rows: set[tuple[int, ...]] = set()
        for row in right.rows:
            key = tuple(row[i] for i in right_key)
            for match in index.get(key, ()):
                out_rows.add(match + tuple(row[i] for i in right_extra))
        return Relation(out_vars, out_rows)

    def __len__(self) -> int:
        return len(self.rows)


class RelationalEvaluator:
    """Evaluates formulas against one fixed structure (and update params).

    Results are memoized per formula object, so create one evaluator per
    update step and reuse it for every update formula of that step.
    """

    def __init__(
        self,
        structure: Structure,
        params: Mapping[str, int] | None = None,
        max_rows: int = DEFAULT_MAX_ROWS,
        trace: list | None = None,
    ) -> None:
        self.structure = structure
        self.params = dict(params) if params else {}
        self.max_rows = max_rows
        # optional plan trace: (depth, event, columns, rows) tuples appended
        # as the planner works — see repro.logic.explain
        self.trace = trace
        self._depth = 0
        # id-keyed to avoid re-hashing deep formula trees; the formula object
        # is pinned in the value so its id cannot be recycled.
        self._cache: dict[int, tuple[Formula, Relation]] = {}

    def _record(self, event: str, relation: Relation | None = None) -> None:
        if self.trace is not None:
            columns = relation.vars if relation is not None else ()
            rows = len(relation.rows) if relation is not None else 0
            self.trace.append((self._depth, event, columns, rows))

    # -- public API ---------------------------------------------------------

    def rows(self, formula: Formula, frame: tuple[str, ...]) -> set[tuple[int, ...]]:
        """Satisfying assignments of ``formula`` over the columns ``frame``."""
        missing = free_vars(formula) - set(frame)
        if missing:
            raise EvaluationError(f"frame {frame} does not bind {sorted(missing)}")
        relation = self._eval(formula)
        for var in frame:
            if var not in relation.vars:
                relation = relation.extend(var, self.structure.universe)
                self._check_size(relation)
        return relation.project(tuple(frame)).rows

    def truth(self, sentence: Formula) -> bool:
        """Truth value of a sentence (no free variables)."""
        if free_vars(sentence):
            raise EvaluationError("truth() requires a sentence")
        return bool(self._eval(sentence).rows)

    # -- helpers -------------------------------------------------------------

    def _check_size(self, relation: Relation) -> Relation:
        if len(relation.rows) > self.max_rows:
            raise EvaluationError(
                f"intermediate relation exceeded {self.max_rows} rows over "
                f"columns {relation.vars}; reshape the formula"
            )
        return relation

    def _resolve(self, term: Term) -> int | None:
        """Value of a constant-like term, or None for a variable."""
        if isinstance(term, Var):
            return None
        return eval_term(term, self.structure, {}, self.params)

    # -- core dispatch --------------------------------------------------------

    def _eval(self, formula: Formula) -> Relation:
        cached = self._cache.get(id(formula))
        if cached is not None:
            self._record(f"cached {type(formula).__name__}", cached[1])
            return cached[1]
        self._depth += 1
        try:
            result = self._eval_uncached(formula)
        finally:
            self._depth -= 1
        self._check_size(result)
        self._cache[id(formula)] = (formula, result)
        self._record(type(formula).__name__, result)
        return result

    def _eval_uncached(self, formula: Formula) -> Relation:
        if isinstance(formula, TrueF):
            return Relation.unit()
        if isinstance(formula, FalseF):
            return Relation.empty()
        if isinstance(formula, Atom):
            return self._eval_atom(formula)
        if isinstance(formula, (Eq, Le, Lt)):
            return self._eval_comparison(formula)
        if isinstance(formula, Bit):
            return self._eval_bit(formula)
        if isinstance(formula, Implies):
            return self._eval(Or.of(Not(formula.left), formula.right))
        if isinstance(formula, Iff):
            return self._eval(
                Or.of(
                    And.of(formula.left, formula.right),
                    And.of(Not(formula.left), Not(formula.right)),
                )
            )
        if isinstance(formula, Forall):
            return self._eval(Not(Exists(formula.vars, Not(formula.body))))
        if isinstance(formula, Exists):
            body = formula.body
            if isinstance(body, Or):
                # push the quantifier into the disjunction to keep arms narrow
                return self._eval(
                    Or.of(*(Exists(formula.vars, part) for part in body.parts))
                )
            inner = self._eval(body)
            keep = tuple(v for v in inner.vars if v not in formula.vars)
            return inner.project(keep)
        if isinstance(formula, Or):
            return self._eval_or(formula)
        if isinstance(formula, And):
            return self._eval_and(formula)
        if isinstance(formula, Not):
            return self._eval_not(formula)
        raise TypeError(f"unknown formula node {formula!r}")  # pragma: no cover

    # -- leaves ---------------------------------------------------------------

    def _eval_atom(self, atom: Atom) -> Relation:
        rows = self.structure.relation_view(atom.rel)
        fixed: list[tuple[int, int]] = []  # (position, required value)
        var_positions: dict[str, list[int]] = {}
        out_vars: list[str] = []
        for position, arg in enumerate(atom.args):
            value = self._resolve(arg)
            if value is not None:
                fixed.append((position, value))
            else:
                assert isinstance(arg, Var)
                if arg.name not in var_positions:
                    var_positions[arg.name] = []
                    out_vars.append(arg.name)
                var_positions[arg.name].append(position)
        out_rows: set[tuple[int, ...]] = set()
        for row in rows:
            if any(row[pos] != value for pos, value in fixed):
                continue
            ok = True
            for positions in var_positions.values():
                first = row[positions[0]]
                if any(row[p] != first for p in positions[1:]):
                    ok = False
                    break
            if ok:
                out_rows.add(tuple(row[var_positions[v][0]] for v in out_vars))
        return Relation(tuple(out_vars), out_rows)

    def _eval_comparison(self, formula: Eq | Le | Lt) -> Relation:
        test = {
            Eq: lambda a, b: a == b,
            Le: lambda a, b: a <= b,
            Lt: lambda a, b: a < b,
        }[type(formula)]
        return self._binary_numeric(formula.left, formula.right, test)

    def _eval_bit(self, formula: Bit) -> Relation:
        return self._binary_numeric(
            formula.number, formula.index, lambda a, b: bool((a >> b) & 1)
        )

    def _binary_numeric(self, left: Term, right: Term, test) -> Relation:
        lval, rval = self._resolve(left), self._resolve(right)
        universe = self.structure.universe
        if lval is not None and rval is not None:
            return Relation.unit() if test(lval, rval) else Relation.empty()
        if lval is not None:
            assert isinstance(right, Var)
            return Relation(
                (right.name,), {(b,) for b in universe if test(lval, b)}
            )
        if rval is not None:
            assert isinstance(left, Var)
            return Relation((left.name,), {(a,) for a in universe if test(a, rval)})
        assert isinstance(left, Var) and isinstance(right, Var)
        if left.name == right.name:
            return Relation(
                (left.name,), {(a,) for a in universe if test(a, a)}
            )
        return Relation(
            (left.name, right.name),
            {(a, b) for a in universe for b in universe if test(a, b)},
        )

    # -- connectives ------------------------------------------------------------

    def _eval_or(self, formula: Or) -> Relation:
        frame = tuple(sorted(free_vars(formula)))
        out_rows: set[tuple[int, ...]] = set()
        for part in formula.parts:
            relation = self._eval(part)
            for var in frame:
                if var not in relation.vars:
                    relation = self._check_size(
                        relation.extend(var, self.structure.universe)
                    )
            out_rows |= relation.project(frame).rows
        return Relation(frame, out_rows)

    def _eval_not(self, formula: Not) -> Relation:
        frame = tuple(sorted(free_vars(formula)))
        n = self.structure.n
        if n ** len(frame) > self.max_rows:
            raise EvaluationError(
                f"complement over {len(frame)} columns of a size-{n} universe "
                "is too large; let the conjunction planner bind it first"
            )
        inner = self._eval(formula.body).project(frame)
        rows = {
            row
            for row in itertools.product(range(n), repeat=len(frame))
            if row not in inner.rows
        }
        return Relation(frame, rows)

    # -- conjunction planning -----------------------------------------------------

    def _eval_and(self, formula: And) -> Relation:
        conjuncts = list(formula.parts)
        # Distribute over wide disjunctive conjuncts only: narrow ones (<= 2
        # columns) materialize cheaply and join directly, while distributing
        # every disjunction cascades into exponentially many arms.
        for i, part in enumerate(conjuncts):
            disjunction = self._as_or(part)
            if disjunction is not None and len(free_vars(part)) >= 3:
                rest = conjuncts[:i] + conjuncts[i + 1 :]
                self._record(
                    f"distribute over {len(disjunction.parts)}-arm Or"
                )
                return self._eval(
                    Or.of(*(And.of(arm, *rest) for arm in disjunction.parts))
                )
        cur = Relation.unit()
        remaining = conjuncts
        while remaining:
            bound = set(cur.vars)
            filters = [c for c in remaining if free_vars(c) <= bound]
            if filters:
                cur = self._filter(cur, filters)
                self._record(f"filter x{len(filters)}", cur)
                remaining = [c for c in remaining if c not in filters]
                continue
            generator = self._pick_generator(remaining, bound)
            if generator is not None:
                cur = self._check_size(cur.join(self._eval(generator)))
                self._record("join", cur)
                remaining = [c for c in remaining if c is not generator]
                continue
            # Only unmaterializable conjuncts (negations) with unbound
            # variables remain: widen by the most-demanded variable.
            var = self._most_demanded_var(remaining, bound)
            cur = self._check_size(cur.extend(var, self.structure.universe))
            self._record(f"widen by {var}", cur)
        return cur

    @staticmethod
    def _as_or(part: Formula) -> Or | None:
        if isinstance(part, Or):
            return part
        if isinstance(part, Implies):
            rewritten = Or.of(Not(part.left), part.right)
            return rewritten if isinstance(rewritten, Or) else None
        if isinstance(part, Iff):
            return Or(
                (
                    And.of(part.left, part.right),
                    And.of(Not(part.left), Not(part.right)),
                )
            )
        return None

    def _filter(self, cur: Relation, conjuncts: list[Formula]) -> Relation:
        """Keep rows of ``cur`` satisfying every (fully bound) conjunct.

        Narrow conjuncts (<= 2 columns) are materialized once (memoized) and
        applied as semijoins; wide ones are tested per row via the naive
        evaluator, which never materializes anything.
        """
        structure, params = self.structure, self.params
        # Sentences (no free variables) are guards: evaluate each exactly
        # once — a false guard empties the result, a true one disappears.
        # Quantifier-free narrow conjuncts always materialize cheaply.  A
        # *quantified* narrow conjunct is a judgement call: per-row naive
        # evaluation costs |rows| * n^rank, materializing costs one relational
        # evaluation — so materialize once the row count is large enough to
        # amortize it, and fall back to per-row testing if the evaluator
        # refuses (size guard) because the conjunct's shape is pathological.
        narrow: list[Formula] = []
        wide: list[Formula] = []
        for conjunct in conjuncts:
            arity = len(free_vars(conjunct))
            if arity == 0:
                if not self._guard_truth(conjunct):
                    return Relation(cur.vars, set())
            elif arity <= 2 and (
                quantifier_rank(conjunct) == 0 or len(cur.rows) > 64
            ):
                narrow.append(conjunct)
            else:
                wide.append(conjunct)
        semijoins: list[tuple[tuple[int, ...], set[tuple[int, ...]]]] = []
        for conjunct in narrow:
            frame = tuple(sorted(free_vars(conjunct)))
            positions = tuple(cur.vars.index(v) for v in frame)
            try:
                semijoins.append((positions, self.rows(conjunct, frame)))
            except EvaluationError:
                wide.append(conjunct)  # shape too hostile; test per row
        out_rows: set[tuple[int, ...]] = set()
        for row in cur.rows:
            if any(
                tuple(row[p] for p in positions) not in allowed
                for positions, allowed in semijoins
            ):
                continue
            if wide:
                assignment = dict(zip(cur.vars, row))
                if not all(holds(c, structure, assignment, params) for c in wide):
                    continue
            out_rows.add(row)
        return Relation(cur.vars, out_rows)

    def _guard_truth(self, sentence: Formula) -> bool:
        """Truth of a zero-free-variable conjunct, memoized per formula.

        Negated guards are routed through their body so that e.g. ``~swap``
        and ``swap`` share one evaluation."""
        if isinstance(sentence, Not):
            return not self._guard_truth(sentence.body)
        return bool(self._eval(sentence).rows)

    def _estimate(self, formula: Formula) -> float:
        n = self.structure.n
        if isinstance(formula, Atom):
            return self.structure.cardinality(formula.rel)
        if isinstance(formula, Eq):
            return 1.0 if self._resolve(formula.left) is not None or self._resolve(
                formula.right
            ) is not None else float(n)
        if isinstance(formula, (Le, Lt, Bit)):
            return float(n * n)
        if isinstance(formula, TrueF):
            return 1.0
        if isinstance(formula, FalseF):
            return 0.0
        # quantified / compound conjunct: pessimistic in its width
        return float(n) ** len(free_vars(formula)) + float(n)

    def _pick_generator(
        self, remaining: list[Formula], bound: set[str]
    ) -> Formula | None:
        # negations and universals only shrink; never generate from them
        candidates = [
            c for c in remaining if not isinstance(c, (Not, Forall))
        ]
        if not candidates:
            return None
        if bound:
            sharing = [c for c in candidates if free_vars(c) & bound]
            if sharing:
                candidates = sharing
        return min(candidates, key=self._estimate)

    @staticmethod
    def _most_demanded_var(remaining: list[Formula], bound: set[str]) -> str:
        counts: dict[str, int] = {}
        for conjunct in remaining:
            for var in free_vars(conjunct) - bound:
                counts[var] = counts.get(var, 0) + 1
        return max(sorted(counts), key=lambda v: counts[v])


def query(
    formula: Formula,
    structure: Structure,
    frame: tuple[str, ...],
    params: Mapping[str, int] | None = None,
) -> set[tuple[int, ...]]:
    """One-shot convenience wrapper around :class:`RelationalEvaluator`."""
    return RelationalEvaluator(structure, params).rows(formula, frame)
