"""Backend-neutral physical plans for first-order formulas.

The paper's central observation is that a Dyn-FO update is a *fixed*
first-order formula: the formula never changes between requests, only the
data does.  The evaluators therefore should not re-derive an evaluation
strategy per request — they should compile the formula into a physical plan
**once** and replay that plan against fresh data forever after.

This module is that compilation layer.  :func:`compile_formula` normalizes a
formula (boolean simplification, ``->``/``<->`` expansion, ``forall`` as a
double negation, quantifier pushing, distribution over wide disjunctions —
the same pushdowns :mod:`repro.logic.transform` provides) and fixes a greedy
join order, producing a small tree of plan nodes:

========================  ====================================================
node                      meaning
========================  ====================================================
:class:`UnitScan`         the nullary TRUE relation ``{()}``
:class:`EmptyScan`        the empty relation (FALSE)
:class:`AtomScan`         rows of a stored relation, constants pre-bound
:class:`CompareScan`      a numeric predicate (``=``, ``<=``, ``<``, ``BIT``)
:class:`ConstBind`        the single row binding a variable to a constant
:class:`HashJoin`         natural join on shared columns
:class:`Filter`           semijoin / antijoin against a condition subplan
:class:`Project`          column projection (existential quantification)
:class:`Extend`           cross product with the universe (widening)
:class:`Complement`       guarded complement over the universe (negation)
:class:`Union`            disjunction of pre-aligned arms
========================  ====================================================

Plans are *backend neutral*: they mention column names, terms, and child
plans, never sets or arrays.  :mod:`repro.logic.relational` executes them
over sets of tuples; :mod:`repro.logic.dense` executes the same trees as
boolean tensors.  Update parameters (the request's ``a``, ``b``) stay
symbolic in the plan — :class:`AtomScan`/:class:`CompareScan`/:class:`ConstBind`
carry :class:`~repro.logic.syntax.Term` objects that the executor resolves
per request — which is exactly what makes one plan reusable across every
request of a rule.

Join-order heuristics deliberately mirror the pre-compilation planner
(generate from cheap conjuncts, filter fully-bound ones, widen only when
nothing can generate), but use *static* cardinality priors instead of live
cardinalities: the plan must be data independent to be cacheable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .evaluation import EvaluationError
from .syntax import (
    And,
    Atom,
    Bit,
    Const,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    Le,
    Lit,
    Lt,
    Not,
    Or,
    Term,
    TrueF,
    Var,
)
from .transform import free_vars, simplify

__all__ = [
    "Plan",
    "UnitScan",
    "EmptyScan",
    "AtomScan",
    "CompareScan",
    "ConstBind",
    "HashJoin",
    "Filter",
    "Project",
    "Extend",
    "Complement",
    "Union",
    "compile_formula",
    "specialize_plan",
    "cached_plan",
    "plan_nodes",
    "plan_children",
    "plan_depth",
    "PlanError",
]


class PlanError(EvaluationError):
    """Raised when a formula cannot be compiled into a plan."""


# ---------------------------------------------------------------------------
# The IR
# ---------------------------------------------------------------------------
#
# Nodes are frozen for immutability but keep identity equality/hashing
# (eq=False): executors memoize results per node object, and the compiler
# deliberately shares one node for repeated subformulas so a guard like
# ``F(a, b)`` used by three definitions is evaluated once per update.


@dataclass(frozen=True, eq=False)
class Plan:
    """A physical plan producing a relation over named ``columns``."""

    columns: tuple[str, ...]
    #: provenance tag (the formula construct this node came from), for EXPLAIN
    label: str = field(default="", kw_only=True)


@dataclass(frozen=True, eq=False)
class UnitScan(Plan):
    """The relation ``{()}`` — a true sentence."""


@dataclass(frozen=True, eq=False)
class EmptyScan(Plan):
    """The empty relation over ``columns`` — a false (sub)formula."""


@dataclass(frozen=True, eq=False)
class AtomScan(Plan):
    """Rows of stored relation ``rel`` matching the atom's argument pattern.

    ``fixed`` pins argument positions to (symbolic) constant terms, resolved
    per execution; ``var_cols`` lists, per output column, every argument
    position the variable occupies (repeated variables must agree).  When
    ``direct`` is true the atom is exactly the stored relation (all-distinct
    variables in stored order) and a set-based executor may borrow the stored
    rows without copying.
    """

    rel: str = ""
    args: tuple[Term, ...] = ()
    fixed: tuple[tuple[int, Term], ...] = ()
    var_cols: tuple[tuple[str, tuple[int, ...]], ...] = ()
    direct: bool = False


@dataclass(frozen=True, eq=False)
class CompareScan(Plan):
    """A numeric predicate over at most two variables.

    ``op`` is one of ``"eq"``, ``"le"``, ``"lt"``, ``"bit"``; ``left`` and
    ``right`` are the predicate's terms (``number``/``index`` for BIT).
    Columns are the distinct variable names, left first.
    """

    op: str = "eq"
    left: Term = None  # type: ignore[assignment]
    right: Term = None  # type: ignore[assignment]


@dataclass(frozen=True, eq=False)
class ConstBind(Plan):
    """The single-row relation binding ``columns[0]`` to ``term``'s value —
    an equality with a constant side, resolved per execution (so update
    parameters stay symbolic in the plan)."""

    term: Term = None  # type: ignore[assignment]


@dataclass(frozen=True, eq=False)
class HashJoin(Plan):
    """Natural join of ``left`` and ``right`` on their shared columns."""

    left: Plan = None  # type: ignore[assignment]
    right: Plan = None  # type: ignore[assignment]


@dataclass(frozen=True, eq=False)
class Filter(Plan):
    """Keep rows of ``source`` whose projection onto ``condition.columns``
    is (``negated=False``) / is not (``negated=True``) satisfied by the
    condition subplan — a semijoin or antijoin.  ``positions`` pre-computes
    where the condition's columns sit inside ``source.columns``; a
    zero-column condition acts as a once-evaluated boolean guard."""

    source: Plan = None  # type: ignore[assignment]
    condition: Plan = None  # type: ignore[assignment]
    negated: bool = False
    positions: tuple[int, ...] = ()
    #: the original conjunct, for executors that keep a per-row fallback when
    #: materializing the condition trips their size guard
    fallback: Formula | None = None


@dataclass(frozen=True, eq=False)
class Project(Plan):
    """Project (and reorder) ``source`` onto ``columns`` — existential
    quantification when columns are dropped."""

    source: Plan = None  # type: ignore[assignment]
    positions: tuple[int, ...] = ()


@dataclass(frozen=True, eq=False)
class Extend(Plan):
    """Cross product of ``source`` with the universe on ``fresh`` columns."""

    source: Plan = None  # type: ignore[assignment]
    fresh: tuple[str, ...] = ()


@dataclass(frozen=True, eq=False)
class Complement(Plan):
    """Universe complement of ``source`` over its columns.  Executors must
    guard the ``n^k`` materialization against their row/cell budget — the
    complement-guard of the materialization discipline."""

    source: Plan = None  # type: ignore[assignment]


@dataclass(frozen=True, eq=False)
class Union(Plan):
    """Disjunction: all ``parts`` are pre-aligned to the same columns."""

    parts: tuple[Plan, ...] = ()


# ---------------------------------------------------------------------------
# Plan metrics / traversal
# ---------------------------------------------------------------------------


def _children(plan: Plan) -> tuple[Plan, ...]:
    if isinstance(plan, HashJoin):
        return (plan.left, plan.right)
    if isinstance(plan, Filter):
        return (plan.source, plan.condition)
    if isinstance(plan, (Project, Extend, Complement)):
        return (plan.source,)
    if isinstance(plan, Union):
        return plan.parts
    return ()


def plan_children(plan: Plan) -> tuple[Plan, ...]:
    """Direct child plans of a node (empty for leaves)."""
    return _children(plan)


def plan_nodes(plan: Plan) -> list[Plan]:
    """All nodes of the plan DAG, each shared node listed once."""
    seen: dict[int, Plan] = {}
    order: list[Plan] = []

    def rec(node: Plan) -> None:
        if id(node) in seen:
            return
        seen[id(node)] = node
        order.append(node)
        for child in _children(node):
            rec(child)

    rec(plan)
    return order


def plan_depth(plan: Plan) -> int:
    """Height of the plan tree (a proxy for parallel execution time)."""
    children = _children(plan)
    return 1 + max((plan_depth(c) for c in children), default=0)


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

# Nominal universe size for the static cost model.  Only the *relative*
# order of the estimates matters; 32 keeps atoms, equalities, and numeric
# predicates in the same preference order the live planner used.
_NOMINAL_N = 32.0


def compile_formula(
    formula: Formula, frame: tuple[str, ...], *, distribute: bool = True
) -> Plan:
    """Compile ``formula`` into a physical plan over exactly ``frame``.

    ``frame`` must cover the formula's free variables.  The plan is pure
    description — data independent and parameter symbolic — so it can be
    cached per (formula, frame) and replayed against any structure of any
    universe size with any update parameters.

    ``distribute`` controls And-over-Or distribution, the one genuinely
    backend-sensitive choice: set-based executors want narrow per-arm join
    chains (sparse intermediates), while the dense tensor executor evaluates
    a disjunction as one vectorized union and would pay for every duplicated
    arm — it compiles with ``distribute=False``.  This is why plan caches
    key on the backend.
    """
    missing = free_vars(formula) - set(frame)
    if missing:
        raise PlanError(f"frame {frame} does not bind {sorted(missing)}")
    compiler = _Compiler(distribute=distribute)
    plan = compiler.plan(simplify(formula))
    return _align(plan, tuple(frame))


# Ad-hoc compile cache for direct evaluator use (rows()/truth() called with
# a formula rather than a plan).  Keyed by formula identity + frame with the
# formula pinned so its id stays valid; engine-level compilation goes through
# DynFOProgram.compile, which keeps its own per-(rule, backend, n) cache.
_ADHOC_LIMIT = 4096
_ADHOC_CACHE: dict[
    tuple[int, tuple[str, ...], bool], tuple[Formula, Plan]
] = {}


def cached_plan(
    formula: Formula, frame: tuple[str, ...], *, distribute: bool = True
) -> Plan:
    """:func:`compile_formula`, memoized on (formula identity, frame)."""
    key = (id(formula), frame, distribute)
    hit = _ADHOC_CACHE.get(key)
    if hit is not None and hit[0] is formula:
        return hit[1]
    plan = compile_formula(formula, frame, distribute=distribute)
    if len(_ADHOC_CACHE) >= _ADHOC_LIMIT:  # unbounded growth guard
        _ADHOC_CACHE.clear()
    _ADHOC_CACHE[key] = (formula, plan)
    return plan


def _align(plan: Plan, columns: tuple[str, ...]) -> Plan:
    """Extend and reorder ``plan`` so its columns are exactly ``columns``."""
    fresh = tuple(c for c in columns if c not in plan.columns)
    if fresh:
        plan = Extend(plan.columns + fresh, source=plan, fresh=fresh, label="widen")
    if plan.columns != columns:
        positions = tuple(plan.columns.index(c) for c in columns)
        plan = Project(columns, source=plan, positions=positions, label="align")
    return plan


def _is_const(term: Term) -> bool:
    return not isinstance(term, Var)


class _Compiler:
    """Single-use compiler; memoizes subplans by formula identity so a
    subformula object shared between definitions becomes one shared plan
    node (evaluated once per update by the executors)."""

    def __init__(self, distribute: bool = True) -> None:
        self.distribute = distribute
        self._memo: dict[int, tuple[Formula, Plan]] = {}

    # -- dispatch -----------------------------------------------------------

    def plan(self, formula: Formula) -> Plan:
        cached = self._memo.get(id(formula))
        if cached is not None:
            return cached[1]
        result = self._plan_uncached(formula)
        self._memo[id(formula)] = (formula, result)
        return result

    def _plan_uncached(self, formula: Formula) -> Plan:
        if isinstance(formula, TrueF):
            return UnitScan((), label="TrueF")
        if isinstance(formula, FalseF):
            return EmptyScan((), label="FalseF")
        if isinstance(formula, Atom):
            return self._plan_atom(formula)
        if isinstance(formula, (Eq, Le, Lt)):
            op = {Eq: "eq", Le: "le", Lt: "lt"}[type(formula)]
            return self._plan_compare(op, formula.left, formula.right)
        if isinstance(formula, Bit):
            return self._plan_compare("bit", formula.number, formula.index)
        if isinstance(formula, Implies):
            return self.plan(Or.of(Not(formula.left), formula.right))
        if isinstance(formula, Iff):
            return self.plan(
                Or.of(
                    And.of(formula.left, formula.right),
                    And.of(Not(formula.left), Not(formula.right)),
                )
            )
        if isinstance(formula, Forall):
            return self.plan(Not(Exists(formula.vars, Not(formula.body))))
        if isinstance(formula, Exists):
            return self._plan_exists(formula)
        if isinstance(formula, Or):
            return self._plan_or(formula)
        if isinstance(formula, And):
            return self._plan_and(formula)
        if isinstance(formula, Not):
            return self._plan_not(formula)
        raise TypeError(f"unknown formula node {formula!r}")  # pragma: no cover

    # -- leaves -------------------------------------------------------------

    def _plan_atom(self, atom: Atom) -> Plan:
        fixed: list[tuple[int, Term]] = []
        var_positions: dict[str, list[int]] = {}
        columns: list[str] = []
        for position, arg in enumerate(atom.args):
            if _is_const(arg):
                fixed.append((position, arg))
            else:
                assert isinstance(arg, Var)
                if arg.name not in var_positions:
                    var_positions[arg.name] = []
                    columns.append(arg.name)
                var_positions[arg.name].append(position)
        direct = not fixed and all(
            len(positions) == 1 for positions in var_positions.values()
        )
        return AtomScan(
            tuple(columns),
            rel=atom.rel,
            args=atom.args,
            fixed=tuple(fixed),
            var_cols=tuple((v, tuple(var_positions[v])) for v in columns),
            direct=direct,
            label=f"Atom({atom.rel})",
        )

    def _plan_compare(self, op: str, left: Term, right: Term) -> Plan:
        label = op
        if _is_const(left) and _is_const(right):
            return CompareScan((), op=op, left=left, right=right, label=label)
        if op == "eq" and _is_const(left) != _is_const(right):
            # one constant side: a single-row bind, not a universe scan
            var, term = (left, right) if isinstance(left, Var) else (right, left)
            assert isinstance(var, Var)
            return ConstBind((var.name,), term=term, label="ConstBind")
        columns: list[str] = []
        for term in (left, right):
            if isinstance(term, Var) and term.name not in columns:
                columns.append(term.name)
        return CompareScan(tuple(columns), op=op, left=left, right=right, label=label)

    # -- connectives --------------------------------------------------------

    def _plan_exists(self, formula: Exists) -> Plan:
        body = formula.body
        if isinstance(body, Or):
            # push the quantifier into the disjunction to keep arms narrow
            return self.plan(
                Or.of(*(Exists(formula.vars, part) for part in body.parts))
            )
        inner = self.plan(body)
        keep = tuple(c for c in inner.columns if c not in formula.vars)
        if keep == inner.columns:
            return inner
        positions = tuple(inner.columns.index(c) for c in keep)
        return Project(keep, source=inner, positions=positions, label="Exists")

    def _plan_or(self, formula: Or) -> Plan:
        frame = tuple(sorted(free_vars(formula)))
        parts = tuple(_align(self.plan(p), frame) for p in formula.parts)
        return Union(frame, parts=parts, label="Or")

    def _plan_not(self, formula: Not) -> Plan:
        body = formula.body
        if isinstance(body, Not):  # double negation
            return self.plan(body.body)
        frame = tuple(sorted(free_vars(formula)))
        inner = _align(self.plan(body), frame)
        return Complement(frame, source=inner, label="Not")

    # -- conjunction planning ----------------------------------------------

    def _plan_and(self, formula: And) -> Plan:
        conjuncts = list(formula.parts)
        # Distribute over wide disjunctive conjuncts only (>= 3 columns):
        # narrow ones materialize cheaply and join directly, while
        # distributing every disjunction cascades into exponential arms.
        if self.distribute:
            for i, part in enumerate(conjuncts):
                disjunction = _as_or(part)
                if disjunction is not None and len(free_vars(part)) >= 3:
                    rest = conjuncts[:i] + conjuncts[i + 1 :]
                    return self.plan(
                        Or.of(*(And.of(arm, *rest) for arm in disjunction.parts))
                    )
        cur: Plan = UnitScan((), label="And")
        remaining = conjuncts
        while remaining:
            bound = set(cur.columns)
            ready = [c for c in remaining if free_vars(c) <= bound]
            if ready:
                # guards (no free variables) first: they can empty the
                # result before any per-row work happens
                ready.sort(key=lambda c: len(free_vars(c)))
                for conjunct in ready:
                    cur = self._make_filter(cur, conjunct)
                kept = set(map(id, ready))
                remaining = [c for c in remaining if id(c) not in kept]
                continue
            generator = self._pick_generator(remaining, bound)
            if generator is not None:
                right = self.plan(generator)
                if isinstance(cur, UnitScan):
                    cur = right  # joining against {()} is the identity
                else:
                    extra = tuple(c for c in right.columns if c not in bound)
                    cur = HashJoin(
                        cur.columns + extra, left=cur, right=right, label="join"
                    )
                remaining = [c for c in remaining if c is not generator]
                continue
            # Only unmaterializable conjuncts (negations) with unbound
            # variables remain: widen by the most-demanded variable.
            var = _most_demanded_var(remaining, bound)
            cur = Extend(
                cur.columns + (var,), source=cur, fresh=(var,), label=f"widen by {var}"
            )
        return cur

    def _make_filter(self, source: Plan, conjunct: Formula) -> Plan:
        original = conjunct
        negated = False
        while isinstance(conjunct, Not):
            negated = not negated
            conjunct = conjunct.body
        condition = self.plan(conjunct)
        if condition.columns != tuple(sorted(condition.columns)):
            condition = _align(condition, tuple(sorted(condition.columns)))
        positions = tuple(source.columns.index(c) for c in condition.columns)
        return Filter(
            source.columns,
            source=source,
            condition=condition,
            negated=negated,
            positions=positions,
            fallback=original,
            label="filter ~" if negated else "filter",
        )

    # -- static cost model --------------------------------------------------

    def _pick_generator(
        self, remaining: list[Formula], bound: set[str]
    ) -> Formula | None:
        # negations and universals only shrink; never generate from them
        candidates = [c for c in remaining if not isinstance(c, (Not, Forall))]
        if not candidates:
            return None
        if bound:
            sharing = [c for c in candidates if free_vars(c) & bound]
            if sharing:
                candidates = sharing
        return min(candidates, key=_static_cost)


def _as_or(part: Formula) -> Or | None:
    if isinstance(part, Or):
        return part
    if isinstance(part, Implies):
        rewritten = Or.of(Not(part.left), part.right)
        return rewritten if isinstance(rewritten, Or) else None
    if isinstance(part, Iff):
        return Or(
            (
                And.of(part.left, part.right),
                And.of(Not(part.left), Not(part.right)),
            )
        )
    return None


def _static_cost(formula: Formula) -> float:
    """Estimated cardinality under a nominal universe — the compile-time
    stand-in for the live planner's ``structure.cardinality`` calls.  Stored
    relations are assumed sparse (about ``n`` rows per bound column pair),
    equalities are near free, order/BIT predicates cost a universe square."""
    n = _NOMINAL_N
    if isinstance(formula, Atom):
        width = len({a.name for a in formula.args if isinstance(a, Var)})
        return 2.0 * n ** max(width - 1, 0)
    if isinstance(formula, Eq):
        if _is_const(formula.left) or _is_const(formula.right):
            return 1.0
        return n
    if isinstance(formula, (Le, Lt, Bit)):
        return n ** len(free_vars(formula))
    if isinstance(formula, TrueF):
        return 1.0
    if isinstance(formula, FalseF):
        return 0.0
    # quantified / compound conjunct: pessimistic in its width
    return n ** len(free_vars(formula)) + n


def _most_demanded_var(remaining: list[Formula], bound: set[str]) -> str:
    counts: dict[str, int] = {}
    for conjunct in remaining:
        for var in free_vars(conjunct) - bound:
            counts[var] = counts.get(var, 0) + 1
    return max(sorted(counts), key=lambda v: counts[v])


# ---------------------------------------------------------------------------
# Parameter specialization (partial evaluation against bound update params)
# ---------------------------------------------------------------------------


def _static_term_value(
    term: Term, params: dict[str, int] | None, n: int
) -> int | None:
    """The value of a term that is decidable at specialization time, else None.

    Only update parameters, literals, and the numeric constants ``min``/``max``
    (``n`` is fixed per compiled program) may be folded; structure constants
    are mutable via SetConst requests and must stay symbolic.  Mirrors
    :func:`repro.logic.evaluation.eval_term`'s resolution order, where params
    shadow everything and ``min``/``max`` shadow structure constants.
    """
    if isinstance(term, Lit):
        value = term.value
    elif isinstance(term, Const):
        if params is not None and term.name in params:
            value = params[term.name]
        elif term.name == "min":
            value = 0
        elif term.name == "max":
            value = n - 1
        else:
            return None
    else:
        return None
    # Out-of-universe values raise at execution time; keep that behavior by
    # refusing to fold them rather than folding to an empty relation.
    return value if 0 <= value < n else None


_COMPARE_OPS = {
    "eq": lambda a, b: a == b,
    "le": lambda a, b: a <= b,
    "lt": lambda a, b: a < b,
    "bit": lambda a, b: bool((a >> b) & 1),
}


def specialize_plan(
    plan: Plan,
    params: dict[str, int],
    n: int,
    memo: dict[int, Plan] | None = None,
) -> Plan:
    """Partially evaluate ``plan`` against bound update parameters.

    Produces a new plan in which every term resolvable from ``params`` (plus
    literals and ``min``/``max`` for the fixed universe size ``n``) is folded
    to a :class:`~repro.logic.syntax.Lit`, statically-decided comparisons
    collapse to :class:`UnitScan`/:class:`EmptyScan`, and statically-empty
    branches are pruned (empty join inputs, empty union arms, filters whose
    guard is decided).  Structure constants are never folded — they are
    mutable data.

    Node sharing is preserved: a subplan shared between definitions maps to
    one shared specialized node, so executor-side memoization still evaluates
    shared guards once per update.  Pass the same ``memo`` dict when
    specializing several plans of one rule to preserve sharing *across* them
    too.  Nodes the pass leaves untouched are returned identically
    (``is``-same), keeping memory flat for plans that mention no parameters.
    """
    if memo is None:
        memo = {}

    def spec(node: Plan) -> Plan:
        hit = memo.get(id(node))
        if hit is not None:
            return hit
        out = _specialize(node, spec, params, n)
        memo[id(node)] = out
        return out

    return spec(plan)


def _specialize(node: Plan, spec, params: dict[str, int], n: int) -> Plan:
    if isinstance(node, ConstBind):
        value = _static_term_value(node.term, params, n)
        if value is None or isinstance(node.term, Lit):
            return node
        return ConstBind(node.columns, term=Lit(value), label=node.label)
    if isinstance(node, CompareScan):
        left = _static_term_value(node.left, params, n)
        right = _static_term_value(node.right, params, n)
        if left is not None and right is not None and not node.columns:
            if _COMPARE_OPS[node.op](left, right):
                return UnitScan((), label=f"{node.label}=T")
            return EmptyScan((), label=f"{node.label}=F")
        new_left = Lit(left) if left is not None and not isinstance(node.left, Lit) else node.left
        new_right = Lit(right) if right is not None and not isinstance(node.right, Lit) else node.right
        if new_left is node.left and new_right is node.right:
            return node
        return CompareScan(
            node.columns, op=node.op, left=new_left, right=new_right, label=node.label
        )
    if isinstance(node, AtomScan):
        fixed = []
        changed = False
        for position, term in node.fixed:
            value = _static_term_value(term, params, n)
            if value is not None and not isinstance(term, Lit):
                fixed.append((position, Lit(value)))
                changed = True
            else:
                fixed.append((position, term))
        if not changed:
            return node
        return AtomScan(
            node.columns,
            rel=node.rel,
            args=node.args,
            fixed=tuple(fixed),
            var_cols=node.var_cols,
            direct=node.direct,
            label=node.label,
        )
    if isinstance(node, HashJoin):
        left, right = spec(node.left), spec(node.right)
        if isinstance(left, EmptyScan) or isinstance(right, EmptyScan):
            return EmptyScan(node.columns, label="join=F")
        if left is node.left and right is node.right:
            return node
        return HashJoin(node.columns, left=left, right=right, label=node.label)
    if isinstance(node, Filter):
        source, condition = spec(node.source), spec(node.condition)
        if isinstance(source, EmptyScan):
            return EmptyScan(node.columns, label="filter=F")
        if isinstance(condition, EmptyScan):
            # semijoin against empty keeps nothing; antijoin keeps everything
            return source if node.negated else EmptyScan(node.columns, label="filter=F")
        if isinstance(condition, UnitScan):
            return EmptyScan(node.columns, label="filter=F") if node.negated else source
        if source is node.source and condition is node.condition:
            return node
        return Filter(
            node.columns,
            source=source,
            condition=condition,
            negated=node.negated,
            positions=node.positions,
            fallback=node.fallback,
            label=node.label,
        )
    if isinstance(node, Project):
        source = spec(node.source)
        if isinstance(source, EmptyScan):
            return EmptyScan(node.columns, label="project=F")
        if source is node.source:
            return node
        return Project(
            node.columns, source=source, positions=node.positions, label=node.label
        )
    if isinstance(node, Extend):
        source = spec(node.source)
        if isinstance(source, EmptyScan):
            return EmptyScan(node.columns, label="widen=F")
        if source is node.source:
            return node
        return Extend(node.columns, source=source, fresh=node.fresh, label=node.label)
    if isinstance(node, Complement):
        source = spec(node.source)
        if not node.columns:
            # nullary guard: complement flips a statically-decided truth value
            if isinstance(source, EmptyScan):
                return UnitScan((), label=f"{node.label}=T")
            if isinstance(source, UnitScan):
                return EmptyScan((), label=f"{node.label}=F")
        if source is node.source:
            return node
        return Complement(node.columns, source=source, label=node.label)
    if isinstance(node, Union):
        parts = tuple(spec(part) for part in node.parts)
        live = tuple(part for part in parts if not isinstance(part, EmptyScan))
        if not live:
            return EmptyScan(node.columns, label="or=F")
        if len(live) == 1 and live[0].columns == node.columns:
            return live[0]
        if len(live) == len(parts) and all(
            new is old for new, old in zip(parts, node.parts)
        ):
            return node
        return Union(node.columns, parts=live, label=node.label)
    # UnitScan / EmptyScan leaves
    return node
