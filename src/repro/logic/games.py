"""Ehrenfeucht-Fraïssé games.

The paper's motivation is that REACH_u, PARITY, etc. are **not** static
first-order queries.  The standard tool for such inexpressibility results is
the k-round EF game: Duplicator wins the k-round game on (A, B) iff A and B
agree on all FO sentences of quantifier rank <= k.  This module decides the
winner by exhaustive search with memoization — exponential in k, so intended
for the small demonstration structures used in the tests and examples
(e.g. cycles C_2k vs two disjoint C_k's, which agree up to rank ~log k while
differing on connectivity).

Only the *relational* part of the vocabulary is played by default; pass
``with_order=True`` to also require partial maps to respect the built-in
total order (the numeric vocabulary).  BIT is not played: with BIT every
element is definable, so games against the full numeric vocabulary are not
informative.
"""

from __future__ import annotations

from .structure import Structure

__all__ = ["duplicator_wins", "distinguishing_rank", "partial_isomorphism"]


def partial_isomorphism(
    a: Structure,
    b: Structure,
    pairs: tuple[tuple[int, int], ...],
    with_order: bool = False,
) -> bool:
    """Is the finite map {a_i -> b_i} (plus constants) a partial isomorphism?"""
    if a.vocabulary != b.vocabulary:
        return False
    mapping = dict(pairs)
    inverse: dict[int, int] = {}
    for x, y in pairs:
        if mapping.get(x) != y or inverse.setdefault(y, x) != x:
            return False
    for name in a.vocabulary.constant_names():
        ca, cb = a.constant(name), b.constant(name)
        if mapping.get(ca, cb) != cb or inverse.get(cb, ca) != ca:
            return False
        mapping[ca] = cb
        inverse[cb] = ca
    items = list(mapping.items())
    if with_order:
        for x1, y1 in items:
            for x2, y2 in items:
                if (x1 <= x2) != (y1 <= y2):
                    return False
    for rel in a.vocabulary:
        arity = rel.arity
        if arity == 0:
            if a.holds(rel.name, ()) != b.holds(rel.name, ()):
                return False
            continue
        domain = [x for x, _ in items]
        # check all tuples over the chosen points
        for tup in _tuples(domain, arity):
            image = tuple(mapping[x] for x in tup)
            if a.holds(rel.name, tup) != b.holds(rel.name, image):
                return False
    return True


def _tuples(domain: list[int], arity: int):
    if arity == 1:
        for x in domain:
            yield (x,)
        return
    import itertools

    yield from itertools.product(domain, repeat=arity)


def duplicator_wins(
    a: Structure,
    b: Structure,
    rounds: int,
    with_order: bool = False,
) -> bool:
    """Does Duplicator win the ``rounds``-round EF game on (a, b)?

    True iff ``a`` and ``b`` satisfy the same FO[<relational vocabulary>]
    sentences of quantifier rank at most ``rounds``.
    """
    memo: dict[tuple[int, tuple[tuple[int, int], ...]], bool] = {}

    def play(k: int, pairs: tuple[tuple[int, int], ...]) -> bool:
        if not partial_isomorphism(a, b, pairs, with_order):
            return False
        if k == 0:
            return True
        key = (k, tuple(sorted(pairs)))
        cached = memo.get(key)
        if cached is not None:
            return cached
        result = True
        # Spoiler plays in a; Duplicator answers in b.
        for x in a.universe:
            if not any(play(k - 1, pairs + ((x, y),)) for y in b.universe):
                result = False
                break
        if result:
            # Spoiler plays in b; Duplicator answers in a.
            for y in b.universe:
                if not any(play(k - 1, pairs + ((x, y),)) for x in a.universe):
                    result = False
                    break
        memo[key] = result
        return result

    return play(rounds, ())


def distinguishing_rank(
    a: Structure,
    b: Structure,
    max_rounds: int = 5,
    with_order: bool = False,
) -> int | None:
    """Smallest quantifier rank at which some FO sentence separates ``a``
    from ``b``, or None if Duplicator survives ``max_rounds`` rounds."""
    for k in range(max_rounds + 1):
        if not duplicator_wins(a, b, k, with_order):
            return k
    return None
