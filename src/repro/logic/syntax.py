"""Abstract syntax for first-order logic over ordered finite structures.

The language ``L(tau)`` of the paper: relation atoms over a vocabulary, the
numeric predicates ``=``, ``<=``, ``<`` and ``BIT``, the numeric constants
``min``/``max``, boolean connectives, and quantifiers ranging over the
universe ``{0..n-1}``.

Formulas are immutable, hashable dataclasses.  Connectives are available both
as constructors and as operators::

    E(x, y) & ~F(x, y)          # conjunction, negation
    P(x) | Q(x)                 # disjunction
    guard >> body               # implication
    phi.iff(psi)                # biconditional

Terms are variables (:class:`Var`), symbolic constants (:class:`Const`, which
also covers the numeric constants ``min``/``max`` and update parameters), and
integer literals (:class:`Lit`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

__all__ = [
    "Term",
    "Var",
    "Const",
    "Lit",
    "Formula",
    "TrueF",
    "FalseF",
    "TOP",
    "BOT",
    "Atom",
    "Eq",
    "Le",
    "Lt",
    "Bit",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Exists",
    "Forall",
    "as_term",
]


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Term:
    """Base class for terms."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class Var(Term):
    """A first-order variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Term):
    """A symbolic constant: a vocabulary constant, ``min``/``max``, or an
    update parameter bound at evaluation time."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Lit(Term):
    """An integer literal denoting a fixed universe element."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


TermLike = Union[Term, str, int]


def as_term(value: TermLike) -> Term:
    """Coerce ``str`` -> Var, ``int`` -> Lit, Term -> itself.

    Strings are treated as variables, which matches how formulas are written
    in the paper; use :class:`Const` explicitly for symbolic constants.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str):
        return Var(value)
    if isinstance(value, bool):
        raise TypeError("booleans are not terms")
    if isinstance(value, int):
        return Lit(value)
    raise TypeError(f"cannot interpret {value!r} as a term")


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Formula:
    """Base class for first-order formulas."""

    def __and__(self, other: "Formula") -> "Formula":
        return And.of(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or.of(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)

    def iff(self, other: "Formula") -> "Formula":
        return Iff(self, other)

    def __str__(self) -> str:
        from .printer import format_formula

        return format_formula(self)


@dataclass(frozen=True)
class TrueF(Formula):
    """The formula ``true``."""


@dataclass(frozen=True)
class FalseF(Formula):
    """The formula ``false``."""


TOP = TrueF()
BOT = FalseF()


@dataclass(frozen=True)
class Atom(Formula):
    """A relation atom ``R(t1, ..., tk)``."""

    rel: str
    args: tuple[Term, ...]

    def __init__(self, rel: str, args: Sequence[TermLike]) -> None:
        object.__setattr__(self, "rel", rel)
        object.__setattr__(self, "args", tuple(as_term(a) for a in args))


class _Numeric(Formula):
    """Marker base for built-in numeric predicates."""


@dataclass(frozen=True)
class Eq(_Numeric):
    """``left = right``."""

    left: Term
    right: Term

    def __init__(self, left: TermLike, right: TermLike) -> None:
        object.__setattr__(self, "left", as_term(left))
        object.__setattr__(self, "right", as_term(right))


@dataclass(frozen=True)
class Le(_Numeric):
    """``left <= right`` in the built-in total order."""

    left: Term
    right: Term

    def __init__(self, left: TermLike, right: TermLike) -> None:
        object.__setattr__(self, "left", as_term(left))
        object.__setattr__(self, "right", as_term(right))


@dataclass(frozen=True)
class Lt(_Numeric):
    """``left < right`` (definable from <= and =; primitive for convenience)."""

    left: Term
    right: Term

    def __init__(self, left: TermLike, right: TermLike) -> None:
        object.__setattr__(self, "left", as_term(left))
        object.__setattr__(self, "right", as_term(right))


@dataclass(frozen=True)
class Bit(_Numeric):
    """``BIT(x, y)``: bit ``y`` of the binary encoding of ``x`` is one."""

    number: Term
    index: Term

    def __init__(self, number: TermLike, index: TermLike) -> None:
        object.__setattr__(self, "number", as_term(number))
        object.__setattr__(self, "index", as_term(index))


@dataclass(frozen=True)
class Not(Formula):
    body: Formula


@dataclass(frozen=True)
class And(Formula):
    parts: tuple[Formula, ...]

    def __init__(self, parts: Iterable[Formula]) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    @staticmethod
    def of(*parts: Formula) -> Formula:
        """N-ary conjunction that flattens nested Ands and drops ``true``."""
        flat: list[Formula] = []
        for part in parts:
            if isinstance(part, TrueF):
                continue
            if isinstance(part, FalseF):
                return BOT
            if isinstance(part, And):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if not flat:
            return TOP
        if len(flat) == 1:
            return flat[0]
        return And(flat)


@dataclass(frozen=True)
class Or(Formula):
    parts: tuple[Formula, ...]

    def __init__(self, parts: Iterable[Formula]) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    @staticmethod
    def of(*parts: Formula) -> Formula:
        """N-ary disjunction that flattens nested Ors and drops ``false``."""
        flat: list[Formula] = []
        for part in parts:
            if isinstance(part, FalseF):
                continue
            if isinstance(part, TrueF):
                return TOP
            if isinstance(part, Or):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if not flat:
            return BOT
        if len(flat) == 1:
            return flat[0]
        return Or(flat)


@dataclass(frozen=True)
class Implies(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class Iff(Formula):
    left: Formula
    right: Formula


def _coerce_vars(names: Sequence[str] | str) -> tuple[str, ...]:
    if isinstance(names, str):
        names = names.split()
    names = tuple(names)
    if not names:
        raise ValueError("quantifier needs at least one variable")
    if len(set(names)) != len(names):
        raise ValueError(f"repeated quantified variable in {names}")
    return names


@dataclass(frozen=True)
class Exists(Formula):
    """``exists v1 ... vk . body``.  ``vars`` may be given as ``"u v"``."""

    vars: tuple[str, ...]
    body: Formula

    def __init__(self, vars: Sequence[str] | str, body: Formula) -> None:
        object.__setattr__(self, "vars", _coerce_vars(vars))
        object.__setattr__(self, "body", body)


@dataclass(frozen=True)
class Forall(Formula):
    """``forall v1 ... vk . body``."""

    vars: tuple[str, ...]
    body: Formula

    def __init__(self, vars: Sequence[str] | str, body: Formula) -> None:
        object.__setattr__(self, "vars", _coerce_vars(vars))
        object.__setattr__(self, "body", body)
