"""Relational vocabularies (signatures).

A vocabulary ``tau = <R1^a1, ..., Rr^ar, c1, ..., cs>`` is a finite list of
relation symbols with fixed arities and a finite list of constant symbols
(Section 2 of the paper).  Vocabularies are immutable; structural operations
(extension, renaming, union) return new vocabularies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

__all__ = [
    "RelationSymbol",
    "ConstantSymbol",
    "Vocabulary",
    "VocabularyError",
]

# Names reserved for the built-in numeric apparatus of L(tau): the total
# order, equality, BIT, and the numeric constants min / max (paper, Sec. 2).
RESERVED_NAMES = frozenset({"BIT", "min", "max", "true", "false"})


class VocabularyError(ValueError):
    """Raised on malformed vocabularies or symbol clashes."""


def _check_name(name: str) -> str:
    if not name or not isinstance(name, str):
        raise VocabularyError(f"symbol name must be a nonempty string, got {name!r}")
    if not (name[0].isalpha() or name[0] == "_"):
        raise VocabularyError(f"symbol name must start with a letter: {name!r}")
    if not all(ch.isalnum() or ch == "_" for ch in name):
        raise VocabularyError(f"symbol name must be alphanumeric: {name!r}")
    if name in RESERVED_NAMES:
        raise VocabularyError(f"symbol name {name!r} is reserved")
    return name


@dataclass(frozen=True, order=True)
class RelationSymbol:
    """A relation symbol with a name and a nonnegative arity."""

    name: str
    arity: int

    def __post_init__(self) -> None:
        _check_name(self.name)
        if self.arity < 0:
            raise VocabularyError(f"arity must be >= 0, got {self.arity}")

    def __str__(self) -> str:
        return f"{self.name}^{self.arity}"


@dataclass(frozen=True, order=True)
class ConstantSymbol:
    """A constant symbol naming one element of the universe."""

    name: str

    def __post_init__(self) -> None:
        _check_name(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Vocabulary:
    """An immutable relational vocabulary.

    >>> graph = Vocabulary.parse("E^2")
    >>> graph.arity("E")
    2
    >>> graph.extend(relations=[("F", 2)]).relation_names()
    ('E', 'F')
    """

    relations: tuple[RelationSymbol, ...] = ()
    constants: tuple[ConstantSymbol, ...] = ()
    _by_name: Mapping[str, RelationSymbol] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        by_name: dict[str, RelationSymbol] = {}
        for rel in self.relations:
            if rel.name in by_name:
                raise VocabularyError(f"duplicate relation symbol {rel.name!r}")
            by_name[rel.name] = rel
        const_names = set()
        for const in self.constants:
            if const.name in by_name or const.name in const_names:
                raise VocabularyError(f"duplicate symbol {const.name!r}")
            const_names.add(const.name)
        object.__setattr__(self, "_by_name", by_name)

    # -- construction -------------------------------------------------

    @staticmethod
    def make(
        relations: Iterable[tuple[str, int]] = (),
        constants: Iterable[str] = (),
    ) -> "Vocabulary":
        """Build a vocabulary from ``(name, arity)`` pairs and constant names."""
        return Vocabulary(
            tuple(RelationSymbol(name, arity) for name, arity in relations),
            tuple(ConstantSymbol(name) for name in constants),
        )

    @staticmethod
    def parse(spec: str) -> "Vocabulary":
        """Parse a compact spec such as ``"E^2, s, t"``.

        Tokens with ``^k`` are relation symbols of arity ``k``; bare tokens
        are constant symbols.
        """
        relations: list[tuple[str, int]] = []
        constants: list[str] = []
        for token in (tok.strip() for tok in spec.split(",")):
            if not token:
                continue
            if "^" in token:
                name, _, arity = token.partition("^")
                relations.append((name.strip(), int(arity)))
            else:
                constants.append(token)
        return Vocabulary.make(relations, constants)

    # -- queries -------------------------------------------------------

    def relation_names(self) -> tuple[str, ...]:
        return tuple(rel.name for rel in self.relations)

    def constant_names(self) -> tuple[str, ...]:
        return tuple(const.name for const in self.constants)

    def has_relation(self, name: str) -> bool:
        return name in self._by_name

    def has_constant(self, name: str) -> bool:
        return any(const.name == name for const in self.constants)

    def arity(self, name: str) -> int:
        try:
            return self._by_name[name].arity
        except KeyError:
            raise VocabularyError(f"unknown relation symbol {name!r}") from None

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self.relations)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and (
            self.has_relation(name) or self.has_constant(name)
        )

    # -- structural operations ------------------------------------------

    def extend(
        self,
        relations: Iterable[tuple[str, int]] = (),
        constants: Iterable[str] = (),
    ) -> "Vocabulary":
        """Return a new vocabulary with extra symbols appended."""
        return Vocabulary(
            self.relations + tuple(RelationSymbol(n, a) for n, a in relations),
            self.constants + tuple(ConstantSymbol(n) for n in constants),
        )

    def union(self, other: "Vocabulary") -> "Vocabulary":
        """Union of two vocabularies; shared symbols must agree on arity."""
        relations = list(self.relations)
        for rel in other.relations:
            if self.has_relation(rel.name):
                if self.arity(rel.name) != rel.arity:
                    raise VocabularyError(
                        f"arity clash for {rel.name!r}: "
                        f"{self.arity(rel.name)} vs {rel.arity}"
                    )
            else:
                relations.append(rel)
        constants = list(self.constants)
        seen = set(self.constant_names())
        for const in other.constants:
            if const.name not in seen:
                constants.append(const)
                seen.add(const.name)
        return Vocabulary(tuple(relations), tuple(constants))

    def rename(self, mapping: Mapping[str, str]) -> "Vocabulary":
        """Rename symbols according to ``mapping`` (identity elsewhere)."""
        return Vocabulary(
            tuple(
                RelationSymbol(mapping.get(rel.name, rel.name), rel.arity)
                for rel in self.relations
            ),
            tuple(
                ConstantSymbol(mapping.get(c.name, c.name)) for c in self.constants
            ),
        )

    def __str__(self) -> str:
        parts = [str(rel) for rel in self.relations]
        parts.extend(str(const) for const in self.constants)
        return "<" + ", ".join(parts) + ">"
