"""Reference (naive) evaluator: direct Tarskian satisfaction.

This module is the *semantics* of the logic.  The optimized engines in
:mod:`repro.logic.relational` and :mod:`repro.logic.dense` are tested against
it.  ``holds`` runs in time ``O(n^{quantifier rank} * size)`` by brute-force
assignment enumeration, which is fine for the small structures used in
property tests, and as the per-row filter inside the relational engine where
all variables are already bound.
"""

from __future__ import annotations

import itertools
from typing import Mapping

from .structure import Structure, StructureError
from .syntax import (
    And,
    Atom,
    Bit,
    Const,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    Le,
    Lit,
    Lt,
    Not,
    Or,
    Term,
    TrueF,
    Var,
)

__all__ = ["holds", "eval_term", "naive_query", "EvaluationError"]


class EvaluationError(ValueError):
    """Raised on unbound variables or unknown constants."""


def eval_term(
    term: Term,
    structure: Structure,
    assignment: Mapping[str, int],
    params: Mapping[str, int] | None = None,
) -> int:
    """Resolve a term to a universe element.

    Resolution order for :class:`Const`: update parameters, then the
    structure's constants, then the numeric constants ``min``/``max``.
    """
    if isinstance(term, Var):
        try:
            return assignment[term.name]
        except KeyError:
            raise EvaluationError(f"unbound variable {term.name!r}") from None
    if isinstance(term, Lit):
        if not 0 <= term.value < structure.n:
            raise EvaluationError(
                f"literal {term.value} outside universe of size {structure.n}"
            )
        return term.value
    if isinstance(term, Const):
        if params and term.name in params:
            return params[term.name]
        if term.name == "min":
            return 0
        if term.name == "max":
            return structure.n - 1
        try:
            return structure.constant(term.name)
        except StructureError:
            raise EvaluationError(f"unknown constant {term.name!r}") from None
    raise TypeError(f"unknown term {term!r}")  # pragma: no cover


def holds(
    formula: Formula,
    structure: Structure,
    assignment: Mapping[str, int] | None = None,
    params: Mapping[str, int] | None = None,
) -> bool:
    """Does ``structure`` satisfy ``formula`` under ``assignment``?"""
    asgn = dict(assignment) if assignment else {}
    return _holds(formula, structure, asgn, params or {})


def _holds(
    formula: Formula,
    structure: Structure,
    assignment: dict[str, int],
    params: Mapping[str, int],
) -> bool:
    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, FalseF):
        return False
    if isinstance(formula, Atom):
        row = tuple(
            eval_term(arg, structure, assignment, params) for arg in formula.args
        )
        return structure.holds(formula.rel, row)
    if isinstance(formula, Eq):
        return eval_term(formula.left, structure, assignment, params) == eval_term(
            formula.right, structure, assignment, params
        )
    if isinstance(formula, Le):
        return eval_term(formula.left, structure, assignment, params) <= eval_term(
            formula.right, structure, assignment, params
        )
    if isinstance(formula, Lt):
        return eval_term(formula.left, structure, assignment, params) < eval_term(
            formula.right, structure, assignment, params
        )
    if isinstance(formula, Bit):
        number = eval_term(formula.number, structure, assignment, params)
        index = eval_term(formula.index, structure, assignment, params)
        return bool((number >> index) & 1)
    if isinstance(formula, Not):
        return not _holds(formula.body, structure, assignment, params)
    if isinstance(formula, And):
        return all(_holds(p, structure, assignment, params) for p in formula.parts)
    if isinstance(formula, Or):
        return any(_holds(p, structure, assignment, params) for p in formula.parts)
    if isinstance(formula, Implies):
        return not _holds(formula.left, structure, assignment, params) or _holds(
            formula.right, structure, assignment, params
        )
    if isinstance(formula, Iff):
        return _holds(formula.left, structure, assignment, params) == _holds(
            formula.right, structure, assignment, params
        )
    if isinstance(formula, (Exists, Forall)):
        want_any = isinstance(formula, Exists)
        shadowed = {
            name: assignment[name] for name in formula.vars if name in assignment
        }
        try:
            for values in itertools.product(structure.universe, repeat=len(formula.vars)):
                for name, value in zip(formula.vars, values):
                    assignment[name] = value
                result = _holds(formula.body, structure, assignment, params)
                if result == want_any:
                    return want_any
            return not want_any
        finally:
            for name in formula.vars:
                assignment.pop(name, None)
            assignment.update(shadowed)
    raise TypeError(f"unknown formula node {formula!r}")  # pragma: no cover


def naive_query(
    formula: Formula,
    structure: Structure,
    frame: tuple[str, ...],
    params: Mapping[str, int] | None = None,
) -> set[tuple[int, ...]]:
    """All assignments to ``frame`` (a tuple of variable names) satisfying
    ``formula``, by brute-force enumeration.  ``frame`` must cover the free
    variables of ``formula``."""
    from .transform import free_vars

    missing = free_vars(formula) - set(frame)
    if missing:
        raise EvaluationError(f"frame {frame} does not bind {sorted(missing)}")
    result: set[tuple[int, ...]] = set()
    assignment: dict[str, int] = {}
    for values in itertools.product(structure.universe, repeat=len(frame)):
        assignment.update(zip(frame, values))
        if _holds(formula, structure, assignment, params or {}):
            result.add(values)
    return result
