"""Finite relational structures (relational database instances).

A structure ``A = <{0..n-1}, R1 .. Rr, c1 .. cs>`` interprets every relation
symbol of its vocabulary as a set of integer tuples over the universe
``{0, ..., n-1}`` and every constant symbol as a universe element
(paper, Sec. 2).  The numeric predicates ``<=``, ``<``, ``=``, ``BIT`` and the
numeric constants ``min``/``max`` are built into the logic and are *not*
stored here.

Structures are mutable (the whole point of the paper is updating them), but
every mutator validates its arguments, and :meth:`Structure.copy` /
:meth:`Structure.freeze` support snapshotting for verification.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping

from .vocabulary import Vocabulary, VocabularyError

__all__ = ["Structure", "StructureError", "FrozenStructure", "BatchUpdate"]


class StructureError(ValueError):
    """Raised on out-of-universe elements or unknown symbols."""


# Version stamps are drawn from one process-wide counter so that a stamp is
# globally unique per relation *state*: equal stamps imply the underlying row
# set has not been mutated since, even across borrowed expansions that share
# row sets with their base structure (see :meth:`Structure.expand`).
_VERSION_COUNTER = itertools.count(1)


class Structure:
    """A finite structure over a fixed vocabulary and universe size ``n``."""

    __slots__ = ("vocabulary", "n", "_relations", "_constants", "_indexes", "_versions")

    def __init__(
        self,
        vocabulary: Vocabulary,
        n: int,
        relations: Mapping[str, Iterable[tuple[int, ...]]] | None = None,
        constants: Mapping[str, int] | None = None,
    ) -> None:
        if n <= 0:
            raise StructureError(f"universe size must be positive, got {n}")
        self.vocabulary = vocabulary
        self.n = n
        self._relations: dict[str, set[tuple[int, ...]]] = {
            rel.name: set() for rel in vocabulary
        }
        # Constants default to 0, matching the paper's initial structure A_0^n.
        self._constants: dict[str, int] = {
            name: 0 for name in vocabulary.constant_names()
        }
        # Hash indexes: relation name -> column positions -> key -> row set.
        # Built lazily by index_on(), maintained incrementally by add/discard
        # (and batch edits), dropped wholesale by set_relation.
        self._indexes: dict[
            str, dict[tuple[int, ...], dict[tuple[int, ...], set[tuple[int, ...]]]]
        ] = {}
        # Lazily-stamped per-relation version counters (see relation_version).
        self._versions: dict[str, int] = {}
        if relations:
            for name, tuples in relations.items():
                for tup in tuples:
                    self.add(name, tup)
        if constants:
            for name, value in constants.items():
                self.set_constant(name, value)

    # -- element/tuple validation ---------------------------------------

    def _check_element(self, value: int) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise StructureError(f"universe elements are ints, got {value!r}")
        if not 0 <= value < self.n:
            raise StructureError(
                f"element {value} outside universe {{0..{self.n - 1}}}"
            )
        return value

    def _check_tuple(self, name: str, tup: tuple[int, ...]) -> tuple[int, ...]:
        arity = self.vocabulary.arity(name)
        tup = tuple(tup)
        if len(tup) != arity:
            raise StructureError(
                f"relation {name!r} has arity {arity}, got tuple {tup!r}"
            )
        for value in tup:
            self._check_element(value)
        return tup

    # -- relation access --------------------------------------------------

    def relation(self, name: str) -> frozenset[tuple[int, ...]]:
        """The current interpretation of relation ``name`` (a copy)."""
        try:
            return frozenset(self._relations[name])
        except KeyError:
            raise StructureError(f"unknown relation {name!r}") from None

    def relation_view(self, name: str) -> set[tuple[int, ...]]:
        """Internal mutable set for ``name`` — callers must not mutate it."""
        try:
            return self._relations[name]
        except KeyError:
            raise StructureError(f"unknown relation {name!r}") from None

    def holds(self, name: str, tup: tuple[int, ...]) -> bool:
        return tuple(tup) in self.relation_view(name)

    def add(self, name: str, tup: tuple[int, ...]) -> None:
        self._apply_add(name, self._check_tuple(name, tup))

    def discard(self, name: str, tup: tuple[int, ...]) -> None:
        self._apply_discard(name, self._check_tuple(name, tup))

    def set_relation(self, name: str, tuples: Iterable[tuple[int, ...]]) -> None:
        """Replace the whole interpretation of ``name``."""
        checked = {self._check_tuple(name, tuple(tup)) for tup in tuples}
        self.relation_view(name)  # raises on unknown name
        self._relations[name] = checked
        self._indexes.pop(name, None)
        self._versions[name] = next(_VERSION_COUNTER)

    # -- incremental mutation internals (validation already done) -----------

    def _apply_add(self, name: str, tup: tuple[int, ...]) -> None:
        rows = self._relations[name]
        if tup in rows:
            return
        rows.add(tup)
        for positions, buckets in self._indexes.get(name, {}).items():
            buckets.setdefault(tuple(tup[p] for p in positions), set()).add(tup)
        self._versions[name] = next(_VERSION_COUNTER)

    def _apply_discard(self, name: str, tup: tuple[int, ...]) -> None:
        rows = self._relations[name]
        if tup not in rows:
            return
        rows.discard(tup)
        for positions, buckets in self._indexes.get(name, {}).items():
            key = tuple(tup[p] for p in positions)
            bucket = buckets.get(key)
            if bucket is not None:
                bucket.discard(tup)
                if not bucket:
                    del buckets[key]
        self._versions[name] = next(_VERSION_COUNTER)

    # -- hash indexes and version stamps ------------------------------------

    def relation_version(self, name: str) -> int:
        """Monotone stamp bumped on every effective mutation of ``name``.

        Equal stamps guarantee the relation's row set is unchanged, even
        across :meth:`expand` with ``borrow=True`` (stamps are shared along
        with the row sets there).  Used by evaluator-side caches (e.g. the
        dense backend's array cache) to validate reuse.
        """
        version = self._versions.get(name)
        if version is None:
            self.relation_view(name)  # raises on unknown name
            version = self._versions[name] = next(_VERSION_COUNTER)
        return version

    def index_on(
        self, name: str, positions: tuple[int, ...]
    ) -> dict[tuple[int, ...], set[tuple[int, ...]]]:
        """Hash index over ``name`` keyed by the given column positions.

        Built lazily on first probe (one pass over the relation), then kept
        consistent incrementally by :meth:`add`/:meth:`discard` and by batch
        edits; :meth:`set_relation` invalidates every index on the relation.
        Callers must treat the returned buckets as read-only.
        """
        positions = tuple(positions)
        rows = self.relation_view(name)
        per_relation = self._indexes.setdefault(name, {})
        index = per_relation.get(positions)
        if index is None:
            index = {}
            for tup in rows:
                key = tuple(tup[p] for p in positions)
                index.setdefault(key, set()).add(tup)
            per_relation[positions] = index
        return index

    def cardinality(self, name: str) -> int:
        return len(self.relation_view(name))

    # -- constant access --------------------------------------------------

    def constant(self, name: str) -> int:
        try:
            return self._constants[name]
        except KeyError:
            raise StructureError(f"unknown constant {name!r}") from None

    def set_constant(self, name: str, value: int) -> None:
        if name not in self._constants:
            raise StructureError(f"unknown constant {name!r}")
        self._constants[name] = self._check_element(value)

    def constants(self) -> dict[str, int]:
        return dict(self._constants)

    # -- whole-structure operations ----------------------------------------

    @property
    def universe(self) -> range:
        return range(self.n)

    def copy(self) -> "Structure":
        clone = Structure(self.vocabulary, self.n)
        clone._relations = {name: set(rows) for name, rows in self._relations.items()}
        clone._constants = dict(self._constants)
        return clone

    def freeze(self) -> "FrozenStructure":
        return FrozenStructure(
            vocabulary=self.vocabulary,
            n=self.n,
            relations=tuple(
                (name, frozenset(rows)) for name, rows in sorted(self._relations.items())
            ),
            constants=tuple(sorted(self._constants.items())),
        )

    def restrict(self, vocabulary: Vocabulary) -> "Structure":
        """Project onto a sub-vocabulary (a reduct, in logic terms)."""
        out = Structure(vocabulary, self.n)
        for rel in vocabulary:
            if not self.vocabulary.has_relation(rel.name):
                raise VocabularyError(f"{rel.name!r} not present in structure")
            out.set_relation(rel.name, self._relations[rel.name])
        for name in vocabulary.constant_names():
            out.set_constant(name, self.constant(name))
        return out

    def expand(
        self,
        vocabulary: Vocabulary,
        relations: Mapping[str, Iterable[tuple[int, ...]]] | None = None,
        constants: Mapping[str, int] | None = None,
        *,
        borrow: bool = False,
    ) -> "Structure":
        """Expand to a larger vocabulary; new symbols start empty/0 unless given.

        With ``borrow=True`` the expansion *shares* the base structure's row
        sets, hash indexes, and version stamps instead of copying them (an
        O(1) view per inherited relation rather than O(|rows|)).  A borrowed
        expansion is a read-only view of the inherited relations: replacing a
        symbol wholesale via :meth:`set_relation` is safe (it rebinds, never
        mutates, the shared set), but :meth:`add`/:meth:`discard` on an
        inherited symbol would silently mutate the base and must not be used.
        The engine uses this for its per-request scratch structures.
        """
        out = Structure(vocabulary, self.n)
        if borrow:
            for rel in self.vocabulary:
                out._relations[rel.name] = self._relations[rel.name]
            out._indexes = self._indexes
            out._versions = self._versions
            for name in self.vocabulary.constant_names():
                out._constants[name] = self._constants[name]
        else:
            for rel in self.vocabulary:
                out.set_relation(rel.name, self._relations[rel.name])
            for name in self.vocabulary.constant_names():
                out.set_constant(name, self.constant(name))
        if relations:
            for name, tuples in relations.items():
                out.set_relation(name, tuples)
        if constants:
            for name, value in constants.items():
                out.set_constant(name, value)
        return out

    def apply_effects(self, fx: Mapping) -> None:
        """Replay a :meth:`BatchUpdate.effects` record: stage every recorded
        edit (re-validating against this structure) and commit atomically."""
        batch = self.begin_batch()
        for name, rows in fx.get("set", {}).items():
            batch.set_relation(name, (tuple(tup) for tup in rows))
        for kind, name, tup in fx.get("edits", ()):
            if kind == "add":
                batch.add(name, tuple(tup))
            elif kind == "discard":
                batch.discard(name, tuple(tup))
            else:
                raise StructureError(f"unknown effect edit kind {kind!r}")
        for name, value in fx.get("const", {}).items():
            batch.set_constant(name, value)
        batch.commit()

    def begin_batch(self) -> "BatchUpdate":
        """Start a staged, all-or-nothing batch of edits (see
        :class:`BatchUpdate`).  Every staging call validates eagerly, so by
        the time :meth:`BatchUpdate.commit` runs nothing can fail and the
        structure is either fully updated or — on any staging error —
        provably untouched."""
        return BatchUpdate(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self.vocabulary == other.vocabulary
            and self.n == other.n
            and self._relations == other._relations
            and self._constants == other._constants
        )

    def __hash__(self) -> int:  # pragma: no cover - mutable, but freeze() hashes
        raise TypeError("Structure is mutable; hash its .freeze() instead")

    def __repr__(self) -> str:
        rels = ", ".join(
            f"{name}:{len(rows)}" for name, rows in sorted(self._relations.items())
        )
        return f"Structure(n={self.n}, {rels})"

    def describe(self) -> str:
        """Multi-line human-readable dump (small structures only)."""
        lines = [f"universe = {{0..{self.n - 1}}}"]
        for name in sorted(self._relations):
            rows = sorted(self._relations[name])
            lines.append(f"{name} = {{{', '.join(map(str, rows))}}}")
        for name, value in sorted(self._constants.items()):
            lines.append(f"{name} = {value}")
        return "\n".join(lines)

    # -- the paper's canonical initial structure ---------------------------

    @staticmethod
    def initial(vocabulary: Vocabulary, n: int) -> "Structure":
        """The initial structure ``A_0^n``: all relations empty, constants 0.

        The paper additionally designates a unary active-domain relation whose
        initial value is {0}; programs that use one set it up themselves.
        """
        return Structure(vocabulary, n)


class BatchUpdate:
    """Staged edits to one :class:`Structure`, committed atomically.

    Staging methods mirror the structure's mutators but only record the edit
    after validating it against the *target* structure's vocabulary and
    universe; the target is not touched until :meth:`commit`.  ``commit``
    performs no validation and no allocation that can fail, so an exception
    anywhere during staging leaves the structure byte-identical to before.

    Edits are applied in commit order: whole-relation replacements first,
    then single-tuple add/discard edits (in staging order), then constants —
    matching the engine's primed-swap-then-mirror update discipline.
    """

    __slots__ = ("_structure", "_relations", "_edits", "_constants", "_committed")

    def __init__(self, structure: Structure) -> None:
        self._structure = structure
        self._relations: dict[str, set[tuple[int, ...]]] = {}
        self._edits: list[tuple[str, str, tuple[int, ...]]] = []
        self._constants: dict[str, int] = {}
        self._committed = False

    def set_relation(self, name: str, tuples: Iterable[tuple[int, ...]]) -> None:
        """Stage a whole-relation replacement."""
        structure = self._structure
        structure.relation_view(name)  # raises on unknown name
        self._relations[name] = {
            structure._check_tuple(name, tuple(tup)) for tup in tuples
        }

    def add(self, name: str, tup: tuple[int, ...]) -> None:
        """Stage a single-tuple insertion."""
        self._edits.append(("add", name, self._structure._check_tuple(name, tup)))

    def discard(self, name: str, tup: tuple[int, ...]) -> None:
        """Stage a single-tuple removal."""
        self._edits.append(("discard", name, self._structure._check_tuple(name, tup)))

    def stage_edits_trusted(
        self, kind: str, name: str, tuples: Iterable[tuple[int, ...]]
    ) -> None:
        """Stage pre-validated edits without per-tuple checks.

        Internal fast path for delta staging: the engine's definition deltas
        are evaluator outputs, whose rows are guaranteed to be in-arity and
        in-universe already (they come from relation rows, the universe
        range, or bounds-checked constant binds)."""
        if kind not in ("add", "discard"):
            raise StructureError(f"unknown edit kind {kind!r}")
        edits = self._edits
        for tup in tuples:
            edits.append((kind, name, tup))

    def set_constant(self, name: str, value: int) -> None:
        """Stage a constant write."""
        structure = self._structure
        if name not in structure._constants:
            raise StructureError(f"unknown constant {name!r}")
        self._constants[name] = structure._check_element(value)

    def commit(self) -> None:
        """Apply every staged edit.  Infallible by construction; a batch
        commits at most once.  Whole-relation replacements drop that
        relation's hash indexes; single-tuple edits maintain them in place."""
        if self._committed:
            raise StructureError("batch already committed")
        self._committed = True
        structure = self._structure
        for name, rows in self._relations.items():
            structure._relations[name] = rows
            structure._indexes.pop(name, None)
            structure._versions[name] = next(_VERSION_COUNTER)
        for kind, name, tup in self._edits:
            if kind == "add":
                structure._apply_add(name, tup)
            else:
                structure._apply_discard(name, tup)
        for name, value in self._constants.items():
            structure._constants[name] = value

    @property
    def staged_replacements(self) -> dict[str, set[tuple[int, ...]]]:
        """The whole-relation replacements staged so far (read-only view)."""
        return self._relations

    @property
    def staged_edits(self) -> list[tuple[str, str, tuple[int, ...]]]:
        """The single-tuple edits staged so far, in staging order
        (``(kind, relation, tuple)`` with kind ``"add"``/``"discard"``)."""
        return self._edits

    def effects(self) -> dict:
        """JSON-serializable description of exactly what :meth:`commit` will
        do, in commit order: whole-relation replacements under ``"set"``,
        single-tuple edits (staging order) under ``"edits"``, constant writes
        under ``"const"``.  Empty sections are omitted, so a delta-staged
        batch serializes to a few tuples while a full-rewrite batch carries
        whole relations.  Replayable via :meth:`Structure.apply_effects`.
        """
        fx: dict = {}
        if self._relations:
            fx["set"] = {
                name: sorted(list(tup) for tup in rows)
                for name, rows in self._relations.items()
            }
        if self._edits:
            fx["edits"] = [[kind, name, list(tup)] for kind, name, tup in self._edits]
        if self._constants:
            fx["const"] = dict(self._constants)
        return fx


@dataclass(frozen=True)
class FrozenStructure:
    """An immutable, hashable snapshot of a :class:`Structure`."""

    vocabulary: Vocabulary
    n: int
    relations: tuple[tuple[str, frozenset[tuple[int, ...]]], ...]
    constants: tuple[tuple[str, int], ...]

    def thaw(self) -> Structure:
        return Structure(
            self.vocabulary,
            self.n,
            relations={name: rows for name, rows in self.relations},
            constants=dict(self.constants),
        )
