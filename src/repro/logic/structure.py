"""Finite relational structures (relational database instances).

A structure ``A = <{0..n-1}, R1 .. Rr, c1 .. cs>`` interprets every relation
symbol of its vocabulary as a set of integer tuples over the universe
``{0, ..., n-1}`` and every constant symbol as a universe element
(paper, Sec. 2).  The numeric predicates ``<=``, ``<``, ``=``, ``BIT`` and the
numeric constants ``min``/``max`` are built into the logic and are *not*
stored here.

Structures are mutable (the whole point of the paper is updating them), but
every mutator validates its arguments, and :meth:`Structure.copy` /
:meth:`Structure.freeze` support snapshotting for verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from .vocabulary import Vocabulary, VocabularyError

__all__ = ["Structure", "StructureError", "FrozenStructure", "BatchUpdate"]


class StructureError(ValueError):
    """Raised on out-of-universe elements or unknown symbols."""


class Structure:
    """A finite structure over a fixed vocabulary and universe size ``n``."""

    __slots__ = ("vocabulary", "n", "_relations", "_constants")

    def __init__(
        self,
        vocabulary: Vocabulary,
        n: int,
        relations: Mapping[str, Iterable[tuple[int, ...]]] | None = None,
        constants: Mapping[str, int] | None = None,
    ) -> None:
        if n <= 0:
            raise StructureError(f"universe size must be positive, got {n}")
        self.vocabulary = vocabulary
        self.n = n
        self._relations: dict[str, set[tuple[int, ...]]] = {
            rel.name: set() for rel in vocabulary
        }
        # Constants default to 0, matching the paper's initial structure A_0^n.
        self._constants: dict[str, int] = {
            name: 0 for name in vocabulary.constant_names()
        }
        if relations:
            for name, tuples in relations.items():
                for tup in tuples:
                    self.add(name, tup)
        if constants:
            for name, value in constants.items():
                self.set_constant(name, value)

    # -- element/tuple validation ---------------------------------------

    def _check_element(self, value: int) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise StructureError(f"universe elements are ints, got {value!r}")
        if not 0 <= value < self.n:
            raise StructureError(
                f"element {value} outside universe {{0..{self.n - 1}}}"
            )
        return value

    def _check_tuple(self, name: str, tup: tuple[int, ...]) -> tuple[int, ...]:
        arity = self.vocabulary.arity(name)
        tup = tuple(tup)
        if len(tup) != arity:
            raise StructureError(
                f"relation {name!r} has arity {arity}, got tuple {tup!r}"
            )
        for value in tup:
            self._check_element(value)
        return tup

    # -- relation access --------------------------------------------------

    def relation(self, name: str) -> frozenset[tuple[int, ...]]:
        """The current interpretation of relation ``name`` (a copy)."""
        try:
            return frozenset(self._relations[name])
        except KeyError:
            raise StructureError(f"unknown relation {name!r}") from None

    def relation_view(self, name: str) -> set[tuple[int, ...]]:
        """Internal mutable set for ``name`` — callers must not mutate it."""
        try:
            return self._relations[name]
        except KeyError:
            raise StructureError(f"unknown relation {name!r}") from None

    def holds(self, name: str, tup: tuple[int, ...]) -> bool:
        return tuple(tup) in self.relation_view(name)

    def add(self, name: str, tup: tuple[int, ...]) -> None:
        self._relations[name].add(self._check_tuple(name, tup))

    def discard(self, name: str, tup: tuple[int, ...]) -> None:
        self._relations[name].discard(self._check_tuple(name, tup))

    def set_relation(self, name: str, tuples: Iterable[tuple[int, ...]]) -> None:
        """Replace the whole interpretation of ``name``."""
        checked = {self._check_tuple(name, tuple(tup)) for tup in tuples}
        self.relation_view(name)  # raises on unknown name
        self._relations[name] = checked

    def cardinality(self, name: str) -> int:
        return len(self.relation_view(name))

    # -- constant access --------------------------------------------------

    def constant(self, name: str) -> int:
        try:
            return self._constants[name]
        except KeyError:
            raise StructureError(f"unknown constant {name!r}") from None

    def set_constant(self, name: str, value: int) -> None:
        if name not in self._constants:
            raise StructureError(f"unknown constant {name!r}")
        self._constants[name] = self._check_element(value)

    def constants(self) -> dict[str, int]:
        return dict(self._constants)

    # -- whole-structure operations ----------------------------------------

    @property
    def universe(self) -> range:
        return range(self.n)

    def copy(self) -> "Structure":
        clone = Structure(self.vocabulary, self.n)
        clone._relations = {name: set(rows) for name, rows in self._relations.items()}
        clone._constants = dict(self._constants)
        return clone

    def freeze(self) -> "FrozenStructure":
        return FrozenStructure(
            vocabulary=self.vocabulary,
            n=self.n,
            relations=tuple(
                (name, frozenset(rows)) for name, rows in sorted(self._relations.items())
            ),
            constants=tuple(sorted(self._constants.items())),
        )

    def restrict(self, vocabulary: Vocabulary) -> "Structure":
        """Project onto a sub-vocabulary (a reduct, in logic terms)."""
        out = Structure(vocabulary, self.n)
        for rel in vocabulary:
            if not self.vocabulary.has_relation(rel.name):
                raise VocabularyError(f"{rel.name!r} not present in structure")
            out.set_relation(rel.name, self._relations[rel.name])
        for name in vocabulary.constant_names():
            out.set_constant(name, self.constant(name))
        return out

    def expand(
        self,
        vocabulary: Vocabulary,
        relations: Mapping[str, Iterable[tuple[int, ...]]] | None = None,
        constants: Mapping[str, int] | None = None,
    ) -> "Structure":
        """Expand to a larger vocabulary; new symbols start empty/0 unless given."""
        out = Structure(vocabulary, self.n)
        for rel in self.vocabulary:
            out.set_relation(rel.name, self._relations[rel.name])
        for name in self.vocabulary.constant_names():
            out.set_constant(name, self.constant(name))
        if relations:
            for name, tuples in relations.items():
                out.set_relation(name, tuples)
        if constants:
            for name, value in constants.items():
                out.set_constant(name, value)
        return out

    def begin_batch(self) -> "BatchUpdate":
        """Start a staged, all-or-nothing batch of edits (see
        :class:`BatchUpdate`).  Every staging call validates eagerly, so by
        the time :meth:`BatchUpdate.commit` runs nothing can fail and the
        structure is either fully updated or — on any staging error —
        provably untouched."""
        return BatchUpdate(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self.vocabulary == other.vocabulary
            and self.n == other.n
            and self._relations == other._relations
            and self._constants == other._constants
        )

    def __hash__(self) -> int:  # pragma: no cover - mutable, but freeze() hashes
        raise TypeError("Structure is mutable; hash its .freeze() instead")

    def __repr__(self) -> str:
        rels = ", ".join(
            f"{name}:{len(rows)}" for name, rows in sorted(self._relations.items())
        )
        return f"Structure(n={self.n}, {rels})"

    def describe(self) -> str:
        """Multi-line human-readable dump (small structures only)."""
        lines = [f"universe = {{0..{self.n - 1}}}"]
        for name in sorted(self._relations):
            rows = sorted(self._relations[name])
            lines.append(f"{name} = {{{', '.join(map(str, rows))}}}")
        for name, value in sorted(self._constants.items()):
            lines.append(f"{name} = {value}")
        return "\n".join(lines)

    # -- the paper's canonical initial structure ---------------------------

    @staticmethod
    def initial(vocabulary: Vocabulary, n: int) -> "Structure":
        """The initial structure ``A_0^n``: all relations empty, constants 0.

        The paper additionally designates a unary active-domain relation whose
        initial value is {0}; programs that use one set it up themselves.
        """
        return Structure(vocabulary, n)


class BatchUpdate:
    """Staged edits to one :class:`Structure`, committed atomically.

    Staging methods mirror the structure's mutators but only record the edit
    after validating it against the *target* structure's vocabulary and
    universe; the target is not touched until :meth:`commit`.  ``commit``
    performs no validation and no allocation that can fail, so an exception
    anywhere during staging leaves the structure byte-identical to before.

    Edits are applied in commit order: whole-relation replacements first,
    then single-tuple add/discard edits (in staging order), then constants —
    matching the engine's primed-swap-then-mirror update discipline.
    """

    __slots__ = ("_structure", "_relations", "_edits", "_constants", "_committed")

    def __init__(self, structure: Structure) -> None:
        self._structure = structure
        self._relations: dict[str, set[tuple[int, ...]]] = {}
        self._edits: list[tuple[str, str, tuple[int, ...]]] = []
        self._constants: dict[str, int] = {}
        self._committed = False

    def set_relation(self, name: str, tuples: Iterable[tuple[int, ...]]) -> None:
        """Stage a whole-relation replacement."""
        structure = self._structure
        structure.relation_view(name)  # raises on unknown name
        self._relations[name] = {
            structure._check_tuple(name, tuple(tup)) for tup in tuples
        }

    def add(self, name: str, tup: tuple[int, ...]) -> None:
        """Stage a single-tuple insertion."""
        self._edits.append(("add", name, self._structure._check_tuple(name, tup)))

    def discard(self, name: str, tup: tuple[int, ...]) -> None:
        """Stage a single-tuple removal."""
        self._edits.append(("discard", name, self._structure._check_tuple(name, tup)))

    def set_constant(self, name: str, value: int) -> None:
        """Stage a constant write."""
        structure = self._structure
        if name not in structure._constants:
            raise StructureError(f"unknown constant {name!r}")
        self._constants[name] = structure._check_element(value)

    def commit(self) -> None:
        """Apply every staged edit.  Infallible by construction; a batch
        commits at most once."""
        if self._committed:
            raise StructureError("batch already committed")
        self._committed = True
        structure = self._structure
        for name, rows in self._relations.items():
            structure._relations[name] = rows
        for kind, name, tup in self._edits:
            if kind == "add":
                structure._relations[name].add(tup)
            else:
                structure._relations[name].discard(tup)
        for name, value in self._constants.items():
            structure._constants[name] = value


@dataclass(frozen=True)
class FrozenStructure:
    """An immutable, hashable snapshot of a :class:`Structure`."""

    vocabulary: Vocabulary
    n: int
    relations: tuple[tuple[str, frozenset[tuple[int, ...]]], ...]
    constants: tuple[tuple[str, int], ...]

    def thaw(self) -> Structure:
        return Structure(
            self.vocabulary,
            self.n,
            relations={name: rows for name, rows in self.relations},
            constants=dict(self.constants),
        )
