"""Parser for the concrete FO syntax produced by :mod:`repro.logic.printer`.

Grammar (loosest to tightest)::

    iff     := implies ("<->" implies)*
    implies := or ("->" implies)?              # right associative
    or      := and ("|" and)*
    and     := unary ("&" unary)*
    unary   := "~" unary
             | ("exists" | "forall") name+ "." unary
             | "true" | "false"
             | name "(" terms? ")"             # relation atom / BIT
             | term ("=" | "<=" | "<") term
             | "(" iff ")"

Note the quantifier body is a *unary* item: ``exists x. E(x, y) & P(y)``
parses as ``(exists x. E(x, y)) & P(y)``; parenthesize the body to widen the
scope.  This matches the printer exactly, so parse/print round-trips.

Identifiers parse as variables unless they are declared constants (pass
``constants=...``), the numeric constants ``min``/``max``, or integer
literals.
"""

from __future__ import annotations

import re
from typing import Iterable

from .syntax import (
    And,
    Atom,
    Bit,
    BOT,
    Const,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Le,
    Lit,
    Lt,
    Not,
    Or,
    Term,
    TOP,
    Var,
)

__all__ = ["parse_formula", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed formula text."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lpar>\()|(?P<rpar>\))|(?P<comma>,)|(?P<dot>\.)"
    r"|(?P<iff><->)|(?P<implies>->)|(?P<le><=)|(?P<lt><)|(?P<eq>=)"
    r"|(?P<and>&)|(?P<or>\|)|(?P<not>~|!)"
    r"|(?P<int>\d+)|(?P<name>[A-Za-z_][A-Za-z0-9_]*))"
)

_KEYWORDS = {"exists", "forall", "true", "false"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise ParseError(f"unexpected character {text[pos]!r} at {pos}")
            break
        pos = match.end()
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind)))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, text: str, constants: frozenset[str]) -> None:
        self.tokens = _tokenize(text)
        self.pos = 0
        self.constants = constants

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.pos]

    def next(self) -> tuple[str, str]:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str) -> str:
        got_kind, value = self.next()
        if got_kind != kind:
            raise ParseError(f"expected {kind}, got {got_kind} {value!r}")
        return value

    # -- expression levels -------------------------------------------------

    def parse(self) -> Formula:
        formula = self.iff()
        if self.peek()[0] != "eof":
            raise ParseError(f"trailing input at token {self.peek()!r}")
        return formula

    def iff(self) -> Formula:
        left = self.implies()
        while self.peek()[0] == "iff":
            self.next()
            left = Iff(left, self.implies())
        return left

    def implies(self) -> Formula:
        left = self.or_()
        if self.peek()[0] == "implies":
            self.next()
            return Implies(left, self.implies())
        return left

    def or_(self) -> Formula:
        parts = [self.and_()]
        while self.peek()[0] == "or":
            self.next()
            parts.append(self.and_())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def and_(self) -> Formula:
        parts = [self.unary()]
        while self.peek()[0] == "and":
            self.next()
            parts.append(self.unary())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def unary(self) -> Formula:
        kind, value = self.peek()
        if kind == "not":
            self.next()
            return Not(self.unary())
        if kind == "name" and value in ("exists", "forall"):
            self.next()
            names = []
            while self.peek()[0] == "name" and self.peek()[1] not in _KEYWORDS:
                names.append(self.next()[1])
            if not names:
                raise ParseError(f"{value} needs at least one variable")
            self.expect("dot")
            body = self.unary()
            return Exists(tuple(names), body) if value == "exists" else Forall(
                tuple(names), body
            )
        if kind == "name" and value == "true":
            self.next()
            return TOP
        if kind == "name" and value == "false":
            self.next()
            return BOT
        if kind == "lpar":
            self.next()
            inner = self.iff()
            self.expect("rpar")
            return inner
        if kind == "name" and self.tokens[self.pos + 1][0] == "lpar":
            return self.atom()
        return self.comparison()

    def atom(self) -> Formula:
        name = self.expect("name")
        self.expect("lpar")
        args: list[Term] = []
        if self.peek()[0] != "rpar":
            args.append(self.term())
            while self.peek()[0] == "comma":
                self.next()
                args.append(self.term())
        self.expect("rpar")
        if name == "BIT":
            if len(args) != 2:
                raise ParseError("BIT takes exactly two arguments")
            return Bit(args[0], args[1])
        return Atom(name, tuple(args))

    def comparison(self) -> Formula:
        left = self.term()
        kind, _ = self.next()
        right_ctor = {"eq": Eq, "le": Le, "lt": Lt}.get(kind)
        if right_ctor is None:
            raise ParseError(f"expected comparison operator, got {kind}")
        right = self.term()
        return right_ctor(left, right)

    def term(self) -> Term:
        kind, value = self.next()
        if kind == "int":
            return Lit(int(value))
        if kind == "name":
            if value in ("min", "max") or value in self.constants:
                return Const(value)
            if value in _KEYWORDS:
                raise ParseError(f"keyword {value!r} used as a term")
            return Var(value)
        raise ParseError(f"expected a term, got {kind} {value!r}")


def parse_formula(text: str, constants: Iterable[str] = ()) -> Formula:
    """Parse ``text`` into a :class:`~repro.logic.syntax.Formula`.

    ``constants`` lists identifier names to treat as symbolic constants
    rather than variables (``min`` and ``max`` always are).
    """
    return _Parser(text, frozenset(constants)).parse()
