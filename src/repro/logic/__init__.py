"""First-order logic over finite ordered structures — the paper's substrate.

Public surface:

* :class:`Vocabulary`, :class:`Structure` — relational signatures and
  database instances (paper Sec. 2);
* the formula AST in :mod:`repro.logic.syntax` and the combinator DSL in
  :mod:`repro.logic.dsl`;
* :func:`parse_formula` / :func:`format_formula` — concrete syntax;
* three interchangeable evaluators: :func:`holds`/:func:`naive_query`
  (reference semantics), :class:`RelationalEvaluator` (database-style join
  planning; the default), and :class:`DenseEvaluator` (vectorized CRAM[1]
  simulation);
* :func:`duplicator_wins` — EF games for static inexpressibility demos.
"""

from .dense import DenseEvaluator
from .dsl import (
    Rel,
    bit,
    c,
    either_order,
    eq,
    eq2,
    exists,
    forall,
    le,
    lit,
    lt,
    neq,
)
from .evaluation import EvaluationError, eval_term, holds, naive_query
from .explain import explain, plan_events, render_plan
from .games import distinguishing_rank, duplicator_wins, partial_isomorphism
from .parser import ParseError, parse_formula
from .plan import (
    Plan,
    PlanError,
    cached_plan,
    compile_formula,
    plan_depth,
    plan_nodes,
)
from .printer import format_formula
from .structure import BatchUpdate, FrozenStructure, Structure, StructureError
from .syntax import (
    And,
    Atom,
    Bit,
    BOT,
    Const,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    Le,
    Lit,
    Lt,
    Not,
    Or,
    Term,
    TOP,
    TrueF,
    Var,
)
from .relational import Relation, RelationalEvaluator, query
from .transform import (
    connective_depth,
    constants_of,
    formula_size,
    free_vars,
    quantifier_prefix,
    quantifier_rank,
    relations_of,
    simplify,
    standardize_apart,
    substitute,
    to_nnf,
    to_prenex,
)
from .vocabulary import ConstantSymbol, RelationSymbol, Vocabulary, VocabularyError

__all__ = [
    # vocabulary / structure
    "Vocabulary",
    "VocabularyError",
    "RelationSymbol",
    "ConstantSymbol",
    "Structure",
    "FrozenStructure",
    "StructureError",
    "BatchUpdate",
    # syntax
    "Term",
    "Var",
    "Const",
    "Lit",
    "Formula",
    "TrueF",
    "FalseF",
    "TOP",
    "BOT",
    "Atom",
    "Eq",
    "Le",
    "Lt",
    "Bit",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Exists",
    "Forall",
    # dsl
    "Rel",
    "c",
    "lit",
    "eq",
    "neq",
    "le",
    "lt",
    "bit",
    "exists",
    "forall",
    "eq2",
    "either_order",
    # parsing / printing
    "parse_formula",
    "ParseError",
    "format_formula",
    # transforms
    "free_vars",
    "constants_of",
    "relations_of",
    "substitute",
    "standardize_apart",
    "to_nnf",
    "to_prenex",
    "quantifier_prefix",
    "simplify",
    "quantifier_rank",
    "connective_depth",
    "formula_size",
    # evaluation
    "holds",
    "eval_term",
    "naive_query",
    "EvaluationError",
    "Relation",
    "RelationalEvaluator",
    "query",
    "explain",
    "plan_events",
    "render_plan",
    "DenseEvaluator",
    # compiled plans
    "Plan",
    "PlanError",
    "compile_formula",
    "cached_plan",
    "plan_nodes",
    "plan_depth",
    # games
    "duplicator_wins",
    "distinguishing_rank",
    "partial_isomorphism",
]
