"""Combinator DSL for writing FO formulas the way the paper does.

Example (the PARITY update formula of Example 3.2)::

    from repro.logic.dsl import Rel, c, eq, exists

    M = Rel("M")
    x, a = "x", c("a")
    new_m = M(x) | eq(x, a)

Relation symbols are callables producing atoms; ``c`` makes a symbolic
constant (update parameter or vocabulary constant); plain strings are
variables.  Connectives come from operator overloading on formulas
(``& | ~ >>``) plus the quantifier helpers ``exists`` / ``forall``.
"""

from __future__ import annotations

from typing import Sequence

from .syntax import (
    Atom,
    Bit,
    Const,
    Eq,
    Exists,
    Forall,
    Formula,
    Le,
    Lit,
    Lt,
    TermLike,
)

__all__ = [
    "Rel",
    "c",
    "lit",
    "eq",
    "neq",
    "le",
    "lt",
    "bit",
    "exists",
    "forall",
    "eq2",
    "either_order",
]


class Rel:
    """A relation symbol usable as an atom factory: ``E = Rel("E"); E(x, y)``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __call__(self, *args: TermLike) -> Atom:
        return Atom(self.name, args)

    def __repr__(self) -> str:
        return f"Rel({self.name!r})"


def c(name: str) -> Const:
    """A symbolic constant (vocabulary constant or update parameter)."""
    return Const(name)


def lit(value: int) -> Lit:
    """An integer literal."""
    return Lit(value)


def eq(left: TermLike, right: TermLike) -> Formula:
    return Eq(left, right)


def neq(left: TermLike, right: TermLike) -> Formula:
    return ~Eq(left, right)


def le(left: TermLike, right: TermLike) -> Formula:
    return Le(left, right)


def lt(left: TermLike, right: TermLike) -> Formula:
    return Lt(left, right)


def bit(number: TermLike, index: TermLike) -> Formula:
    return Bit(number, index)


def exists(names: Sequence[str] | str, body: Formula) -> Formula:
    return Exists(names, body)


def forall(names: Sequence[str] | str, body: Formula) -> Formula:
    return Forall(names, body)


def eq2(
    x: TermLike, y: TermLike, a: TermLike, b: TermLike
) -> Formula:
    """The paper's ``Eq(x, y, c, d)`` abbreviation:
    ``(x = c & y = d) | (x = d & y = c)``."""
    return (Eq(x, a) & Eq(y, b)) | (Eq(x, b) & Eq(y, a))


def either_order(atom_factory: Rel, x: TermLike, y: TermLike) -> Formula:
    """``R(x, y) | R(y, x)`` — handy for symmetric relations."""
    return atom_factory(x, y) | atom_factory(y, x)
