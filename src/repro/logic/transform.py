"""Syntactic transformations on formulas.

Free variables, constants, substitution, standardize-apart renaming,
negation normal form, boolean simplification, and the two complexity metrics
the paper leans on: *quantifier rank* (space/variables) and *connective
depth* (parallel time — the depth of the CRAM[1] circuit evaluating the
formula).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping

from .syntax import (
    And,
    Atom,
    Bit,
    BOT,
    Const,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    Le,
    Lit,
    Lt,
    Not,
    Or,
    Term,
    TOP,
    TrueF,
    Var,
)

__all__ = [
    "free_vars",
    "constants_of",
    "atoms_of",
    "relations_of",
    "substitute",
    "substitute_term",
    "substitute_constants",
    "substitute_relations",
    "standardize_apart",
    "to_nnf",
    "to_prenex",
    "quantifier_prefix",
    "simplify",
    "quantifier_rank",
    "connective_depth",
    "formula_size",
    "fresh_names",
]


def _term_free(term: Term) -> frozenset[str]:
    return frozenset({term.name}) if isinstance(term, Var) else frozenset()


# Keyed by id() to avoid re-hashing deep formula trees on every lookup; the
# formula object is pinned in the value so the id stays valid.
_FREE_CACHE: dict[int, tuple[Formula, frozenset[str]]] = {}


def free_vars(formula: Formula) -> frozenset[str]:
    """The set of free variable names of ``formula``."""
    cached = _FREE_CACHE.get(id(formula))
    if cached is not None:
        return cached[1]
    if isinstance(formula, (TrueF, FalseF)):
        result: frozenset[str] = frozenset()
    elif isinstance(formula, Atom):
        result = frozenset().union(*(_term_free(a) for a in formula.args)) if formula.args else frozenset()
    elif isinstance(formula, (Eq, Le, Lt)):
        result = _term_free(formula.left) | _term_free(formula.right)
    elif isinstance(formula, Bit):
        result = _term_free(formula.number) | _term_free(formula.index)
    elif isinstance(formula, Not):
        result = free_vars(formula.body)
    elif isinstance(formula, (And, Or)):
        result = frozenset().union(*(free_vars(p) for p in formula.parts)) if formula.parts else frozenset()
    elif isinstance(formula, (Implies, Iff)):
        result = free_vars(formula.left) | free_vars(formula.right)
    elif isinstance(formula, (Exists, Forall)):
        result = free_vars(formula.body) - set(formula.vars)
    else:  # pragma: no cover
        raise TypeError(f"unknown formula node {formula!r}")
    _FREE_CACHE[id(formula)] = (formula, result)
    return result


def _walk(formula: Formula) -> Iterator[Formula]:
    yield formula
    if isinstance(formula, Not):
        yield from _walk(formula.body)
    elif isinstance(formula, (And, Or)):
        for part in formula.parts:
            yield from _walk(part)
    elif isinstance(formula, (Implies, Iff)):
        yield from _walk(formula.left)
        yield from _walk(formula.right)
    elif isinstance(formula, (Exists, Forall)):
        yield from _walk(formula.body)


def atoms_of(formula: Formula) -> list[Atom]:
    """All relation atoms occurring in ``formula`` (with repetition)."""
    return [node for node in _walk(formula) if isinstance(node, Atom)]


def relations_of(formula: Formula) -> frozenset[str]:
    """Names of relation symbols occurring in ``formula``."""
    return frozenset(atom.rel for atom in atoms_of(formula))


def constants_of(formula: Formula) -> frozenset[str]:
    """Names of symbolic constants occurring in ``formula``."""
    names: set[str] = set()
    for node in _walk(formula):
        terms: tuple[Term, ...]
        if isinstance(node, Atom):
            terms = node.args
        elif isinstance(node, (Eq, Le, Lt)):
            terms = (node.left, node.right)
        elif isinstance(node, Bit):
            terms = (node.number, node.index)
        else:
            continue
        names.update(t.name for t in terms if isinstance(t, Const))
    return frozenset(names)


# ---------------------------------------------------------------------------
# Substitution
# ---------------------------------------------------------------------------


def substitute_term(term: Term, mapping: Mapping[str, Term]) -> Term:
    """Replace free variables in ``term`` according to ``mapping``."""
    if isinstance(term, Var) and term.name in mapping:
        return mapping[term.name]
    return term


def substitute(formula: Formula, mapping: Mapping[str, Term]) -> Formula:
    """Capture-avoiding substitution of terms for free variables.

    When a quantifier would capture a variable occurring in a substituted
    term, the bound variable is renamed to a fresh name.
    """
    if not mapping:
        return formula
    if isinstance(formula, (TrueF, FalseF)):
        return formula
    if isinstance(formula, Atom):
        return Atom(formula.rel, tuple(substitute_term(a, mapping) for a in formula.args))
    if isinstance(formula, Eq):
        return Eq(substitute_term(formula.left, mapping), substitute_term(formula.right, mapping))
    if isinstance(formula, Le):
        return Le(substitute_term(formula.left, mapping), substitute_term(formula.right, mapping))
    if isinstance(formula, Lt):
        return Lt(substitute_term(formula.left, mapping), substitute_term(formula.right, mapping))
    if isinstance(formula, Bit):
        return Bit(substitute_term(formula.number, mapping), substitute_term(formula.index, mapping))
    if isinstance(formula, Not):
        return Not(substitute(formula.body, mapping))
    if isinstance(formula, And):
        return And(tuple(substitute(p, mapping) for p in formula.parts))
    if isinstance(formula, Or):
        return Or(tuple(substitute(p, mapping) for p in formula.parts))
    if isinstance(formula, Implies):
        return Implies(substitute(formula.left, mapping), substitute(formula.right, mapping))
    if isinstance(formula, Iff):
        return Iff(substitute(formula.left, mapping), substitute(formula.right, mapping))
    if isinstance(formula, (Exists, Forall)):
        inner = {k: v for k, v in mapping.items() if k not in formula.vars}
        # variables that substituted terms mention, to avoid capture
        clash_pool: set[str] = set()
        for name in free_vars(formula.body) - set(formula.vars):
            if name in inner:
                term = inner[name]
                if isinstance(term, Var):
                    clash_pool.add(term.name)
        renames: dict[str, Term] = {}
        new_vars: list[str] = []
        taken = (
            set(formula.vars)
            | clash_pool
            | free_vars(formula.body)
            | {t.name for t in inner.values() if isinstance(t, Var)}
        )
        fresh = fresh_names(taken)
        for var in formula.vars:
            if var in clash_pool:
                new_name = next(fresh)
                renames[var] = Var(new_name)
                new_vars.append(new_name)
            else:
                new_vars.append(var)
        body = formula.body
        if renames:
            body = substitute(body, renames)
        body = substitute(body, inner)
        ctor = Exists if isinstance(formula, Exists) else Forall
        return ctor(tuple(new_vars), body)
    raise TypeError(f"unknown formula node {formula!r}")  # pragma: no cover


def substitute_constants(formula: Formula, mapping: Mapping[str, Term]) -> Formula:
    """Replace symbolic constants by terms (e.g. turn update parameters into
    quantifiable variables when composing update formulas)."""

    def map_term(term: Term) -> Term:
        if isinstance(term, Const) and term.name in mapping:
            return mapping[term.name]
        return term

    def rec(node: Formula) -> Formula:
        if isinstance(node, Atom):
            return Atom(node.rel, tuple(map_term(t) for t in node.args))
        if isinstance(node, Eq):
            return Eq(map_term(node.left), map_term(node.right))
        if isinstance(node, Le):
            return Le(map_term(node.left), map_term(node.right))
        if isinstance(node, Lt):
            return Lt(map_term(node.left), map_term(node.right))
        if isinstance(node, Bit):
            return Bit(map_term(node.number), map_term(node.index))
        if isinstance(node, Not):
            return Not(rec(node.body))
        if isinstance(node, And):
            return And(tuple(rec(p) for p in node.parts))
        if isinstance(node, Or):
            return Or(tuple(rec(p) for p in node.parts))
        if isinstance(node, Implies):
            return Implies(rec(node.left), rec(node.right))
        if isinstance(node, Iff):
            return Iff(rec(node.left), rec(node.right))
        if isinstance(node, (Exists, Forall)):
            # guard against capturing a substituted variable
            clash = {
                t.name
                for t in mapping.values()
                if isinstance(t, Var) and t.name in node.vars
            }
            if clash:
                raise ValueError(
                    f"constant substitution would be captured by {sorted(clash)}; "
                    "standardize the formula apart first"
                )
            ctor = Exists if isinstance(node, Exists) else Forall
            return ctor(node.vars, rec(node.body))
        return node

    return rec(formula)


def substitute_relations(
    formula: Formula,
    definitions: Mapping[str, tuple[tuple[str, ...], Formula]],
) -> Formula:
    """Second-order substitution: replace every atom ``R(t1..tk)`` for ``R``
    in ``definitions`` by the defining formula with its frame variables
    instantiated to the atom's argument terms (capture-avoiding).

    This is the engine behind composing update formulas (k-edge
    connectivity) and behind the transfer theorem, Proposition 5.3.
    """

    def rec(node: Formula) -> Formula:
        if isinstance(node, Atom) and node.rel in definitions:
            frame, body = definitions[node.rel]
            if len(frame) != len(node.args):
                raise ValueError(
                    f"definition of {node.rel!r} has frame {frame} but the "
                    f"atom has {len(node.args)} arguments"
                )
            arg_vars = {t.name for t in node.args if isinstance(t, Var)}
            body = standardize_apart(body, avoid=arg_vars)
            return substitute(body, dict(zip(frame, node.args)))
        if isinstance(node, Not):
            return Not(rec(node.body))
        if isinstance(node, And):
            return And(tuple(rec(p) for p in node.parts))
        if isinstance(node, Or):
            return Or(tuple(rec(p) for p in node.parts))
        if isinstance(node, Implies):
            return Implies(rec(node.left), rec(node.right))
        if isinstance(node, Iff):
            return Iff(rec(node.left), rec(node.right))
        if isinstance(node, (Exists, Forall)):
            ctor = Exists if isinstance(node, Exists) else Forall
            return ctor(node.vars, rec(node.body))
        return node

    return rec(formula)


def fresh_names(taken: Iterable[str], stem: str = "v") -> Iterator[str]:
    """Yield variable names not in ``taken`` (which is snapshotted)."""
    used = set(taken)
    for index in itertools.count():
        name = f"{stem}{index}"
        if name not in used:
            used.add(name)
            yield name


def standardize_apart(formula: Formula, avoid: Iterable[str] = ()) -> Formula:
    """Rename bound variables so every quantifier binds a distinct name that
    also differs from every free variable (and from ``avoid``).  Needed by
    the dense evaluator, which assigns one tensor axis per variable name,
    and by capture-avoiding second-order substitution."""
    fresh = fresh_names(
        free_vars(formula) | _all_var_names(formula) | set(avoid), stem="q"
    )

    def rec(node: Formula, env: Mapping[str, Term]) -> Formula:
        if isinstance(node, (Exists, Forall)):
            new_vars = [next(fresh) for _ in node.vars]
            inner_env = dict(env)
            inner_env.update(
                {old: Var(new) for old, new in zip(node.vars, new_vars)}
            )
            ctor = Exists if isinstance(node, Exists) else Forall
            return ctor(tuple(new_vars), rec(node.body, inner_env))
        if isinstance(node, Not):
            return Not(rec(node.body, env))
        if isinstance(node, And):
            return And(tuple(rec(p, env) for p in node.parts))
        if isinstance(node, Or):
            return Or(tuple(rec(p, env) for p in node.parts))
        if isinstance(node, Implies):
            return Implies(rec(node.left, env), rec(node.right, env))
        if isinstance(node, Iff):
            return Iff(rec(node.left, env), rec(node.right, env))
        return substitute(node, env)

    return rec(formula, {})


def _all_var_names(formula: Formula) -> set[str]:
    names: set[str] = set()
    for node in _walk(formula):
        if isinstance(node, (Exists, Forall)):
            names.update(node.vars)
        elif isinstance(node, Atom):
            names.update(t.name for t in node.args if isinstance(t, Var))
        elif isinstance(node, (Eq, Le, Lt)):
            names.update(t.name for t in (node.left, node.right) if isinstance(t, Var))
        elif isinstance(node, Bit):
            names.update(
                t.name for t in (node.number, node.index) if isinstance(t, Var)
            )
    return names


# ---------------------------------------------------------------------------
# Normal forms and simplification
# ---------------------------------------------------------------------------


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negations pushed to atoms, ``->``/``<->``
    expanded, double negations removed."""

    def pos(node: Formula) -> Formula:
        if isinstance(node, Not):
            return neg(node.body)
        if isinstance(node, And):
            return And.of(*(pos(p) for p in node.parts))
        if isinstance(node, Or):
            return Or.of(*(pos(p) for p in node.parts))
        if isinstance(node, Implies):
            return Or.of(neg(node.left), pos(node.right))
        if isinstance(node, Iff):
            return Or.of(
                And.of(pos(node.left), pos(node.right)),
                And.of(neg(node.left), neg(node.right)),
            )
        if isinstance(node, Exists):
            return Exists(node.vars, pos(node.body))
        if isinstance(node, Forall):
            return Forall(node.vars, pos(node.body))
        return node

    def neg(node: Formula) -> Formula:
        if isinstance(node, TrueF):
            return BOT
        if isinstance(node, FalseF):
            return TOP
        if isinstance(node, Not):
            return pos(node.body)
        if isinstance(node, And):
            return Or.of(*(neg(p) for p in node.parts))
        if isinstance(node, Or):
            return And.of(*(neg(p) for p in node.parts))
        if isinstance(node, Implies):
            return And.of(pos(node.left), neg(node.right))
        if isinstance(node, Iff):
            return Or.of(
                And.of(pos(node.left), neg(node.right)),
                And.of(neg(node.left), pos(node.right)),
            )
        if isinstance(node, Exists):
            return Forall(node.vars, neg(node.body))
        if isinstance(node, Forall):
            return Exists(node.vars, neg(node.body))
        return Not(node)

    return pos(formula)


def simplify(formula: Formula) -> Formula:
    """Cheap boolean simplification: constant folding, unit laws, trivial
    equalities, vacuous quantifiers.  Semantics-preserving."""
    if isinstance(formula, Not):
        body = simplify(formula.body)
        if isinstance(body, TrueF):
            return BOT
        if isinstance(body, FalseF):
            return TOP
        if isinstance(body, Not):
            return body.body
        return Not(body)
    if isinstance(formula, And):
        return And.of(*(simplify(p) for p in formula.parts))
    if isinstance(formula, Or):
        return Or.of(*(simplify(p) for p in formula.parts))
    if isinstance(formula, Implies):
        left, right = simplify(formula.left), simplify(formula.right)
        if isinstance(left, TrueF):
            return right
        if isinstance(left, FalseF):
            return TOP
        if isinstance(right, TrueF):
            return TOP
        if isinstance(right, FalseF):
            return simplify(Not(left))
        return Implies(left, right)
    if isinstance(formula, Iff):
        left, right = simplify(formula.left), simplify(formula.right)
        if left == right:
            return TOP
        if isinstance(left, TrueF):
            return right
        if isinstance(right, TrueF):
            return left
        if isinstance(left, FalseF):
            return simplify(Not(right))
        if isinstance(right, FalseF):
            return simplify(Not(left))
        return Iff(left, right)
    if isinstance(formula, (Exists, Forall)):
        body = simplify(formula.body)
        live = [v for v in formula.vars if v in free_vars(body)]
        if not live:
            return body
        ctor = Exists if isinstance(formula, Exists) else Forall
        return ctor(tuple(live), body)
    if isinstance(formula, Eq) and formula.left == formula.right:
        return TOP
    if isinstance(formula, Le) and formula.left == formula.right:
        return TOP
    if isinstance(formula, Lt) and formula.left == formula.right:
        return BOT
    if isinstance(formula, (Eq, Le, Lt)):
        left, right = formula.left, formula.right
        if isinstance(left, Lit) and isinstance(right, Lit):
            value = {
                Eq: left.value == right.value,
                Le: left.value <= right.value,
                Lt: left.value < right.value,
            }[type(formula)]
            return TOP if value else BOT
    return formula


def to_prenex(formula: Formula) -> Formula:
    """Prenex normal form: all quantifiers pulled to an outer block over an
    NNF matrix.  Bound variables are standardized apart first, so no capture
    can occur while hoisting.

    The quantifier prefix length of the result bounds the number of tensor
    axes the dense evaluator needs, and its alternation pattern is the
    classic Sigma_k/Pi_k measure of the formula.
    """
    prepared = standardize_apart(to_nnf(formula))

    def pull(node: Formula) -> tuple[list[tuple[type, str]], Formula]:
        if isinstance(node, (Exists, Forall)):
            inner_prefix, matrix = pull(node.body)
            ctor = Exists if isinstance(node, Exists) else Forall
            return [(ctor, v) for v in node.vars] + inner_prefix, matrix
        if isinstance(node, And):
            prefix: list[tuple[type, str]] = []
            parts = []
            for part in node.parts:
                sub_prefix, sub_matrix = pull(part)
                prefix.extend(sub_prefix)
                parts.append(sub_matrix)
            return prefix, And.of(*parts)
        if isinstance(node, Or):
            prefix = []
            parts = []
            for part in node.parts:
                sub_prefix, sub_matrix = pull(part)
                prefix.extend(sub_prefix)
                parts.append(sub_matrix)
            return prefix, Or.of(*parts)
        if isinstance(node, Not):
            # NNF: negations sit on atoms only, nothing to pull
            return [], node
        return [], node

    prefix, matrix = pull(prepared)
    result = matrix
    for ctor, var in reversed(prefix):
        if var in free_vars(result):
            result = ctor((var,), result)
    return result


def quantifier_prefix(formula: Formula) -> list[tuple[str, str]]:
    """The leading quantifier block as ``[("exists"|"forall", var), ...]``."""
    prefix: list[tuple[str, str]] = []
    node = formula
    while isinstance(node, (Exists, Forall)):
        kind = "exists" if isinstance(node, Exists) else "forall"
        prefix.extend((kind, v) for v in node.vars)
        node = node.body
    return prefix


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def quantifier_rank(formula: Formula) -> int:
    """Maximum nesting depth of quantifiers (each block of k variables
    counts k, matching the variable-count resource of the paper)."""
    if isinstance(formula, (Exists, Forall)):
        return len(formula.vars) + quantifier_rank(formula.body)
    if isinstance(formula, Not):
        return quantifier_rank(formula.body)
    if isinstance(formula, (And, Or)):
        return max((quantifier_rank(p) for p in formula.parts), default=0)
    if isinstance(formula, (Implies, Iff)):
        return max(quantifier_rank(formula.left), quantifier_rank(formula.right))
    return 0


def connective_depth(formula: Formula) -> int:
    """Depth of the formula tree = parallel time to evaluate on a CRAM.

    Each connective and each quantifier block is one constant-time parallel
    step (FO = CRAM[1], paper Sec. 5 / [I89b])."""
    if isinstance(formula, (Exists, Forall, Not)):
        body = formula.body
        return 1 + connective_depth(body)
    if isinstance(formula, (And, Or)):
        return 1 + max((connective_depth(p) for p in formula.parts), default=0)
    if isinstance(formula, (Implies, Iff)):
        return 1 + max(
            connective_depth(formula.left), connective_depth(formula.right)
        )
    return 0


def formula_size(formula: Formula) -> int:
    """Number of AST nodes."""
    return sum(1 for _ in _walk(formula))
