"""EXPLAIN: render compiled physical plans and executed join traces.

Dyn-FO update formulas *are* relational-calculus queries, so when one turns
out slow the right tool is a query plan.  Two views are offered:

* :func:`render_plan` — the *static* view: the physical plan a formula
  compiles to (:mod:`repro.logic.plan`), data free, exactly what the plan
  cache replays on every request.
* :func:`explain` / :func:`plan_events` — the *dynamic* view: evaluate a
  formula with tracing enabled and render the executor's steps —
  per-subformula materializations with their column frames and live row
  counts, joins, filters, universe widenings.

>>> from repro.logic import Structure, Vocabulary
>>> from repro.logic.dsl import Rel, exists
>>> E = Rel("E")
>>> s = Structure(Vocabulary.parse("E^2"), 4, relations={"E": [(0, 1), (1, 2)]})
>>> print(explain(exists("z", E("x", "z") & E("z", "y")), s, ("x", "y")))
... # doctest: +ELLIPSIS
plan for frame ('x', 'y') ...
"""

from __future__ import annotations

from typing import Mapping

from .plan import (
    AtomScan,
    CompareScan,
    ConstBind,
    Extend,
    Filter,
    Plan,
    Union,
    plan_children,
    plan_depth,
    plan_nodes,
)
from .printer import format_term
from .relational import RelationalEvaluator
from .structure import Structure
from .syntax import Formula

__all__ = ["explain", "plan_events", "render_plan"]


def _describe_node(node: Plan) -> str:
    kind = type(node).__name__
    if isinstance(node, AtomScan):
        args = ", ".join(format_term(a) for a in node.args)
        kind = f"AtomScan {node.rel}({args})" + (" [direct]" if node.direct else "")
    elif isinstance(node, CompareScan):
        kind = (
            f"CompareScan {format_term(node.left)} "
            f"{node.op} {format_term(node.right)}"
        )
    elif isinstance(node, ConstBind):
        kind = f"ConstBind {node.columns[0]} = {format_term(node.term)}"
    elif isinstance(node, Filter):
        kind = "Filter" + (" NOT" if node.negated else "")
    elif isinstance(node, Extend):
        kind = f"Extend +({', '.join(node.fresh)})"
    elif isinstance(node, Union):
        kind = f"Union of {len(node.parts)}"
    cols = f"({', '.join(node.columns)})" if node.columns else "()"
    label = f"  <- {node.label}" if node.label else ""
    return f"{kind} -> {cols}{label}"


def render_plan(plan: Plan, max_nodes: int = 400) -> str:
    """Render a compiled physical plan as an indented tree.

    Purely static — needs no structure or data; this is exactly what the
    plan cache replays per request.  Shared subplans (evaluated once per
    update by the executors) are printed in full the first time and
    referenced as ``= #k`` afterwards.
    """
    nodes = plan_nodes(plan)
    widest = max(len(node.columns) for node in nodes)
    lines = [
        f"plan: {len(nodes)} nodes, depth {plan_depth(plan)}, "
        f"widest {widest} columns"
    ]
    numbered: dict[int, int] = {}
    shown = 0

    def rec(node: Plan, depth: int) -> None:
        nonlocal shown
        indent = "  " * depth
        if id(node) in numbered:
            lines.append(f"{indent}= #{numbered[id(node)]} (shared)")
            return
        numbered[id(node)] = len(numbered) + 1
        shown += 1
        if shown > max_nodes:
            lines.append(f"{indent}...")
            return
        lines.append(f"{indent}#{numbered[id(node)]} {_describe_node(node)}")
        for child in plan_children(node):
            rec(child, depth + 1)

    rec(plan, 0)
    return "\n".join(lines)


def plan_events(
    formula: Formula,
    structure: Structure,
    frame: tuple[str, ...],
    params: Mapping[str, int] | None = None,
    max_rows: int | None = None,
) -> tuple[list[tuple[int, str, tuple[str, ...], int]], set[tuple[int, ...]]]:
    """Evaluate with tracing; returns (events, result rows).

    Each event is ``(depth, description, columns, row_count)``.
    """
    trace: list = []
    kwargs = {} if max_rows is None else {"max_rows": max_rows}
    evaluator = RelationalEvaluator(structure, params, trace=trace, **kwargs)
    rows = evaluator.rows(formula, frame)
    return trace, rows


def explain(
    formula: Formula,
    structure: Structure,
    frame: tuple[str, ...],
    params: Mapping[str, int] | None = None,
    max_events: int = 200,
) -> str:
    """A human-readable plan for evaluating ``formula`` over ``frame``."""
    events, rows = plan_events(formula, structure, frame, params)
    lines = [
        f"plan for frame {frame} over universe {{0..{structure.n - 1}}} "
        f"-> {len(rows)} rows"
    ]
    shown = events[:max_events]
    for depth, event, columns, count in shown:
        indent = "  " * depth
        if columns:
            lines.append(f"{indent}{event}  cols={list(columns)}  rows={count}")
        else:
            lines.append(f"{indent}{event}")
    if len(events) > max_events:
        lines.append(f"... {len(events) - max_events} more events")
    peak = max((count for (_, _, _, count) in events), default=0)
    lines.append(f"peak intermediate size: {peak} rows over {len(events)} steps")
    return "\n".join(lines)
