"""EXPLAIN for the relational evaluator: render the join plan it executed.

Dyn-FO update formulas *are* relational-calculus queries, so when one turns
out slow the right tool is a query plan.  ``explain`` evaluates a formula
with tracing enabled and renders the planner's steps — per-subformula
materializations with their column frames and row counts, conjunction
planning events (joins, filters, universe widenings), and distribution over
disjunctions.

>>> from repro.logic import Structure, Vocabulary
>>> from repro.logic.dsl import Rel, exists
>>> E = Rel("E")
>>> s = Structure(Vocabulary.parse("E^2"), 4, relations={"E": [(0, 1), (1, 2)]})
>>> print(explain(exists("z", E("x", "z") & E("z", "y")), s, ("x", "y")))
... # doctest: +ELLIPSIS
plan for frame ('x', 'y') ...
"""

from __future__ import annotations

from typing import Mapping

from .relational import RelationalEvaluator
from .structure import Structure
from .syntax import Formula

__all__ = ["explain", "plan_events"]


def plan_events(
    formula: Formula,
    structure: Structure,
    frame: tuple[str, ...],
    params: Mapping[str, int] | None = None,
    max_rows: int | None = None,
) -> tuple[list[tuple[int, str, tuple[str, ...], int]], set[tuple[int, ...]]]:
    """Evaluate with tracing; returns (events, result rows).

    Each event is ``(depth, description, columns, row_count)``.
    """
    trace: list = []
    kwargs = {} if max_rows is None else {"max_rows": max_rows}
    evaluator = RelationalEvaluator(structure, params, trace=trace, **kwargs)
    rows = evaluator.rows(formula, frame)
    return trace, rows


def explain(
    formula: Formula,
    structure: Structure,
    frame: tuple[str, ...],
    params: Mapping[str, int] | None = None,
    max_events: int = 200,
) -> str:
    """A human-readable plan for evaluating ``formula`` over ``frame``."""
    events, rows = plan_events(formula, structure, frame, params)
    lines = [
        f"plan for frame {frame} over universe {{0..{structure.n - 1}}} "
        f"-> {len(rows)} rows"
    ]
    shown = events[:max_events]
    for depth, event, columns, count in shown:
        indent = "  " * depth
        if columns:
            lines.append(f"{indent}{event}  cols={list(columns)}  rows={count}")
        else:
            lines.append(f"{indent}{event}")
    if len(events) > max_events:
        lines.append(f"... {len(events) - max_events} more events")
    peak = max((count for (_, _, _, count) in events), default=0)
    lines.append(f"peak intermediate size: {peak} rows over {len(events)} steps")
    return "\n".join(lines)
