"""Prometheus-style text exposition for the serving layer.

``render_prometheus(service)`` walks the service's counters and every
session's latency histograms into the text format (version 0.0.4) that
Prometheus, VictoriaMetrics, or plain ``curl`` can scrape;
``start_metrics_server`` hosts it on ``/metrics`` from a daemon thread —
the implementation behind ``repro serve --metrics-port``.

Only the stdlib ``http.server`` is used, and the handler holds no state:
every scrape renders a fresh snapshot.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["render_prometheus", "start_metrics_server"]

_PREFIX = "dynfo"


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(value) if isinstance(value, float) else str(value)


def _labels(**labels: str) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render_prometheus(service) -> str:
    """The whole service as Prometheus exposition text."""
    lines: list[str] = []

    def emit(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {_PREFIX}_{name} {help_text}")
        lines.append(f"# TYPE {_PREFIX}_{name} {kind}")

    def sample(name: str, value, **labels: str) -> None:
        lines.append(f"{_PREFIX}_{name}{_labels(**labels)} {_fmt(value)}")

    svc = service.metrics.snapshot()
    emit("uptime_seconds", "gauge", "Seconds since the service started.")
    sample("uptime_seconds", svc["uptime_s"])
    emit("service_requests_total", "counter", "Frames dispatched by the front end.")
    sample("service_requests_total", svc["requests"])
    emit("service_errors_total", "counter", "Requests answered with a typed error.")
    sample("service_errors_total", svc["errors"])

    counter_help = {
        "reads": "Read requests scheduled.",
        "reads_collapsed": "Reads served by joining an in-flight identical read.",
        "writes": "Write requests acknowledged or failed.",
        "errors": "Per-session request errors.",
        "overloads": "Admission-control rejections.",
        "batches": "Group-commit write batches.",
    }
    views = {
        name: session.metrics.prometheus_view()
        for name, session in service.sessions.items()
    }
    for counter, help_text in counter_help.items():
        emit(f"session_{counter}_total", "counter", help_text)
        for name, (counters, _) in sorted(views.items()):
            sample(f"session_{counter}_total", counters[counter], session=name)

    hist_help = {
        "read_latency": "Read latency, admission to result (seconds).",
        "write_latency": "Write latency, enqueue to durable ack (seconds).",
        "queue_wait": "Write queue wait, enqueue to drain pickup (seconds).",
        "batch_commit": "Group-commit batch duration (seconds).",
        "fsync": "Journal group-fsync duration (seconds).",
    }
    for hist, help_text in hist_help.items():
        metric = f"{hist}_seconds"
        emit(metric, "histogram", help_text)
        for name, (_, hists) in sorted(views.items()):
            buckets, sum_ns, count = hists[hist]
            for bound_s, cumulative in buckets:
                sample(
                    f"{metric}_bucket", cumulative, session=name, le=_fmt(bound_s)
                )
            sample(f"{metric}_sum", sum_ns / 1e9, session=name)
            sample(f"{metric}_count", count, session=name)
    return "\n".join(lines) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] != "/metrics":
            self.send_error(404, "only /metrics lives here")
            return
        body = render_prometheus(self.server.service).encode("utf-8")  # type: ignore[attr-defined]
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # quiet: scrapes are not news
        pass


def start_metrics_server(service, host: str = "127.0.0.1", port: int = 9642):
    """Serve ``/metrics`` for ``service`` on a daemon thread; returns the
    HTTP server (``.server_address[1]`` is the bound port, ``.shutdown()``
    stops it)."""
    server = ThreadingHTTPServer((host, port), _MetricsHandler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    thread = threading.Thread(
        target=server.serve_forever, name="dynfo-metrics", daemon=True
    )
    thread.start()
    return server
