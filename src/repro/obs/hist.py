"""Fixed-bucket latency histograms.

The buckets are a 1-2-5 log ladder from 1 microsecond to 50 seconds (24
bounds plus overflow), fixed at import time so every histogram in the
process — and every exposition of one — shares the same boundaries.
Percentiles come back as the upper bound of the bucket the rank falls in
(the usual fixed-bucket estimate; the exact maximum is tracked alongside),
which is plenty for "where did the p99 go" questions while keeping
``record`` to one bisect and one list increment.

Not internally locked: callers (``SessionMetrics``) already serialize
recording and snapshotting under their own lock.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = ["BUCKET_BOUNDS_US", "LatencyHistogram"]

#: Upper bucket bounds in microseconds: 1, 2, 5, 10, ... 50_000_000 (50 s).
BUCKET_BOUNDS_US: tuple[int, ...] = tuple(
    m * 10**e for e in range(8) for m in (1, 2, 5)
)

_BOUNDS_NS = tuple(b * 1_000 for b in BUCKET_BOUNDS_US)


class LatencyHistogram:
    """Counts of observations per fixed latency bucket, in nanoseconds."""

    __slots__ = ("counts", "count", "sum_ns", "max_ns")

    def __init__(self) -> None:
        self.counts = [0] * (len(_BOUNDS_NS) + 1)  # last = overflow (> 50 s)
        self.count = 0
        self.sum_ns = 0
        self.max_ns = 0

    def record(self, ns: int) -> None:
        self.counts[bisect_left(_BOUNDS_NS, ns)] += 1
        self.count += 1
        self.sum_ns += ns
        if ns > self.max_ns:
            self.max_ns = ns

    def percentile_us(self, q: float) -> float:
        """The ``q``-quantile (0 < q <= 1) as the covering bucket's upper
        bound in microseconds, clamped to the observed maximum."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= rank and bucket:
                if index >= len(BUCKET_BOUNDS_US):
                    return round(self.max_ns / 1e3, 1)
                return float(min(BUCKET_BOUNDS_US[index], self.max_ns / 1e3))
        return round(self.max_ns / 1e3, 1)  # pragma: no cover - defensive

    def snapshot(self) -> dict:
        """The JSON-able summary the ``stats`` wire op carries."""
        return {
            "count": self.count,
            "avg_us": round(self.sum_ns / self.count / 1e3, 1) if self.count else 0.0,
            "p50_us": self.percentile_us(0.50),
            "p95_us": self.percentile_us(0.95),
            "p99_us": self.percentile_us(0.99),
            "max_us": round(self.max_ns / 1e3, 1),
        }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound_seconds, cumulative_count)`` pairs plus the +Inf
        bucket — the Prometheus histogram exposition shape."""
        out: list[tuple[float, int]] = []
        seen = 0
        for bound_us, bucket in zip(BUCKET_BOUNDS_US, self.counts):
            seen += bucket
            out.append((bound_us / 1e6, seen))
        out.append((float("inf"), self.count))
        return out
