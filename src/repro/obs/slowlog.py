"""The slow-request log: a ring buffer of the requests that hurt.

Every service request gets a skeleton trace (span per pipeline phase);
when one finishes slower than the threshold, its trace — plus the compiled
plan of the rule or query it exercised — lands here.  The buffer is
bounded (oldest entries fall off), so it is always safe to leave on, and
``repro client slowlog`` reads it over the ``slowlog`` wire op without
grepping server logs.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from .trace import Trace

__all__ = ["SlowLog"]


class SlowLog:
    """Bounded, thread-safe ring of slow-request records."""

    def __init__(self, capacity: int = 64, threshold_ms: float = 250.0) -> None:
        if capacity < 1:
            raise ValueError(f"slow log capacity must be >= 1, got {capacity}")
        if threshold_ms < 0:
            raise ValueError(f"slow log threshold must be >= 0, got {threshold_ms}")
        self.capacity = capacity
        self.threshold_ms = threshold_ms
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._dropped = 0

    def observe(
        self,
        trace: Trace,
        total_ns: int,
        ok: bool,
        plan: str | None = None,
        error: str | None = None,
    ) -> bool:
        """Record the request if it crossed the threshold; returns whether
        it did.  ``plan`` is the rendered physical plan of the offending
        rule/query (the expensive part — callers render it only after the
        threshold check via :meth:`is_slow`)."""
        if not self.is_slow(total_ns):
            return False
        entry = {
            "ts": time.time(),
            "duration_ms": round(total_ns / 1e6, 3),
            "ok": ok,
            **trace.to_wire(total_ns),
        }
        if plan:
            entry["plan"] = plan
        if error:
            entry["error"] = error
        with self._lock:
            if len(self._entries) == self.capacity:
                self._dropped += 1
            self._entries.append(entry)
        return True

    def is_slow(self, total_ns: int) -> bool:
        return total_ns >= self.threshold_ms * 1e6

    def snapshot(self, limit: int | None = None) -> dict:
        """Newest-first entries plus the log's configuration."""
        with self._lock:
            entries = list(self._entries)
            dropped = self._dropped
        entries.reverse()
        if limit is not None:
            entries = entries[:limit]
        return {
            "threshold_ms": self.threshold_ms,
            "capacity": self.capacity,
            "dropped": dropped,
            "entries": entries,
        }
