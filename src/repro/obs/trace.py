"""Per-request traces: one id, one span tree, one request.

A :class:`Trace` is created by the service front end for every request and
threaded through the scheduler, which records one :class:`Span` per
pipeline phase it passes through.  Phases of a single request are strictly
sequential — the submitter thread hands off to the drain winner through
``queue_lock`` and gets the result back through an ``Event``, both of which
establish happens-before — so the span list needs no lock of its own even
though different threads append to it.

The taxonomy (see DESIGN.md §5d):

========================  ====================================================
span                      what the time covers
========================  ====================================================
``queue_wait``            write enqueued -> picked up by the drain winner
``writer_lock_wait``      the batch's exclusive-lock acquisition (shared by
                          every request in the batch; ``batch_size`` meta)
``engine_apply``          one request's transactional apply; children are
                          ``eval:<relation>`` per temporary/primed relation
                          (only when the request asked for a detailed trace)
``journal_append``        the WAL append inside the apply
``journal_fsync``         the batch's group-commit fsync (shared; meta)
``worker_wait``           read submitted -> a pool worker picks it up
``read_lock_wait``        the shared-lock acquisition under write pressure
``eval``                  the read's query evaluation itself
``collapse_join``         a follower waiting on the leading identical read
========================  ====================================================

``total_us`` plus the spans are what ``repro client trace <op ...>`` prints
and what a slow-log entry carries.
"""

from __future__ import annotations

import os
import time

__all__ = ["Span", "Trace", "new_trace_id", "render_trace"]


def new_trace_id() -> str:
    """A fresh 64-bit trace id as 16 hex chars."""
    return os.urandom(8).hex()


class Span:
    """One timed phase of a request, with optional child spans."""

    __slots__ = ("name", "start_ns", "duration_ns", "meta", "children")

    def __init__(
        self,
        name: str,
        start_ns: int,
        duration_ns: int,
        meta: dict | None = None,
    ) -> None:
        self.name = name
        self.start_ns = start_ns
        self.duration_ns = duration_ns
        self.meta = meta
        self.children: list[Span] | None = None

    def add_child(
        self, name: str, start_ns: int, duration_ns: int, meta: dict | None = None
    ) -> "Span":
        child = Span(name, start_ns, duration_ns, meta)
        if self.children is None:
            self.children = []
        self.children.append(child)
        return child

    def to_wire(self, origin_ns: int) -> dict:
        """JSON-able form; times are microseconds relative to the trace
        origin so a client can lay spans on one axis."""
        wire: dict = {
            "name": self.name,
            "start_us": round((self.start_ns - origin_ns) / 1e3, 1),
            "duration_us": round(self.duration_ns / 1e3, 1),
        }
        if self.meta:
            wire["meta"] = self.meta
        if self.children:
            wire["spans"] = [child.to_wire(origin_ns) for child in self.children]
        return wire


class Trace:
    """The span collection for one service request.

    ``detailed`` distinguishes a client-requested trace (``"trace": true``
    in the frame — per-rule engine timings on, span tree echoed in the
    response) from the always-on skeleton every request gets so the slow
    log can explain *any* slow request after the fact.
    """

    #: spans kept per trace; a huge ``apply_script`` stops collecting past
    #: this instead of ballooning one response frame
    MAX_SPANS = 512

    __slots__ = (
        "trace_id",
        "op",
        "session",
        "detailed",
        "origin_ns",
        "spans",
        "spans_dropped",
    )

    def __init__(
        self, op: str, session: str | None = None, detailed: bool = False
    ) -> None:
        self.trace_id = new_trace_id()
        self.op = op
        self.session = session
        self.detailed = detailed
        self.origin_ns = time.monotonic_ns()
        self.spans: list[Span] = []
        self.spans_dropped = 0

    def record(
        self, name: str, start_ns: int, duration_ns: int, meta: dict | None = None
    ) -> Span:
        span = Span(name, start_ns, duration_ns, meta)
        if len(self.spans) >= self.MAX_SPANS:
            self.spans_dropped += 1
        else:
            self.spans.append(span)
        return span

    @property
    def total_ns(self) -> int:
        return time.monotonic_ns() - self.origin_ns

    def to_wire(self, total_ns: int | None = None) -> dict:
        """The whole trace as a JSON-able span tree."""
        wire = {
            "trace_id": self.trace_id,
            "op": self.op,
            "session": self.session,
            "total_us": round((self.total_ns if total_ns is None else total_ns) / 1e3, 1),
            "spans": [span.to_wire(self.origin_ns) for span in self.spans],
        }
        if self.spans_dropped:
            wire["spans_dropped"] = self.spans_dropped
        return wire


def render_trace(wire: dict) -> str:
    """A terminal-friendly view of a wire-form trace (``to_wire`` output),
    used by ``repro client trace``."""
    lines = [
        f"trace {wire.get('trace_id')} :: {wire.get('op')}"
        + (f" on {wire['session']!r}" if wire.get("session") else "")
        + f" :: {wire.get('total_us', 0.0)} us total"
    ]

    def walk(spans: list, depth: int) -> None:
        for span in spans:
            meta = span.get("meta") or {}
            tail = (
                " (" + ", ".join(f"{k}={v}" for k, v in sorted(meta.items())) + ")"
                if meta
                else ""
            )
            lines.append(
                f"{'  ' * depth}+{span['start_us']:>9.1f} us  "
                f"{span['name']:<18} {span['duration_us']:>9.1f} us{tail}"
            )
            walk(span.get("spans") or [], depth + 1)

    walk(wire.get("spans") or [], 1)
    return "\n".join(lines)
