"""Observability for the serving stack: traces, histograms, slow log.

Three pieces, deliberately dependency-free (stdlib only):

* :mod:`.trace` — per-request trace ids and span trees covering every
  pipeline phase (admission, queue wait, lock waits, per-rule engine
  evaluation, journal append, group fsync, collapse-join);
* :mod:`.hist` — fixed-bucket latency histograms (p50/p95/p99/max) that
  replace sum/max-only counters in the session metrics;
* :mod:`.slowlog` — a ring buffer of the slowest requests, each entry
  carrying its span breakdown and the offending rule's compiled plan;
* :mod:`.promexp` — Prometheus-style text exposition of the counters and
  histograms (``repro serve --metrics-port``).

See DESIGN.md §5d for the span taxonomy and bucket layout, and
docs/TUTORIAL.md §9 for the user-facing walkthrough.
"""

from .hist import BUCKET_BOUNDS_US, LatencyHistogram
from .promexp import render_prometheus, start_metrics_server
from .slowlog import SlowLog
from .trace import Span, Trace, new_trace_id

__all__ = [
    "BUCKET_BOUNDS_US",
    "LatencyHistogram",
    "SlowLog",
    "Span",
    "Trace",
    "new_trace_id",
    "render_prometheus",
    "start_metrics_server",
]
