"""The padding adversary of Definition 5.13 / Theorem 5.14.

``PadAdversary`` turns one *real* change to an alternating graph into the n
single-tuple requests PAD demands (one per copy, copy 0 first — the
canonical discipline under which the stage pipeline is provably caught up
whenever the copies are equal again).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..dynfo.requests import Delete, Insert, Request, SetConst

__all__ = ["PadAdversary", "padded_script"]


@dataclass
class PadAdversary:
    """Tracks the real alternating graph and emits padded request batches."""

    n: int
    edges: set[tuple[int, int]] = field(default_factory=set)
    universal: set[int] = field(default_factory=set)
    s: int = 0
    t: int = 0

    def toggle_edge(self, a: int, b: int) -> list[Request]:
        if (a, b) in self.edges:
            self.edges.discard((a, b))
            return [Delete("E3", (copy, a, b)) for copy in range(self.n)]
        self.edges.add((a, b))
        return [Insert("E3", (copy, a, b)) for copy in range(self.n)]

    def toggle_universal(self, v: int) -> list[Request]:
        if v in self.universal:
            self.universal.discard(v)
            return [Delete("A2", (copy, v)) for copy in range(self.n)]
        self.universal.add(v)
        return [Insert("A2", (copy, v)) for copy in range(self.n)]

    def retarget(self, name: str, value: int) -> list[Request]:
        """Setting a constant is one real change = n requests (the set plus
        n-1 pipeline pumps via idempotent re-sets of s)."""
        setattr(self, name, value)
        batch: list[Request] = [SetConst(name, value)]
        batch.extend(SetConst("s", self.s) for _ in range(self.n - 1))
        return batch

    def random_batch(self, rng: random.Random) -> list[Request]:
        roll = rng.random()
        if roll < 0.45:
            return self.toggle_edge(rng.randrange(self.n), rng.randrange(self.n))
        if roll < 0.7:
            return self.toggle_universal(rng.randrange(self.n))
        if roll < 0.85:
            return self.retarget("s", rng.randrange(self.n))
        return self.retarget("t", rng.randrange(self.n))


def padded_script(
    n: int, real_changes: int, seed: int | random.Random = 0
) -> tuple[list[list[Request]], PadAdversary]:
    """A list of padded batches (each one real change) plus the adversary
    carrying the final real input state."""
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    adversary = PadAdversary(n)
    batches = [adversary.random_batch(rng) for _ in range(real_changes)]
    return batches, adversary
