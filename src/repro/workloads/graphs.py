"""Seeded request-script generators for graph problems.

Every generator returns a plain ``list[Request]`` so scripts are
reproducible, serializable (:func:`repro.dynfo.script_to_json`), and
shareable between the tests and the benchmark harness.  Generators that
serve programs with input contracts (acyclic history, forest history,
degree bounds, unique weights) maintain those invariants themselves.
"""

from __future__ import annotations

import random

from ..dynfo.requests import Delete, Insert, Request, SetConst

__all__ = [
    "undirected_script",
    "directed_script",
    "dag_script",
    "forest_script",
    "weighted_script",
    "bounded_degree_script",
    "reach_d_script",
]


def _rng(seed: int | random.Random) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def undirected_script(
    n: int,
    steps: int,
    seed: int | random.Random = 0,
    p_delete: float = 0.45,
    rel: str = "E",
    self_loops: bool = False,
) -> list[Request]:
    """Insert/delete a canonical orientation of undirected edges."""
    rng = _rng(seed)
    script: list[Request] = []
    present: set[tuple[int, int]] = set()
    while len(script) < steps:
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b and not self_loops:
            continue
        key = (min(a, b), max(a, b))
        if key in present and rng.random() < p_delete:
            script.append(Delete(rel, key))
            present.discard(key)
        else:
            script.append(Insert(rel, key))
            present.add(key)
    return script


def directed_script(
    n: int,
    steps: int,
    seed: int | random.Random = 0,
    p_delete: float = 0.45,
    rel: str = "E",
) -> list[Request]:
    """Insert/delete directed edges with no structural invariant."""
    rng = _rng(seed)
    script: list[Request] = []
    present: set[tuple[int, int]] = set()
    while len(script) < steps:
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b:
            continue
        if (a, b) in present and rng.random() < p_delete:
            script.append(Delete(rel, (a, b)))
            present.discard((a, b))
        else:
            script.append(Insert(rel, (a, b)))
            present.add((a, b))
    return script


def dag_script(
    n: int,
    steps: int,
    seed: int | random.Random = 0,
    p_delete: float = 0.45,
    rel: str = "E",
) -> list[Request]:
    """Acyclicity-preserving: edges only point up the vertex order, so every
    prefix of the script denotes a DAG (the contract of Theorem 4.2)."""
    rng = _rng(seed)
    script: list[Request] = []
    present: set[tuple[int, int]] = set()
    while len(script) < steps:
        u = rng.randrange(n - 1)
        v = rng.randrange(u + 1, n)
        if (u, v) in present and rng.random() < p_delete:
            script.append(Delete(rel, (u, v)))
            present.discard((u, v))
        else:
            script.append(Insert(rel, (u, v)))
            present.add((u, v))
    return script


def forest_script(
    n: int,
    steps: int,
    seed: int | random.Random = 0,
    p_delete: float = 0.4,
    rel: str = "E",
) -> list[Request]:
    """Directed-forest-preserving (parent -> child edges, at most one parent
    per vertex, no cycles) — the contract of Theorem 4.5(4)."""
    rng = _rng(seed)
    script: list[Request] = []
    present: set[tuple[int, int]] = set()

    def reaches(start: int, goal: int) -> bool:
        stack, seen = [start], set()
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(child for (p, child) in present if p == node)
        return False

    attempts = 0
    while len(script) < steps and attempts < steps * 20:
        attempts += 1
        if present and rng.random() < p_delete:
            edge = rng.choice(sorted(present))
            script.append(Delete(rel, edge))
            present.discard(edge)
            continue
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        if any(child == v for (_, child) in present):
            continue  # v already has a parent
        if reaches(v, u):
            continue  # would close a cycle
        script.append(Insert(rel, (u, v)))
        present.add((u, v))
    return script


def weighted_script(
    n: int,
    steps: int,
    seed: int | random.Random = 0,
    p_delete: float = 0.45,
    rel: str = "Ew",
) -> list[Request]:
    """Weighted undirected edges with a unique live weight per edge (the
    contract of Theorem 4.4); weights are universe elements."""
    rng = _rng(seed)
    script: list[Request] = []
    present: dict[tuple[int, int], int] = {}
    while len(script) < steps:
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b:
            continue
        key = (min(a, b), max(a, b))
        if key in present and rng.random() < p_delete:
            script.append(Delete(rel, key + (present.pop(key),)))
        elif key not in present:
            weight = rng.randrange(n)
            present[key] = weight
            script.append(Insert(rel, key + (weight,)))
    return script


def bounded_degree_script(
    n: int,
    steps: int,
    max_degree: int = 3,
    seed: int | random.Random = 0,
    p_delete: float = 0.4,
    rel: str = "E",
) -> list[Request]:
    """Undirected edges keeping every vertex's degree <= max_degree (the
    regime the paper highlights for maximal matching)."""
    rng = _rng(seed)
    script: list[Request] = []
    present: set[tuple[int, int]] = set()
    degree = [0] * n
    attempts = 0
    while len(script) < steps and attempts < steps * 20:
        attempts += 1
        if present and rng.random() < p_delete:
            edge = rng.choice(sorted(present))
            script.append(Delete(rel, edge))
            present.discard(edge)
            degree[edge[0]] -= 1
            degree[edge[1]] -= 1
            continue
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b:
            continue
        key = (min(a, b), max(a, b))
        if key in present or degree[a] >= max_degree or degree[b] >= max_degree:
            continue
        script.append(Insert(rel, key))
        present.add(key)
        degree[a] += 1
        degree[b] += 1
    return script


def reach_d_script(
    n: int,
    steps: int,
    seed: int | random.Random = 0,
    p_delete: float = 0.4,
    p_retarget: float = 0.3,
    rel: str = "E",
) -> list[Request]:
    """Directed edges plus occasional ``set(s, .)`` / ``set(t, .)``."""
    rng = _rng(seed)
    script: list[Request] = []
    present: set[tuple[int, int]] = set()
    while len(script) < steps:
        roll = rng.random()
        if roll < p_retarget:
            name = rng.choice(("s", "t"))
            script.append(SetConst(name, rng.randrange(n)))
            continue
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b:
            continue
        if (a, b) in present and rng.random() < p_delete:
            script.append(Delete(rel, (a, b)))
            present.discard((a, b))
        else:
            script.append(Insert(rel, (a, b)))
            present.add((a, b))
    return script
