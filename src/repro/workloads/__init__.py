"""Seeded, contract-preserving request-script generators.

Scripts are plain lists of :class:`~repro.dynfo.requests.Request`, so the
tests, the examples, and the benchmark harness all replay identical
workloads; serialize them with :func:`repro.dynfo.script_to_json`.
"""

from .graphs import (
    bounded_degree_script,
    dag_script,
    directed_script,
    forest_script,
    reach_d_script,
    undirected_script,
    weighted_script,
)
from .padded import PadAdversary, padded_script
from .strings import (
    bitflip_script,
    dyck_edit_script,
    number_bit_script,
    word_edit_script,
)

__all__ = [
    "undirected_script",
    "directed_script",
    "dag_script",
    "forest_script",
    "weighted_script",
    "bounded_degree_script",
    "reach_d_script",
    "bitflip_script",
    "word_edit_script",
    "dyck_edit_script",
    "number_bit_script",
    "PadAdversary",
    "padded_script",
]
