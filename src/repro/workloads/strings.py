"""Seeded request scripts for string-shaped inputs: bit flips (PARITY,
multiplication), word edits (regular languages), and parenthesis edits
(Dyck languages).  All generators preserve their program's well-formedness
contracts (one symbol per position, token budgets)."""

from __future__ import annotations

import random

from ..baselines.automata import DFA
from ..dynfo.requests import Delete, Insert, Request
from ..programs.dyck import left_relation, right_relation
from ..programs.regular import symbol_relation

__all__ = [
    "bitflip_script",
    "word_edit_script",
    "dyck_edit_script",
    "number_bit_script",
]


def _rng(seed: int | random.Random) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def bitflip_script(
    n: int,
    steps: int,
    seed: int | random.Random = 0,
    rel: str = "M",
    p_delete: float = 0.5,
) -> list[Request]:
    """Random single-bit sets/clears on a length-n bit string."""
    rng = _rng(seed)
    script: list[Request] = []
    ones: set[int] = set()
    for _ in range(steps):
        position = rng.randrange(n)
        if position in ones and rng.random() < p_delete:
            script.append(Delete(rel, (position,)))
            ones.discard(position)
        else:
            script.append(Insert(rel, (position,)))
            ones.add(position)
    return script


def word_edit_script(
    dfa: DFA,
    n: int,
    steps: int,
    seed: int | random.Random = 0,
) -> list[Request]:
    """Random edits of a length-n word over the DFA's alphabet: clear a
    position or (re)write it with a symbol, keeping at most one symbol per
    position (a rewrite emits delete-then-insert)."""
    rng = _rng(seed)
    script: list[Request] = []
    word: dict[int, str] = {}
    while len(script) < steps:
        position = rng.randrange(n)
        if position in word and rng.random() < 0.4:
            script.append(Delete(symbol_relation(word.pop(position)), (position,)))
            continue
        if position in word:
            script.append(Delete(symbol_relation(word.pop(position)), (position,)))
        symbol = rng.choice(dfa.alphabet)
        word[position] = symbol
        script.append(Insert(symbol_relation(symbol), (position,)))
    return script


def dyck_edit_script(
    k: int,
    n: int,
    steps: int,
    seed: int | random.Random = 0,
    p_balanced_bias: float = 0.5,
) -> list[Request]:
    """Random parenthesis edits over k types, keeping < n tokens (the
    height-overflow contract).  With probability ``p_balanced_bias`` an
    insert tries to close the most recent open paren (so the workload
    actually visits balanced words rather than almost never)."""
    rng = _rng(seed)
    script: list[Request] = []
    word: dict[int, tuple[str, int]] = {}

    def emit_insert(position: int, side: str, ptype: int) -> None:
        name = left_relation(ptype) if side == "L" else right_relation(ptype)
        word[position] = (side, ptype)
        script.append(Insert(name, (position,)))

    while len(script) < steps:
        position = rng.randrange(n)
        if position in word and rng.random() < 0.45:
            side, ptype = word.pop(position)
            name = left_relation(ptype) if side == "L" else right_relation(ptype)
            script.append(Delete(name, (position,)))
            continue
        if position in word or len(word) >= n - 1:
            continue
        if rng.random() < p_balanced_bias:
            # close the nearest unmatched left paren before `position`
            depth = 0
            for prior in range(position - 1, -1, -1):
                if prior not in word:
                    continue
                side, ptype = word[prior]
                if side == "R":
                    depth += 1
                elif depth > 0:
                    depth -= 1
                else:
                    emit_insert(position, "R", ptype)
                    break
            else:
                emit_insert(position, "L", rng.randrange(1, k + 1))
        else:
            side = rng.choice(("L", "R"))
            emit_insert(position, side, rng.randrange(1, k + 1))
    return script


def number_bit_script(
    n: int,
    steps: int,
    seed: int | random.Random = 0,
) -> list[Request]:
    """Random bit toggles of the factors X and Y, positions < n // 2 (the
    overflow contract of Proposition 4.7)."""
    rng = _rng(seed)
    script: list[Request] = []
    bits = {"X": set(), "Y": set()}
    for _ in range(steps):
        which = rng.choice(("X", "Y"))
        position = rng.randrange(max(1, n // 2))
        if position in bits[which]:
            script.append(Delete(which, (position,)))
            bits[which].discard(position)
        else:
            script.append(Insert(which, (position,)))
            bits[which].add(position)
    return script
