"""Dyn-FO programs: the (f, g) pair of Definition 3.1 in executable form.

A :class:`DynFOProgram` packages

* the input vocabulary ``sigma`` (what users insert into / delete from),
* the auxiliary vocabulary ``tau`` (the data structure ``f(r-bar)``),
* the FO-definable initial auxiliary structure ``f(empty)``,
* one :class:`UpdateRule` per request kind — a set of first-order formulas
  that *simultaneously* redefine auxiliary relations from their pre-update
  values (the primed relations of Section 4), and
* named first-order :class:`Query` objects answered from the auxiliary
  structure alone.

The update formulas may mention the request's components as symbolic
constants (the paper's ``a``, ``b``); the engine binds them per request.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..logic.plan import Plan, compile_formula, specialize_plan
from ..logic.structure import Structure
from ..logic.syntax import Formula
from ..logic.transform import connective_depth, constants_of, free_vars, quantifier_rank
from ..logic.vocabulary import Vocabulary

__all__ = [
    "RelationDef",
    "UpdateRule",
    "Query",
    "DynFOProgram",
    "CompiledProgram",
    "CompiledRule",
    "ProgramError",
    "inline_temporaries",
]


class ProgramError(ValueError):
    """Raised on malformed Dyn-FO programs."""


# Guards the per-program (backend, n) -> CompiledProgram map; plan compilation
# itself is serialized by each CompiledProgram's own lock.
_COMPILE_CACHE_LOCK = threading.Lock()


@dataclass(frozen=True)
class RelationDef:
    """``R'(frame) <-> formula`` — one primed auxiliary relation."""

    name: str
    frame: tuple[str, ...]
    formula: Formula

    def __post_init__(self) -> None:
        if len(set(self.frame)) != len(self.frame):
            raise ProgramError(f"repeated variable in frame {self.frame}")


@dataclass(frozen=True)
class UpdateRule:
    """The simultaneous FO update for one request kind.

    ``params`` names the request components (e.g. ``("a", "b")`` for an edge
    insert); they appear in the formulas as symbolic constants.  Auxiliary
    relations without a :class:`RelationDef` are left unchanged, except that
    the engine mirrors the request itself into a same-named auxiliary input
    relation when present (the trivial ``E' = E u {(a,b)}`` maintenance that
    the paper writes out explicitly).

    ``temporaries`` are the paper's scratch relations ("We define a
    temporary relation T ..."): they are evaluated *in order* against the
    pre-update structure, each may reference the previous ones, and the
    primed definitions may reference them all.  Semantically they are mere
    abbreviations — :func:`inline_temporaries` substitutes them away,
    yielding the equivalent pure first-order rule — but evaluating them once
    per update instead of once per candidate tuple is an enormous speedup.
    """

    params: tuple[str, ...]
    definitions: tuple[RelationDef, ...]
    temporaries: tuple[RelationDef, ...] = ()

    def defined_names(self) -> frozenset[str]:
        return frozenset(d.name for d in self.definitions)

    def temporary_names(self) -> frozenset[str]:
        return frozenset(d.name for d in self.temporaries)


def inline_temporaries(rule: UpdateRule) -> UpdateRule:
    """Substitute every temporary away, producing a temporaries-free rule
    defining the same update (used when composing rules symbolically)."""
    from ..logic.transform import substitute_relations

    expanded: dict[str, tuple[tuple[str, ...], "Formula"]] = {}
    for temp in rule.temporaries:
        formula = substitute_relations(temp.formula, expanded)
        expanded[temp.name] = (temp.frame, formula)
    definitions = tuple(
        RelationDef(
            d.name, d.frame, substitute_relations(d.formula, expanded)
        )
        for d in rule.definitions
    )
    return UpdateRule(params=rule.params, definitions=definitions)


@dataclass(frozen=True)
class CompiledRule:
    """The physical plans of one :class:`UpdateRule`, in evaluation order
    (temporaries first, then the simultaneous definitions)."""

    temporaries: tuple[tuple[str, Plan], ...]
    definitions: tuple[tuple[str, Plan], ...]


class CompiledProgram:
    """Per-(backend, n) plan cache of a :class:`DynFOProgram`.

    A Dyn-FO program's update formulas are *fixed* — only the data changes —
    so each rule is compiled into physical plans exactly once and every
    subsequent request replays the cached plans.  Plans for update rules and
    queries are compiled lazily on first use; :meth:`stats` proves the
    compile-once property: across any request script, ``misses`` equals the
    number of distinct rules and queries exercised, while every further
    lookup is a ``hit``.

    Obtained via :meth:`DynFOProgram.compile`, which caches one instance per
    ``(backend, n)``, so the cache key for a plan is effectively
    ``(rule, backend, n)``.  Engines sharing a program instance share its
    compiled plans (and stats).

    Thread-safe: the serving layer fans read queries out across a thread
    pool, so cache lookups — and the hit/miss counters they bump — can race.
    A single lock guards both maps and all counters; :meth:`stats` returns
    an atomic snapshot.
    """

    def __init__(self, program: "DynFOProgram", backend: str, n: int) -> None:
        self.program = program
        self.backend = backend
        self.n = n
        # And-over-Or distribution helps set-based join chains but multiplies
        # tensor work per arm; the dense executor compiles without it
        self._distribute = backend != "dense"
        # id-keyed with the rule pinned so the id stays valid
        self._rules: dict[int, tuple[UpdateRule, CompiledRule]] = {}
        self._queries: dict[str, Plan] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.compile_ns = 0
        # Parameter-specialized plans, keyed by (rule identity, bound param
        # values) — the delta path's per-request cache, separate from the
        # generic plan cache above (and from its counters, whose semantics
        # tests pin).  Bounded: cleared wholesale when full, like the ad-hoc
        # plan cache.
        self._specialized: dict[
            tuple[int, tuple[tuple[str, int], ...]], tuple[UpdateRule, CompiledRule]
        ] = {}
        self.spec_hits = 0
        self.spec_misses = 0
        self.specialize_ns = 0

    def rule_plans(self, rule: UpdateRule) -> CompiledRule:
        """The compiled plans for ``rule``, compiling on first request."""
        with self._lock:
            entry = self._rules.get(id(rule))
            if entry is not None:
                self.hits += 1
                return entry[1]
            self.misses += 1
            started = time.perf_counter_ns()
            compiled = CompiledRule(
                temporaries=tuple(
                    (d.name, compile_formula(d.formula, d.frame, distribute=self._distribute))
                    for d in rule.temporaries
                ),
                definitions=tuple(
                    (d.name, compile_formula(d.formula, d.frame, distribute=self._distribute))
                    for d in rule.definitions
                ),
            )
            self.compile_ns += time.perf_counter_ns() - started
            self._rules[id(rule)] = (rule, compiled)
            return compiled

    #: entries kept before the specialized cache is cleared wholesale
    SPECIALIZED_LIMIT = 1024

    def specialized_rule_plans(
        self, rule: UpdateRule, params: Mapping[str, int]
    ) -> CompiledRule:
        """Plans for ``rule`` partially evaluated against the bound ``params``.

        Goes through :meth:`rule_plans` first (so the generic cache's
        one-lookup-per-request counter semantics are unchanged), then folds
        the parameter values into the plans via
        :func:`repro.logic.plan.specialize_plan`, cached per (rule, param
        values).  Scripts reuse parameter values heavily — a bounded cache
        makes specialization amortize to a dict lookup.
        """
        base = self.rule_plans(rule)
        key = (id(rule), tuple(sorted(params.items())))
        with self._lock:
            entry = self._specialized.get(key)
            if entry is not None and entry[0] is rule:
                self.spec_hits += 1
                return entry[1]
        started = time.perf_counter_ns()
        values = dict(params)
        memo: dict[int, Plan] = {}
        specialized = CompiledRule(
            temporaries=tuple(
                (name, specialize_plan(plan, values, self.n, memo))
                for name, plan in base.temporaries
            ),
            definitions=tuple(
                (name, specialize_plan(plan, values, self.n, memo))
                for name, plan in base.definitions
            ),
        )
        elapsed = time.perf_counter_ns() - started
        with self._lock:
            self.spec_misses += 1
            self.specialize_ns += elapsed
            if len(self._specialized) >= self.SPECIALIZED_LIMIT:
                self._specialized.clear()
            self._specialized[key] = (rule, specialized)
        return specialized

    def specialized_stats(self) -> dict[str, int]:
        """Counters for the parameter-specialized plan cache: ``hits``,
        ``misses``, total ``specialize_ns``, and live ``entries``."""
        with self._lock:
            return {
                "hits": self.spec_hits,
                "misses": self.spec_misses,
                "specialize_ns": self.specialize_ns,
                "entries": len(self._specialized),
            }

    def query_plan(self, query: "Query") -> Plan:
        """The compiled plan for a named query, compiling on first request."""
        with self._lock:
            plan = self._queries.get(query.name)
            if plan is not None:
                self.hits += 1
                return plan
            self.misses += 1
            started = time.perf_counter_ns()
            plan = compile_formula(
                query.formula, query.frame, distribute=self._distribute
            )
            self.compile_ns += time.perf_counter_ns() - started
            self._queries[query.name] = plan
            return plan

    def stats(self) -> dict[str, int]:
        """Cache counters: ``hits``, ``misses``, and total ``compile_ns``,
        snapshotted atomically (safe to call from concurrent readers)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "compile_ns": self.compile_ns,
            }


@dataclass(frozen=True)
class Query:
    """A named FO query over the auxiliary structure.

    With an empty frame it is a boolean query (a sentence); with a nonempty
    frame it defines a relation.  ``params`` (if any) are bound per call,
    e.g. ``reach(u, v)`` asked for specific vertices.
    """

    name: str
    formula: Formula
    frame: tuple[str, ...] = ()
    params: tuple[str, ...] = ()


@dataclass
class DynFOProgram:
    """An executable witness that a problem is in Dyn-FO (Definition 3.1)."""

    name: str
    input_vocabulary: Vocabulary
    aux_vocabulary: Vocabulary
    initial: Callable[[int], Structure]
    on_insert: Mapping[str, UpdateRule] = field(default_factory=dict)
    on_delete: Mapping[str, UpdateRule] = field(default_factory=dict)
    on_set: Mapping[str, UpdateRule] = field(default_factory=dict)
    # Note 3.3: an arbitrary extended operation alphabet, keyed by name;
    # each rule's params name the operation's arguments.
    on_operation: Mapping[str, UpdateRule] = field(default_factory=dict)
    queries: Mapping[str, Query] = field(default_factory=dict)
    precomputation: bool = False  # True -> this is a Dyn-FO+ program
    # Binary input relations the program interprets symmetrically: a request
    # ins/del(R, a, b) acts on both (a, b) and (b, a), as in Theorem 4.1
    # ("we maintain the undirected nature of the graph by interpreting
    # insert(E, a, b) ... to do the operation on both (a, b) and (b, a)").
    symmetric_inputs: frozenset[str] = frozenset()
    notes: str = ""

    def __post_init__(self) -> None:
        self.validate()

    # -- static validation -------------------------------------------------

    def validate(self) -> None:
        """Check arities, frames, and that formulas only mention ``tau``
        plus the rule's parameters — i.e., that updates really are
        first-order over the auxiliary structure."""
        for rel in self.input_vocabulary:
            if rel.name not in self.on_insert and rel.arity > 0:
                # a program may choose not to support some requests, but the
                # common case is full support; no error, engines will raise.
                pass
        for kind, rules in (
            ("insert", self.on_insert),
            ("delete", self.on_delete),
            ("set", self.on_set),
        ):
            for key, rule in rules.items():
                if kind in ("insert", "delete"):
                    if not self.input_vocabulary.has_relation(key):
                        raise ProgramError(
                            f"{kind} rule for unknown input relation {key!r}"
                        )
                    arity = self.input_vocabulary.arity(key)
                    if len(rule.params) != arity:
                        raise ProgramError(
                            f"{kind} rule for {key!r} names {len(rule.params)} "
                            f"params but the relation has arity {arity}"
                        )
                else:
                    if not self.input_vocabulary.has_constant(key):
                        raise ProgramError(f"set rule for unknown constant {key!r}")
                    if len(rule.params) != 1:
                        raise ProgramError("set rules take exactly one parameter")
                self._validate_rule(kind, key, rule)
        for key, rule in self.on_operation.items():
            self._validate_rule("operation", key, rule)
        for query in self.queries.values():
            self._validate_formula(
                f"query {query.name!r}",
                query.formula,
                frame=query.frame,
                params=query.params,
            )

    def _validate_rule(self, kind: str, key: str, rule: UpdateRule) -> None:
        temp_arities: dict[str, int] = {}
        for temp in rule.temporaries:
            if temp.name in temp_arities or self.aux_vocabulary.has_relation(
                temp.name
            ):
                raise ProgramError(
                    f"{kind} rule for {key!r}: temporary {temp.name!r} "
                    "shadows another relation"
                )
            self._validate_formula(
                f"{kind}({key}) temporary {temp.name!r}",
                temp.formula,
                frame=temp.frame,
                params=rule.params,
                extra_relations=dict(temp_arities),
            )
            temp_arities[temp.name] = len(temp.frame)
        seen: set[str] = set()
        for definition in rule.definitions:
            if definition.name in seen:
                raise ProgramError(
                    f"{kind} rule for {key!r} defines {definition.name!r} twice"
                )
            seen.add(definition.name)
            if not self.aux_vocabulary.has_relation(definition.name):
                raise ProgramError(
                    f"{kind} rule for {key!r} defines unknown auxiliary "
                    f"relation {definition.name!r}"
                )
            arity = self.aux_vocabulary.arity(definition.name)
            if len(definition.frame) != arity:
                raise ProgramError(
                    f"definition of {definition.name!r} has frame "
                    f"{definition.frame} but arity {arity}"
                )
            self._validate_formula(
                f"{kind}({key}) definition of {definition.name!r}",
                definition.formula,
                frame=definition.frame,
                params=rule.params,
                extra_relations=temp_arities,
            )

    def _validate_formula(
        self,
        where: str,
        formula: Formula,
        frame: Sequence[str],
        params: Sequence[str],
        extra_relations: Mapping[str, int] | None = None,
    ) -> None:
        from ..logic.transform import relations_of

        loose = free_vars(formula) - set(frame)
        if loose:
            raise ProgramError(f"{where}: unbound variables {sorted(loose)}")
        for rel in relations_of(formula):
            if not self.aux_vocabulary.has_relation(rel) and rel not in (
                extra_relations or {}
            ):
                raise ProgramError(
                    f"{where}: mentions relation {rel!r} outside tau"
                )
        allowed = (
            set(params)
            | set(self.aux_vocabulary.constant_names())
            | {"min", "max"}
        )
        for const in constants_of(formula):
            if const not in allowed:
                raise ProgramError(f"{where}: unknown constant {const!r}")

    # -- compilation -----------------------------------------------------------

    def compile(self, backend: str, n: int) -> CompiledProgram:
        """The program's plan cache for ``(backend, n)``.

        Returns the same :class:`CompiledProgram` on every call with the same
        key, so rule plans are compiled exactly once per (rule, backend, n)
        no matter how many requests — or engines — exercise them.  Guarded by
        a lock so concurrent sessions over one program instance can never
        race two caches into existence for the same key.
        """
        with _COMPILE_CACHE_LOCK:
            cache: dict[tuple[str, int], CompiledProgram] | None = getattr(
                self, "_compiled", None
            )
            if cache is None:
                cache = {}
                self._compiled = cache
            key = (backend, n)
            compiled = cache.get(key)
            if compiled is None:
                compiled = CompiledProgram(self, backend, n)
                cache[key] = compiled
            return compiled

    # -- metrics --------------------------------------------------------------

    def max_quantifier_rank(self) -> int:
        """Largest quantifier rank over all update and query formulas."""
        return max(
            (quantifier_rank(f) for f in self._all_formulas()), default=0
        )

    def max_connective_depth(self) -> int:
        """Largest connective depth (parallel time per CRAM step)."""
        return max(
            (connective_depth(f) for f in self._all_formulas()), default=0
        )

    def _all_formulas(self) -> Iterable[Formula]:
        for rules in (
            self.on_insert,
            self.on_delete,
            self.on_set,
            self.on_operation,
        ):
            for rule in rules.values():
                for definition in rule.definitions:
                    yield definition.formula
        for query in self.queries.values():
            yield query.formula

    def aux_arity(self) -> int:
        """Largest auxiliary-relation arity (the resource studied in [DS95])."""
        return max((rel.arity for rel in self.aux_vocabulary), default=0)
