"""Persistence: snapshot auxiliary databases to JSON and restore them.

A Dyn-FO engine's entire state *is* its auxiliary structure (Definition
3.1's ``f(r-bar)``), so saving and restoring is plain relational
serialization — the database-systems reading the paper starts from.

``save_engine`` / ``load_engine`` snapshot a running engine; the loader
re-validates that the stored vocabulary matches the program, so a snapshot
cannot be replayed against the wrong program.

Snapshots are crash-safe and self-verifying: ``save_engine`` writes to a
temporary file in the target directory, fsyncs, and ``os.replace``s it into
place (a crash mid-save leaves the previous snapshot intact), and the v2
format carries a SHA-256 checksum of the structure payload that the loader
verifies (a torn or bit-rotted snapshot raises :class:`PersistenceError`
instead of silently resurrecting a corrupt auxiliary database).  v1
snapshots (no checksum) are still loadable.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Mapping

from ..logic.structure import Structure
from ..logic.vocabulary import Vocabulary
from .engine import DynFOEngine
from .program import DynFOProgram

__all__ = [
    "structure_to_dict",
    "structure_from_dict",
    "save_engine",
    "load_engine",
    "PersistenceError",
]

_FORMAT_V1 = "repro.dynfo/1"
_FORMAT = "repro.dynfo/2"


class PersistenceError(ValueError):
    """Raised on malformed or mismatched snapshots."""


def structure_to_dict(structure: Structure) -> dict:
    """A JSON-serializable description of a structure."""
    return {
        "n": structure.n,
        "vocabulary": {
            "relations": [
                [rel.name, rel.arity] for rel in structure.vocabulary
            ],
            "constants": list(structure.vocabulary.constant_names()),
        },
        "relations": {
            rel.name: sorted(structure.relation_view(rel.name))
            for rel in structure.vocabulary
        },
        "constants": structure.constants(),
    }


def structure_from_dict(data: Mapping) -> Structure:
    """Inverse of :func:`structure_to_dict`."""
    try:
        vocabulary = Vocabulary.make(
            relations=[tuple(item) for item in data["vocabulary"]["relations"]],
            constants=data["vocabulary"]["constants"],
        )
        return Structure(
            vocabulary,
            data["n"],
            relations={
                name: [tuple(row) for row in rows]
                for name, rows in data["relations"].items()
            },
            constants=data["constants"],
        )
    except (KeyError, TypeError) as error:
        raise PersistenceError(f"malformed structure snapshot: {error}") from error


def _structure_checksum(structure_dict: Mapping) -> str:
    """Deterministic SHA-256 over the canonical structure payload."""
    canonical = json.dumps(structure_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via temp-file + ``os.replace`` so a crash
    mid-write can never leave a half-written file at ``path``."""
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_engine(engine: DynFOEngine, path: str | Path) -> None:
    """Snapshot ``engine`` (program identity + auxiliary database) to JSON,
    atomically and with a payload checksum."""
    structure_dict = structure_to_dict(engine.structure)
    payload = {
        "format": _FORMAT,
        "program": engine.program.name,
        "n": engine.n,
        "backend": engine.backend_name,
        "requests_applied": engine.requests_applied,
        "checksum": _structure_checksum(structure_dict),
        "structure": structure_dict,
    }
    _atomic_write_text(Path(path), json.dumps(payload, indent=1))


def load_engine(
    program: DynFOProgram, path: str | Path, backend: str | None = None
) -> DynFOEngine:
    """Restore an engine for ``program`` from a snapshot.

    The snapshot must have been produced by the same-named program with the
    same auxiliary vocabulary; requests applied afterwards continue exactly
    where the saved run left off.  v2 snapshots are checksum-verified.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise PersistenceError(f"not a snapshot: {error}") from error
    fmt = payload.get("format")
    if fmt not in (_FORMAT, _FORMAT_V1):
        raise PersistenceError(f"unknown snapshot format {fmt!r}")
    if payload["program"] != program.name:
        raise PersistenceError(
            f"snapshot is for program {payload['program']!r}, not {program.name!r}"
        )
    if fmt == _FORMAT:
        stored = payload.get("checksum")
        actual = _structure_checksum(payload["structure"])
        if stored != actual:
            raise PersistenceError(
                f"snapshot checksum mismatch: stored {stored!r}, payload "
                f"hashes to {actual!r} — the snapshot is corrupt"
            )
    structure = structure_from_dict(payload["structure"])
    if structure.vocabulary != program.aux_vocabulary:
        raise PersistenceError(
            "snapshot vocabulary does not match the program's auxiliary "
            "vocabulary"
        )
    engine = DynFOEngine(
        program, payload["n"], backend=backend or payload["backend"]
    )
    engine.structure = structure
    engine.requests_applied = payload["requests_applied"]
    engine.reset_audit_baseline()
    return engine
