"""Persistence: snapshot auxiliary databases to JSON and restore them.

A Dyn-FO engine's entire state *is* its auxiliary structure (Definition
3.1's ``f(r-bar)``), so saving and restoring is plain relational
serialization — the database-systems reading the paper starts from.

``save_engine`` / ``load_engine`` snapshot a running engine; the loader
re-validates that the stored vocabulary matches the program, so a snapshot
cannot be replayed against the wrong program.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from ..logic.structure import Structure
from ..logic.vocabulary import Vocabulary
from .engine import DynFOEngine
from .program import DynFOProgram

__all__ = [
    "structure_to_dict",
    "structure_from_dict",
    "save_engine",
    "load_engine",
    "PersistenceError",
]

_FORMAT = "repro.dynfo/1"


class PersistenceError(ValueError):
    """Raised on malformed or mismatched snapshots."""


def structure_to_dict(structure: Structure) -> dict:
    """A JSON-serializable description of a structure."""
    return {
        "n": structure.n,
        "vocabulary": {
            "relations": [
                [rel.name, rel.arity] for rel in structure.vocabulary
            ],
            "constants": list(structure.vocabulary.constant_names()),
        },
        "relations": {
            rel.name: sorted(structure.relation_view(rel.name))
            for rel in structure.vocabulary
        },
        "constants": structure.constants(),
    }


def structure_from_dict(data: Mapping) -> Structure:
    """Inverse of :func:`structure_to_dict`."""
    try:
        vocabulary = Vocabulary.make(
            relations=[tuple(item) for item in data["vocabulary"]["relations"]],
            constants=data["vocabulary"]["constants"],
        )
        return Structure(
            vocabulary,
            data["n"],
            relations={
                name: [tuple(row) for row in rows]
                for name, rows in data["relations"].items()
            },
            constants=data["constants"],
        )
    except (KeyError, TypeError) as error:
        raise PersistenceError(f"malformed structure snapshot: {error}") from error


def save_engine(engine: DynFOEngine, path: str | Path) -> None:
    """Snapshot ``engine`` (program identity + auxiliary database) to JSON."""
    payload = {
        "format": _FORMAT,
        "program": engine.program.name,
        "n": engine.n,
        "backend": engine.backend_name,
        "requests_applied": engine.requests_applied,
        "structure": structure_to_dict(engine.structure),
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_engine(
    program: DynFOProgram, path: str | Path, backend: str | None = None
) -> DynFOEngine:
    """Restore an engine for ``program`` from a snapshot.

    The snapshot must have been produced by the same-named program with the
    same auxiliary vocabulary; requests applied afterwards continue exactly
    where the saved run left off.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise PersistenceError(f"not a snapshot: {error}") from error
    if payload.get("format") != _FORMAT:
        raise PersistenceError(f"unknown snapshot format {payload.get('format')!r}")
    if payload["program"] != program.name:
        raise PersistenceError(
            f"snapshot is for program {payload['program']!r}, not {program.name!r}"
        )
    structure = structure_from_dict(payload["structure"])
    if structure.vocabulary != program.aux_vocabulary:
        raise PersistenceError(
            "snapshot vocabulary does not match the program's auxiliary "
            "vocabulary"
        )
    engine = DynFOEngine(
        program, payload["n"], backend=backend or payload["backend"]
    )
    engine.structure = structure
    engine.requests_applied = payload["requests_applied"]
    return engine
