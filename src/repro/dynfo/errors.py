"""The engine's typed error taxonomy.

A Dyn-FO run's entire state is its auxiliary structure (Definition 3.1), so
a half-applied update silently poisons every future query.  The hardened
engine therefore classifies failures precisely:

* :class:`RequestValidationError` — the request itself is malformed (wrong
  arity, out-of-universe element, unknown symbol); rejected before any
  evaluation happens.
* :class:`UpdateError` — the request was well-formed but applying it failed
  (a buggy update formula, a misbehaving backend, an out-of-universe row);
  the transactional apply guarantees the auxiliary structure is untouched.
* :class:`IntegrityError` — an audit found the live auxiliary structure
  diverging from a from-scratch replay; carries a delta-debugging-minimized
  repro script.
* :class:`JournalError` — the write-ahead request journal is unreadable or
  inconsistent with the engine state it is replayed onto.

All of them subclass :class:`EngineError` (a :class:`ValueError`), so
callers may catch the whole taxonomy with one clause.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from .requests import Request

__all__ = [
    "EngineError",
    "RequestValidationError",
    "UpdateError",
    "IntegrityError",
    "JournalError",
]


class EngineError(ValueError):
    """Base class for all Dyn-FO engine failures."""


class RequestValidationError(EngineError):
    """A request was rejected before evaluation (bad arity, bad element,
    unknown symbol).  The auxiliary structure is untouched."""


class UpdateError(EngineError):
    """Evaluating or staging an update failed mid-flight.  The transactional
    apply rolled everything back: the auxiliary structure is untouched and
    the request may be retried."""


class IntegrityError(EngineError):
    """The auxiliary structure diverged from its from-scratch oracle replay.

    ``repro`` is a (delta-debugging-minimized, never longer than the audited
    script) request script that reproduces the divergence when replayed
    through the engine's configured backend versus a pristine one.
    ``detail`` names the diverging relations/constants.
    """

    def __init__(
        self,
        message: str,
        repro: Sequence["Request"] = (),
        detail: str = "",
    ) -> None:
        super().__init__(message)
        self.repro: tuple["Request", ...] = tuple(repro)
        self.detail = detail


class JournalError(EngineError):
    """The request journal is corrupt mid-file or inconsistent with the
    engine it is being replayed onto."""
