"""Symbolic composition of update rules.

The k-edge-connectivity query of Theorem 4.5(2) is answered by "composing
the Dyn-FO formula (for a single deletion) k times": the level-i formulas
define each auxiliary relation after i hypothetical deletions with
parameters ``a_i``, ``b_i``, entirely as first-order formulas over the
*current* auxiliary structure.  :func:`compose_rule` builds those formulas
using capture-avoiding second-order substitution.
"""

from __future__ import annotations

from ..logic.syntax import Const, Formula
from ..logic.transform import substitute_constants, substitute_relations
from .program import UpdateRule

__all__ = ["compose_rule", "rule_from_composition"]


def compose_rule(
    rule: UpdateRule,
    levels: int,
    param_namer=lambda base, level: f"{base}{level}",
) -> dict[str, tuple[tuple[str, ...], Formula]]:
    """Apply ``rule`` symbolically ``levels`` times.

    Returns ``{relation: (frame, formula)}`` where the formula describes the
    relation after ``levels`` applications of the rule with parameters
    renamed per level (``a -> a1, a2, ...``).  Relations the rule does not
    define pass through unchanged.
    """
    if levels < 0:
        raise ValueError("levels must be >= 0")

    current: dict[str, tuple[tuple[str, ...], Formula]] = {}
    for level in range(1, levels + 1):
        renames = {
            base: Const(param_namer(base, level)) for base in rule.params
        }
        layer: dict[str, tuple[tuple[str, ...], Formula]] = {}
        for definition in rule.definitions:
            formula = substitute_constants(definition.formula, renames)
            if current:
                formula = substitute_relations(formula, current)
            layer[definition.name] = (definition.frame, formula)
        merged = dict(current)
        merged.update(layer)
        current = merged
    return current


def rule_from_composition(
    rule: UpdateRule,
    levels: int,
    param_namer=lambda base, level: f"{base}{level}",
) -> UpdateRule:
    """Package ``levels`` symbolic applications of ``rule`` as a single
    :class:`UpdateRule` — the engine behind extended operation sets (Note
    3.3): an operation "apply this rule k times" becomes one simultaneous
    first-order step with k-fold parameters ``a1, b1, .., ak, bk``."""
    from .program import RelationDef, inline_temporaries

    composed = compose_rule(inline_temporaries(rule), levels, param_namer)
    params = tuple(
        param_namer(base, level)
        for level in range(1, levels + 1)
        for base in rule.params
    )
    definitions = tuple(
        RelationDef(name, frame, formula)
        for name, (frame, formula) in composed.items()
    )
    return UpdateRule(params=params, definitions=definitions)
