"""The semi-dynamic classes Dyn_s-C (Section 3.1).

"In the above, if no deletes are allowed then we get the class Dyn_s-C, the
semi-dynamic version of C."  :func:`semidynamic` restricts a program to its
insert-only fragment: the resulting engine refuses deletions, and the
programs become simpler objects to reason about (e.g. REACH_u's insert rule
alone is incremental transitive-closure maintenance with no reconnection
machinery ever exercised).
"""

from __future__ import annotations

from dataclasses import replace

from .program import DynFOProgram

__all__ = ["semidynamic"]


def semidynamic(program: DynFOProgram, allow_set: bool = True) -> DynFOProgram:
    """The Dyn_s (insert-only) restriction of ``program``.

    Deletion rules are dropped, so the engine raises ``UnsupportedRequest``
    on any delete; ``set`` requests are kept unless ``allow_set`` is False.
    Everything else (auxiliary vocabulary, insert rules, queries) is shared
    with the original program.
    """
    return replace(
        program,
        name=f"{program.name}_semidynamic",
        on_delete={},
        on_set=program.on_set if allow_set else {},
        notes=(
            f"Dyn_s restriction of {program.name!r} (Section 3.1: no "
            "deletes).  " + program.notes
        ),
    )
