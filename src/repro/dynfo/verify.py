"""Verification harness: replay request scripts, check every answer.

The heart of the reproduction: a Dyn-FO program is *correct* when, after any
request prefix, every query agrees with a from-scratch (static) recomputation
on the input structure the prefix denotes.  :class:`ReplayHarness` maintains
the shadow input structure and invokes problem-specific
:class:`OracleChecker` callbacks after each request.

Two checker styles are supported:

* exact — compare the engine's answer with the oracle's unique answer
  (connectivity, parity, products, ...);
* property — validate an answer that is not unique (a maximal matching, a
  tie-broken spanning forest) against the defining property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Protocol, Sequence

from ..logic.structure import Structure
from .engine import DynFOEngine
from .minimize import minimize_script
from .program import DynFOProgram
from .requests import Request, apply_request

if TYPE_CHECKING:  # pragma: no cover
    from .journal import RequestJournal

__all__ = [
    "OracleChecker",
    "VerificationError",
    "ReplayHarness",
    "verify_program",
    "check_memoryless",
    "minimize_script",
]


class VerificationError(AssertionError):
    """A Dyn-FO program disagreed with its oracle."""


class OracleChecker(Protocol):
    """Problem-specific consistency check, called after every request."""

    def __call__(self, inputs: Structure, engine: DynFOEngine) -> None:
        """Raise :class:`VerificationError` on any discrepancy."""


@dataclass
class ReplayHarness:
    """Runs a program and its shadow input structure in lock-step."""

    program: DynFOProgram
    n: int
    backend: str = "relational"
    checkers: Sequence[OracleChecker] = ()
    check_every: int = 1
    audit_every: int = 0
    journal: "RequestJournal | None" = None
    max_rows: int | None = None
    use_delta: bool = True
    engine: DynFOEngine = field(init=False)
    inputs: Structure = field(init=False)
    steps: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.engine = DynFOEngine(
            self.program,
            self.n,
            backend=self.backend,
            audit_every=self.audit_every,
            journal=self.journal,
            max_rows=self.max_rows,
            use_delta=self.use_delta,
        )
        self.inputs = Structure.initial(self.program.input_vocabulary, self.n)

    def step(self, request: Request) -> None:
        """Apply one request to both sides, then run due checkers."""
        self.engine.apply(request)
        apply_request(self.inputs, request, self.program.symmetric_inputs)
        self.steps += 1
        if self.check_every and self.steps % self.check_every == 0:
            self.check_now(context=str(request))

    def run(self, script: Iterable[Request]) -> None:
        for request in script:
            self.step(request)

    def check_now(self, context: str = "") -> None:
        for checker in self.checkers:
            try:
                checker(self.inputs, self.engine)
            except VerificationError as error:
                raise VerificationError(
                    f"{self.program.name} failed after step {self.steps}"
                    f"{' (' + context + ')' if context else ''}: {error}"
                ) from None

    def check_input_mirrored(self) -> None:
        """The auxiliary structure must embed the true input structure."""
        mirrored = self.engine.input_snapshot()
        if mirrored != self.inputs:
            raise VerificationError(
                f"{self.program.name}: auxiliary copy of the input diverged\n"
                f"expected:\n{self.inputs.describe()}\n"
                f"got:\n{mirrored.describe()}"
            )


def verify_program(
    program: DynFOProgram,
    n: int,
    script: Iterable[Request],
    checkers: Sequence[OracleChecker],
    backend: str = "relational",
    check_every: int = 1,
    check_mirror: bool = True,
    audit_every: int = 0,
    journal: "RequestJournal | None" = None,
    max_rows: int | None = None,
    use_delta: bool = True,
) -> ReplayHarness:
    """Replay ``script`` checking after every ``check_every`` requests.

    ``audit_every``/``journal``/``max_rows``/``use_delta`` are forwarded to
    the engine (see :class:`DynFOEngine`): the run then additionally
    self-audits against from-scratch replays, journals every request to a
    write-ahead log, caps the evaluation budget per update, and/or falls back
    to full-rematerialization staging (``use_delta=False``).

    Returns the harness (useful for further probing).  Raises
    :class:`VerificationError` on the first discrepancy.
    """
    harness = ReplayHarness(
        program,
        n,
        backend=backend,
        checkers=checkers,
        check_every=check_every,
        audit_every=audit_every,
        journal=journal,
        max_rows=max_rows,
        use_delta=use_delta,
    )
    for request in script:
        harness.step(request)
        if check_mirror:
            harness.check_input_mirrored()
    return harness


def check_memoryless(
    program: DynFOProgram,
    n: int,
    script_a: Sequence[Request],
    script_b: Sequence[Request],
    backend: str = "relational",
) -> None:
    """Check the paper's *memoryless* property on one witness pair: two
    scripts denoting the same input structure must produce the same
    auxiliary structure."""
    from .requests import evaluate_script

    input_a = evaluate_script(
        program.input_vocabulary, n, script_a, program.symmetric_inputs
    )
    input_b = evaluate_script(
        program.input_vocabulary, n, script_b, program.symmetric_inputs
    )
    if input_a != input_b:
        raise ValueError(
            "memorylessness witness scripts denote different input structures"
        )
    engine_a = DynFOEngine(program, n, backend=backend)
    engine_a.run(script_a)
    engine_b = DynFOEngine(program, n, backend=backend)
    engine_b.run(script_b)
    if engine_a.aux_snapshot() != engine_b.aux_snapshot():
        raise VerificationError(
            f"{program.name} is not memoryless on the given scripts:\n"
            f"A:\n{engine_a.structure.describe()}\n"
            f"B:\n{engine_b.structure.describe()}"
        )


def exact_boolean_checker(
    query_name: str, oracle: Callable[[Structure], bool]
) -> OracleChecker:
    """Checker comparing a boolean query with ``oracle(inputs)``."""

    def check(inputs: Structure, engine: DynFOEngine) -> None:
        expected = oracle(inputs)
        got = engine.ask(query_name)
        if expected != got:
            raise VerificationError(
                f"query {query_name!r}: oracle says {expected}, engine says {got}\n"
                f"input:\n{inputs.describe()}"
            )

    return check


def exact_relation_checker(
    query_name: str,
    oracle: Callable[[Structure], set[tuple[int, ...]]],
) -> OracleChecker:
    """Checker comparing a relational query with ``oracle(inputs)``."""

    def check(inputs: Structure, engine: DynFOEngine) -> None:
        expected = set(oracle(inputs))
        got = engine.query(query_name)
        if expected != got:
            missing = sorted(expected - got)[:8]
            extra = sorted(got - expected)[:8]
            raise VerificationError(
                f"query {query_name!r} mismatch; missing={missing} extra={extra}\n"
                f"input:\n{inputs.describe()}"
            )

    return check
