"""Delta debugging (Zeller's ddmin) over request scripts.

When an audit finds the auxiliary structure diverging from its from-scratch
replay, handing the operator the whole request history is useless at
production scale.  :func:`minimize_script` shrinks a failing script to a
small subsequence that still exhibits the failure, so the
:class:`~.errors.IntegrityError` can carry an actionable repro.

The minimizer is generic: ``predicate(script)`` must return ``True`` when
the (sub)script still fails.  The result is *1-minimal up to the chunk
granularity explored* and never longer than the input; when the predicate
does not even hold on the full script, the input is returned unchanged.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

__all__ = ["minimize_script"]

T = TypeVar("T")


def minimize_script(
    script: Sequence[T],
    predicate: Callable[[tuple[T, ...]], bool],
    max_tests: int = 2000,
) -> tuple[T, ...]:
    """Shrink ``script`` to a small subsequence on which ``predicate`` still
    holds (classic ddmin).  ``max_tests`` bounds predicate invocations so a
    pathological oracle cannot stall the audit path."""
    current = tuple(script)
    if not current or not predicate(current):
        return current
    tests = 0
    granularity = 2
    while len(current) >= 2:
        chunk, remainder = divmod(len(current), granularity)
        starts = []
        offset = 0
        for i in range(granularity):
            size = chunk + (1 if i < remainder else 0)
            starts.append((offset, offset + size))
            offset += size
        reduced = False
        # reduce to complement: drop one chunk at a time
        for lo, hi in starts:
            candidate = current[:lo] + current[hi:]
            if not candidate:
                continue
            tests += 1
            if tests > max_tests:
                return current
            if predicate(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        # reduce to subset: keep one chunk alone
        if not reduced:
            for lo, hi in starts:
                candidate = current[lo:hi]
                if len(candidate) >= len(current):
                    continue
                tests += 1
                if tests > max_tests:
                    return current
                if predicate(candidate):
                    current = candidate
                    granularity = 2
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current
