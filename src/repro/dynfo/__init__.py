"""Dynamic complexity machinery: Dyn-FO programs, engine, verification.

This package is the executable form of Section 3 of the paper: the request
alphabet (Eq. 3.1), Dyn-FO programs as bundles of first-order update rules
(Definition 3.1), the synchronous update engine, and the replay/oracle
verification harness used throughout the tests.
"""

from .compose import compose_rule
from .engine import BACKENDS, DynFOEngine, UnsupportedRequest
from .errors import (
    EngineError,
    IntegrityError,
    JournalError,
    RequestValidationError,
    UpdateError,
)
from .faults import FaultPlan, FaultyBackend, InjectedFault
from .journal import RequestJournal, read_journal, recover
from .minimize import minimize_script
from .semidynamic import semidynamic
from .persistence import (
    PersistenceError,
    load_engine,
    save_engine,
    structure_from_dict,
    structure_to_dict,
)
from .program import (
    DynFOProgram,
    ProgramError,
    Query,
    RelationDef,
    UpdateRule,
    inline_temporaries,
)
from .requests import (
    Delete,
    Insert,
    Operation,
    Request,
    SetConst,
    apply_request,
    evaluate_script,
    request_from_item,
    request_to_item,
    script_from_json,
    script_to_json,
)
from .verify import (
    OracleChecker,
    ReplayHarness,
    VerificationError,
    check_memoryless,
    exact_boolean_checker,
    exact_relation_checker,
    verify_program,
)

__all__ = [
    "DynFOEngine",
    "BACKENDS",
    "UnsupportedRequest",
    "EngineError",
    "RequestValidationError",
    "UpdateError",
    "IntegrityError",
    "JournalError",
    "FaultPlan",
    "FaultyBackend",
    "InjectedFault",
    "RequestJournal",
    "read_journal",
    "recover",
    "minimize_script",
    "DynFOProgram",
    "ProgramError",
    "compose_rule",
    "inline_temporaries",
    "semidynamic",
    "save_engine",
    "load_engine",
    "structure_to_dict",
    "structure_from_dict",
    "PersistenceError",
    "Query",
    "RelationDef",
    "UpdateRule",
    "Request",
    "Insert",
    "Delete",
    "SetConst",
    "Operation",
    "apply_request",
    "evaluate_script",
    "script_to_json",
    "script_from_json",
    "request_to_item",
    "request_from_item",
    "OracleChecker",
    "ReplayHarness",
    "VerificationError",
    "verify_program",
    "check_memoryless",
    "exact_boolean_checker",
    "exact_relation_checker",
]
