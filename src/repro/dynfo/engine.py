"""The Dyn-FO execution engine.

Maintains the auxiliary structure ``f(r-bar)`` of Definition 3.1 and applies
the program's first-order update rules per request, with the paper's
*simultaneous* (synchronous) semantics: every primed relation is computed
against the pre-update structure, then all are swapped in atomically.

Three evaluation backends are available (see DESIGN.md E15):

* ``"relational"`` — database-style join planning (default, fastest in
  typical sparse cases);
* ``"dense"`` — vectorized boolean tensors, a literal CRAM[1] simulation;
* ``"naive"`` — brute-force reference semantics (small n only).
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..logic.dense import DenseEvaluator
from ..logic.evaluation import naive_query
from ..logic.relational import RelationalEvaluator
from ..logic.structure import Structure
from ..logic.syntax import Const, Formula, Lit, Term
from ..logic.transform import substitute
from .program import DynFOProgram, Query, UpdateRule
from .requests import Delete, Insert, Operation, Request, SetConst, apply_request

__all__ = ["DynFOEngine", "BACKENDS", "UnsupportedRequest"]


class UnsupportedRequest(ValueError):
    """Raised when a program has no rule for the given request kind."""


class _NaiveBackend:
    """Adapter giving the naive evaluator the backend interface."""

    def __init__(self, structure: Structure, params: Mapping[str, int]) -> None:
        self.structure = structure
        self.params = params

    def rows(self, formula: Formula, frame: tuple[str, ...]) -> set[tuple[int, ...]]:
        return naive_query(formula, self.structure, frame, self.params)

    def truth(self, sentence: Formula) -> bool:
        return bool(naive_query(sentence, self.structure, (), self.params))


BACKENDS: dict[str, Callable[..., object]] = {
    "relational": RelationalEvaluator,
    "dense": DenseEvaluator,
    "naive": _NaiveBackend,
}


class DynFOEngine:
    """Runs one :class:`DynFOProgram` at a fixed universe size ``n``."""

    def __init__(
        self,
        program: DynFOProgram,
        n: int,
        backend: str = "relational",
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; pick from {sorted(BACKENDS)}")
        self.program = program
        self.n = n
        self.backend_name = backend
        self._backend_cls = BACKENDS[backend]
        self.structure = program.initial(n)
        if self.structure.vocabulary != program.aux_vocabulary:
            raise ValueError("initial structure has the wrong vocabulary")
        if self.structure.n != n:
            raise ValueError("initial structure has the wrong universe size")
        self.requests_applied = 0
        # work accounting for the last request: how many auxiliary tuples
        # the simultaneous FO step produced (the "parallel work" measure
        # used by experiment E19's history-independence check)
        self.last_update_stats: dict[str, int] = {
            "relations_redefined": 0,
            "tuples_written": 0,
            "temporary_tuples": 0,
        }

    # -- request application -----------------------------------------------------

    def insert(self, rel: str, *tup: int) -> None:
        self.apply(Insert(rel, tuple(tup)))

    def delete(self, rel: str, *tup: int) -> None:
        self.apply(Delete(rel, tuple(tup)))

    def set_const(self, name: str, value: int) -> None:
        self.apply(SetConst(name, value))

    def apply(self, request: Request) -> None:
        """Apply one request: evaluate all primed relations against the
        current structure, then swap them in simultaneously.

        The rule's temporaries (the paper's scratch relations such as T and
        New) are evaluated first, in order, into a scratch expansion of the
        pre-update structure that the primed definitions then read."""
        rule, params, mirror = self._dispatch(request)
        source = self.structure
        temporary_tuples = 0
        if rule.temporaries:
            scratch_vocab = self.program.aux_vocabulary.extend(
                relations=[(d.name, len(d.frame)) for d in rule.temporaries]
            )
            source = self.structure.expand(scratch_vocab)
            scratch_eval = self._backend_cls(source, params)
            for temp in rule.temporaries:
                rows = scratch_eval.rows(temp.formula, temp.frame)
                temporary_tuples += len(rows)
                source.set_relation(temp.name, rows)
        evaluator = self._backend_cls(source, params)
        new_relations = {
            definition.name: evaluator.rows(definition.formula, definition.frame)
            for definition in rule.definitions
        }
        self.last_update_stats = {
            "relations_redefined": len(new_relations),
            "tuples_written": sum(len(rows) for rows in new_relations.values()),
            "temporary_tuples": temporary_tuples,
        }
        defined = rule.defined_names()
        for name, rows in new_relations.items():
            self.structure.set_relation(name, rows)
        if mirror is not None and mirror[1] not in defined:
            # default maintenance of the input relation's auxiliary copy
            kind, rel, tup = mirror
            if self.program.aux_vocabulary.has_relation(rel):
                if kind == "ins":
                    self.structure.add(rel, tup)
                else:
                    self.structure.discard(rel, tup)
        if isinstance(request, SetConst) and self.program.aux_vocabulary.has_constant(
            request.name
        ):
            self.structure.set_constant(request.name, request.value)
        if isinstance(request, Operation):
            # default maintenance of input copies the rule leaves implicit
            for basic in request.expansion:
                if (
                    isinstance(basic, (Insert, Delete))
                    and basic.rel not in defined
                    and self.program.aux_vocabulary.has_relation(basic.rel)
                ):
                    apply_request(
                        self.structure, basic, self.program.symmetric_inputs
                    )
        self.requests_applied += 1

    def _dispatch(self, request: Request):
        program = self.program
        if isinstance(request, Insert):
            rule = program.on_insert.get(request.rel)
            if rule is None:
                raise UnsupportedRequest(
                    f"{program.name} has no insert rule for {request.rel!r}"
                )
            params = dict(zip(rule.params, request.tup))
            return rule, params, ("ins", request.rel, request.tup)
        if isinstance(request, Delete):
            rule = program.on_delete.get(request.rel)
            if rule is None:
                raise UnsupportedRequest(
                    f"{program.name} has no delete rule for {request.rel!r}"
                )
            params = dict(zip(rule.params, request.tup))
            return rule, params, ("del", request.rel, request.tup)
        if isinstance(request, SetConst):
            rule = program.on_set.get(request.name)
            if rule is None:
                raise UnsupportedRequest(
                    f"{program.name} has no set rule for {request.name!r}"
                )
            return rule, {rule.params[0]: request.value}, None
        if isinstance(request, Operation):
            rule = program.on_operation.get(request.name)
            if rule is None:
                raise UnsupportedRequest(
                    f"{program.name} has no operation rule for {request.name!r}"
                )
            if len(request.args) != len(rule.params):
                raise UnsupportedRequest(
                    f"operation {request.name!r} takes {len(rule.params)} "
                    f"arguments, got {len(request.args)}"
                )
            return rule, dict(zip(rule.params, request.args)), None
        raise TypeError(f"unknown request {request!r}")

    def run(self, script) -> None:
        """Apply a whole request script."""
        for request in script:
            self.apply(request)

    # -- queries ----------------------------------------------------------------

    def _get_query(self, name: str) -> Query:
        try:
            return self.program.queries[name]
        except KeyError:
            raise KeyError(
                f"{self.program.name} has no query {name!r}; "
                f"available: {sorted(self.program.queries)}"
            ) from None

    def query(self, name: str, **params: int) -> set[tuple[int, ...]]:
        """Evaluate a named query, returning its relation over its frame."""
        query = self._get_query(name)
        bound = {p: params[p] for p in query.params}
        evaluator = self._backend_cls(self.structure, bound)
        return evaluator.rows(query.formula, query.frame)

    def ask(self, name: str, **params: int) -> bool:
        """Evaluate a boolean query (empty frame)."""
        query = self._get_query(name)
        if query.frame:
            raise ValueError(f"query {name!r} returns a relation; use query()")
        bound = {p: params[p] for p in query.params}
        evaluator = self._backend_cls(self.structure, bound)
        return evaluator.truth(query.formula)

    def holds_in(self, name: str, *tup: int) -> bool:
        """Membership test against a relational query's result."""
        query = self._get_query(name)
        if len(tup) != len(query.frame):
            raise ValueError(
                f"query {name!r} has frame {query.frame}, got {len(tup)} args"
            )
        mapping: dict[str, Term] = {
            var: Lit(value) for var, value in zip(query.frame, tup)
        }
        ground = substitute(query.formula, mapping)
        evaluator = self._backend_cls(self.structure, {})
        return evaluator.truth(ground)

    # -- introspection -----------------------------------------------------------

    def aux_snapshot(self) -> Structure:
        """A copy of the current auxiliary structure (for memorylessness tests)."""
        return self.structure.copy()

    def input_snapshot(self) -> Structure:
        """The input structure embedded in the auxiliary one (the reduct to
        the input vocabulary), for oracle comparison."""
        return self.structure.restrict(self.program.input_vocabulary)
