"""The Dyn-FO execution engine.

Maintains the auxiliary structure ``f(r-bar)`` of Definition 3.1 and applies
the program's first-order update rules per request, with the paper's
*simultaneous* (synchronous) semantics: every primed relation is computed
against the pre-update structure, then all are swapped in atomically.

Three evaluation backends are available (see DESIGN.md E15):

* ``"relational"`` — database-style join planning (default, fastest in
  typical sparse cases);
* ``"dense"`` — vectorized boolean tensors, a literal CRAM[1] simulation;
* ``"naive"`` — brute-force reference semantics (small n only).

A backend may also be any callable ``factory(structure, params) ->
evaluator`` (e.g. :class:`~.faults.FaultyBackend` for chaos testing).

``apply`` is *transactional*: the request is validated up front
(:class:`~.errors.RequestValidationError`), every primed relation, mirror
edit, and constant write is staged against the pre-update structure, and
only a fully validated batch is committed.  Any failure mid-update —
a buggy formula, a misbehaving backend, an out-of-universe row — raises
:class:`~.errors.UpdateError` and leaves the auxiliary structure provably
untouched, so the request can simply be retried.

With ``audit_every=N`` the engine additionally cross-checks its auxiliary
structure against a from-scratch replay every N requests and raises
:class:`~.errors.IntegrityError` (carrying a ddmin-minimized repro script)
on divergence.  With ``journal=RequestJournal(...)`` every accepted request
is fsync'd to a write-ahead log before commit (see :mod:`.journal`).
"""

from __future__ import annotations

from time import monotonic_ns as _monotonic_ns
from typing import TYPE_CHECKING, Callable, Mapping

from ..logic.dense import DenseEvaluator
from ..logic.evaluation import EvaluationError, naive_query
from ..logic.relational import RelationalEvaluator
from ..logic.structure import BatchUpdate, Structure, StructureError
from ..logic.syntax import Formula, Lit, Term
from ..logic.transform import substitute
from .errors import (
    EngineError,
    IntegrityError,
    RequestValidationError,
    UpdateError,
)
from .minimize import minimize_script
from .program import DynFOProgram, Query, UpdateRule
from .requests import Delete, Insert, Operation, Request, SetConst

if TYPE_CHECKING:  # pragma: no cover
    from .journal import RequestJournal

__all__ = ["DynFOEngine", "BACKENDS", "UnsupportedRequest"]


class UnsupportedRequest(RequestValidationError):
    """Raised when a program has no rule for the given request kind."""


class _NaiveBackend:
    """Adapter giving the naive evaluator the backend interface."""

    def __init__(self, structure: Structure, params: Mapping[str, int]) -> None:
        self.structure = structure
        self.params = params

    def rows(self, formula: Formula, frame: tuple[str, ...]) -> set[tuple[int, ...]]:
        return naive_query(formula, self.structure, frame, self.params)

    def truth(self, sentence: Formula) -> bool:
        return bool(naive_query(sentence, self.structure, (), self.params))


BACKENDS: dict[str, Callable[..., object]] = {
    "relational": RelationalEvaluator,
    "dense": DenseEvaluator,
    "naive": _NaiveBackend,
}


class DynFOEngine:
    """Runs one :class:`DynFOProgram` at a fixed universe size ``n``."""

    def __init__(
        self,
        program: DynFOProgram,
        n: int,
        backend: str | Callable[..., object] = "relational",
        audit_every: int = 0,
        journal: "RequestJournal | None" = None,
        max_rows: int | None = None,
        use_delta: bool = True,
    ) -> None:
        if isinstance(backend, str):
            if backend not in BACKENDS:
                raise ValueError(
                    f"unknown backend {backend!r}; pick from {sorted(BACKENDS)}"
                )
            self.backend_name = backend
            self._backend_factory = BACKENDS[backend]
        else:
            self.backend_name = getattr(
                backend, "name", getattr(backend, "__name__", type(backend).__name__)
            )
            self._backend_factory = backend
        # The optimized backends execute plans compiled once per program via
        # DynFOProgram.compile; the naive backend and callable factories
        # (chaos wrappers, custom evaluators) keep the per-request path.
        self._use_plans = isinstance(backend, str) and backend in (
            "relational",
            "dense",
        )
        self.max_rows = max_rows
        if max_rows is not None:
            if not self._use_plans:
                raise ValueError(
                    "max_rows requires the relational or dense backend "
                    f"(got {self.backend_name!r})"
                )
            if max_rows <= 0:
                raise ValueError(f"max_rows must be positive, got {max_rows}")
        self._compiled = program.compile(self.backend_name, n) if self._use_plans else None
        # The differential update path (PR 5): parameter-specialized plans,
        # indexed atom probes, symmetric-difference staging, and (dense) an
        # in-place-patched relation-tensor cache.  False restores the PR-4
        # full-rematerialization path: generic plans, full scans, wholesale
        # set_relation staging — the `--no-delta` escape hatch.
        self.use_delta = use_delta
        # relation name -> (version, ndarray); patched in place after each
        # commit so the dense backend stops rebuilding every tensor per
        # request.  Only the delta path maintains it.
        self._dense_cache: dict | None = (
            {} if use_delta and self.backend_name == "dense" and self._use_plans else None
        )
        self.program = program
        self.n = n
        self.structure = program.initial(n)
        if self.structure.vocabulary != program.aux_vocabulary:
            raise ValueError("initial structure has the wrong vocabulary")
        if self.structure.n != n:
            raise ValueError("initial structure has the wrong universe size")
        self.requests_applied = 0
        self.audit_every = audit_every
        self._journal = journal
        # audits replay the request log from this baseline (the initial
        # structure, or the snapshot an engine was restored from)
        self._audit_base = self.structure.copy()
        self._audit_log: list[Request] = []
        # work accounting for the last request: how many auxiliary tuples
        # the simultaneous FO step produced (the "parallel work" measure
        # used by experiment E19's history-independence check)
        self.last_update_stats: dict[str, int] = {
            "relations_redefined": 0,
            "tuples_written": 0,
            "temporary_tuples": 0,
            "tuples_added": 0,
            "tuples_removed": 0,
        }
        # observability hook: when set, called as hook(kind, name, ns) for
        # every temporary/primed-relation evaluation and journal append of
        # an apply.  None (the default) costs one load-and-test per
        # evaluation, nothing more — the serving layer sets it only for the
        # duration of an explicitly traced request.
        self.eval_timing_hook: Callable[[str, str, int], None] | None = None

    # -- request application -----------------------------------------------------

    def insert(self, rel: str, *tup: int) -> None:
        self.apply(Insert(rel, tuple(tup)))

    def delete(self, rel: str, *tup: int) -> None:
        self.apply(Delete(rel, tuple(tup)))

    def set_const(self, name: str, value: int) -> None:
        self.apply(SetConst(name, value))

    def apply(self, request: Request) -> None:
        """Apply one request transactionally.

        Pipeline: validate the request, evaluate all primed relations
        against the current structure (the rule's temporaries — the paper's
        scratch relations such as T and New — first, in order, into a
        scratch expansion the primed definitions then read), stage every
        write, journal the request, then commit the batch in one
        infallible step.  On any failure before commit the auxiliary
        structure is untouched."""
        rule, params, mirror = self._dispatch(request)
        batch, stats = self._stage(request, rule, params, mirror)
        if self._journal is not None:
            journal = self._journal
            # getattr: tests attach duck-typed journal shims without the flag
            effects = (
                batch.effects()
                if getattr(journal, "record_effects", False)
                else None
            )
            if effects is not None:
                append = lambda: journal.append(  # noqa: E731
                    self.requests_applied, request, effects=effects
                )
            else:
                # positional-only call keeps duck-typed journal shims
                # (tests, fault injectors) working without the new kwarg
                append = lambda: journal.append(self.requests_applied, request)  # noqa: E731
            self._timed_execute("journal", "append", append)
        patchable = (
            self._dense_cache_prepare(batch) if self._dense_cache is not None else None
        )
        batch.commit()
        if patchable:
            self._dense_cache_patch(batch, patchable)
        self.last_update_stats = stats
        self.requests_applied += 1
        if self.audit_every > 0:
            self._audit_log.append(request)
            if self.requests_applied % self.audit_every == 0:
                self.audit()

    def _timed_execute(self, kind: str, name: str, thunk):
        """Run ``thunk``, reporting its wall time to ``eval_timing_hook``
        (when one is set) as ``hook(kind, name, ns)``.  The disabled path is
        one load-and-test — cheap enough for every evaluation site."""
        hook = self.eval_timing_hook
        if hook is None:
            return thunk()
        started = _monotonic_ns()
        result = thunk()
        hook(kind, name, _monotonic_ns() - started)
        return result

    def _stage(
        self,
        request: Request,
        rule: UpdateRule,
        params: Mapping[str, int],
        mirror: tuple[str, str, tuple[int, ...]] | None,
    ) -> tuple[BatchUpdate, dict[str, int]]:
        """Evaluate the rule and stage every write; never mutates
        ``self.structure``."""
        source = self.structure
        temporary_tuples = 0
        use_delta = self.use_delta
        try:
            # compiled once per (rule, backend, n), then a cache hit forever;
            # the delta path additionally folds the bound parameters into the
            # plans (cached per (rule, param values))
            if self._compiled is None:
                compiled = None
            elif use_delta:
                compiled = self._compiled.specialized_rule_plans(rule, params)
            else:
                compiled = self._compiled.rule_plans(rule)
            if rule.temporaries:
                scratch_vocab = self.program.aux_vocabulary.extend(
                    relations=[(d.name, len(d.frame)) for d in rule.temporaries]
                )
                # the delta path borrows the live relations into the scratch
                # expansion (O(1) per relation) instead of copying them; the
                # scratch only ever *replaces* temporaries, never edits
                # inherited relations in place, so borrowing is safe
                source = self.structure.expand(scratch_vocab, borrow=use_delta)
                scratch_eval = self._make_evaluator(source, params)
                if compiled is not None:
                    for name, plan in compiled.temporaries:
                        rows = self._timed_execute(
                            "temporary", name, lambda: scratch_eval.execute(plan)
                        )
                        temporary_tuples += len(rows)
                        source.set_relation(name, rows)
                else:
                    for temp in rule.temporaries:
                        rows = self._timed_execute(
                            "temporary",
                            temp.name,
                            lambda: scratch_eval.rows(temp.formula, temp.frame),
                        )
                        temporary_tuples += len(rows)
                        source.set_relation(temp.name, rows)
            evaluator = self._make_evaluator(source, params)
            new_relations: dict[str, set[tuple[int, ...]]] = {}
            if compiled is not None:
                for name, plan in compiled.definitions:
                    new_relations[name] = self._timed_execute(
                        "definition", name, lambda: evaluator.execute(plan)
                    )
            else:
                for definition in rule.definitions:
                    new_relations[definition.name] = self._timed_execute(
                        "definition",
                        definition.name,
                        lambda: evaluator.rows(definition.formula, definition.frame),
                    )
        except EngineError:
            raise
        except Exception as error:
            raise UpdateError(
                f"evaluating the update for {request} failed: {error}"
            ) from error
        batch = self.structure.begin_batch()
        defined = rule.defined_names()
        tuples_added = 0
        tuples_removed = 0
        try:
            if use_delta:
                # differential staging: stage only the symmetric difference
                # between the freshly evaluated relation and the current one,
                # so the batch (and any journaled effects) carry the delta
                # and only delta tuples pay re-validation
                # our own plan evaluators only emit in-arity, in-universe
                # rows, so their deltas skip per-tuple re-validation; rows
                # from custom callable backends are checked as always
                trusted = compiled is not None
                for name, rows in new_relations.items():
                    current = self.structure.relation_view(name)
                    added = rows - current
                    removed = current - rows
                    if trusted:
                        batch.stage_edits_trusted("add", name, sorted(added))
                        batch.stage_edits_trusted("discard", name, sorted(removed))
                    else:
                        for tup in sorted(added):
                            batch.add(name, tup)
                        for tup in sorted(removed):
                            batch.discard(name, tup)
                    tuples_added += len(added)
                    tuples_removed += len(removed)
            else:
                for name, rows in new_relations.items():
                    batch.set_relation(name, rows)
            if mirror is not None and mirror[1] not in defined:
                # default maintenance of the input relation's auxiliary copy
                kind, rel, tup = mirror
                if self.program.aux_vocabulary.has_relation(rel):
                    if kind == "ins":
                        batch.add(rel, tup)
                    else:
                        batch.discard(rel, tup)
            if isinstance(request, SetConst) and self.program.aux_vocabulary.has_constant(
                request.name
            ):
                batch.set_constant(request.name, request.value)
            if isinstance(request, Operation):
                # default maintenance of input copies the rule leaves implicit
                for basic in request.expansion:
                    if (
                        isinstance(basic, (Insert, Delete))
                        and basic.rel not in defined
                        and self.program.aux_vocabulary.has_relation(basic.rel)
                    ):
                        self._stage_basic(batch, basic)
        except StructureError as error:
            raise UpdateError(
                f"staging the update for {request} was rejected: {error}"
            ) from error
        if not use_delta:
            # full rewrites touch every tuple of every redefined relation
            tuples_added = sum(len(rows) for rows in new_relations.values())
            tuples_removed = sum(
                len(self.structure.relation_view(name)) for name in new_relations
            )
        stats = {
            "relations_redefined": len(new_relations),
            "tuples_written": sum(len(rows) for rows in new_relations.values()),
            "temporary_tuples": temporary_tuples,
            "tuples_added": tuples_added,
            "tuples_removed": tuples_removed,
        }
        return batch, stats

    def _make_evaluator(self, structure: Structure, params: Mapping[str, int]):
        """A backend evaluator over ``structure``, honouring the engine's
        materialization budget (``max_rows``) and delta-path acceleration
        (indexed probes / the relation-tensor cache) on the optimized
        backends."""
        if not self._use_plans:
            return self._backend_factory(structure, params)
        kwargs: dict = {}
        if self.backend_name == "relational":
            if self.max_rows is not None:
                kwargs["max_rows"] = self.max_rows
            # --no-delta restores the pre-index full-scan path wholesale
            kwargs["use_indexes"] = self.use_delta
        else:
            if self.max_rows is not None:
                kwargs["max_cells"] = self.max_rows
            if self._dense_cache is not None:
                kwargs["array_cache"] = self._dense_cache
        return self._backend_factory(structure, params, **kwargs)

    def _dense_cache_prepare(self, batch: BatchUpdate) -> set[str]:
        """Before commit: drop tensor-cache entries the batch invalidates
        wholesale or that are already stale, and return the relations whose
        cached tensor is current and can be patched in place after commit."""
        cache = self._dense_cache
        for name in batch.staged_replacements:
            cache.pop(name, None)
        patchable: set[str] = set()
        for _, name, _ in batch.staged_edits:
            entry = cache.get(name)
            if entry is None or name in patchable:
                continue
            if entry[0] == self.structure.relation_version(name):
                patchable.add(name)
            else:
                cache.pop(name, None)  # stale entry; rebuild lazily instead
        return patchable

    def _dense_cache_patch(self, batch: BatchUpdate, patchable: set[str]) -> None:
        """After commit: apply the batch's single-tuple edits to the cached
        tensors in place (one cell write per delta tuple — the dense
        backend's slice-write path) and restamp them current."""
        cache = self._dense_cache
        for kind, name, tup in batch.staged_edits:
            if name not in patchable:
                continue
            array = cache[name][1]
            if array.ndim == 0:
                array[()] = kind == "add"
            else:
                array[tup] = kind == "add"
        for name in patchable:
            cache[name] = (self.structure.relation_version(name), cache[name][1])

    def _stage_basic(self, batch: BatchUpdate, basic: Insert | Delete) -> None:
        """Stage one basic input edit, honouring the program's undirected
        convention (both orientations for symmetric relations)."""
        edit = batch.add if isinstance(basic, Insert) else batch.discard
        edit(basic.rel, basic.tup)
        if basic.rel in self.program.symmetric_inputs and len(basic.tup) >= 2:
            tup = basic.tup
            edit(basic.rel, (tup[1], tup[0]) + tup[2:])

    # -- request validation ------------------------------------------------------

    def _check_element(self, value: int, what: str) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise RequestValidationError(
                f"{what} must be an int, got {value!r}"
            )
        if not 0 <= value < self.n:
            raise RequestValidationError(
                f"{what} is {value}, outside the universe {{0..{self.n - 1}}}"
            )

    def _check_tuple(self, request: Request, rel: str, tup: tuple[int, ...], rule: UpdateRule) -> None:
        if len(tup) != len(rule.params):
            raise RequestValidationError(
                f"{request} carries {len(tup)} components but the rule for "
                f"{rel!r} expects {len(rule.params)} ({', '.join(rule.params)})"
            )
        for i, value in enumerate(tup):
            self._check_element(value, f"component {i} of {request}")

    def _dispatch(self, request: Request):
        """Find the request's rule and validate the request against it.

        Raises :class:`UnsupportedRequest` when the program has no rule and
        :class:`RequestValidationError` on arity/universe violations — both
        before anything is evaluated or written."""
        program = self.program
        if isinstance(request, Insert):
            rule = program.on_insert.get(request.rel)
            if rule is None:
                raise UnsupportedRequest(
                    f"{program.name} has no insert rule for {request.rel!r}"
                )
            self._check_tuple(request, request.rel, request.tup, rule)
            params = dict(zip(rule.params, request.tup))
            return rule, params, ("ins", request.rel, request.tup)
        if isinstance(request, Delete):
            rule = program.on_delete.get(request.rel)
            if rule is None:
                raise UnsupportedRequest(
                    f"{program.name} has no delete rule for {request.rel!r}"
                )
            self._check_tuple(request, request.rel, request.tup, rule)
            params = dict(zip(rule.params, request.tup))
            return rule, params, ("del", request.rel, request.tup)
        if isinstance(request, SetConst):
            rule = program.on_set.get(request.name)
            if rule is None:
                raise UnsupportedRequest(
                    f"{program.name} has no set rule for {request.name!r}"
                )
            self._check_element(request.value, f"value of {request}")
            return rule, {rule.params[0]: request.value}, None
        if isinstance(request, Operation):
            rule = program.on_operation.get(request.name)
            if rule is None:
                raise UnsupportedRequest(
                    f"{program.name} has no operation rule for {request.name!r}"
                )
            if len(request.args) != len(rule.params):
                raise UnsupportedRequest(
                    f"operation {request.name!r} takes {len(rule.params)} "
                    f"arguments, got {len(request.args)}"
                )
            for i, value in enumerate(request.args):
                self._check_element(value, f"argument {i} of {request}")
            return rule, dict(zip(rule.params, request.args)), None
        raise RequestValidationError(f"unknown request {request!r}")

    def apply_many(self, requests) -> list[dict[str, int]]:
        """Apply a contiguous batch of requests with group-commit journaling.

        Each request goes through the same transactional :meth:`apply`
        pipeline (validate, stage, journal, commit), but when the attached
        journal was opened with ``fsync=False`` the batch pays a *single*
        fsync at the end instead of one per request — the serving layer's
        write-coalescing fast path.  The sync runs even when a request in
        the middle fails, so every request applied before the failure is
        durable before the error propagates.  Returns the per-request
        update stats, in order."""
        stats: list[dict[str, int]] = []
        try:
            for request in requests:
                self.apply(request)
                stats.append(self.last_update_stats)
        finally:
            if self._journal is not None:
                self._journal.sync()
        return stats

    def run(self, script) -> None:
        """Apply a whole request script."""
        for request in script:
            self.apply(request)

    # -- journaling --------------------------------------------------------------

    def attach_journal(self, journal: "RequestJournal | None") -> None:
        """Attach (or, with ``None``, detach) a write-ahead request journal.
        Subsequent accepted requests are appended before commit."""
        self._journal = journal

    @property
    def journal(self) -> "RequestJournal | None":
        return self._journal

    # -- integrity auditing ------------------------------------------------------

    def _pristine_factory(self) -> Callable[..., object]:
        """The configured backend with any fault wrapper stripped."""
        return getattr(self._backend_factory, "base", self._backend_factory)

    def _subject_factory(self) -> Callable[..., object]:
        """A deterministic fresh copy of the configured backend (fault
        counters reset), for replaying the engine's own behaviour."""
        fresh = getattr(self._backend_factory, "fresh", None)
        return fresh() if callable(fresh) else self._backend_factory

    def _replay(self, script, factory) -> "DynFOEngine":
        clone = DynFOEngine(
            self.program, self.n, backend=factory, use_delta=self.use_delta
        )
        clone.structure = self._audit_base.copy()
        for request in script:
            clone.apply(request)
        return clone

    def _divergence_detail(self, other: Structure) -> str:
        parts = []
        for rel in self.program.aux_vocabulary:
            mine = self.structure.relation_view(rel.name)
            theirs = other.relation_view(rel.name)
            if mine != theirs:
                extra = sorted(mine - theirs)[:4]
                missing = sorted(theirs - mine)[:4]
                parts.append(f"{rel.name}: extra={extra} missing={missing}")
        for name, value in self.structure.constants().items():
            if other.constant(name) != value:
                parts.append(f"{name}: {value} != {other.constant(name)}")
        return "; ".join(parts)

    def audit(self) -> None:
        """Cross-check the auxiliary structure against a from-scratch replay
        of the request log (run automatically every ``audit_every``
        requests).  On divergence, raise :class:`IntegrityError` carrying a
        ddmin-minimized repro script no longer than the audited log."""
        if self.audit_every <= 0:
            raise EngineError(
                "auditing requires audit_every > 0 (the engine only records "
                "its request log when auditing is enabled)"
            )
        script = tuple(self._audit_log)
        reference = self._replay(script, self._pristine_factory())
        if reference.structure == self.structure:
            return
        detail = self._divergence_detail(reference.structure)

        def diverges(candidate) -> bool:
            try:
                subject = self._replay(candidate, self._subject_factory())
                pristine = self._replay(candidate, self._pristine_factory())
            except EngineError:
                # a subscript on which the faulty backend aborts the update
                # still witnesses the divergence
                return True
            return subject.structure != pristine.structure

        repro = minimize_script(script, diverges) if diverges(script) else script
        raise IntegrityError(
            f"{self.program.name}: auxiliary structure diverged from its "
            f"from-scratch replay after {self.requests_applied} requests "
            f"({detail}); minimized repro has {len(repro)} of "
            f"{len(script)} requests",
            repro=repro,
            detail=detail,
        )

    def reset_audit_baseline(self) -> None:
        """Restart audit bookkeeping from the current structure (used after
        restoring from a snapshot, whose history is not replayable)."""
        self._audit_base = self.structure.copy()
        self._audit_log.clear()

    # -- queries ----------------------------------------------------------------

    def _get_query(self, name: str) -> Query:
        try:
            return self.program.queries[name]
        except KeyError:
            raise KeyError(
                f"{self.program.name} has no query {name!r}; "
                f"available: {sorted(self.program.queries)}"
            ) from None

    def query(self, name: str, **params: int) -> set[tuple[int, ...]]:
        """Evaluate a named query, returning its relation over its frame."""
        query = self._get_query(name)
        bound = {p: params[p] for p in query.params}
        evaluator = self._make_evaluator(self.structure, bound)
        try:
            if self._compiled is not None:
                return evaluator.execute(self._compiled.query_plan(query))
            return evaluator.rows(query.formula, query.frame)
        except EvaluationError as error:
            raise EngineError(
                f"query {name!r} exceeded the evaluation budget: {error}"
            ) from error

    def ask(self, name: str, **params: int) -> bool:
        """Evaluate a boolean query (empty frame)."""
        query = self._get_query(name)
        if query.frame:
            raise ValueError(f"query {name!r} returns a relation; use query()")
        bound = {p: params[p] for p in query.params}
        evaluator = self._make_evaluator(self.structure, bound)
        try:
            if self._compiled is not None:
                return bool(evaluator.execute(self._compiled.query_plan(query)))
            return evaluator.truth(query.formula)
        except EvaluationError as error:
            raise EngineError(
                f"query {name!r} exceeded the evaluation budget: {error}"
            ) from error

    def plan_cache_stats(self) -> dict[str, int]:
        """Compiled-plan cache counters (``hits``/``misses``/``compile_ns``).

        ``misses`` counts plan compilations — exactly one per distinct
        (rule or query, backend, n) no matter how many requests ran.  Engines
        sharing a program instance share the cache and its counters.  All
        zeros for the naive backend and callable factories, which keep the
        per-request evaluation path.  Safe under concurrent readers: the
        counters are snapshotted atomically under the cache's lock."""
        if self._compiled is None:
            return {"hits": 0, "misses": 0, "compile_ns": 0}
        return self._compiled.stats()

    def specialized_plan_cache_stats(self) -> dict[str, int]:
        """Parameter-specialized plan cache counters (``hits``/``misses``/
        ``specialize_ns``/``entries``) — the delta path's per-(rule, param
        values) cache, kept separate from :meth:`plan_cache_stats` whose
        counter semantics are pinned.  All zeros off the optimized backends
        or with ``use_delta=False`` (nothing specializes there)."""
        if self._compiled is None:
            return {"hits": 0, "misses": 0, "specialize_ns": 0, "entries": 0}
        return self._compiled.specialized_stats()

    def specialized_plans_for(self, request: Request):
        """The plans an accepted ``request`` would execute, without applying
        it: ``(rule, params, compiled)`` where ``compiled`` is the
        parameter-specialized :class:`~.program.CompiledRule` on the delta
        path, or ``None`` off it (generic plans apply).  Used by the slowlog
        and ``repro explain --params`` to render what actually ran."""
        rule, params, _ = self._dispatch(request)
        if self._compiled is None or not self.use_delta:
            return rule, params, None
        return rule, params, self._compiled.specialized_rule_plans(rule, params)

    def apply_effects(self, request: Request, effects: Mapping) -> None:
        """Replay a journaled effect record physically: validate the request
        shape, apply the recorded state transition directly (no formula
        evaluation), and advance the request counter — the fast path
        :func:`~.journal.recover` takes when the journal carries effects.
        The transition is exactly what :meth:`apply` committed when the
        record was written, so physical and logical replay agree."""
        self._dispatch(request)  # validation only
        try:
            self.structure.apply_effects(effects)
        except StructureError as error:
            raise UpdateError(
                f"replaying journaled effects for {request} failed: {error}"
            ) from error
        if self._dense_cache is not None:
            # effect replay bypasses the patch path; entries turn stale and
            # rebuild lazily on the next evaluation
            self._dense_cache.clear()
        self.last_update_stats = {
            "relations_redefined": len(effects.get("set", {})),
            "tuples_written": sum(len(rows) for rows in effects.get("set", {}).values()),
            "temporary_tuples": 0,
            "tuples_added": sum(
                1 for kind, _, _ in effects.get("edits", ()) if kind == "add"
            ),
            "tuples_removed": sum(
                1 for kind, _, _ in effects.get("edits", ()) if kind == "discard"
            ),
        }
        self.requests_applied += 1
        if self.audit_every > 0:
            self._audit_log.append(request)
            if self.requests_applied % self.audit_every == 0:
                self.audit()

    def holds_in(self, name: str, *tup: int) -> bool:
        """Membership test against a relational query's result."""
        query = self._get_query(name)
        if len(tup) != len(query.frame):
            raise ValueError(
                f"query {name!r} has frame {query.frame}, got {len(tup)} args"
            )
        mapping: dict[str, Term] = {
            var: Lit(value) for var, value in zip(query.frame, tup)
        }
        ground = substitute(query.formula, mapping)
        evaluator = self._backend_factory(self.structure, {})
        return evaluator.truth(ground)

    # -- introspection -----------------------------------------------------------

    def aux_snapshot(self) -> Structure:
        """A copy of the current auxiliary structure (for memorylessness tests)."""
        return self.structure.copy()

    def input_snapshot(self) -> Structure:
        """The input structure embedded in the auxiliary one (the reduct to
        the input vocabulary), for oracle comparison."""
        return self.structure.restrict(self.program.input_vocabulary)
