"""The request alphabet ``R_{n,sigma}`` of Definition 3.1 (Equation 3.1).

A dynamic run is a finite sequence of requests: insert a tuple into an input
relation, delete a tuple from an input relation, or set an input constant.
``evaluate_script`` is the paper's ``eval_{n,sigma}``: the input structure a
request sequence denotes, starting from the empty initial structure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..logic.structure import Structure
from ..logic.vocabulary import Vocabulary

__all__ = [
    "Request",
    "Insert",
    "Delete",
    "SetConst",
    "Operation",
    "apply_request",
    "evaluate_script",
    "script_to_json",
    "script_from_json",
    "request_to_item",
    "request_from_item",
]


@dataclass(frozen=True)
class Request:
    """Base class for requests."""

    def apply_to(self, structure: Structure) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class Insert(Request):
    """``ins(i, a-bar)``: insert tuple ``tup`` into relation ``rel``."""

    rel: str
    tup: tuple[int, ...]

    def __init__(self, rel: str, *tup: int) -> None:
        object.__setattr__(self, "rel", rel)
        if len(tup) == 1 and isinstance(tup[0], tuple):
            tup = tup[0]
        object.__setattr__(self, "tup", tuple(tup))

    def apply_to(self, structure: Structure) -> None:
        structure.add(self.rel, self.tup)

    def __str__(self) -> str:
        return f"ins({self.rel}, {', '.join(map(str, self.tup))})"


@dataclass(frozen=True)
class Delete(Request):
    """``del(i, a-bar)``: delete tuple ``tup`` from relation ``rel``."""

    rel: str
    tup: tuple[int, ...]

    def __init__(self, rel: str, *tup: int) -> None:
        object.__setattr__(self, "rel", rel)
        if len(tup) == 1 and isinstance(tup[0], tuple):
            tup = tup[0]
        object.__setattr__(self, "tup", tuple(tup))

    def apply_to(self, structure: Structure) -> None:
        structure.discard(self.rel, self.tup)

    def __str__(self) -> str:
        return f"del({self.rel}, {', '.join(map(str, self.tup))})"


@dataclass(frozen=True)
class SetConst(Request):
    """``set(j, a)``: set input constant ``name`` to ``value``."""

    name: str
    value: int

    def apply_to(self, structure: Structure) -> None:
        structure.set_constant(self.name, self.value)

    def __str__(self) -> str:
        return f"set({self.name}, {self.value})"


@dataclass(frozen=True)
class Operation(Request):
    """A compound request from an extended operation set (Note 3.3).

    The paper observes that Dyn-C remains meaningful for *any* operation
    alphabet, not just single-tuple inserts/deletes.  An ``Operation``
    names a program-defined rule (see ``DynFOProgram.on_operation``) and
    carries its arguments plus ``expansion`` — the equivalent sequence of
    basic requests, which defines the operation's effect on the *input*
    structure (used by shadow replay and oracles).  The program's rule must
    implement the same effect in one simultaneous FO step; the tests check
    the two against each other.
    """

    name: str
    args: tuple[int, ...]
    expansion: tuple[Request, ...]

    def __init__(
        self, name: str, args: Sequence[int], expansion: Sequence[Request]
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "expansion", tuple(expansion))

    def apply_to(self, structure: Structure) -> None:
        for request in self.expansion:
            request.apply_to(structure)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


def apply_request(
    structure: Structure,
    request: Request,
    symmetric: frozenset[str] | set[str] = frozenset(),
) -> None:
    """Apply ``request`` to ``structure``; relations listed in ``symmetric``
    receive both orientations of their first two components (the paper's
    undirected convention; extra components, e.g. a weight, ride along)."""
    if isinstance(request, Operation):
        for basic in request.expansion:
            apply_request(structure, basic, symmetric)
        return
    request.apply_to(structure)
    if (
        isinstance(request, (Insert, Delete))
        and request.rel in symmetric
        and len(request.tup) >= 2
    ):
        tup = request.tup
        mirrored = type(request)(request.rel, (tup[1], tup[0]) + tup[2:])
        mirrored.apply_to(structure)


def evaluate_script(
    vocabulary: Vocabulary,
    n: int,
    script: Iterable[Request],
    symmetric: frozenset[str] | set[str] = frozenset(),
) -> Structure:
    """``eval_{n,sigma}``: the input structure denoted by ``script``."""
    structure = Structure.initial(vocabulary, n)
    for request in script:
        apply_request(structure, request, symmetric)
    return structure


# -- serialization -------------------------------------------------------


def request_to_item(request: Request) -> dict:
    """One request as a JSON-serializable dict (the journal's line format)."""
    if isinstance(request, Insert):
        return {"op": "ins", "rel": request.rel, "tup": list(request.tup)}
    if isinstance(request, Delete):
        return {"op": "del", "rel": request.rel, "tup": list(request.tup)}
    if isinstance(request, SetConst):
        return {"op": "set", "name": request.name, "value": request.value}
    if isinstance(request, Operation):
        return {
            "op": "operation",
            "name": request.name,
            "args": list(request.args),
            "expansion": [request_to_item(r) for r in request.expansion],
        }
    raise TypeError(f"unknown request {request!r}")  # pragma: no cover


def request_from_item(item: dict) -> Request:
    """Inverse of :func:`request_to_item`; raises :class:`ValueError` with a
    description of what is malformed rather than a bare ``KeyError``."""
    if not isinstance(item, dict):
        raise ValueError(
            f"request item must be an object, got {type(item).__name__}"
        )
    if "op" not in item:
        raise ValueError(f"request item missing 'op': {item!r}")
    op = item["op"]
    try:
        if op == "ins":
            return Insert(item["rel"], tuple(item["tup"]))
        if op == "del":
            return Delete(item["rel"], tuple(item["tup"]))
        if op == "set":
            return SetConst(item["name"], item["value"])
        if op == "operation":
            return Operation(
                item["name"],
                tuple(item["args"]),
                tuple(request_from_item(sub) for sub in item["expansion"]),
            )
    except (KeyError, TypeError) as error:
        raise ValueError(f"malformed {op!r} request item {item!r}: {error}") from error
    raise ValueError(f"unknown request op {op!r}")


# backwards-compatible private aliases
_request_to_item = request_to_item
_request_from_item = request_from_item


def script_to_json(script: Sequence[Request]) -> str:
    """Serialize a request script to a JSON string."""
    return json.dumps([request_to_item(request) for request in script])


def script_from_json(text: str) -> list[Request]:
    """Inverse of :func:`script_to_json`."""
    try:
        items = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"not a request script: {error}") from error
    if not isinstance(items, list):
        raise ValueError(
            f"a request script is a JSON array, got {type(items).__name__}"
        )
    return [request_from_item(item) for item in items]
