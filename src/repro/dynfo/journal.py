"""Crash-safe persistence layer 1: the write-ahead request journal.

A Dyn-FO engine's state is a *deterministic* function of its request
history (the paper's memorylessness property), so durability needs nothing
fancier than an fsync'd log of accepted requests: after a crash,
``snapshot + journal tail`` replays to exactly the state an uninterrupted
run would have reached.

The journal is one JSON object per line — ``{"seq": k, "req": {...}}`` with
``seq`` the 0-based index of the request in the run — appended *before* the
engine commits the corresponding batch (classic WAL ordering) and fsync'd
so an acknowledged request survives power loss.  :func:`recover` tolerates
a torn final line (a crash mid-append) but treats corruption anywhere else
as a hard :class:`~.errors.JournalError`.

Group commit: with ``fsync=False`` the journal defers durability to an
explicit :meth:`RequestJournal.sync`, so a caller applying a *batch* of
requests pays one fsync for the whole batch instead of one per request
(the serving layer's write coalescing, and
:meth:`~.engine.DynFOEngine.apply_many`).  The invariant callers must keep
is the usual one: never acknowledge a request to its submitter until a
``sync()`` covering its append has returned.  ``fsync_count`` /
``append_count`` expose how well the amortization is working.

Effect records (PR 5): a journal opened with ``record_effects=True`` asks
the engine to attach each request's committed state transition —
:meth:`~repro.logic.structure.BatchUpdate.effects` — under an ``"fx"`` key.
On the delta path that is the handful of tuples the update actually
changed, so journal bytes per update scale with the delta rather than with
|aux|, and :func:`recover` can replay the record *physically* (apply the
recorded transition, no formula re-evaluation) instead of logically.
Journals without effects (and mixed journals: any record missing ``"fx"``)
still recover via logical replay; readers ignore unknown keys, so the two
formats interoperate both ways.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .engine import DynFOEngine
from .errors import JournalError
from .persistence import load_engine
from .program import DynFOProgram
from .requests import Request, request_from_item, request_to_item

__all__ = ["RequestJournal", "read_journal", "read_journal_entries", "recover"]


class RequestJournal:
    """Append-only, fsync'd request log attached to a running engine."""

    def __init__(
        self, path: str | Path, fsync: bool = True, record_effects: bool = False
    ) -> None:
        self.path = Path(path)
        self._fsync = fsync
        #: ask the engine to attach committed effects to every append; read
        #: by DynFOEngine.apply before it calls append()
        self.record_effects = record_effects
        self._fh = open(self.path, "a", encoding="utf-8")
        self.append_count = 0
        self.fsync_count = 0
        self.bytes_written = 0

    def append(self, seq: int, request: Request, effects: dict | None = None) -> None:
        """Record that request ``seq`` was accepted; durable immediately
        under the default per-append fsync policy, at the next :meth:`sync`
        otherwise.  ``effects`` (when given) rides along under ``"fx"`` —
        the committed state transition, enabling physical replay."""
        if self._fh.closed:
            raise JournalError(f"journal {self.path} is closed")
        item: dict = {"seq": seq, "req": request_to_item(request)}
        if effects is not None:
            item["fx"] = effects
        line = json.dumps(item, separators=(",", ":"))
        self._fh.write(line + "\n")
        self._fh.flush()
        self.append_count += 1
        self.bytes_written += len(line) + 1
        if self._fsync:
            os.fsync(self._fh.fileno())
            self.fsync_count += 1

    def sync(self) -> None:
        """Force appended entries to stable storage (the group-commit
        durability point for journals opened with ``fsync=False``)."""
        if self._fh.closed:
            raise JournalError(f"journal {self.path} is closed")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.fsync_count += 1

    def close(self) -> None:
        if not self._fh.closed:
            if self.append_count and not self._fsync:
                try:
                    self.sync()
                except (OSError, JournalError):  # pragma: no cover
                    pass
            self._fh.close()

    def __enter__(self) -> "RequestJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal_entries(
    path: str | Path,
) -> list[tuple[int, Request, dict | None]]:
    """All (seq, request, effects) entries in the journal at ``path``;
    ``effects`` is the record's ``"fx"`` payload, or ``None`` for plain
    request-only records.

    A torn final line — the signature of a crash mid-append — is dropped;
    an undecodable line anywhere else raises :class:`JournalError`.
    """
    path = Path(path)
    if not path.exists():
        return []
    lines = path.read_text(encoding="utf-8").split("\n")
    entries: list[tuple[int, Request, dict | None]] = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            item = json.loads(line)
            entries.append(
                (
                    int(item["seq"]),
                    request_from_item(item["req"]),
                    item.get("fx"),
                )
            )
        except (ValueError, KeyError, TypeError) as error:
            if index >= len(lines) - 2 and all(
                not later.strip() for later in lines[index + 1 :]
            ):
                break  # torn tail from a crash mid-append
            raise JournalError(
                f"journal {path} corrupt at line {index + 1}: {error}"
            ) from error
    return entries


def read_journal(path: str | Path) -> list[tuple[int, Request]]:
    """All (seq, request) entries in the journal at ``path`` (effect
    payloads, when present, are dropped — see :func:`read_journal_entries`)."""
    return [(seq, request) for seq, request, _ in read_journal_entries(path)]


def recover(
    program: DynFOProgram,
    journal_path: str | Path,
    *,
    n: int | None = None,
    snapshot_path: str | Path | None = None,
    backend: str | None = None,
    audit_every: int = 0,
    attach: bool = True,
    physical: bool = True,
) -> DynFOEngine:
    """Rebuild an engine after a crash: restore the snapshot (or the initial
    structure when there is none — ``n`` is then required), replay the
    journal tail past ``requests_applied``, and re-attach the journal so the
    run continues appending where it left off.

    Records carrying effect payloads replay *physically* — the recorded
    state transition is applied directly, skipping formula evaluation — which
    both modes produce the same state by construction (the effects are what
    the original ``apply`` committed).  ``physical=False`` forces logical
    replay of every record regardless."""
    if snapshot_path is not None and Path(snapshot_path).exists():
        engine = load_engine(program, snapshot_path, backend=backend)
        engine.audit_every = audit_every
    else:
        if n is None:
            raise JournalError(
                "recover() needs a universe size n when there is no snapshot"
            )
        engine = DynFOEngine(
            program, n, backend=backend or "relational", audit_every=audit_every
        )
    for seq, request, effects in read_journal_entries(journal_path):
        if seq < engine.requests_applied:
            continue  # already captured by the snapshot
        if seq != engine.requests_applied:
            raise JournalError(
                f"journal {journal_path} jumps to seq {seq} but the engine "
                f"has applied {engine.requests_applied} requests"
            )
        if physical and effects is not None:
            engine.apply_effects(request, effects)
        else:
            engine.apply(request)
    if attach:
        engine.attach_journal(RequestJournal(journal_path))
    return engine
