"""Fault injection for chaos-testing the transactional engine.

The literature shows maintained auxiliary relations are genuinely easy to
get wrong (Zeume & Schwentick 2013; Datta et al. 2015), and Definition 3.1
makes the auxiliary structure the *only* state a run has — so the engine's
atomicity and auditing guarantees deserve adversarial tests, not just happy
paths.  :class:`FaultyBackend` wraps any evaluation backend and misbehaves
at a chosen evaluation position:

* ``"raise"`` — throw :class:`InjectedFault` (the transactional apply must
  leave the auxiliary structure untouched);
* ``"drop"`` — silently lose tuples from the evaluated rows (an in-universe
  corruption only an audit can catch);
* ``"corrupt"`` — silently rewrite tuples to different in-universe values
  (likewise audit-only);
* ``"corrupt_oob"`` — emit an out-of-universe tuple (the staging layer must
  reject the whole update with :class:`~.errors.UpdateError`).

Faults are seeded and keyed to the k-th ``rows()``/``truth()`` evaluation,
so a failing run is exactly reproducible: ``fresh()`` returns a copy with
the evaluation counter reset, which is how the engine's audit replays its
own (faulty) behaviour while delta-debugging a repro script.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Mapping

from ..logic.structure import Structure
from ..logic.syntax import Formula
from .engine import BACKENDS

__all__ = ["FaultPlan", "FaultyBackend", "InjectedFault"]

_KINDS = frozenset({"raise", "drop", "corrupt", "corrupt_oob"})


class InjectedFault(RuntimeError):
    """The deliberate failure a ``"raise"`` fault plan throws."""


@dataclass(frozen=True)
class FaultPlan:
    """What to break and when.

    ``at`` is the 1-based index of the evaluation to sabotage, counted
    across the backend factory's lifetime; ``count`` is how many rows to
    drop/corrupt; ``seed`` drives the row choice.
    """

    kind: str
    at: int
    count: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; pick from {sorted(_KINDS)}"
            )
        if self.at < 1:
            raise ValueError(f"fault position is 1-based, got {self.at}")


class FaultyBackend:
    """A backend factory that sabotages the ``plan.at``-th evaluation.

    Drop-in for the engine's ``backend=`` argument:

    >>> engine = DynFOEngine(program, n,
    ...                      backend=FaultyBackend("relational",
    ...                                            FaultPlan("raise", at=3)))

    ``base`` (the unwrapped factory) and ``fresh()`` (a reset copy) are the
    hooks the engine's audit uses for pristine and subject replays.
    """

    def __init__(
        self,
        base: str | Callable[..., object] = "relational",
        plan: FaultPlan = FaultPlan("raise", at=1),
    ) -> None:
        if isinstance(base, str):
            if base not in BACKENDS:
                raise ValueError(
                    f"unknown backend {base!r}; pick from {sorted(BACKENDS)}"
                )
            base = BACKENDS[base]
        self.base = base
        self.plan = plan
        self.evaluations = 0
        self.faults_fired = 0
        self.name = f"faulty[{plan.kind}@{plan.at}]"

    def fresh(self) -> "FaultyBackend":
        """A copy with the evaluation counter reset — same deterministic
        misbehaviour on a fresh run."""
        return FaultyBackend(self.base, self.plan)

    def __call__(self, structure: Structure, params: Mapping[str, int]):
        return _FaultyEvaluator(self, self.base(structure, params), structure.n)

    # -- the sabotage itself -------------------------------------------------

    def _tick(self) -> bool:
        self.evaluations += 1
        return self.evaluations == self.plan.at

    def _sabotage_rows(
        self, rows: set[tuple[int, ...]], n: int
    ) -> set[tuple[int, ...]]:
        plan = self.plan
        self.faults_fired += 1
        if plan.kind == "raise":
            raise InjectedFault(
                f"injected fault at evaluation {plan.at}"
            )
        rows = set(rows)
        rng = random.Random(plan.seed)
        if plan.kind == "corrupt_oob":
            rows.add((n,) * (len(next(iter(rows))) if rows else 1))
            return rows
        victims = sorted(rows)
        rng.shuffle(victims)
        for victim in victims[: plan.count]:
            rows.discard(victim)
            if plan.kind == "corrupt" and victim:
                mutated = list(victim)
                index = rng.randrange(len(mutated))
                mutated[index] = (mutated[index] + 1 + rng.randrange(max(n - 1, 1))) % n
                rows.add(tuple(mutated))
        return rows


class _FaultyEvaluator:
    """Per-evaluation wrapper produced by :class:`FaultyBackend`."""

    def __init__(self, owner: FaultyBackend, inner, n: int) -> None:
        self._owner = owner
        self._inner = inner
        self._n = n

    def rows(self, formula: Formula, frame: tuple[str, ...]) -> set[tuple[int, ...]]:
        fire = self._owner._tick()
        rows = self._inner.rows(formula, frame)
        if fire:
            rows = self._owner._sabotage_rows(rows, self._n)
        return rows

    def truth(self, sentence: Formula) -> bool:
        fire = self._owner._tick()
        value = self._inner.truth(sentence)
        if fire:
            if self._owner.plan.kind == "raise":
                self._owner.faults_fired += 1
                raise InjectedFault(
                    f"injected fault at evaluation {self._owner.plan.at}"
                )
            self._owner.faults_fired += 1
            value = not value
        return value
