"""Ready-made oracle checkers for the paper's programs.

Each checker compares a running :class:`~repro.dynfo.engine.DynFOEngine`
against an independent from-scratch recomputation on the shadow input
structure (see :mod:`repro.dynfo.verify`).  Shared by the test suite and
the benchmark harness so both verify the same contracts.
"""

from __future__ import annotations

from ..baselines import (
    bits_to_int,
    forest_lca,
    is_bipartite,
    kruskal_msf,
    matching_is_maximal,
    matching_is_valid,
    reachable_pairs_undirected,
    spanning_forest_is_valid,
    transitive_closure,
    transitive_reduction_dag,
)
from ..logic.structure import Structure
from .engine import DynFOEngine
from .verify import (
    OracleChecker,
    VerificationError,
    exact_boolean_checker,
    exact_relation_checker,
)

__all__ = [
    "parity_checker",
    "connectivity_checker",
    "spanning_forest_checker",
    "paths_checker",
    "transitive_reduction_checker",
    "msf_checker",
    "bipartite_checker",
    "matching_checker",
    "lca_checker",
    "product_checker",
]


def parity_checker() -> OracleChecker:
    return exact_boolean_checker(
        "odd", lambda inputs: len(inputs.relation_view("M")) % 2 == 1
    )


def connectivity_checker(query: str = "connected") -> OracleChecker:
    return exact_relation_checker(
        query,
        lambda inputs: reachable_pairs_undirected(
            inputs.n, inputs.relation_view("E")
        ),
    )


def spanning_forest_checker(query: str = "forest") -> OracleChecker:
    def check(inputs: Structure, engine: DynFOEngine) -> None:
        edges = set(inputs.relation_view("E"))
        forest = engine.query(query)
        if not spanning_forest_is_valid(inputs.n, edges, forest):
            raise VerificationError(
                f"{sorted(forest)} is not a spanning forest of {sorted(edges)}"
            )

    return check


def paths_checker(query: str = "paths") -> OracleChecker:
    return exact_relation_checker(
        query,
        lambda inputs: transitive_closure(inputs.n, inputs.relation_view("E")),
    )


def transitive_reduction_checker(query: str = "tr") -> OracleChecker:
    return exact_relation_checker(
        query,
        lambda inputs: transitive_reduction_dag(
            inputs.n, set(inputs.relation_view("E"))
        ),
    )


def msf_checker(query: str = "forest") -> OracleChecker:
    def check(inputs: Structure, engine: DynFOEngine) -> None:
        rows = inputs.relation_view("Ew")
        weight = {(u, v): w for (u, v, w) in rows if u < v}
        edges = {(u, v) for (u, v, w) in rows}
        _, forest = kruskal_msf(inputs.n, edges, weight)
        got = {frozenset(e) for e in engine.query(query) if e[0] != e[1]}
        if got != forest:
            raise VerificationError(
                f"forest {sorted(map(sorted, got))} != Kruskal "
                f"{sorted(map(sorted, forest))} on {sorted(weight.items())}"
            )

    return check


def bipartite_checker(query: str = "bipartite") -> OracleChecker:
    return exact_boolean_checker(
        query, lambda inputs: is_bipartite(inputs.n, inputs.relation_view("E"))
    )


def matching_checker(query: str = "matching") -> OracleChecker:
    def check(inputs: Structure, engine: DynFOEngine) -> None:
        edges = set(inputs.relation_view("E"))
        matching = engine.query(query)
        if not matching_is_valid(edges, matching):
            raise VerificationError(
                f"invalid matching {sorted(matching)} on {sorted(edges)}"
            )
        if not matching_is_maximal(edges, matching):
            raise VerificationError(
                f"non-maximal matching {sorted(matching)} on {sorted(edges)}"
            )

    return check


def lca_checker(query: str = "lca") -> OracleChecker:
    def check(inputs: Structure, engine: DynFOEngine) -> None:
        edges = set(inputs.relation_view("E"))
        got = engine.query(query)
        by_pair: dict[tuple[int, int], set[int]] = {}
        for (x, y, w) in got:
            by_pair.setdefault((x, y), set()).add(w)
        for x in range(inputs.n):
            for y in range(inputs.n):
                expected = forest_lca(inputs.n, edges, x, y)
                want = set() if expected is None else {expected}
                have = by_pair.get((x, y), set())
                if have != want:
                    raise VerificationError(
                        f"lca({x}, {y}): want {want}, got {have}"
                    )

    return check


def product_checker(query: str = "product_bits") -> OracleChecker:
    def check(inputs: Structure, engine: DynFOEngine) -> None:
        x = bits_to_int(inputs.relation_view("X"))
        y = bits_to_int(inputs.relation_view("Y"))
        got = bits_to_int(engine.query(query))
        if got != x * y:
            raise VerificationError(f"product {got} != {x} * {y}")

    return check
