"""Named engine sessions and the manager that hosts them.

A *session* is one live :class:`~..dynfo.engine.DynFOEngine` plus the
concurrency state the :class:`~.scheduler.Scheduler` needs (a
readers-writer lock, the pending-write queue) and its durability plumbing
(write-ahead journal + snapshot in a per-session directory).  The
:class:`SessionManager` is the paper's Definition 3.1 taken to a serving
context: each session is a deterministic function of its request history,
so hosting many of them is just hosting many histories — and restarting the
process is ``snapshot + journal tail`` replay per session
(:func:`~..dynfo.journal.recover`), exactly the single-engine recovery
story, session-ified.

Durable layout under ``data_dir``::

    <data_dir>/<session>/meta.json      # program name, n, backend
    <data_dir>/<session>/journal.ndjson # fsync'd WAL (group commit)
    <data_dir>/<session>/snapshot.json  # checksummed v2 snapshot

Session journals are opened with ``fsync=False``: the scheduler syncs once
per coalesced batch and acknowledges only after the sync, so durability is
per-*batch* (group commit) while the ACK invariant stays per-request.
"""

from __future__ import annotations

import collections
import json
import re
import shutil
import threading
import time
from pathlib import Path
from typing import Callable, Mapping

from ..dynfo.engine import BACKENDS, DynFOEngine
from ..dynfo.journal import RequestJournal, recover
from ..dynfo.persistence import save_engine
from ..dynfo.program import DynFOProgram
from .errors import OverloadError, SessionError
from .metrics import SessionMetrics

__all__ = ["Session", "SessionManager"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


class _RWLock:
    """A writer-preferring readers-writer lock.

    Readers share; the (single) batch writer excludes them.  Writer
    preference keeps a steady read load from starving the update stream —
    the paper's semantics need every request to see the structure the
    previous request produced, not a structure readers pinned in the past.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


class Session:
    """One hosted engine with its scheduling and durability state."""

    def __init__(
        self,
        name: str,
        engine: DynFOEngine,
        program_name: str,
        backend_name: str,
        directory: Path | None,
        recovered: bool = False,
    ) -> None:
        self.name = name
        self.engine = engine
        self.program_name = program_name
        self.backend_name = backend_name
        self.directory = directory
        self.recovered = recovered
        self.created_at = time.time()
        self.metrics = SessionMetrics()
        # scheduler state: see scheduler.py for the drain protocol
        self.rw = _RWLock()
        self.queue_lock = threading.Lock()
        self.write_queue: collections.deque = collections.deque()
        self.writer_lock = threading.Lock()
        self.pending = 0  # queued-or-running requests, for admission control
        self.closed = False
        # set (under the rw write lock) when a group-commit sync failed
        # after its batch was applied: the engine is ahead of the durable
        # log, so further writes are refused (reads stay allowed)
        self.poisoned: str | None = None

    @property
    def version(self) -> int:
        """The structure version — requests applied so far.  Reads collapse
        only with in-flight reads of the same version, which is what makes
        collapsing invisible to read-your-writes ordering."""
        return self.engine.requests_applied

    @property
    def journal(self) -> RequestJournal | None:
        return self.engine.journal

    def poison(self, reason: str) -> None:
        """Mark the session write-dead: the in-memory engine no longer
        matches what clients were told is durable.  First reason wins."""
        if self.poisoned is None:
            self.poisoned = reason

    def describe(self) -> dict:
        """The session's stats block (``stats`` wire op)."""
        info = {
            "program": self.program_name,
            "backend": self.backend_name,
            "n": self.engine.n,
            "requests_applied": self.engine.requests_applied,
            "durable": self.directory is not None,
            "recovered": self.recovered,
            "poisoned": self.poisoned,
            "use_delta": self.engine.use_delta,
            "plan_cache": self.engine.plan_cache_stats(),
            "specialized_plan_cache": self.engine.specialized_plan_cache_stats(),
        }
        journal = self.journal
        if journal is not None:
            info["journal"] = {
                "appends": journal.append_count,
                "fsyncs": journal.fsync_count,
                "bytes_written": journal.bytes_written,
            }
        info.update(self.metrics.snapshot())
        return info

    def save(self) -> None:
        """Write the checksummed snapshot (journal replay then starts from
        here instead of from the initial structure)."""
        if self.directory is not None:
            save_engine(self.engine, self.directory / "snapshot.json")

    def close(self, snapshot: bool = True) -> None:
        """Quiesce and release the session; with ``snapshot`` (default) the
        on-disk state needs no journal replay to reopen."""
        if self.closed:
            return
        self.rw.acquire_write()  # drain readers; block new ones via manager
        try:
            self.closed = True
            if snapshot:
                self.save()
            journal = self.journal
            if journal is not None:
                journal.close()
                self.engine.attach_journal(None)
        finally:
            self.rw.release_write()

    def abandon(self) -> None:
        """Drop the session without snapshotting — the crash-simulation
        hook used by the recovery tests.  Only batch-synced journal entries
        are what a reopened session will see."""
        self.closed = True
        journal = self.journal
        if journal is not None:
            journal.close()
            self.engine.attach_journal(None)


class SessionManager:
    """Hosts up to ``max_sessions`` named sessions, durably when given a
    ``data_dir``.

    ``programs`` maps wire-visible program names to zero-argument factories
    (defaults to the paper's :data:`~..programs.PROGRAM_FACTORIES`); tests
    can add factories, and in-process callers may pass callable backends
    (e.g. :class:`~..dynfo.faults.FaultyBackend`) that the wire's string
    backends cannot express.
    """

    def __init__(
        self,
        data_dir: str | Path | None = None,
        max_sessions: int = 64,
        programs: Mapping[str, Callable[[], DynFOProgram]] | None = None,
    ) -> None:
        if programs is None:
            from ..programs import PROGRAM_FACTORIES

            programs = PROGRAM_FACTORIES
        self._programs = dict(programs)
        self.data_dir = Path(data_dir) if data_dir is not None else None
        if self.data_dir is not None:
            self.data_dir.mkdir(parents=True, exist_ok=True)
        self.max_sessions = max_sessions
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()

    # -- opening -----------------------------------------------------------

    def open(
        self,
        name: str,
        program: str | None = None,
        *,
        n: int | None = None,
        backend: str | Callable[..., object] | None = None,
        durable: bool | None = None,
        audit_every: int = 0,
    ) -> Session:
        """Return the active session ``name``, reopening it from disk or
        creating it fresh as needed.

        Opening an existing session revalidates ``program``/``n`` if given;
        a mismatch is a :class:`SessionError`, not a silent re-shape.
        """
        if not _NAME_RE.match(name):
            raise SessionError(
                f"invalid session name {name!r} (letters, digits, '_', '-', "
                "'.', max 64 chars, must not start with a separator)"
            )
        with self._lock:
            session = self._sessions.get(name)
            if session is not None:
                self._check_shape(session, program, n)
                return session
            if len(self._sessions) >= self.max_sessions:
                raise OverloadError(
                    f"session table is full ({self.max_sessions} sessions); "
                    "close one before opening another"
                )
            directory = self.data_dir / name if self.data_dir is not None else None
            if durable is None:
                durable = directory is not None
            if durable and directory is None:
                raise SessionError(
                    "durable sessions need a SessionManager data_dir"
                )
            if directory is not None and (directory / "meta.json").exists():
                session = self._restore(name, directory, backend, audit_every)
                self._check_shape(session, program, n)
            else:
                session = self._create(
                    name, program, n, backend, directory if durable else None,
                    audit_every,
                )
            self._sessions[name] = session
            return session

    def _check_shape(
        self, session: Session, program: str | None, n: int | None
    ) -> None:
        if program is not None and program != session.program_name:
            raise SessionError(
                f"session {session.name!r} runs program "
                f"{session.program_name!r}, not {program!r}"
            )
        if n is not None and n != session.engine.n:
            raise SessionError(
                f"session {session.name!r} has universe size "
                f"{session.engine.n}, not {n}"
            )

    def _factory(self, program: str) -> Callable[[], DynFOProgram]:
        try:
            return self._programs[program]
        except KeyError:
            raise SessionError(
                f"unknown program {program!r}; available: "
                f"{', '.join(sorted(self._programs))}"
            ) from None

    def _create(
        self,
        name: str,
        program: str | None,
        n: int | None,
        backend: str | Callable[..., object] | None,
        directory: Path | None,
        audit_every: int,
    ) -> Session:
        if program is None or n is None:
            raise SessionError(
                f"session {name!r} does not exist yet; opening it needs a "
                "program name and a universe size n"
            )
        if isinstance(backend, str) and backend not in BACKENDS:
            raise SessionError(
                f"unknown backend {backend!r}; pick from {sorted(BACKENDS)}"
            )
        engine = DynFOEngine(
            self._factory(program)(),
            n,
            backend=backend if backend is not None else "relational",
            audit_every=audit_every,
        )
        backend_name = backend if isinstance(backend, str) else "relational"
        if directory is not None:
            directory.mkdir(parents=True, exist_ok=True)
            meta = {"program": program, "n": n, "backend": backend_name}
            (directory / "meta.json").write_text(json.dumps(meta))
            # record_effects: journal lines carry the committed delta, so
            # bytes/update scale with the delta and reopening replays the
            # tail physically instead of re-evaluating update formulas
            engine.attach_journal(
                RequestJournal(
                    directory / "journal.ndjson", fsync=False, record_effects=True
                )
            )
        return Session(name, engine, program, backend_name, directory)

    def _restore(
        self,
        name: str,
        directory: Path,
        backend: str | Callable[..., object] | None,
        audit_every: int,
    ) -> Session:
        try:
            meta = json.loads((directory / "meta.json").read_text())
            program_name = meta["program"]
            n = int(meta["n"])
            stored_backend = meta.get("backend", "relational")
        except (ValueError, KeyError, TypeError) as error:
            raise SessionError(
                f"session {name!r} has a corrupt meta.json: {error}"
            ) from error
        chosen = backend if isinstance(backend, str) else stored_backend
        engine = recover(
            self._factory(program_name)(),
            directory / "journal.ndjson",
            n=n,
            snapshot_path=directory / "snapshot.json",
            backend=chosen,
            audit_every=audit_every,
            attach=False,
        )
        engine.attach_journal(
            RequestJournal(
                directory / "journal.ndjson", fsync=False, record_effects=True
            )
        )
        return Session(name, engine, program_name, chosen, directory, recovered=True)

    # -- lookup & lifecycle ------------------------------------------------

    def get(self, name: str) -> Session:
        # snapshot the active names under the lock too: formatting the
        # error from the live dict after dropping the lock can tear
        # against a concurrent open/close mid-iteration
        with self._lock:
            session = self._sessions.get(name)
            active = ", ".join(sorted(self._sessions)) or "none"
        if session is None or session.closed:
            raise SessionError(
                f"no open session {name!r}; open it first (active: {active})"
            )
        return session

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def items(self) -> list[tuple[str, Session]]:
        """A point-in-time (name, session) snapshot, for metrics walkers."""
        with self._lock:
            return sorted(self._sessions.items())

    def close(self, name: str, snapshot: bool = True) -> None:
        with self._lock:
            session = self._sessions.pop(name, None)
        if session is None:
            raise SessionError(f"no open session {name!r}")
        session.close(snapshot=snapshot)

    def close_all(self, snapshot: bool = True) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close(snapshot=snapshot)

    def drop(self, name: str) -> None:
        """Close ``name`` and delete its on-disk state."""
        with self._lock:
            session = self._sessions.pop(name, None)
        if session is not None:
            session.close(snapshot=False)
            directory = session.directory
        elif self.data_dir is not None and _NAME_RE.match(name):
            directory = self.data_dir / name
        else:
            directory = None
        if directory is not None and directory.exists():
            shutil.rmtree(directory)

    def describe(self) -> dict:
        with self._lock:
            sessions = dict(self._sessions)
        return {name: session.describe() for name, session in sessions.items()}
