"""Live counters and latency histograms for the serving layer.

One :class:`SessionMetrics` per hosted session and one
:class:`ServiceMetrics` for the process, all guarded by per-object locks so
the thread-pool readers, the coalescing writer, and a concurrent ``stats``
request never tear a snapshot.  Where the first serving cut kept only
sums and maxima, every latency-shaped quantity now lands in a fixed-bucket
:class:`~..obs.hist.LatencyHistogram` — ``stats`` reports p50/p95/p99/max
per phase, and the same histograms back the Prometheus exposition
(``repro serve --metrics-port``).  Everything is exposed through the
``stats`` wire op (see TUTORIAL §8-9); the snapshot dicts are plain
JSON-able data.
"""

from __future__ import annotations

import threading
import time

from ..obs.hist import LatencyHistogram

__all__ = ["SessionMetrics", "ServiceMetrics"]


class SessionMetrics:
    """Per-session counters plus per-phase latency distributions."""

    #: histogram name -> what one observation measures
    HISTOGRAMS = ("read_latency", "write_latency", "queue_wait", "batch_commit", "fsync")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reads = 0
        self.writes = 0
        self.reads_collapsed = 0  # served by joining an in-flight identical read
        self.errors = 0
        self.overloads = 0
        self.batches = 0
        self.batch_requests = 0
        self.batch_size_max = 0
        self.read_latency = LatencyHistogram()  # admission -> result
        self.write_latency = LatencyHistogram()  # enqueue -> durable ack
        self.queue_wait = LatencyHistogram()  # enqueue -> drain pickup
        self.batch_commit = LatencyHistogram()  # one group-commit batch
        self.fsync = LatencyHistogram()  # the group fsync itself

    # -- recording ---------------------------------------------------------

    def record_read(self, wait_ns: int, exec_ns: int, collapsed: bool = False) -> None:
        with self._lock:
            self.reads += 1
            if collapsed:
                self.reads_collapsed += 1
            self.read_latency.record(wait_ns + exec_ns)

    def record_batch(self, size: int, exec_ns: int, fsync_ns: int = 0) -> None:
        """One coalesced write batch of ``size`` requests was committed."""
        with self._lock:
            self.batches += 1
            self.batch_requests += size
            self.batch_size_max = max(self.batch_size_max, size)
            self.batch_commit.record(exec_ns)
            if fsync_ns:
                self.fsync.record(fsync_ns)

    def record_write(self, queue_wait_ns: int, total_ns: int, ok: bool) -> None:
        with self._lock:
            self.writes += 1
            self.queue_wait.record(queue_wait_ns)
            self.write_latency.record(total_ns)
            if not ok:
                self.errors += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_overload(self) -> None:
        with self._lock:
            self.overloads += 1

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        """An atomic, JSON-able view of the counters and histograms."""
        with self._lock:
            requests = self.reads + self.writes
            return {
                "requests": requests,
                "reads": self.reads,
                "reads_collapsed": self.reads_collapsed,
                "writes": self.writes,
                "errors": self.errors,
                "overloads": self.overloads,
                "batches": self.batches,
                "batch_size_max": self.batch_size_max,
                "batch_size_avg": (
                    round(self.batch_requests / self.batches, 3) if self.batches else 0.0
                ),
                # kept for dashboards that predate the histograms
                "queue_wait_us_avg": (
                    round(self.queue_wait.sum_ns / self.queue_wait.count / 1e3, 1)
                    if self.queue_wait.count
                    else 0.0
                ),
                "queue_wait_us_max": round(self.queue_wait.max_ns / 1e3, 1),
                "latency": {
                    name: getattr(self, name).snapshot() for name in self.HISTOGRAMS
                },
            }

    def prometheus_view(self) -> tuple[dict, dict]:
        """An atomic view for the text exposition: the plain counters and,
        per histogram, ``(cumulative_buckets, sum_ns, count)``."""
        with self._lock:
            counters = {
                "reads": self.reads,
                "reads_collapsed": self.reads_collapsed,
                "writes": self.writes,
                "errors": self.errors,
                "overloads": self.overloads,
                "batches": self.batches,
            }
            hists = {
                name: (
                    getattr(self, name).cumulative_buckets(),
                    getattr(self, name).sum_ns,
                    getattr(self, name).count,
                )
                for name in self.HISTOGRAMS
            }
        return counters, hists


class ServiceMetrics:
    """Process-wide counters for the front end."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.requests = 0
        self.errors = 0
        self.protocol_errors = 0
        self.internal_errors = 0
        self.slow_requests = 0

    def record_request(self) -> None:
        with self._lock:
            self.requests += 1

    def record_error(self, code: str) -> None:
        with self._lock:
            self.errors += 1
            if code == "PROTOCOL_ERROR":
                self.protocol_errors += 1
            elif code == "INTERNAL_ERROR":
                self.internal_errors += 1

    def record_slow(self) -> None:
        with self._lock:
            self.slow_requests += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_s": round(time.time() - self.started_at, 3),
                "requests": self.requests,
                "errors": self.errors,
                "protocol_errors": self.protocol_errors,
                "internal_errors": self.internal_errors,
                "slow_requests": self.slow_requests,
            }
