"""Live counters for the serving layer.

One :class:`SessionMetrics` per hosted session and one
:class:`ServiceMetrics` for the process, all guarded by per-object locks so
the thread-pool readers, the coalescing writer, and a concurrent ``stats``
request never tear a snapshot.  Everything is exposed through the ``stats``
wire op (see TUTORIAL §8); the snapshot dicts are plain JSON-able data.
"""

from __future__ import annotations

import threading
import time

__all__ = ["SessionMetrics", "ServiceMetrics"]


class SessionMetrics:
    """Per-session counters: traffic, batching, queueing, collapsing."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reads = 0
        self.writes = 0
        self.reads_collapsed = 0  # served by joining an in-flight identical read
        self.errors = 0
        self.overloads = 0
        self.batches = 0
        self.batch_requests = 0
        self.batch_size_max = 0
        self.queue_wait_ns = 0
        self.queue_wait_ns_max = 0
        self.read_ns = 0
        self.write_ns = 0

    # -- recording ---------------------------------------------------------

    def record_read(self, wait_ns: int, exec_ns: int, collapsed: bool = False) -> None:
        with self._lock:
            self.reads += 1
            if collapsed:
                self.reads_collapsed += 1
            self._record_wait(wait_ns)
            self.read_ns += exec_ns

    def record_batch(self, size: int, exec_ns: int) -> None:
        """One coalesced write batch of ``size`` requests was committed."""
        with self._lock:
            self.batches += 1
            self.batch_requests += size
            self.batch_size_max = max(self.batch_size_max, size)
            self.write_ns += exec_ns

    def record_write(self, wait_ns: int, ok: bool) -> None:
        with self._lock:
            self.writes += 1
            self._record_wait(wait_ns)
            if not ok:
                self.errors += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_overload(self) -> None:
        with self._lock:
            self.overloads += 1

    def _record_wait(self, wait_ns: int) -> None:
        self.queue_wait_ns += wait_ns
        self.queue_wait_ns_max = max(self.queue_wait_ns_max, wait_ns)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        """An atomic, JSON-able view of the counters."""
        with self._lock:
            requests = self.reads + self.writes
            return {
                "requests": requests,
                "reads": self.reads,
                "reads_collapsed": self.reads_collapsed,
                "writes": self.writes,
                "errors": self.errors,
                "overloads": self.overloads,
                "batches": self.batches,
                "batch_size_max": self.batch_size_max,
                "batch_size_avg": (
                    round(self.batch_requests / self.batches, 3) if self.batches else 0.0
                ),
                "queue_wait_us_avg": (
                    round(self.queue_wait_ns / requests / 1e3, 1) if requests else 0.0
                ),
                "queue_wait_us_max": round(self.queue_wait_ns_max / 1e3, 1),
                "read_us_total": round(self.read_ns / 1e3, 1),
                "write_us_total": round(self.write_ns / 1e3, 1),
            }


class ServiceMetrics:
    """Process-wide counters for the front end."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.requests = 0
        self.errors = 0
        self.protocol_errors = 0
        self.internal_errors = 0

    def record_request(self) -> None:
        with self._lock:
            self.requests += 1

    def record_error(self, code: str) -> None:
        with self._lock:
            self.errors += 1
            if code == "PROTOCOL_ERROR":
                self.protocol_errors += 1
            elif code == "INTERNAL_ERROR":
                self.internal_errors += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_s": round(time.time() - self.started_at, 3),
                "requests": self.requests,
                "errors": self.errors,
                "protocol_errors": self.protocol_errors,
                "internal_errors": self.internal_errors,
            }
