"""The concurrent multi-session serving layer.

Hosts many named :class:`~..dynfo.engine.DynFOEngine` sessions behind a
single-writer / parallel-reader scheduler with group-commit durability,
admission control, and live metrics — reachable in-process
(:class:`ServiceClient`), over NDJSON/TCP (:class:`DynFOServer` +
:class:`TCPServiceClient`), or from the command line (``repro serve`` /
``repro client``).  See docs/TUTORIAL.md §8 and docs/DESIGN.md §5c.
"""

from .client import ServiceClient, TCPServiceClient
from .errors import (
    OverloadError,
    ProtocolError,
    ServiceError,
    SessionError,
    SessionPoisonedError,
    WIRE_CODES,
    code_for,
    error_from_wire,
    error_to_wire,
)
from .scheduler import Scheduler
from .server import DynFOServer, serve_forever
from .service import DynFOService
from .session import Session, SessionManager

__all__ = [
    "DynFOService",
    "DynFOServer",
    "serve_forever",
    "ServiceClient",
    "TCPServiceClient",
    "SessionManager",
    "Session",
    "Scheduler",
    "ServiceError",
    "ProtocolError",
    "SessionError",
    "SessionPoisonedError",
    "OverloadError",
    "WIRE_CODES",
    "code_for",
    "error_to_wire",
    "error_from_wire",
]
