"""The transport-agnostic request dispatcher.

:class:`DynFOService` is the whole serving layer behind one method:
``handle(item) -> response``.  The TCP front end feeds it decoded frames;
the in-process :class:`~.client.ServiceClient` calls it directly — both run
the *identical* dispatch, scheduling, and error paths, which is what makes
the in-process client an honest test double for the socket one.

``handle`` never raises: every failure becomes a typed error response via
:func:`~.errors.error_to_wire` (stable codes, no tracebacks).

Wire ops: ``ping``, ``open``, ``apply``, ``apply_script``, ``query``,
``ask``, ``stats``, ``sessions``, ``save``, ``close``.  See
docs/TUTORIAL.md §8 for the request shapes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from ..dynfo.requests import request_from_item
from .errors import ProtocolError, error_to_wire
from .metrics import ServiceMetrics
from .protocol import get_field, rows_to_wire
from .scheduler import Scheduler
from .session import Session, SessionManager

__all__ = ["DynFOService"]


class DynFOService:
    """SessionManager + Scheduler behind a single ``handle`` entry point."""

    def __init__(
        self,
        data_dir: str | Path | None = None,
        max_sessions: int = 64,
        read_workers: int = 8,
        max_batch: int = 64,
        max_queue_depth: int = 256,
        default_deadline: float | None = 30.0,
        programs: Mapping | None = None,
    ) -> None:
        self.sessions = SessionManager(
            data_dir=data_dir, max_sessions=max_sessions, programs=programs
        )
        self.scheduler = Scheduler(
            read_workers=read_workers,
            max_batch=max_batch,
            max_queue_depth=max_queue_depth,
            default_deadline=default_deadline,
        )
        self.metrics = ServiceMetrics()
        self._ops = {
            "ping": self._op_ping,
            "open": self._op_open,
            "apply": self._op_apply,
            "apply_script": self._op_apply_script,
            "query": self._op_query,
            "ask": self._op_ask,
            "stats": self._op_stats,
            "sessions": self._op_sessions,
            "save": self._op_save,
            "close": self._op_close,
        }

    # -- the single entry point -------------------------------------------

    def handle(self, item: dict) -> dict:
        """Dispatch one decoded frame; always returns a response frame."""
        rid = item.get("id") if isinstance(item, dict) else None
        self.metrics.record_request()
        try:
            if not isinstance(item, dict):
                raise ProtocolError(
                    f"frame must be a JSON object, got {type(item).__name__}"
                )
            op = item.get("op")
            handler = self._ops.get(op)
            if handler is None:
                raise ProtocolError(
                    f"unknown op {op!r}; available: {', '.join(sorted(self._ops))}"
                )
            result = handler(item)
        except Exception as error:
            wire = error_to_wire(error)
            self.metrics.record_error(wire["code"])
            return {"id": rid, "ok": False, "error": wire}
        return {"id": rid, "ok": True, "result": result}

    # -- shared plumbing ---------------------------------------------------

    def _session(self, item: dict) -> Session:
        return self.sessions.get(get_field(item, "session", str))

    @staticmethod
    def _deadline(item: dict) -> float | None:
        deadline_ms = item.get("deadline_ms")
        if deadline_ms is None:
            return None
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)):
            raise ProtocolError("deadline_ms must be a number of milliseconds")
        return float(deadline_ms) / 1e3

    @staticmethod
    def _params(item: dict) -> dict[str, int]:
        params = item.get("params") or {}
        if not isinstance(params, dict):
            raise ProtocolError("params must be an object of name -> int")
        for name, value in params.items():
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(f"param {name!r} must be an int, got {value!r}")
        return params

    @staticmethod
    def _wire_request(item_req) -> object:
        try:
            return request_from_item(item_req)
        except ValueError as error:
            raise ProtocolError(str(error)) from error

    # -- ops ---------------------------------------------------------------

    def _op_ping(self, item: dict) -> str:
        return "pong"

    def _op_open(self, item: dict) -> dict:
        name = get_field(item, "session", str)
        program = get_field(item, "program", str, required=False)
        n = get_field(item, "n", int, required=False)
        backend = get_field(item, "backend", str, required=False)
        durable = get_field(item, "durable", bool, required=False)
        audit_every = get_field(item, "audit_every", int, required=False) or 0
        session = self.sessions.open(
            name,
            program,
            n=n,
            backend=backend,
            durable=durable,
            audit_every=audit_every,
        )
        return {
            "session": session.name,
            "program": session.program_name,
            "n": session.engine.n,
            "backend": session.backend_name,
            "requests_applied": session.engine.requests_applied,
            "durable": session.directory is not None,
            "recovered": session.recovered,
        }

    def _op_apply(self, item: dict) -> dict:
        session = self._session(item)
        request = self._wire_request(get_field(item, "request", dict))
        stats = self.scheduler.apply(session, request, self._deadline(item))
        return {
            "applied": 1,
            "requests_applied": session.engine.requests_applied,
            "stats": stats,
        }

    def _op_apply_script(self, item: dict) -> dict:
        session = self._session(item)
        script = get_field(item, "script", list)
        requests = [self._wire_request(entry) for entry in script]
        outcomes = self.scheduler.apply_script(
            session, requests, self._deadline(item)
        )
        errors = [
            {"index": i, "error": error_to_wire(outcome.error)}
            for i, outcome in enumerate(outcomes)
            if outcome.error is not None
        ]
        return {
            "applied": len(outcomes) - len(errors),
            "requests_applied": session.engine.requests_applied,
            "errors": errors,
        }

    def _op_query(self, item: dict) -> list[list[int]]:
        session = self._session(item)
        name = get_field(item, "name", str)
        params = self._params(item)
        key = ("query", name, tuple(sorted(params.items())))
        try:
            rows = self.scheduler.read(
                session,
                lambda: session.engine.query(name, **params),
                key=key,
                deadline=self._deadline(item),
            )
        except KeyError as error:
            raise ProtocolError(str(error)) from error
        except TypeError as error:
            raise ProtocolError(f"bad params for query {name!r}: {error}") from error
        return rows_to_wire(rows)

    def _op_ask(self, item: dict) -> bool:
        session = self._session(item)
        name = get_field(item, "name", str)
        params = self._params(item)
        key = ("ask", name, tuple(sorted(params.items())))
        try:
            return bool(
                self.scheduler.read(
                    session,
                    lambda: session.engine.ask(name, **params),
                    key=key,
                    deadline=self._deadline(item),
                )
            )
        except KeyError as error:
            raise ProtocolError(str(error)) from error
        except TypeError as error:
            raise ProtocolError(f"bad params for query {name!r}: {error}") from error

    def _op_stats(self, item: dict) -> dict:
        which = get_field(item, "session", str, required=False)
        if which is not None:
            return {which: self.sessions.get(which).describe()}
        return {
            "service": {
                **self.metrics.snapshot(),
                "sessions": len(self.sessions.names()),
                "max_sessions": self.sessions.max_sessions,
                "read_workers": self.scheduler.read_workers,
                "max_batch": self.scheduler.max_batch,
                "max_queue_depth": self.scheduler.max_queue_depth,
            },
            "sessions": self.sessions.describe(),
        }

    def _op_sessions(self, item: dict) -> list[str]:
        return self.sessions.names()

    def _op_save(self, item: dict) -> dict:
        session = self._session(item)
        session.save()
        return {
            "session": session.name,
            "requests_applied": session.engine.requests_applied,
        }

    def _op_close(self, item: dict) -> dict:
        name = get_field(item, "session", str)
        snapshot = get_field(item, "snapshot", bool, required=False)
        self.sessions.close(name, snapshot=True if snapshot is None else snapshot)
        return {"session": name, "closed": True}

    # -- lifecycle ---------------------------------------------------------

    def close(self, snapshot: bool = True) -> None:
        """Quiesce: close every session (snapshotting durable ones) and the
        read pool."""
        self.sessions.close_all(snapshot=snapshot)
        self.scheduler.close()
