"""The transport-agnostic request dispatcher.

:class:`DynFOService` is the whole serving layer behind one method:
``handle(item) -> response``.  The TCP front end feeds it decoded frames;
the in-process :class:`~.client.ServiceClient` calls it directly — both run
the *identical* dispatch, scheduling, and error paths, which is what makes
the in-process client an honest test double for the socket one.

``handle`` never raises: every failure becomes a typed error response via
:func:`~.errors.error_to_wire` (stable codes, no tracebacks).

Observability: every request gets a :class:`~..obs.trace.Trace` the
scheduler fills with per-phase spans.  A frame carrying ``"trace": true``
gets the full span tree (plus per-rule engine timings) echoed back in the
response's ``trace`` field; independently, any request slower than the
slow-log threshold lands in the ring-buffer slow log together with the
compiled plan of the rule or query it exercised (``slowlog`` wire op,
``repro client slowlog``).

Wire ops: ``ping``, ``open``, ``apply``, ``apply_script``, ``query``,
``ask``, ``stats``, ``sessions``, ``slowlog``, ``save``, ``close``.  See
docs/TUTORIAL.md §8-9 for the request shapes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from ..dynfo.requests import Delete, Insert, Operation, SetConst, request_from_item
from ..obs.slowlog import SlowLog
from ..obs.trace import Trace
from .errors import ProtocolError, error_to_wire
from .metrics import ServiceMetrics
from .protocol import get_field, rows_to_wire
from .scheduler import Scheduler
from .session import Session, SessionManager

__all__ = ["DynFOService"]


class DynFOService:
    """SessionManager + Scheduler behind a single ``handle`` entry point."""

    def __init__(
        self,
        data_dir: str | Path | None = None,
        max_sessions: int = 64,
        read_workers: int = 8,
        max_batch: int = 64,
        max_queue_depth: int = 256,
        default_deadline: float | None = 30.0,
        programs: Mapping | None = None,
        slowlog_capacity: int = 64,
        slowlog_ms: float = 250.0,
    ) -> None:
        self.sessions = SessionManager(
            data_dir=data_dir, max_sessions=max_sessions, programs=programs
        )
        self.scheduler = Scheduler(
            read_workers=read_workers,
            max_batch=max_batch,
            max_queue_depth=max_queue_depth,
            default_deadline=default_deadline,
        )
        self.metrics = ServiceMetrics()
        self.slowlog = SlowLog(capacity=slowlog_capacity, threshold_ms=slowlog_ms)
        self._ops = {
            "ping": self._op_ping,
            "open": self._op_open,
            "apply": self._op_apply,
            "apply_script": self._op_apply_script,
            "query": self._op_query,
            "ask": self._op_ask,
            "stats": self._op_stats,
            "sessions": self._op_sessions,
            "slowlog": self._op_slowlog,
            "save": self._op_save,
            "close": self._op_close,
        }

    # -- the single entry point -------------------------------------------

    def handle(self, item: dict) -> dict:
        """Dispatch one decoded frame; always returns a response frame."""
        rid = item.get("id") if isinstance(item, dict) else None
        self.metrics.record_request()
        trace: Trace | None = None
        try:
            if not isinstance(item, dict):
                raise ProtocolError(
                    f"frame must be a JSON object, got {type(item).__name__}"
                )
            op = item.get("op")
            handler = self._ops.get(op)
            if handler is None:
                raise ProtocolError(
                    f"unknown op {op!r}; available: {', '.join(sorted(self._ops))}"
                )
            session_name = item.get("session")
            trace = Trace(
                op=op,
                session=session_name if isinstance(session_name, str) else None,
                detailed=bool(item.get("trace")),
            )
            result = handler(item, trace)
        except Exception as error:
            wire = error_to_wire(error)
            self.metrics.record_error(wire["code"])
            self._observe(item, trace, ok=False, error=wire.get("message"))
            return {"id": rid, "ok": False, "error": wire}
        response = {"id": rid, "ok": True, "result": result}
        if trace.detailed:
            response["trace"] = trace.to_wire()
        self._observe(item, trace, ok=True)
        return response

    # -- observability -----------------------------------------------------

    def _observe(
        self, item, trace: Trace | None, ok: bool, error: str | None = None
    ) -> None:
        """Feed the slow log; rendering the offending plan is deferred
        until the threshold check says the request was actually slow."""
        if trace is None:
            return
        total_ns = trace.total_ns
        if not self.slowlog.is_slow(total_ns):
            return
        plan = self._render_slow_plan(item) if isinstance(item, dict) else None
        if self.slowlog.observe(trace, total_ns, ok, plan=plan, error=error):
            self.metrics.record_slow()

    def _render_slow_plan(self, item: dict) -> str | None:
        """The compiled physical plan behind a slow request — the rule the
        write dispatched to, or the query it evaluated — as ``render_plan``
        text.  Best effort: never raises into the response path."""
        try:
            from ..logic.explain import render_plan
            from ..logic.plan import compile_formula

            op = item.get("op")
            session = self.sessions.get(item["session"])
            program = session.engine.program
            distribute = session.backend_name != "dense"

            def render_definitions(owner: str, definitions) -> list[str]:
                parts = []
                for definition in definitions:
                    frame = ", ".join(definition.frame)
                    plan = compile_formula(
                        definition.formula, definition.frame, distribute=distribute
                    )
                    parts.append(
                        f"{owner} :: {definition.name}({frame})\n{render_plan(plan)}"
                    )
                return parts

            if op in ("query", "ask"):
                query = program.queries.get(item.get("name"))
                if query is None:
                    return None
                return "\n".join(render_definitions("query", [query]))
            if op in ("apply", "apply_script"):
                if op == "apply":
                    request = request_from_item(item.get("request"))
                else:
                    script = item.get("script") or []
                    if not script:
                        return None
                    request = request_from_item(script[0])
                if isinstance(request, Insert):
                    rule = program.on_insert.get(request.rel)
                elif isinstance(request, Delete):
                    rule = program.on_delete.get(request.rel)
                elif isinstance(request, SetConst):
                    rule = program.on_set.get(request.name)
                elif isinstance(request, Operation):
                    rule = program.on_operation.get(request.name)
                else:  # pragma: no cover - exhaustive over Request kinds
                    rule = None
                if rule is None:
                    return None
                parts = render_definitions(f"{request} [temp]", rule.temporaries)
                parts += render_definitions(str(request), rule.definitions)
                # on the delta path, also dump the parameter-specialized
                # plans that actually executed — the generic plan alone can
                # hide why a specific binding was slow
                _, _, specialized = session.engine.specialized_plans_for(request)
                if specialized is not None:
                    for name, plan in specialized.temporaries:
                        parts.append(
                            f"{request} [specialized temp] :: {name}\n"
                            f"{render_plan(plan)}"
                        )
                    for name, plan in specialized.definitions:
                        parts.append(
                            f"{request} [specialized] :: {name}\n{render_plan(plan)}"
                        )
                return "\n".join(parts)
        except Exception:  # pragma: no cover - diagnostics must not raise
            return None
        return None

    # -- shared plumbing ---------------------------------------------------

    def _session(self, item: dict) -> Session:
        return self.sessions.get(get_field(item, "session", str))

    @staticmethod
    def _deadline(item: dict) -> float | None:
        deadline_ms = item.get("deadline_ms")
        if deadline_ms is None:
            return None
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)):
            raise ProtocolError("deadline_ms must be a number of milliseconds")
        return float(deadline_ms) / 1e3

    @staticmethod
    def _params(item: dict) -> dict[str, int]:
        params = item.get("params") or {}
        if not isinstance(params, dict):
            raise ProtocolError("params must be an object of name -> int")
        for name, value in params.items():
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(f"param {name!r} must be an int, got {value!r}")
        return params

    @staticmethod
    def _wire_request(item_req) -> object:
        try:
            return request_from_item(item_req)
        except ValueError as error:
            raise ProtocolError(str(error)) from error

    # -- ops ---------------------------------------------------------------

    def _op_ping(self, item: dict, trace: Trace) -> str:
        return "pong"

    def _op_open(self, item: dict, trace: Trace) -> dict:
        name = get_field(item, "session", str)
        program = get_field(item, "program", str, required=False)
        n = get_field(item, "n", int, required=False)
        backend = get_field(item, "backend", str, required=False)
        durable = get_field(item, "durable", bool, required=False)
        audit_every = get_field(item, "audit_every", int, required=False) or 0
        session = self.sessions.open(
            name,
            program,
            n=n,
            backend=backend,
            durable=durable,
            audit_every=audit_every,
        )
        return {
            "session": session.name,
            "program": session.program_name,
            "n": session.engine.n,
            "backend": session.backend_name,
            "requests_applied": session.engine.requests_applied,
            "durable": session.directory is not None,
            "recovered": session.recovered,
        }

    def _op_apply(self, item: dict, trace: Trace) -> dict:
        session = self._session(item)
        request = self._wire_request(get_field(item, "request", dict))
        stats = self.scheduler.apply(
            session, request, self._deadline(item), trace=trace
        )
        return {
            "applied": 1,
            "requests_applied": session.engine.requests_applied,
            "stats": stats,
        }

    def _op_apply_script(self, item: dict, trace: Trace) -> dict:
        session = self._session(item)
        script = get_field(item, "script", list)
        requests = [self._wire_request(entry) for entry in script]
        outcomes = self.scheduler.apply_script(
            session, requests, self._deadline(item), trace=trace
        )
        errors = [
            {"index": i, "error": error_to_wire(outcome.error)}
            for i, outcome in enumerate(outcomes)
            if outcome.error is not None
        ]
        return {
            "applied": len(outcomes) - len(errors),
            "requests_applied": session.engine.requests_applied,
            "errors": errors,
        }

    def _op_query(self, item: dict, trace: Trace) -> list[list[int]]:
        session = self._session(item)
        name = get_field(item, "name", str)
        params = self._params(item)
        key = ("query", name, tuple(sorted(params.items())))
        try:
            rows = self.scheduler.read(
                session,
                lambda: session.engine.query(name, **params),
                key=key,
                deadline=self._deadline(item),
                trace=trace,
            )
        except KeyError as error:
            raise ProtocolError(str(error)) from error
        except TypeError as error:
            raise ProtocolError(f"bad params for query {name!r}: {error}") from error
        return rows_to_wire(rows)

    def _op_ask(self, item: dict, trace: Trace) -> bool:
        session = self._session(item)
        name = get_field(item, "name", str)
        params = self._params(item)
        key = ("ask", name, tuple(sorted(params.items())))
        try:
            return bool(
                self.scheduler.read(
                    session,
                    lambda: session.engine.ask(name, **params),
                    key=key,
                    deadline=self._deadline(item),
                    trace=trace,
                )
            )
        except KeyError as error:
            raise ProtocolError(str(error)) from error
        except TypeError as error:
            raise ProtocolError(f"bad params for query {name!r}: {error}") from error

    def _op_stats(self, item: dict, trace: Trace) -> dict:
        which = get_field(item, "session", str, required=False)
        if which is not None:
            return {which: self.sessions.get(which).describe()}
        return {
            "service": {
                **self.metrics.snapshot(),
                "sessions": len(self.sessions.names()),
                "max_sessions": self.sessions.max_sessions,
                "read_workers": self.scheduler.read_workers,
                "max_batch": self.scheduler.max_batch,
                "max_queue_depth": self.scheduler.max_queue_depth,
                "slowlog_threshold_ms": self.slowlog.threshold_ms,
            },
            "sessions": self.sessions.describe(),
        }

    def _op_sessions(self, item: dict, trace: Trace) -> list[str]:
        return self.sessions.names()

    def _op_slowlog(self, item: dict, trace: Trace) -> dict:
        which = get_field(item, "session", str, required=False)
        limit = get_field(item, "limit", int, required=False)
        payload = self.slowlog.snapshot()
        if which is not None:
            payload["entries"] = [
                entry for entry in payload["entries"] if entry.get("session") == which
            ]
        if limit is not None and limit >= 0:
            payload["entries"] = payload["entries"][:limit]
        return payload

    def _op_save(self, item: dict, trace: Trace) -> dict:
        session = self._session(item)
        session.save()
        return {
            "session": session.name,
            "requests_applied": session.engine.requests_applied,
        }

    def _op_close(self, item: dict, trace: Trace) -> dict:
        name = get_field(item, "session", str)
        snapshot = get_field(item, "snapshot", bool, required=False)
        self.sessions.close(name, snapshot=True if snapshot is None else snapshot)
        return {"session": name, "closed": True}

    # -- lifecycle ---------------------------------------------------------

    def close(self, snapshot: bool = True) -> None:
        """Quiesce: close every session (snapshotting durable ones) and the
        read pool."""
        self.sessions.close_all(snapshot=snapshot)
        self.scheduler.close()
