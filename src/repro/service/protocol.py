"""The newline-delimited-JSON wire protocol.

One request per line, one response per line, both UTF-8 JSON objects::

    -> {"id": 7, "op": "ask", "session": "chat", "name": "reach",
        "params": {"s": 0, "t": 5}}
    <- {"id": 7, "ok": true, "result": true}
    <- {"id": 8, "ok": false, "error": {"code": "OVERLOADED", ...}}

``id`` is optional and echoed verbatim so clients may pipeline.  Requests
ride the journal's item format (:func:`~..dynfo.requests.request_to_item`),
so a wire ``apply`` carries exactly what a journal line carries.  Relation
results cross as sorted lists of lists — deterministic bytes for the same
relation, which is what lets collapsed reads share one serialized result.

Any request frame may additionally carry ``"trace": true``; the response
then gains a ``trace`` field holding the request's span tree (trace id,
per-phase timings, per-rule engine evaluation children — see
:mod:`~..obs.trace`).  The ``slowlog`` op reads the server's ring buffer
of requests that crossed the slow threshold.

Framing problems raise :class:`~.errors.ProtocolError`, which the server
answers typed (code ``PROTOCOL_ERROR``) without dropping the connection.
"""

from __future__ import annotations

import json
from typing import Any

from .errors import ProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "decode_frame",
    "encode_frame",
    "rows_to_wire",
    "rows_from_wire",
    "get_field",
]

#: Upper bound on one frame; a line longer than this is an attack or a bug.
MAX_FRAME_BYTES = 8 * 1024 * 1024


def encode_frame(obj: dict) -> bytes:
    """One response/request as a compact JSON line."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def decode_frame(line: bytes | str) -> dict:
    """Parse one frame; malformed input is a typed :class:`ProtocolError`."""
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"frame is not UTF-8: {error}") from error
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"frame is not JSON: {error}") from error
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def rows_to_wire(rows: set[tuple[int, ...]]) -> list[list[int]]:
    """A relation as deterministic JSON: sorted list of lists."""
    return [list(row) for row in sorted(rows)]


def rows_from_wire(rows: Any) -> set[tuple[int, ...]]:
    """Inverse of :func:`rows_to_wire` (client side)."""
    if not isinstance(rows, list):
        raise ProtocolError(f"relation result must be a list, got {rows!r}")
    return {tuple(row) for row in rows}


def get_field(item: dict, field: str, kind: type, required: bool = True) -> Any:
    """Fetch a typed field from a frame, raising :class:`ProtocolError`
    with a stable message shape when missing or mistyped."""
    if field not in item:
        if required:
            raise ProtocolError(f"op {item.get('op')!r} needs a {field!r} field")
        return None
    value = item[field]
    if kind is int and isinstance(value, bool):
        raise ProtocolError(f"field {field!r} must be {kind.__name__}, got bool")
    if not isinstance(value, kind):
        raise ProtocolError(
            f"field {field!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value
