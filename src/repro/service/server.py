"""The TCP front end: NDJSON over a threading socket server.

One daemon thread per connection, each reading frames line-by-line and
answering through the shared :class:`~.service.DynFOService`.  Protocol
errors (bad JSON, oversized frames, missing fields) are answered typed on
the same connection — the client keeps the socket; only EOF or a transport
error ends the loop.

Deliberately dependency-free: :mod:`socketserver` from the standard
library, newline framing, JSON payloads.  ``nc localhost 8642`` is a
working client.
"""

from __future__ import annotations

import socket
import socketserver
import threading

from .errors import ProtocolError, error_to_wire
from .protocol import MAX_FRAME_BYTES, decode_frame, encode_frame
from .service import DynFOService

__all__ = ["DynFOServer", "serve_forever"]


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read a frame, answer a frame, repeat until EOF."""

    # bound readline() so an unterminated line cannot balloon memory
    rbufsize = MAX_FRAME_BYTES + 2

    def setup(self) -> None:
        super().setup()
        self.connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def handle(self) -> None:
        service: DynFOService = self.server.service  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline(MAX_FRAME_BYTES + 2)
            except (OSError, ValueError):
                return
            if not line:
                return  # client hung up
            if line.strip() == b"":
                continue
            try:
                if len(line) > MAX_FRAME_BYTES:
                    raise ProtocolError(
                        f"frame exceeds the {MAX_FRAME_BYTES}-byte limit"
                    )
                response = service.handle(decode_frame(line))
            except Exception as error:  # framing failed before dispatch
                service.metrics.record_request()
                wire = error_to_wire(error)
                service.metrics.record_error(wire["code"])
                response = {"id": None, "ok": False, "error": wire}
            try:
                self.wfile.write(encode_frame(response))
                self.wfile.flush()
            except (OSError, ValueError):
                return


class DynFOServer(socketserver.ThreadingTCPServer):
    """A threading TCP server wrapping one :class:`DynFOService`.

    ``port=0`` binds an ephemeral port (read it back from
    ``server_address``), which is what the tests and benchmarks use.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8642, service: DynFOService | None = None
    ) -> None:
        self.service = service if service is not None else DynFOService()
        super().__init__((host, port), _Handler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    def serve_in_background(self) -> threading.Thread:
        """Start serving on a daemon thread (tests, benchmarks, examples)."""
        thread = threading.Thread(
            target=self.serve_forever, name="dynfo-serve", daemon=True
        )
        thread.start()
        return thread

    def stop(self, snapshot: bool = True) -> None:
        """Stop accepting, close the listener, and quiesce the service."""
        self.shutdown()
        self.server_close()
        self.service.close(snapshot=snapshot)


def serve_forever(server: DynFOServer) -> None:
    """Run ``server`` until KeyboardInterrupt, then shut down cleanly with
    snapshots — the ``repro serve`` loop."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.service.close(snapshot=True)
