"""Clients for the serving layer.

Two transports, one API:

* :class:`ServiceClient` wraps a :class:`~.service.DynFOService` in-process
  — no sockets, same dispatch and error paths, which makes it the honest
  test double and the zero-setup way to script a service.
* :class:`TCPServiceClient` speaks the NDJSON protocol over a socket to a
  :class:`~.server.DynFOServer` (or ``repro serve``).

Both raise the *typed* exception the server reported: an
``OverloadError`` on the server is an ``OverloadError`` in the caller,
rebuilt from its stable wire code by :func:`~.errors.error_from_wire`.
"""

from __future__ import annotations

import socket
from typing import Any, Iterable, Sequence

from ..dynfo.requests import Request, request_to_item
from .errors import ProtocolError, ServiceError, error_from_wire
from .protocol import MAX_FRAME_BYTES, decode_frame, encode_frame, rows_from_wire

__all__ = ["ServiceClient", "TCPServiceClient"]


class _BaseClient:
    """The op vocabulary, shared by both transports.

    Subclasses implement :meth:`call` (send one frame, return the decoded
    response frame); everything else is sugar over it.
    """

    def call(self, item: dict) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError

    def request(self, item: dict) -> Any:
        """Send one frame and unwrap it: result on ``ok``, typed raise on
        error."""
        response = self.call(item)
        if not isinstance(response, dict):
            raise ProtocolError(f"malformed response: {response!r}")
        if response.get("ok"):
            return response.get("result")
        raise error_from_wire(response.get("error"))

    def call_traced(self, item: dict) -> tuple[Any, dict | None]:
        """Like :meth:`request` with ``"trace": true`` set: returns
        ``(result, trace)`` where ``trace`` is the server's span tree for
        this exact request (see :mod:`~..obs.trace`)."""
        response = self.call({**item, "trace": True})
        if not isinstance(response, dict):
            raise ProtocolError(f"malformed response: {response!r}")
        if response.get("ok"):
            return response.get("result"), response.get("trace")
        raise error_from_wire(response.get("error"))

    # -- ops ---------------------------------------------------------------

    def ping(self) -> str:
        return self.request({"op": "ping"})

    def open(
        self,
        session: str,
        program: str | None = None,
        *,
        n: int | None = None,
        backend: str | None = None,
        durable: bool | None = None,
        audit_every: int = 0,
    ) -> dict:
        item: dict = {"op": "open", "session": session}
        if program is not None:
            item["program"] = program
        if n is not None:
            item["n"] = n
        if backend is not None:
            item["backend"] = backend
        if durable is not None:
            item["durable"] = durable
        if audit_every:
            item["audit_every"] = audit_every
        return self.request(item)

    def apply(
        self, session: str, request: Request, deadline_ms: float | None = None
    ) -> dict:
        item: dict = {
            "op": "apply",
            "session": session,
            "request": request_to_item(request),
        }
        if deadline_ms is not None:
            item["deadline_ms"] = deadline_ms
        return self.request(item)

    def apply_script(
        self,
        session: str,
        script: Iterable[Request],
        deadline_ms: float | None = None,
    ) -> dict:
        item: dict = {
            "op": "apply_script",
            "session": session,
            "script": [request_to_item(request) for request in script],
        }
        if deadline_ms is not None:
            item["deadline_ms"] = deadline_ms
        result = self.request(item)
        if result.get("errors"):
            first = result["errors"][0]
            raise error_from_wire(first["error"])
        return result

    def ask(
        self,
        session: str,
        name: str,
        deadline_ms: float | None = None,
        **params: int,
    ) -> bool:
        item: dict = {"op": "ask", "session": session, "name": name, "params": params}
        if deadline_ms is not None:
            item["deadline_ms"] = deadline_ms
        return bool(self.request(item))

    def query(
        self,
        session: str,
        name: str,
        deadline_ms: float | None = None,
        **params: int,
    ) -> set[tuple[int, ...]]:
        item: dict = {"op": "query", "session": session, "name": name, "params": params}
        if deadline_ms is not None:
            item["deadline_ms"] = deadline_ms
        return rows_from_wire(self.request(item))

    def stats(self, session: str | None = None) -> dict:
        item: dict = {"op": "stats"}
        if session is not None:
            item["session"] = session
        return self.request(item)

    def sessions(self) -> list[str]:
        return self.request({"op": "sessions"})

    def slowlog(self, session: str | None = None, limit: int | None = None) -> dict:
        """The server's slow-request ring buffer (newest first)."""
        item: dict = {"op": "slowlog"}
        if session is not None:
            item["session"] = session
        if limit is not None:
            item["limit"] = limit
        return self.request(item)

    def save(self, session: str) -> dict:
        return self.request({"op": "save", "session": session})

    def close_session(self, session: str, snapshot: bool = True) -> dict:
        return self.request(
            {"op": "close", "session": session, "snapshot": snapshot}
        )


class ServiceClient(_BaseClient):
    """In-process client: frames go straight to ``service.handle``."""

    def __init__(self, service) -> None:
        self.service = service
        self._next_id = 0

    def call(self, item: dict) -> dict:
        self._next_id += 1
        return self.service.handle({"id": self._next_id, **item})


class TCPServiceClient(_BaseClient):
    """Socket client for the NDJSON protocol.

    Not thread-safe: one instance per client thread/process (the protocol
    itself allows pipelining by ``id``, but this client sends one request
    at a time)."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8642, timeout: float | None = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._rfile = self._sock.makefile("rb", buffering=MAX_FRAME_BYTES + 2)
        self._next_id = 0

    def call(self, item: dict) -> dict:
        self._next_id += 1
        frame = {"id": self._next_id, **item}
        self._sock.sendall(encode_frame(frame))
        line = self._rfile.readline(MAX_FRAME_BYTES + 2)
        if not line:
            raise ServiceError(
                f"server at {self.host}:{self.port} closed the connection"
            )
        response = decode_frame(line)
        rid = response.get("id")
        if rid is not None and rid != frame["id"]:
            raise ProtocolError(
                f"response id {rid!r} does not match request id {frame['id']!r}"
            )
        return response

    def pipeline(self, items: Sequence[dict]) -> list[dict]:
        """Send every frame before reading any response (id-matched).

        This is what lets one connection keep the server busy; the
        benchmark's batch arm uses it to measure coalescing."""
        ids = []
        payload = bytearray()
        for item in items:
            self._next_id += 1
            ids.append(self._next_id)
            payload += encode_frame({"id": self._next_id, **item})
        self._sock.sendall(bytes(payload))
        responses = []
        for expected in ids:
            line = self._rfile.readline(MAX_FRAME_BYTES + 2)
            if not line:
                raise ServiceError(
                    f"server at {self.host}:{self.port} closed mid-pipeline"
                )
            response = decode_frame(line)
            rid = response.get("id")
            if rid is not None and rid != expected:
                raise ProtocolError(
                    f"pipelined response id {rid!r}, expected {expected!r}"
                )
            responses.append(response)
        return responses

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "TCPServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
