"""The scheduler: single-writer / parallel-reader execution per session.

Every Dyn-FO update is one constant-depth parallel step over the *previous*
structure (Definition 3.1), which forces a total order on writes per
session — but says nothing about reads, which are pure first-order queries
over whatever structure version is current.  The scheduler realizes exactly
that split:

* **Writes** funnel through a per-session queue.  Whichever submitting
  thread wins the drain lock commits *everything* queued at that moment as
  one coalesced batch — each request still goes through the engine's
  transactional ``begin_batch()`` apply, but the batch shares a single
  journal fsync (group commit) and a single writer-lock acquisition.
  Submitters are only acknowledged after the batch's sync, so the WAL
  invariant (ACK implies durable) holds per request while the fsync cost
  amortizes per batch.  Under load, batch sizes grow by themselves: while
  one batch commits, the queue refills.

  The group fsync runs *inside* the session's write-lock scope: a
  concurrent ``Session.close()`` (which also takes the write lock) can
  therefore never detach and close the journal between the batch's apply
  and its durability point.  If the fsync itself fails, the in-memory
  engine is ahead of both the durable log and what clients were told —
  the batch is reported failed *and the session is poisoned*: every later
  write is refused with :class:`~.errors.SessionPoisonedError` (reads stay
  allowed) instead of silently serving diverged state.

* **Reads** fan out across a thread pool under the shared side of the
  session's readers-writer lock.  Identical in-flight reads — same session,
  same structure version, same query, same parameters — *collapse*: one
  evaluation runs and every concurrent asker shares its result (and its
  serialized form).  Collapsing keys on the structure version, so it is
  invisible to read-your-writes ordering: a client that just committed
  version v can only collapse onto evaluations at version >= v.

* **Admission control** bounds the damage of overload: at most
  ``max_queue_depth`` requests may be queued-or-running per session, and a
  request that waits in queue past its deadline is rejected with
  :class:`~.errors.OverloadError` *before* it consumes evaluation work.
  A deadline of ``0`` means "expire immediately unless served at once" —
  every deadline comparison is against ``None``, never truthiness.
  Callers see a typed, retryable error instead of a hung socket.

* **Tracing**: both paths accept a :class:`~..obs.trace.Trace` and record
  one span per phase they move the request through (queue wait, lock
  waits, engine apply with per-rule children, group fsync, collapse
  join — see :mod:`..obs.trace` for the taxonomy), alongside the fixed-
  bucket latency histograms in :class:`~.metrics.SessionMetrics`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Hashable, Sequence

from ..dynfo.errors import EngineError, JournalError
from ..dynfo.requests import Request
from ..obs.trace import Trace
from .errors import OverloadError, SessionError, SessionPoisonedError
from .session import Session

__all__ = ["Scheduler", "WriteOutcome"]


class WriteOutcome:
    """What happened to one queued write: either ``stats`` (applied) or
    ``error`` (typed; the structure is untouched for this request)."""

    __slots__ = (
        "request",
        "stats",
        "error",
        "enqueued_ns",
        "dequeued_ns",
        "deadline",
        "trace",
        "done",
    )

    def __init__(
        self,
        request: Request,
        deadline: float | None = None,
        trace: Trace | None = None,
    ) -> None:
        self.request = request
        self.stats: dict[str, int] | None = None
        self.error: Exception | None = None
        self.enqueued_ns = time.monotonic_ns()
        self.dequeued_ns = self.enqueued_ns
        self.deadline = deadline
        self.trace = trace
        self.done = threading.Event()

    @property
    def wait_ns(self) -> int:
        return time.monotonic_ns() - self.enqueued_ns


class _InFlightRead:
    """A leader's evaluation that concurrent identical reads wait on."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: Exception | None = None


class Scheduler:
    """Coalesces writes and fans out reads for any number of sessions."""

    def __init__(
        self,
        read_workers: int = 8,
        max_batch: int = 64,
        max_queue_depth: int = 256,
        default_deadline: float | None = 30.0,
    ) -> None:
        if read_workers < 1:
            raise ValueError(f"read_workers must be >= 1, got {read_workers}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.read_workers = read_workers
        self.max_batch = max_batch
        self.max_queue_depth = max_queue_depth
        self.default_deadline = default_deadline
        self._pool = ThreadPoolExecutor(
            max_workers=read_workers, thread_name_prefix="dynfo-read"
        )
        self._inflight: dict[tuple, _InFlightRead] = {}
        self._inflight_lock = threading.Lock()
        self._closed = False

    # -- admission ---------------------------------------------------------

    def _admit(self, session: Session, deadline: float | None) -> float | None:
        if deadline is None:
            deadline = self.default_deadline
        with session.queue_lock:
            if session.pending >= self.max_queue_depth:
                session.metrics.record_overload()
                raise OverloadError(
                    f"session {session.name!r} queue is full "
                    f"({self.max_queue_depth} pending); back off and retry"
                )
            session.pending += 1
        return deadline

    def _release(self, session: Session, count: int = 1) -> None:
        with session.queue_lock:
            session.pending -= count

    # -- writes ------------------------------------------------------------

    def apply(
        self,
        session: Session,
        request: Request,
        deadline: float | None = None,
        trace: Trace | None = None,
    ) -> dict[str, int]:
        """Apply one write through the coalescing queue; blocks until the
        request's batch is durably committed (or it failed typed)."""
        outcome = self.apply_script(session, [request], deadline, trace)[0]
        if outcome.error is not None:
            raise outcome.error
        assert outcome.stats is not None
        return outcome.stats

    def apply_script(
        self,
        session: Session,
        requests: Sequence[Request],
        deadline: float | None = None,
        trace: Trace | None = None,
    ) -> list[WriteOutcome]:
        """Enqueue a contiguous run of writes and wait for all of them.

        The requests land in the queue together, so up to ``max_batch`` of
        them commit as one group-fsync batch — plus whatever other clients
        queued meanwhile.  Per-request outcomes come back in order."""
        if not requests:
            return []
        if session.poisoned is not None:
            raise SessionPoisonedError(
                f"session {session.name!r} is poisoned ({session.poisoned}); "
                "writes are refused until it is closed and reopened"
            )
        deadline = self._admit_many(session, len(requests), deadline)
        outcomes = [WriteOutcome(request, deadline, trace) for request in requests]
        try:
            with session.queue_lock:
                session.write_queue.extend(outcomes)
            self._drain(session)
            timeout = 60.0 if deadline is None else deadline + 60.0
            for outcome in outcomes:
                if not outcome.done.wait(timeout=timeout):  # pragma: no cover
                    outcome.error = OverloadError(
                        f"write on session {session.name!r} stalled past "
                        f"{timeout:.0f}s; the service is wedged"
                    )
            return outcomes
        finally:
            self._release(session, len(outcomes))

    def _admit_many(
        self, session: Session, count: int, deadline: float | None
    ) -> float | None:
        if deadline is None:
            deadline = self.default_deadline
        with session.queue_lock:
            if session.pending + count > self.max_queue_depth:
                session.metrics.record_overload()
                raise OverloadError(
                    f"session {session.name!r} queue cannot take {count} more "
                    f"requests ({session.pending} of {self.max_queue_depth} "
                    "slots used); back off and retry"
                )
            session.pending += count
        return deadline

    def _drain(self, session: Session) -> None:
        """The batch-commit loop.  Whoever holds ``writer_lock`` drains; the
        empty-queue check and the lock release happen under ``queue_lock``
        so an enqueue can never slip between them and strand a request."""
        while True:
            if not session.writer_lock.acquire(blocking=False):
                return  # the current holder's loop will pick our entry up
            batch: list[WriteOutcome] | None = None
            with session.queue_lock:
                if session.write_queue:
                    take = min(len(session.write_queue), self.max_batch)
                    batch = [session.write_queue.popleft() for _ in range(take)]
                else:
                    session.writer_lock.release()
            if batch is None:
                return
            try:
                self._commit_batch(session, batch)
            finally:
                session.writer_lock.release()

    def _apply_one(self, session: Session, outcome: WriteOutcome) -> bool:
        """Run one request through the engine under the exclusive lock,
        recording the apply span (with per-rule children for detailed
        traces).  Returns whether it was applied."""
        engine = session.engine
        trace = outcome.trace
        if trace is None:
            try:
                engine.apply(outcome.request)
            except EngineError as error:
                outcome.error = error
            except Exception as error:  # no raw tracebacks to clients
                outcome.error = EngineError(
                    f"applying {outcome.request} failed: {error}"
                )
            else:
                outcome.stats = engine.last_update_stats
                return True
            return False
        evals: list[tuple[str, str, int, int]] = []
        if trace.detailed:
            engine.eval_timing_hook = lambda kind, name, ns: evals.append(
                (kind, name, time.monotonic_ns() - ns, ns)
            )
        started = time.monotonic_ns()
        try:
            engine.apply(outcome.request)
        except EngineError as error:
            outcome.error = error
        except Exception as error:
            outcome.error = EngineError(f"applying {outcome.request} failed: {error}")
        finally:
            if trace.detailed:
                engine.eval_timing_hook = None
        elapsed = time.monotonic_ns() - started
        span = trace.record(
            "engine_apply", started, elapsed, meta={"request": str(outcome.request)}
        )
        for kind, name, start_ns, ns in evals:
            if kind == "journal":
                trace.record("journal_append", start_ns, ns)
            else:
                span.add_child(f"eval:{name}", start_ns, ns, meta={"kind": kind})
        if outcome.error is not None:
            return False
        outcome.stats = engine.last_update_stats
        # delta sizes on the span: how many tuples the update actually moved
        span.meta["tuples_added"] = outcome.stats.get("tuples_added", 0)
        span.meta["tuples_removed"] = outcome.stats.get("tuples_removed", 0)
        return True

    def _commit_batch(self, session: Session, batch: list[WriteOutcome]) -> None:
        """Apply one coalesced batch under the exclusive lock, sync the
        journal once *while still holding the lock* (so a concurrent close
        cannot slip between apply and durability), then acknowledge every
        submitter."""
        started = time.monotonic_ns()
        applied: list[WriteOutcome] = []
        fsync_ns = 0
        session.rw.acquire_write()
        lock_acquired = time.monotonic_ns()
        lock_wait_ns = lock_acquired - started
        try:
            for outcome in batch:
                outcome.dequeued_ns = time.monotonic_ns()
                trace = outcome.trace
                if trace is not None:
                    trace.record(
                        "queue_wait",
                        outcome.enqueued_ns,
                        outcome.dequeued_ns - outcome.enqueued_ns,
                    )
                    trace.record(
                        "writer_lock_wait",
                        started,
                        lock_wait_ns,
                        meta={"batch_size": len(batch)},
                    )
                if session.closed:
                    # close() drained the readers and snapshotted; applying
                    # now would ACK a write the closed journal never sees
                    outcome.error = SessionError(
                        f"session {session.name!r} closed while the write "
                        "was queued; nothing was applied"
                    )
                    continue
                if session.poisoned is not None:
                    outcome.error = SessionPoisonedError(
                        f"session {session.name!r} is poisoned "
                        f"({session.poisoned}); the write was not applied"
                    )
                    continue
                wait_ns = outcome.dequeued_ns - outcome.enqueued_ns
                deadline = outcome.deadline
                if deadline is not None and wait_ns > deadline * 1e9:
                    outcome.error = OverloadError(
                        f"request waited {wait_ns / 1e9:.2f}s in the write "
                        f"queue of session {session.name!r}, past its "
                        f"{deadline:.2f}s deadline"
                    )
                    session.metrics.record_overload()
                    continue
                if self._apply_one(session, outcome):
                    applied.append(outcome)
            # the group-commit durability point, still under the write lock
            journal = session.journal
            if journal is not None and applied:
                sync_started = time.monotonic_ns()
                try:
                    journal.sync()
                except (OSError, JournalError) as error:
                    # the engine is now ahead of the durable log: fail the
                    # batch and refuse all future writes on this session
                    session.poison(f"journal sync failed after apply: {error}")
                    for outcome in applied:
                        outcome.stats = None
                        outcome.error = JournalError(
                            f"journal sync failed after apply: {error}; "
                            f"session {session.name!r} is now poisoned"
                        )
                fsync_ns = time.monotonic_ns() - sync_started
                for outcome in applied:
                    if outcome.trace is not None:
                        outcome.trace.record(
                            "journal_fsync",
                            sync_started,
                            fsync_ns,
                            meta={"batch_size": len(applied)},
                        )
        finally:
            session.rw.release_write()
        session.metrics.record_batch(
            len(batch), time.monotonic_ns() - started, fsync_ns
        )
        for outcome in batch:
            session.metrics.record_write(
                outcome.dequeued_ns - outcome.enqueued_ns,
                outcome.wait_ns,
                outcome.error is None,
            )
            outcome.done.set()

    # -- reads -------------------------------------------------------------

    def read(
        self,
        session: Session,
        fn: Callable[[], Any],
        key: Hashable | None = None,
        deadline: float | None = None,
        trace: Trace | None = None,
    ) -> Any:
        """Run ``fn`` under the shared reader lock on the thread pool.

        With a ``key``, identical concurrent reads collapse onto one
        evaluation (keyed additionally by session and structure version);
        without one, the read always evaluates itself."""
        deadline = self._admit(session, deadline)
        try:
            if key is None:
                return self._pool.submit(
                    self._execute_read,
                    session,
                    fn,
                    time.monotonic_ns(),
                    deadline,
                    trace,
                ).result()
            full_key = (session.name, session.version, key)
            with self._inflight_lock:
                entry = self._inflight.get(full_key)
                leader = entry is None
                if leader:
                    entry = _InFlightRead()
                    self._inflight[full_key] = entry
            if not leader:
                return self._join_read(session, entry, deadline, trace)
            try:
                enqueued = time.monotonic_ns()
                try:
                    entry.value = self._pool.submit(
                        self._execute_read, session, fn, enqueued, deadline, trace
                    ).result()
                except Exception as error:
                    entry.error = error
                    raise
                return entry.value
            finally:
                with self._inflight_lock:
                    self._inflight.pop(full_key, None)
                entry.done.set()
        finally:
            self._release(session)

    def _join_read(
        self,
        session: Session,
        entry: _InFlightRead,
        deadline: float | None,
        trace: Trace | None = None,
    ) -> Any:
        started = time.monotonic_ns()
        # deadline 0 means "only if already done", not "no deadline"
        timeout = 60.0 if deadline is None else deadline
        joined = entry.done.wait(timeout=timeout)
        elapsed = time.monotonic_ns() - started
        if trace is not None:
            trace.record(
                "collapse_join", started, elapsed, meta={"joined": joined}
            )
        if not joined:
            session.metrics.record_overload()
            raise OverloadError(
                f"collapsed read on session {session.name!r} exceeded its "
                f"deadline waiting for the leading evaluation"
            )
        session.metrics.record_read(wait_ns=elapsed, exec_ns=0, collapsed=True)
        if entry.error is not None:
            raise entry.error
        return entry.value

    def _execute_read(
        self,
        session: Session,
        fn: Callable[[], Any],
        enqueued_ns: int,
        deadline: float | None,
        trace: Trace | None = None,
    ) -> Any:
        picked_up = time.monotonic_ns()
        wait_ns = picked_up - enqueued_ns
        if trace is not None:
            trace.record("worker_wait", enqueued_ns, wait_ns)
        if deadline is not None and wait_ns > deadline * 1e9:
            session.metrics.record_overload()
            raise OverloadError(
                f"read waited {wait_ns / 1e9:.2f}s for a worker on session "
                f"{session.name!r}, past its {deadline:.2f}s deadline"
            )
        session.rw.acquire_read()
        lock_acquired = time.monotonic_ns()
        started = lock_acquired
        try:
            value = fn()
        finally:
            session.rw.release_read()
        finished = time.monotonic_ns()
        if trace is not None:
            trace.record("read_lock_wait", picked_up, lock_acquired - picked_up)
            trace.record("eval", started, finished - started)
        session.metrics.record_read(
            wait_ns=lock_acquired - enqueued_ns, exec_ns=finished - started
        )
        return value

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)
