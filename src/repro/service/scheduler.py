"""The scheduler: single-writer / parallel-reader execution per session.

Every Dyn-FO update is one constant-depth parallel step over the *previous*
structure (Definition 3.1), which forces a total order on writes per
session — but says nothing about reads, which are pure first-order queries
over whatever structure version is current.  The scheduler realizes exactly
that split:

* **Writes** funnel through a per-session queue.  Whichever submitting
  thread wins the drain lock commits *everything* queued at that moment as
  one coalesced batch — each request still goes through the engine's
  transactional ``begin_batch()`` apply, but the batch shares a single
  journal fsync (group commit) and a single writer-lock acquisition.
  Submitters are only acknowledged after the batch's sync, so the WAL
  invariant (ACK implies durable) holds per request while the fsync cost
  amortizes per batch.  Under load, batch sizes grow by themselves: while
  one batch commits, the queue refills.

* **Reads** fan out across a thread pool under the shared side of the
  session's readers-writer lock.  Identical in-flight reads — same session,
  same structure version, same query, same parameters — *collapse*: one
  evaluation runs and every concurrent asker shares its result (and its
  serialized form).  Collapsing keys on the structure version, so it is
  invisible to read-your-writes ordering: a client that just committed
  version v can only collapse onto evaluations at version >= v.

* **Admission control** bounds the damage of overload: at most
  ``max_queue_depth`` requests may be queued-or-running per session, and a
  request that waits in queue past its deadline is rejected with
  :class:`~.errors.OverloadError` *before* it consumes evaluation work.
  Callers see a typed, retryable error instead of a hung socket.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Hashable, Sequence

from ..dynfo.errors import EngineError, JournalError
from ..dynfo.requests import Request
from .errors import OverloadError
from .session import Session

__all__ = ["Scheduler", "WriteOutcome"]


class WriteOutcome:
    """What happened to one queued write: either ``stats`` (applied) or
    ``error`` (typed; the structure is untouched for this request)."""

    __slots__ = ("request", "stats", "error", "enqueued_ns", "deadline", "done")

    def __init__(self, request: Request, deadline: float | None = None) -> None:
        self.request = request
        self.stats: dict[str, int] | None = None
        self.error: Exception | None = None
        self.enqueued_ns = time.monotonic_ns()
        self.deadline = deadline
        self.done = threading.Event()

    @property
    def wait_ns(self) -> int:
        return time.monotonic_ns() - self.enqueued_ns


class _InFlightRead:
    """A leader's evaluation that concurrent identical reads wait on."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: Exception | None = None


class Scheduler:
    """Coalesces writes and fans out reads for any number of sessions."""

    def __init__(
        self,
        read_workers: int = 8,
        max_batch: int = 64,
        max_queue_depth: int = 256,
        default_deadline: float | None = 30.0,
    ) -> None:
        if read_workers < 1:
            raise ValueError(f"read_workers must be >= 1, got {read_workers}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.read_workers = read_workers
        self.max_batch = max_batch
        self.max_queue_depth = max_queue_depth
        self.default_deadline = default_deadline
        self._pool = ThreadPoolExecutor(
            max_workers=read_workers, thread_name_prefix="dynfo-read"
        )
        self._inflight: dict[tuple, _InFlightRead] = {}
        self._inflight_lock = threading.Lock()
        self._closed = False

    # -- admission ---------------------------------------------------------

    def _admit(self, session: Session, deadline: float | None) -> float | None:
        if deadline is None:
            deadline = self.default_deadline
        with session.queue_lock:
            if session.pending >= self.max_queue_depth:
                session.metrics.record_overload()
                raise OverloadError(
                    f"session {session.name!r} queue is full "
                    f"({self.max_queue_depth} pending); back off and retry"
                )
            session.pending += 1
        return deadline

    def _release(self, session: Session, count: int = 1) -> None:
        with session.queue_lock:
            session.pending -= count

    # -- writes ------------------------------------------------------------

    def apply(
        self, session: Session, request: Request, deadline: float | None = None
    ) -> dict[str, int]:
        """Apply one write through the coalescing queue; blocks until the
        request's batch is durably committed (or it failed typed)."""
        outcome = self.apply_script(session, [request], deadline)[0]
        if outcome.error is not None:
            raise outcome.error
        assert outcome.stats is not None
        return outcome.stats

    def apply_script(
        self,
        session: Session,
        requests: Sequence[Request],
        deadline: float | None = None,
    ) -> list[WriteOutcome]:
        """Enqueue a contiguous run of writes and wait for all of them.

        The requests land in the queue together, so up to ``max_batch`` of
        them commit as one group-fsync batch — plus whatever other clients
        queued meanwhile.  Per-request outcomes come back in order."""
        if not requests:
            return []
        deadline = self._admit_many(session, len(requests), deadline)
        outcomes = [WriteOutcome(request, deadline) for request in requests]
        try:
            with session.queue_lock:
                session.write_queue.extend(outcomes)
            self._drain(session)
            timeout = 60.0 if deadline is None else deadline + 60.0
            for outcome in outcomes:
                if not outcome.done.wait(timeout=timeout):  # pragma: no cover
                    outcome.error = OverloadError(
                        f"write on session {session.name!r} stalled past "
                        f"{timeout:.0f}s; the service is wedged"
                    )
            return outcomes
        finally:
            self._release(session, len(outcomes))

    def _admit_many(
        self, session: Session, count: int, deadline: float | None
    ) -> float | None:
        if deadline is None:
            deadline = self.default_deadline
        with session.queue_lock:
            if session.pending + count > self.max_queue_depth:
                session.metrics.record_overload()
                raise OverloadError(
                    f"session {session.name!r} queue cannot take {count} more "
                    f"requests ({session.pending} of {self.max_queue_depth} "
                    "slots used); back off and retry"
                )
            session.pending += count
        return deadline

    def _drain(self, session: Session) -> None:
        """The batch-commit loop.  Whoever holds ``writer_lock`` drains; the
        empty-queue check and the lock release happen under ``queue_lock``
        so an enqueue can never slip between them and strand a request."""
        while True:
            if not session.writer_lock.acquire(blocking=False):
                return  # the current holder's loop will pick our entry up
            batch: list[WriteOutcome] | None = None
            with session.queue_lock:
                if session.write_queue:
                    take = min(len(session.write_queue), self.max_batch)
                    batch = [session.write_queue.popleft() for _ in range(take)]
                else:
                    session.writer_lock.release()
            if batch is None:
                return
            try:
                self._commit_batch(session, batch)
            finally:
                session.writer_lock.release()

    def _commit_batch(self, session: Session, batch: list[WriteOutcome]) -> None:
        """Apply one coalesced batch under the exclusive lock, sync the
        journal once, then acknowledge every submitter."""
        started = time.monotonic_ns()
        applied: list[WriteOutcome] = []
        session.rw.acquire_write()
        try:
            for outcome in batch:
                wait_ns = outcome.wait_ns
                deadline = outcome.deadline
                if deadline is not None and wait_ns > deadline * 1e9:
                    outcome.error = OverloadError(
                        f"request waited {wait_ns / 1e9:.2f}s in the write "
                        f"queue of session {session.name!r}, past its "
                        f"{deadline:.2f}s deadline"
                    )
                    session.metrics.record_overload()
                    continue
                try:
                    session.engine.apply(outcome.request)
                except EngineError as error:
                    outcome.error = error
                except Exception as error:  # no raw tracebacks to clients
                    outcome.error = EngineError(
                        f"applying {outcome.request} failed: {error}"
                    )
                else:
                    outcome.stats = session.engine.last_update_stats
                    applied.append(outcome)
        finally:
            session.rw.release_write()
        journal = session.journal
        if journal is not None:
            try:
                journal.sync()  # the group-commit durability point
            except (OSError, JournalError) as error:
                for outcome in applied:
                    outcome.stats = None
                    outcome.error = JournalError(
                        f"journal sync failed after apply: {error}"
                    )
        session.metrics.record_batch(len(batch), time.monotonic_ns() - started)
        for outcome in batch:
            session.metrics.record_write(outcome.wait_ns, outcome.error is None)
            outcome.done.set()

    # -- reads -------------------------------------------------------------

    def read(
        self,
        session: Session,
        fn: Callable[[], Any],
        key: Hashable | None = None,
        deadline: float | None = None,
    ) -> Any:
        """Run ``fn`` under the shared reader lock on the thread pool.

        With a ``key``, identical concurrent reads collapse onto one
        evaluation (keyed additionally by session and structure version);
        without one, the read always evaluates itself."""
        deadline = self._admit(session, deadline)
        try:
            if key is None:
                return self._pool.submit(
                    self._execute_read, session, fn, time.monotonic_ns(), deadline
                ).result()
            full_key = (session.name, session.version, key)
            with self._inflight_lock:
                entry = self._inflight.get(full_key)
                leader = entry is None
                if leader:
                    entry = _InFlightRead()
                    self._inflight[full_key] = entry
            if not leader:
                return self._join_read(session, entry, deadline)
            try:
                enqueued = time.monotonic_ns()
                try:
                    entry.value = self._pool.submit(
                        self._execute_read, session, fn, enqueued, deadline
                    ).result()
                except Exception as error:
                    entry.error = error
                    raise
                return entry.value
            finally:
                with self._inflight_lock:
                    self._inflight.pop(full_key, None)
                entry.done.set()
        finally:
            self._release(session)

    def _join_read(
        self, session: Session, entry: _InFlightRead, deadline: float | None
    ) -> Any:
        started = time.monotonic_ns()
        if not entry.done.wait(timeout=deadline if deadline else 60.0):
            session.metrics.record_overload()
            raise OverloadError(
                f"collapsed read on session {session.name!r} exceeded its "
                f"deadline waiting for the leading evaluation"
            )
        session.metrics.record_read(
            wait_ns=time.monotonic_ns() - started, exec_ns=0, collapsed=True
        )
        if entry.error is not None:
            raise entry.error
        return entry.value

    def _execute_read(
        self,
        session: Session,
        fn: Callable[[], Any],
        enqueued_ns: int,
        deadline: float | None,
    ) -> Any:
        wait_ns = time.monotonic_ns() - enqueued_ns
        if deadline is not None and wait_ns > deadline * 1e9:
            session.metrics.record_overload()
            raise OverloadError(
                f"read waited {wait_ns / 1e9:.2f}s for a worker on session "
                f"{session.name!r}, past its {deadline:.2f}s deadline"
            )
        started = time.monotonic_ns()
        session.rw.acquire_read()
        try:
            value = fn()
        finally:
            session.rw.release_read()
        session.metrics.record_read(
            wait_ns=wait_ns, exec_ns=time.monotonic_ns() - started
        )
        return value

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)
