"""Service-side errors and the stable wire-code registry.

The serving layer must never leak a raw traceback to a client: every
failure crosses the wire as ``{"code": ..., "error": ..., "message": ...}``
with a *stable* code clients can switch on.  The registry below maps the
whole :class:`~..dynfo.errors.EngineError` taxonomy (plus the service's own
errors) to codes, and back — :func:`error_to_wire` on the server,
:func:`error_from_wire` in the clients, so a
:class:`~..dynfo.errors.RequestValidationError` raised inside the engine
re-materializes as a ``RequestValidationError`` in the caller's process.

Service-specific classes:

* :class:`ServiceError` — base class; also what a client raises for an
  unrecognized (future) wire code.
* :class:`ProtocolError` — a malformed frame (bad JSON, missing fields,
  unknown op).  The connection stays usable; only the offending request
  fails.
* :class:`SessionError` — unknown session name, a name that collides with
  an active session of a different shape, or an invalid name.
* :class:`OverloadError` — admission control said no: session table full,
  per-session queue depth exceeded, or a request outlived its deadline
  while queued.  The request was *not* applied; clients may back off and
  retry.
"""

from __future__ import annotations

from ..dynfo.engine import UnsupportedRequest
from ..dynfo.errors import (
    EngineError,
    IntegrityError,
    JournalError,
    RequestValidationError,
    UpdateError,
)
from ..dynfo.persistence import PersistenceError
from ..dynfo.requests import request_to_item

__all__ = [
    "ServiceError",
    "ProtocolError",
    "SessionError",
    "SessionPoisonedError",
    "OverloadError",
    "WIRE_CODES",
    "code_for",
    "error_to_wire",
    "error_from_wire",
]


class ServiceError(EngineError):
    """Base class for serving-layer failures."""


class ProtocolError(ServiceError):
    """The frame itself was malformed (bad JSON, missing field, unknown
    op).  Scoped to one request; the connection stays usable."""


class SessionError(ServiceError):
    """The named session does not exist, already exists with a different
    shape, or the name itself is invalid."""


class OverloadError(ServiceError):
    """Admission control rejected the request (full session table, full
    queue, or deadline exceeded while queued).  Nothing was applied."""


class SessionPoisonedError(SessionError):
    """A group-commit ``journal.sync()`` failed after the batch was applied,
    so the in-memory engine is ahead of the durable log.  Rather than serve
    diverged state, the session rejects all further *writes* with this
    error (reads stay allowed — the in-memory structure is still
    internally consistent).  Close and reopen the session to recover from
    the journal's durable prefix."""


# Stable wire codes, most specific class first: ``code_for`` walks an
# exception's MRO and returns the first registered class, so subclasses
# added later inherit their parent's code rather than leaking INTERNAL.
_CODE_TABLE: tuple[tuple[str, type[Exception]], ...] = (
    ("OVERLOADED", OverloadError),
    ("SESSION_POISONED", SessionPoisonedError),
    ("SESSION_ERROR", SessionError),
    ("PROTOCOL_ERROR", ProtocolError),
    ("SERVICE_ERROR", ServiceError),
    ("UNSUPPORTED_REQUEST", UnsupportedRequest),
    ("REQUEST_INVALID", RequestValidationError),
    ("UPDATE_FAILED", UpdateError),
    ("INTEGRITY_VIOLATION", IntegrityError),
    ("JOURNAL_CORRUPT", JournalError),
    ("SNAPSHOT_CORRUPT", PersistenceError),
    ("ENGINE_ERROR", EngineError),
)

#: code -> exception class, the client-side decode table.
WIRE_CODES: dict[str, type[Exception]] = {code: cls for code, cls in _CODE_TABLE}

_CLASS_TO_CODE: dict[type[Exception], str] = {cls: code for code, cls in _CODE_TABLE}

#: catch-all for exceptions outside the taxonomy; message only, no traceback.
INTERNAL_CODE = "INTERNAL_ERROR"


def code_for(error: BaseException) -> str:
    """The stable wire code for ``error`` (most specific registered
    ancestor wins; anything unregistered is ``INTERNAL_ERROR``)."""
    for cls in type(error).__mro__:
        code = _CLASS_TO_CODE.get(cls)
        if code is not None:
            return code
    return INTERNAL_CODE


def error_to_wire(error: BaseException) -> dict:
    """Serialize ``error`` for the wire: stable ``code``, exception class
    name, and message — never a traceback.  IntegrityError's minimized
    repro script rides along so a client can file it."""
    wire = {
        "code": code_for(error),
        "error": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, IntegrityError):
        if error.detail:
            wire["detail"] = error.detail
        if error.repro:
            wire["repro"] = [request_to_item(r) for r in error.repro]
    return wire


def error_from_wire(wire: dict) -> Exception:
    """Rebuild a typed exception from its wire form (the client half).

    Unknown codes — a newer server — decode to :class:`ServiceError`, so
    old clients still fail typed instead of crashing on the decode."""
    if not isinstance(wire, dict):
        return ServiceError(f"malformed error payload: {wire!r}")
    cls = WIRE_CODES.get(wire.get("code", ""), ServiceError)
    message = wire.get("message", "") or wire.get("error", "unknown error")
    error = cls(f"[{wire.get('code', INTERNAL_CODE)}] {message}")
    if isinstance(error, IntegrityError) and "detail" in wire:
        error.detail = wire["detail"]
    return error
