"""repro — a full reproduction of Patnaik & Immerman,
*"Dyn-FO: A Parallel, Dynamic Complexity Class"* (PODS 1994).

Layers (bottom up):

* :mod:`repro.logic` — first-order logic over finite ordered structures:
  vocabularies, structures, formulas, parser/printer, and three
  cross-checked evaluators (naive, relational join-planning, dense
  CRAM-style tensors);
* :mod:`repro.dynfo` — the dynamic machinery of Section 3: requests,
  Dyn-FO programs (FO update rules + FO queries), the synchronous engine,
  and the replay/oracle verification harness;
* :mod:`repro.programs` — every construction of Sections 4 and 5.14, one
  module per theorem;
* :mod:`repro.reductions` — Section 5: first-order reductions,
  bounded-expansion checking, the transfer theorem, PAD, COLOR-REACH;
* :mod:`repro.baselines` — independent classical algorithms used as
  oracles and as the static-recompute benchmark arm;
* :mod:`repro.workloads` — seeded request-script generators;
* :mod:`repro.bench` — the table harness behind ``benchmarks/``.

Quickstart::

    from repro import DynFOEngine, make_reach_u_program

    engine = DynFOEngine(make_reach_u_program(), n=16)
    engine.insert("E", 3, 4)
    engine.insert("E", 4, 5)
    engine.ask("reach", s=3, t=5)   # True — by first-order updates alone
"""

from .dynfo import (
    BACKENDS,
    Delete,
    DynFOEngine,
    DynFOProgram,
    Insert,
    Query,
    RelationDef,
    ReplayHarness,
    Request,
    SetConst,
    UpdateRule,
    VerificationError,
    check_memoryless,
    verify_program,
)
from .logic import (
    DenseEvaluator,
    Formula,
    RelationalEvaluator,
    Structure,
    Vocabulary,
    format_formula,
    holds,
    parse_formula,
)
from .programs import (
    PROGRAM_FACTORIES,
    make_bipartite_program,
    make_dyck_program,
    make_kedge_program,
    make_lca_program,
    make_matching_program,
    make_msf_program,
    make_multiplication_program,
    make_pad_reach_a_program,
    make_parity_program,
    make_reach_acyclic_program,
    make_reach_d_engine,
    make_reach_u_program,
    make_regular_program,
    make_transitive_reduction_program,
)
from .reductions import FirstOrderReduction, TransferredEngine, measure_expansion

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # logic
    "Vocabulary",
    "Structure",
    "Formula",
    "parse_formula",
    "format_formula",
    "holds",
    "RelationalEvaluator",
    "DenseEvaluator",
    # dynfo
    "DynFOProgram",
    "DynFOEngine",
    "BACKENDS",
    "UpdateRule",
    "RelationDef",
    "Query",
    "Request",
    "Insert",
    "Delete",
    "SetConst",
    "ReplayHarness",
    "verify_program",
    "check_memoryless",
    "VerificationError",
    # programs
    "PROGRAM_FACTORIES",
    "make_parity_program",
    "make_reach_u_program",
    "make_reach_acyclic_program",
    "make_reach_d_engine",
    "make_transitive_reduction_program",
    "make_msf_program",
    "make_bipartite_program",
    "make_kedge_program",
    "make_matching_program",
    "make_lca_program",
    "make_regular_program",
    "make_multiplication_program",
    "make_dyck_program",
    "make_pad_reach_a_program",
    # reductions
    "FirstOrderReduction",
    "TransferredEngine",
    "measure_expansion",
]
