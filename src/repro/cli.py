"""Command-line interface: ``python -m repro`` / ``dynfo``.

Subcommands
-----------

``list``
    List the paper's programs with their theorem and metric summary.
``bench E2 [E5 ...] [--full]``
    Run experiments from DESIGN.md Sec. 4 and print their tables
    (``all`` runs the whole suite).
``verify reach_u [--n 8] [--steps 120] [--seed 0] [--audit-every N] [--journal PATH] [--max-rows N]``
    Replay a randomized workload against the from-scratch oracle,
    optionally self-auditing the auxiliary structure, journaling every
    request to a crash-safe write-ahead log, and/or capping the
    materialization budget per update.
``explain reach_u [--backend relational|dense] [--rule insert:E] [--query reach]``
    Print the compiled physical plans the engine caches and replays —
    the static view of what every update/query executes.
``demo``
    A tiny REACH_u session showing the update formulas at work.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from .bench import EXPERIMENTS, run_experiment
from .dynfo.oracles import (
    bipartite_checker,
    connectivity_checker,
    lca_checker,
    matching_checker,
    msf_checker,
    parity_checker,
    paths_checker,
    product_checker,
    spanning_forest_checker,
    transitive_reduction_checker,
)
from .dynfo.journal import RequestJournal
from .dynfo.verify import exact_relation_checker, verify_program
from .programs import PROGRAM_FACTORIES
from .workloads import (
    bitflip_script,
    bounded_degree_script,
    dag_script,
    forest_script,
    number_bit_script,
    undirected_script,
    weighted_script,
)

# program name -> (script maker, oracle checkers)
_VERIFIABLE = {
    "parity": (bitflip_script, [parity_checker()]),
    "prefix_parity": (
        bitflip_script,
        [
            exact_relation_checker(
                "prefixes",
                lambda inputs: {
                    (p,)
                    for p in range(inputs.n)
                    if len(
                        [1 for (o,) in inputs.relation_view("M") if o <= p]
                    )
                    % 2
                    == 1
                },
            )
        ],
    ),
    "reach_u": (
        undirected_script,
        [connectivity_checker(), spanning_forest_checker()],
    ),
    "reach_u_arity2": (undirected_script, [connectivity_checker()]),
    "reach_acyclic": (dag_script, [paths_checker()]),
    "transitive_reduction": (
        dag_script,
        [paths_checker(), transitive_reduction_checker()],
    ),
    "msf": (weighted_script, [msf_checker()]),
    "bipartite": (undirected_script, [bipartite_checker()]),
    "matching": (
        lambda n, steps, seed: bounded_degree_script(n, steps, seed=seed),
        [matching_checker()],
    ),
    "lca": (forest_script, [lca_checker()]),
    "multiplication": (number_bit_script, [product_checker()]),
}


def _cmd_list(_: argparse.Namespace) -> int:
    print(f"{'program':<22} {'depth':>5} {'rank':>4} {'arity':>5}  notes")
    print("-" * 88)
    for name, factory in sorted(PROGRAM_FACTORIES.items()):
        program = factory()
        note = program.notes.split(".  ")[0].split(": ")[0].rstrip(".")
        print(
            f"{name:<22} {program.max_connective_depth():>5} "
            f"{program.max_quantifier_rank():>4} {program.aux_arity():>5}  {note}"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    names = list(args.experiments)
    if args.bench_json:
        from .bench.plan_cache import PRE_REFACTOR_REV, collect, write_json

        rev = args.baseline_rev or PRE_REFACTOR_REV
        payload = collect(
            quick=args.quick_json,
            baseline_rev=None if args.quick_json else rev,
        )
        path = write_json(args.bench_json, payload)
        headline = payload.get("reach_u_headline", {})
        if "speedup_x" in headline:
            print(f"reach_u headline speedup: {headline['speedup_x']}x vs pre-refactor")
        print(f"wrote {path}")
        if not names:
            return 0
    elif not names or [n.lower() for n in names] == ["all"]:
        names = list(EXPERIMENTS)
    for name in names:
        start = time.perf_counter()
        table = run_experiment(name, quick=not args.full)
        elapsed = time.perf_counter() - start
        print(table.render())
        print(f"  [{elapsed:.1f}s]")
        print()
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    name = args.program
    if name not in _VERIFIABLE:
        print(
            f"no scripted oracle for {name!r}; choose from "
            f"{', '.join(sorted(_VERIFIABLE))}",
            file=sys.stderr,
        )
        return 2
    script_maker, checkers = _VERIFIABLE[name]
    program = PROGRAM_FACTORIES[name]()
    script = script_maker(args.n, args.steps, seed=args.seed)
    journal = RequestJournal(args.journal) if args.journal else None
    start = time.perf_counter()
    try:
        verify_program(
            program,
            args.n,
            script,
            checkers,
            audit_every=args.audit_every,
            journal=journal,
            max_rows=args.max_rows,
        )
    finally:
        if journal is not None:
            journal.close()
    elapsed = time.perf_counter() - start
    extras = []
    if args.audit_every:
        extras.append(f"integrity-audited every {args.audit_every} requests")
    if args.journal:
        extras.append(f"journaled to {args.journal}")
    print(
        f"{name}: {len(script)} requests on n={args.n} verified against the "
        f"from-scratch oracle after every request ({elapsed:.1f}s)"
        + ("".join(f"; {extra}" for extra in extras))
    )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .logic.explain import render_plan
    from .logic.plan import compile_formula

    name = args.program
    if name not in PROGRAM_FACTORIES:
        print(
            f"unknown program {name!r}; choose from "
            f"{', '.join(sorted(PROGRAM_FACTORIES))}",
            file=sys.stderr,
        )
        return 2
    program = PROGRAM_FACTORIES[name]()
    # the one backend-sensitive compile choice; see logic/plan.py
    distribute = args.backend != "dense"

    def show(owner: str, definitions) -> None:
        for definition in definitions:
            frame = ", ".join(definition.frame)
            print(f"\n{owner} :: {definition.name}({frame})")
            plan = compile_formula(
                definition.formula, definition.frame, distribute=distribute
            )
            print(render_plan(plan))

    rules = []
    for kind, table in (
        ("insert", program.on_insert),
        ("delete", program.on_delete),
        ("set", program.on_set),
        ("op", program.on_operation),
    ):
        for rel, rule in sorted(table.items()):
            rules.append((f"{kind}:{rel}", rule))
    wanted = {r for r in (args.rule or [])}
    unknown = wanted - {tag for tag, _ in rules}
    unknown_queries = set(args.query or []) - set(program.queries)
    if unknown or unknown_queries:
        if unknown:
            print(
                f"no rule {sorted(unknown)}; available: "
                f"{', '.join(tag for tag, _ in rules)}",
                file=sys.stderr,
            )
        if unknown_queries:
            print(
                f"no query {sorted(unknown_queries)}; available: "
                f"{', '.join(sorted(program.queries))}",
                file=sys.stderr,
            )
        return 2
    show_all = not wanted and not args.query
    print(f"{name}: compiled plans for backend {args.backend!r}")
    for tag, rule in rules:
        if not show_all and tag not in wanted:
            continue
        show(f"{tag} [temp]", rule.temporaries)
        show(tag, rule.definitions)
    for qname, query in sorted(program.queries.items()):
        if not show_all and qname not in (args.query or []):
            continue
        frame = ", ".join(query.frame) or "boolean"
        print(f"\nquery :: {qname}({frame})")
        plan = compile_formula(query.formula, query.frame, distribute=distribute)
        print(render_plan(plan))
    return 0


def _cmd_demo(_: argparse.Namespace) -> int:
    from .dynfo import DynFOEngine
    from .logic import format_formula
    from .programs import make_reach_u_program

    program = make_reach_u_program()
    print("REACH_u update formulas (Theorem 4.1):")
    for kind, rules in (("insert", program.on_insert), ("delete", program.on_delete)):
        for rel, rule in rules.items():
            print(f"\non {kind}({rel}, a, b):")
            for temp in rule.temporaries:
                print(f"  [temp] {temp.name}({', '.join(temp.frame)}) :=")
                print(f"      {format_formula(temp.formula)}")
            for definition in rule.definitions:
                print(f"  {definition.name}'({', '.join(definition.frame)}) :=")
                print(f"      {format_formula(definition.formula)}")
    engine = DynFOEngine(program, 8)
    for (u, v) in [(0, 1), (1, 2), (4, 5)]:
        engine.insert("E", u, v)
    print("\nafter ins(E,0,1), ins(E,1,2), ins(E,4,5):")
    print("  reach(0, 2) =", engine.ask("reach", s=0, t=2))
    print("  reach(0, 5) =", engine.ask("reach", s=0, t=5))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dynfo",
        description=(
            "Reproduction of Patnaik & Immerman, 'Dyn-FO: A Parallel, "
            "Dynamic Complexity Class' (PODS 1994)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the paper's programs").set_defaults(
        fn=_cmd_list
    )

    bench = sub.add_parser("bench", help="run experiments E1..E18")
    bench.add_argument("experiments", nargs="*", help="experiment ids or 'all'")
    bench.add_argument("--full", action="store_true", help="bigger sweeps")
    bench.add_argument(
        "--bench-json",
        default=None,
        metavar="PATH",
        help="write the machine-readable plan-cache benchmark "
        "(BENCH_plan_cache.json) instead of / before the tables",
    )
    bench.add_argument(
        "--quick-json",
        action="store_true",
        help="small universes for --bench-json (CI smoke; skips the "
        "git-history baseline arm)",
    )
    bench.add_argument(
        "--baseline-rev",
        default=None,
        metavar="REV",
        help="git revision holding the pre-refactor evaluators for the "
        "--bench-json baseline arm (default: the recorded pre-plan-IR "
        "commit; ignored with --quick-json)",
    )
    bench.set_defaults(fn=_cmd_bench)

    verify = sub.add_parser("verify", help="oracle-verify a program")
    verify.add_argument("program", help="program name (see 'list')")
    verify.add_argument("--n", type=int, default=7, help="universe size")
    verify.add_argument("--steps", type=int, default=80, help="request count")
    verify.add_argument("--seed", type=int, default=0, help="workload seed")
    verify.add_argument(
        "--audit-every",
        type=int,
        default=0,
        metavar="N",
        help="cross-check the auxiliary structure against a from-scratch "
        "replay every N requests (0 = off)",
    )
    verify.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append every accepted request to a crash-safe write-ahead "
        "journal at PATH",
    )
    verify.add_argument(
        "--max-rows",
        type=int,
        default=None,
        metavar="N",
        help="materialization budget per update (rows for the relational "
        "backend); typed EngineError when exceeded",
    )
    verify.set_defaults(fn=_cmd_verify)

    explain = sub.add_parser(
        "explain", help="print a program's compiled physical plans"
    )
    explain.add_argument("program", help="program name (see 'list')")
    explain.add_argument(
        "--backend",
        choices=["relational", "dense"],
        default="relational",
        help="compile for this executor (plan shape differs: the dense "
        "backend skips And-over-Or distribution)",
    )
    explain.add_argument(
        "--rule",
        action="append",
        metavar="KIND:NAME",
        help="only these rules (e.g. insert:E, delete:E); repeatable",
    )
    explain.add_argument(
        "--query",
        action="append",
        metavar="NAME",
        help="only these named queries; repeatable",
    )
    explain.set_defaults(fn=_cmd_explain)

    sub.add_parser("demo", help="print REACH_u's formulas, run a session").set_defaults(
        fn=_cmd_demo
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
