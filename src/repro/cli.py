"""Command-line interface: ``python -m repro`` / ``dynfo``.

Subcommands
-----------

``list``
    List the paper's programs with their theorem and metric summary.
``bench E2 [E5 ...] [--full]``
    Run experiments from DESIGN.md Sec. 4 and print their tables
    (``all`` runs the whole suite).
``verify reach_u [--n 8] [--steps 120] [--seed 0] [--audit-every N] [--journal PATH] [--max-rows N]``
    Replay a randomized workload against the from-scratch oracle,
    optionally self-auditing the auxiliary structure, journaling every
    request to a crash-safe write-ahead log, and/or capping the
    materialization budget per update.
``explain reach_u [--backend relational|dense] [--rule insert:E] [--query reach]``
    Print the compiled physical plans the engine caches and replays —
    the static view of what every update/query executes.
``demo``
    A tiny REACH_u session showing the update formulas at work.
``serve [--host H] [--port P] [--data-dir DIR] [--metrics-port P] ...``
    Host the concurrent multi-session serving layer over NDJSON/TCP
    (see docs/TUTORIAL.md Sec. 8); ``--metrics-port`` adds a
    Prometheus-style ``/metrics`` endpoint and ``--slowlog-ms`` sets
    the slow-request threshold (docs/TUTORIAL.md Sec. 9).
``client ACTION [...]``
    Talk to a running server: ``ping``, ``open``, ``ins``, ``del``,
    ``set``, ``ask``, ``query``, ``stats``, ``sessions``, ``save``,
    ``close``, ``slowlog``, ``pipe`` (NDJSON frames from stdin), or
    ``trace ACTION ...`` (run one op with tracing on and print its
    span tree).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from .bench import EXPERIMENTS, run_experiment
from .dynfo.oracles import (
    bipartite_checker,
    connectivity_checker,
    lca_checker,
    matching_checker,
    msf_checker,
    parity_checker,
    paths_checker,
    product_checker,
    spanning_forest_checker,
    transitive_reduction_checker,
)
from .dynfo.journal import RequestJournal
from .dynfo.verify import exact_relation_checker, verify_program
from .programs import PROGRAM_FACTORIES
from .workloads import (
    bitflip_script,
    bounded_degree_script,
    dag_script,
    forest_script,
    number_bit_script,
    undirected_script,
    weighted_script,
)

# program name -> (script maker, oracle checkers)
_VERIFIABLE = {
    "parity": (bitflip_script, [parity_checker()]),
    "prefix_parity": (
        bitflip_script,
        [
            exact_relation_checker(
                "prefixes",
                lambda inputs: {
                    (p,)
                    for p in range(inputs.n)
                    if len(
                        [1 for (o,) in inputs.relation_view("M") if o <= p]
                    )
                    % 2
                    == 1
                },
            )
        ],
    ),
    "reach_u": (
        undirected_script,
        [connectivity_checker(), spanning_forest_checker()],
    ),
    "reach_u_arity2": (undirected_script, [connectivity_checker()]),
    "reach_acyclic": (dag_script, [paths_checker()]),
    "transitive_reduction": (
        dag_script,
        [paths_checker(), transitive_reduction_checker()],
    ),
    "msf": (weighted_script, [msf_checker()]),
    "bipartite": (undirected_script, [bipartite_checker()]),
    "matching": (
        lambda n, steps, seed: bounded_degree_script(n, steps, seed=seed),
        [matching_checker()],
    ),
    "lca": (forest_script, [lca_checker()]),
    "multiplication": (number_bit_script, [product_checker()]),
}


def _cmd_list(_: argparse.Namespace) -> int:
    print(f"{'program':<22} {'depth':>5} {'rank':>4} {'arity':>5}  notes")
    print("-" * 88)
    for name, factory in sorted(PROGRAM_FACTORIES.items()):
        program = factory()
        note = program.notes.split(".  ")[0].split(": ")[0].rstrip(".")
        print(
            f"{name:<22} {program.max_connective_depth():>5} "
            f"{program.max_quantifier_rank():>4} {program.aux_arity():>5}  {note}"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    names = list(args.experiments)
    if args.bench_json:
        from .bench.plan_cache import PRE_REFACTOR_REV, collect, write_json

        rev = args.baseline_rev or PRE_REFACTOR_REV
        payload = collect(
            quick=args.quick_json,
            baseline_rev=None if args.quick_json else rev,
        )
        path = write_json(args.bench_json, payload)
        headline = payload.get("reach_u_headline", {})
        if "speedup_x" in headline:
            print(f"reach_u headline speedup: {headline['speedup_x']}x vs pre-refactor")
        print(f"wrote {path}")
        if not names:
            return 0
    elif not names or [n.lower() for n in names] == ["all"]:
        names = list(EXPERIMENTS)
    for name in names:
        start = time.perf_counter()
        table = run_experiment(name, quick=not args.full)
        elapsed = time.perf_counter() - start
        print(table.render())
        print(f"  [{elapsed:.1f}s]")
        print()
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    name = args.program
    if name not in _VERIFIABLE:
        print(
            f"no scripted oracle for {name!r}; choose from "
            f"{', '.join(sorted(_VERIFIABLE))}",
            file=sys.stderr,
        )
        return 2
    script_maker, checkers = _VERIFIABLE[name]
    program = PROGRAM_FACTORIES[name]()
    script = script_maker(args.n, args.steps, seed=args.seed)
    journal = RequestJournal(args.journal) if args.journal else None
    start = time.perf_counter()
    try:
        verify_program(
            program,
            args.n,
            script,
            checkers,
            audit_every=args.audit_every,
            journal=journal,
            max_rows=args.max_rows,
            use_delta=not args.no_delta,
        )
    finally:
        if journal is not None:
            journal.close()
    elapsed = time.perf_counter() - start
    extras = []
    if args.no_delta:
        extras.append("delta staging disabled (full rematerialization)")
    if args.audit_every:
        extras.append(f"integrity-audited every {args.audit_every} requests")
    if args.journal:
        extras.append(f"journaled to {args.journal}")
    print(
        f"{name}: {len(script)} requests on n={args.n} verified against the "
        f"from-scratch oracle after every request ({elapsed:.1f}s)"
        + ("".join(f"; {extra}" for extra in extras))
    )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .logic.explain import render_plan
    from .logic.plan import compile_formula, specialize_plan

    name = args.program
    if name not in PROGRAM_FACTORIES:
        print(
            f"unknown program {name!r}; choose from "
            f"{', '.join(sorted(PROGRAM_FACTORIES))}",
            file=sys.stderr,
        )
        return 2
    program = PROGRAM_FACTORIES[name]()
    # the one backend-sensitive compile choice; see logic/plan.py
    distribute = args.backend != "dense"
    params = (
        _parse_params([p for p in args.params.split(",") if p])
        if args.params
        else None
    )

    def show(owner: str, definitions) -> None:
        for definition in definitions:
            frame = ", ".join(definition.frame)
            print(f"\n{owner} :: {definition.name}({frame})")
            plan = compile_formula(
                definition.formula, definition.frame, distribute=distribute
            )
            print(render_plan(plan))
            if params:
                bindings = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
                print(f"\n{owner} :: {definition.name}({frame}) [{bindings}]")
                print(render_plan(specialize_plan(plan, params, args.n)))

    rules = []
    for kind, table in (
        ("insert", program.on_insert),
        ("delete", program.on_delete),
        ("set", program.on_set),
        ("op", program.on_operation),
    ):
        for rel, rule in sorted(table.items()):
            rules.append((f"{kind}:{rel}", rule))
    wanted = {r for r in (args.rule or [])}
    unknown = wanted - {tag for tag, _ in rules}
    unknown_queries = set(args.query or []) - set(program.queries)
    if unknown or unknown_queries:
        if unknown:
            print(
                f"no rule {sorted(unknown)}; available: "
                f"{', '.join(tag for tag, _ in rules)}",
                file=sys.stderr,
            )
        if unknown_queries:
            print(
                f"no query {sorted(unknown_queries)}; available: "
                f"{', '.join(sorted(program.queries))}",
                file=sys.stderr,
            )
        return 2
    show_all = not wanted and not args.query
    print(f"{name}: compiled plans for backend {args.backend!r}")
    for tag, rule in rules:
        if not show_all and tag not in wanted:
            continue
        show(f"{tag} [temp]", rule.temporaries)
        show(tag, rule.definitions)
    for qname, query in sorted(program.queries.items()):
        if not show_all and qname not in (args.query or []):
            continue
        frame = ", ".join(query.frame) or "boolean"
        print(f"\nquery :: {qname}({frame})")
        plan = compile_formula(query.formula, query.frame, distribute=distribute)
        print(render_plan(plan))
    return 0


def _cmd_demo(_: argparse.Namespace) -> int:
    from .dynfo import DynFOEngine
    from .logic import format_formula
    from .programs import make_reach_u_program

    program = make_reach_u_program()
    print("REACH_u update formulas (Theorem 4.1):")
    for kind, rules in (("insert", program.on_insert), ("delete", program.on_delete)):
        for rel, rule in rules.items():
            print(f"\non {kind}({rel}, a, b):")
            for temp in rule.temporaries:
                print(f"  [temp] {temp.name}({', '.join(temp.frame)}) :=")
                print(f"      {format_formula(temp.formula)}")
            for definition in rule.definitions:
                print(f"  {definition.name}'({', '.join(definition.frame)}) :=")
                print(f"      {format_formula(definition.formula)}")
    engine = DynFOEngine(program, 8)
    for (u, v) in [(0, 1), (1, 2), (4, 5)]:
        engine.insert("E", u, v)
    print("\nafter ins(E,0,1), ins(E,1,2), ins(E,4,5):")
    print("  reach(0, 2) =", engine.ask("reach", s=0, t=2))
    print("  reach(0, 5) =", engine.ask("reach", s=0, t=5))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from .service import DynFOServer, DynFOService, serve_forever

    # SIGTERM (systemd, docker stop, plain `kill`) shuts down as cleanly
    # as Ctrl-C: snapshot durable sessions before exiting.
    signal.signal(signal.SIGTERM, signal.default_int_handler)

    service = DynFOService(
        data_dir=args.data_dir,
        max_sessions=args.max_sessions,
        read_workers=args.read_workers,
        max_batch=args.max_batch,
        max_queue_depth=args.max_queue,
        default_deadline=args.deadline_ms / 1e3 if args.deadline_ms else None,
        slowlog_ms=args.slowlog_ms,
    )
    server = DynFOServer(host=args.host, port=args.port, service=service)
    metrics_server = None
    if args.metrics_port is not None:
        from .obs import start_metrics_server

        metrics_server = start_metrics_server(
            service, host=args.host, port=args.metrics_port
        )
        metrics_host, metrics_port = metrics_server.server_address[:2]
        print(
            f"metrics exposition on http://{metrics_host}:{metrics_port}/metrics",
            flush=True,
        )
    durability = f"durable under {args.data_dir}" if args.data_dir else "in-memory"
    print(
        f"dynfo service on {args.host}:{server.port} ({durability}; "
        f"max {args.max_sessions} sessions, {args.read_workers} read workers, "
        f"batches up to {args.max_batch}, slow log past {args.slowlog_ms:g}ms); "
        "Ctrl-C to stop",
        flush=True,
    )
    try:
        serve_forever(server)
    finally:
        if metrics_server is not None:
            metrics_server.shutdown()
            metrics_server.server_close()
    print("stopped; sessions snapshotted" if args.data_dir else "stopped")
    return 0


def _parse_params(pairs: Sequence[str]) -> dict[str, int]:
    params: dict[str, int] = {}
    for pair in pairs:
        name, eq, value = pair.partition("=")
        if not eq or not name:
            raise SystemExit(f"expected name=value, got {pair!r}")
        try:
            params[name] = int(value)
        except ValueError:
            raise SystemExit(f"param {name!r} needs an int, got {value!r}") from None
    return params


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from .dynfo.errors import EngineError
    from .dynfo.requests import Delete, Insert, SetConst, request_to_item
    from .service import TCPServiceClient
    from .service.protocol import decode_frame, encode_frame

    def need(count: int, usage: str) -> Sequence[str]:
        if len(args.args) < count:
            raise SystemExit(f"usage: client {args.action} {usage}")
        return args.args

    deadline = args.deadline_ms

    def frame_for(action: str, rest: Sequence[str]) -> dict:
        """One scheduler-visible op as a raw wire frame (for ``trace``)."""

        def want(count: int, usage: str) -> None:
            if len(rest) < count:
                raise SystemExit(f"usage: client trace {action} {usage}")

        item: dict
        if action in ("ins", "del"):
            want(3, "SESSION REL ELEM [ELEM ...]")
            cls = Insert if action == "ins" else Delete
            request = cls(rest[1], tuple(int(v) for v in rest[2:]))
            item = {
                "op": "apply",
                "session": rest[0],
                "request": request_to_item(request),
            }
        elif action == "set":
            want(3, "SESSION NAME VALUE")
            item = {
                "op": "apply",
                "session": rest[0],
                "request": request_to_item(SetConst(rest[1], int(rest[2]))),
            }
        elif action in ("ask", "query"):
            want(2, "SESSION QUERY [name=value ...]")
            item = {
                "op": action,
                "session": rest[0],
                "name": rest[1],
                "params": _parse_params(rest[2:]),
            }
        else:
            raise SystemExit(
                f"cannot trace {action!r}; traceable: ins, del, set, ask, query"
            )
        if deadline is not None:
            item["deadline_ms"] = deadline
        return item
    try:
        with TCPServiceClient(host=args.host, port=args.port) as client:
            action = args.action
            if action == "ping":
                print(client.ping())
            elif action == "sessions":
                print("\n".join(client.sessions()) or "(no sessions)")
            elif action == "stats":
                which = args.args[0] if args.args else None
                print(json.dumps(client.stats(which), indent=2, sort_keys=True))
            elif action == "open":
                rest = need(1, "SESSION [PROGRAM N]")
                name = rest[0]
                program = rest[1] if len(rest) > 1 else None
                n = int(rest[2]) if len(rest) > 2 else None
                print(json.dumps(client.open(name, program, n=n), sort_keys=True))
            elif action in ("ins", "del"):
                rest = need(3, "SESSION REL ELEM [ELEM ...]")
                cls = Insert if action == "ins" else Delete
                request = cls(rest[1], tuple(int(v) for v in rest[2:]))
                result = client.apply(rest[0], request, deadline_ms=deadline)
                print(json.dumps(result, sort_keys=True))
            elif action == "set":
                rest = need(3, "SESSION NAME VALUE")
                result = client.apply(
                    rest[0], SetConst(rest[1], int(rest[2])), deadline_ms=deadline
                )
                print(json.dumps(result, sort_keys=True))
            elif action == "ask":
                rest = need(2, "SESSION QUERY [name=value ...]")
                params = _parse_params(rest[2:])
                print(
                    client.ask(rest[0], rest[1], deadline_ms=deadline, **params)
                )
            elif action == "query":
                rest = need(2, "SESSION QUERY [name=value ...]")
                params = _parse_params(rest[2:])
                rows = client.query(rest[0], rest[1], deadline_ms=deadline, **params)
                for row in sorted(rows):
                    print(" ".join(map(str, row)))
            elif action == "save":
                rest = need(1, "SESSION")
                print(json.dumps(client.save(rest[0]), sort_keys=True))
            elif action == "close":
                rest = need(1, "SESSION")
                print(json.dumps(client.close_session(rest[0]), sort_keys=True))
            elif action == "slowlog":
                which = args.args[0] if args.args else None
                log = client.slowlog(which)
                entries = log.get("entries", [])
                print(
                    f"{len(entries)} slow request(s) past "
                    f"{log.get('threshold_ms')}ms"
                    + (f" ({log['dropped']} dropped)" if log.get("dropped") else "")
                )
                for entry in entries:
                    print(json.dumps(entry, sort_keys=True))
            elif action == "trace":
                from .obs.trace import render_trace

                rest = need(1, "ACTION [ARGS ...]")
                item = frame_for(rest[0], rest[1:])
                result, trace = client.call_traced(item)
                print(json.dumps(result, sort_keys=True))
                if trace is not None:
                    print(render_trace(trace))
            elif action == "pipe":
                # raw NDJSON passthrough: frames on stdin, responses on stdout
                for line in sys.stdin:
                    if not line.strip():
                        continue
                    response = client.call(decode_frame(line))
                    sys.stdout.write(encode_frame(response).decode("utf-8"))
                    sys.stdout.flush()
            else:  # pragma: no cover - argparse choices guard this
                raise SystemExit(f"unknown action {action!r}")
    except EngineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(
            f"cannot reach {args.host}:{args.port}: {error}", file=sys.stderr
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dynfo",
        description=(
            "Reproduction of Patnaik & Immerman, 'Dyn-FO: A Parallel, "
            "Dynamic Complexity Class' (PODS 1994)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the paper's programs").set_defaults(
        fn=_cmd_list
    )

    bench = sub.add_parser("bench", help="run experiments E1..E18")
    bench.add_argument("experiments", nargs="*", help="experiment ids or 'all'")
    bench.add_argument("--full", action="store_true", help="bigger sweeps")
    bench.add_argument(
        "--bench-json",
        default=None,
        metavar="PATH",
        help="write the machine-readable plan-cache benchmark "
        "(BENCH_plan_cache.json) instead of / before the tables",
    )
    bench.add_argument(
        "--quick-json",
        action="store_true",
        help="small universes for --bench-json (CI smoke; skips the "
        "git-history baseline arm)",
    )
    bench.add_argument(
        "--baseline-rev",
        default=None,
        metavar="REV",
        help="git revision holding the pre-refactor evaluators for the "
        "--bench-json baseline arm (default: the recorded pre-plan-IR "
        "commit; ignored with --quick-json)",
    )
    bench.set_defaults(fn=_cmd_bench)

    verify = sub.add_parser("verify", help="oracle-verify a program")
    verify.add_argument("program", help="program name (see 'list')")
    verify.add_argument("--n", type=int, default=7, help="universe size")
    verify.add_argument("--steps", type=int, default=80, help="request count")
    verify.add_argument("--seed", type=int, default=0, help="workload seed")
    verify.add_argument(
        "--audit-every",
        type=int,
        default=0,
        metavar="N",
        help="cross-check the auxiliary structure against a from-scratch "
        "replay every N requests (0 = off)",
    )
    verify.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append every accepted request to a crash-safe write-ahead "
        "journal at PATH",
    )
    verify.add_argument(
        "--max-rows",
        type=int,
        default=None,
        metavar="N",
        help="materialization budget per update (rows for the relational "
        "backend); typed EngineError when exceeded",
    )
    verify.add_argument(
        "--no-delta",
        action="store_true",
        help="disable delta-restricted staging and run the full "
        "rematerialization path (escape hatch; see DESIGN §5e)",
    )
    verify.set_defaults(fn=_cmd_verify)

    explain = sub.add_parser(
        "explain", help="print a program's compiled physical plans"
    )
    explain.add_argument("program", help="program name (see 'list')")
    explain.add_argument(
        "--backend",
        choices=["relational", "dense"],
        default="relational",
        help="compile for this executor (plan shape differs: the dense "
        "backend skips And-over-Or distribution)",
    )
    explain.add_argument(
        "--rule",
        action="append",
        metavar="KIND:NAME",
        help="only these rules (e.g. insert:E, delete:E); repeatable",
    )
    explain.add_argument(
        "--query",
        action="append",
        metavar="NAME",
        help="only these named queries; repeatable",
    )
    explain.add_argument(
        "--params",
        default=None,
        metavar="P",
        help="comma-separated update-parameter bindings (e.g. 'i=3,j=7'); "
        "renders the parameter-specialized plan next to each generic rule "
        "plan",
    )
    explain.add_argument(
        "--n",
        type=int,
        default=8,
        metavar="N",
        help="universe size for --params specialization (min/max fold to "
        "0 and N-1)",
    )
    explain.set_defaults(fn=_cmd_explain)

    sub.add_parser("demo", help="print REACH_u's formulas, run a session").set_defaults(
        fn=_cmd_demo
    )

    serve = sub.add_parser(
        "serve", help="host engine sessions over NDJSON/TCP"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8642, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="directory for durable sessions (journal + snapshot per "
        "session); omit for in-memory sessions",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=64, help="session table size"
    )
    serve.add_argument(
        "--read-workers", type=int, default=8, help="reader thread pool size"
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="most writes one group-commit batch may coalesce",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="per-session admission limit (queued-or-running requests)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=30000.0,
        help="default per-request deadline (0 = none)",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also expose Prometheus-style text metrics over HTTP at "
        "/metrics on this port (0 = ephemeral)",
    )
    serve.add_argument(
        "--slowlog-ms",
        type=float,
        default=250.0,
        help="requests slower than this land in the slow-request ring "
        "buffer ('client slowlog')",
    )
    serve.set_defaults(fn=_cmd_serve)

    client = sub.add_parser("client", help="talk to a running server")
    client.add_argument(
        "action",
        choices=[
            "ping",
            "open",
            "ins",
            "del",
            "set",
            "ask",
            "query",
            "stats",
            "sessions",
            "save",
            "close",
            "slowlog",
            "trace",
            "pipe",
        ],
        help="what to do",
    )
    client.add_argument(
        "args",
        nargs="*",
        help="action arguments, e.g. 'open chat reach_u 16', "
        "'ins chat E 0 1', 'ask chat reach s=0 t=5'",
    )
    client.add_argument("--host", default="127.0.0.1", help="server address")
    client.add_argument("--port", type=int, default=8642, help="server port")
    client.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline sent with writes and reads",
    )
    client.set_defaults(fn=_cmd_client)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
