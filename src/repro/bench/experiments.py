"""Experiments E1-E18 (see DESIGN.md Sec. 4).

The paper proves membership theorems rather than reporting measurements, so
each experiment quantifies one of its claims on synthetic workloads:

* E1-E14 — one experiment per theorem: the Dyn-FO program's per-request
  cost (update + maintained-query) against from-scratch static
  recomputation of the same answer;
* E15 — evaluator ablation (naive / relational / dense backends);
* E16 — the "Parallel" claim: per-update formula depth (= CRAM[1] steps)
  is a constant independent of n;
* E17 — auxiliary-arity ablation: Theorem 4.1's arity-3 PV versus the
  [DS95] arity-2 forest+closure;
* E18 — bounded expansion: requests translated per source request under
  the Example 2.1 reduction.

Every experiment returns a :class:`~repro.bench.harness.Table`.  ``quick``
shrinks sweeps so the whole suite runs in minutes; the benchmark files in
``benchmarks/`` time the same kernels under pytest-benchmark.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Mapping, Sequence

from ..baselines import (
    alternating_reaches,
    bits_to_int,
    deterministic_reachable,
    forest_lca,
    is_bipartite,
    is_k_edge_connected,
    kruskal_msf,
    mod_counter_dfa,
    reachable_pairs_undirected,
    transitive_closure,
    transitive_reduction_dag,
)
from ..dynfo import DynFOEngine, Request, apply_request
from ..dynfo.program import DynFOProgram
from ..logic.structure import Structure
from ..programs import (
    KEdgeAnalyzer,
    make_bipartite_program,
    make_dyck_program,
    make_kedge_program,
    make_lca_program,
    make_matching_program,
    make_msf_program,
    make_multiplication_program,
    make_pad_reach_a_program,
    make_parity_program,
    make_reach_acyclic_program,
    make_reach_d_engine,
    make_reach_u_arity2_program,
    make_reach_u_program,
    make_regular_program,
    make_transitive_reduction_program,
)
from ..programs.dyck import left_relation, right_relation
from ..programs.regular import symbol_relation
from ..reductions import measure_expansion, reduction_d_to_u
from ..workloads import (
    PadAdversary,
    bitflip_script,
    bounded_degree_script,
    dag_script,
    dyck_edit_script,
    forest_script,
    number_bit_script,
    reach_d_script,
    undirected_script,
    weighted_script,
    word_edit_script,
)
from .harness import Table

__all__ = ["EXPERIMENTS", "run_experiment"]

_MS = 1e3  # render seconds as milliseconds


# ---------------------------------------------------------------------------
# shared arms
# ---------------------------------------------------------------------------


def _time_dynamic(
    program: DynFOProgram,
    n: int,
    script: Sequence[Request],
    query: Callable[[DynFOEngine], object],
    warmup: int = 0,
    backend: str = "relational",
) -> tuple[float, float]:
    """(avg update seconds, avg query seconds) for the Dyn-FO arm."""
    engine = DynFOEngine(program, n, backend=backend)
    for request in script[:warmup]:
        engine.apply(request)
    measured = script[warmup:]
    start = time.perf_counter()
    for request in measured:
        engine.apply(request)
    update = (time.perf_counter() - start) / max(len(measured), 1)
    repeats = 5
    start = time.perf_counter()
    for _ in range(repeats):
        query(engine)
    return update, (time.perf_counter() - start) / repeats


def _time_static(
    vocabulary,
    n: int,
    script: Sequence[Request],
    recompute: Callable[[Structure], object],
    symmetric: frozenset[str] = frozenset(),
    warmup: int = 0,
) -> float:
    """Avg seconds per (apply request + recompute answer from scratch)."""
    inputs = Structure.initial(vocabulary, n)
    for request in script[:warmup]:
        apply_request(inputs, request, symmetric)
    measured = script[warmup:]
    start = time.perf_counter()
    for request in measured:
        apply_request(inputs, request, symmetric)
        recompute(inputs)
    return (time.perf_counter() - start) / max(len(measured), 1)


def _dyn_static_table(
    experiment: str,
    title: str,
    program_maker: Callable[[], DynFOProgram],
    script_maker: Callable[[int], Sequence[Request]],
    query: Callable[[DynFOEngine], object],
    recompute: Callable[[Structure], object],
    sizes: Sequence[int],
    notes: str = "",
    warmup_fraction: float = 0.3,
) -> Table:
    table = Table(
        experiment,
        title,
        (
            "n",
            "dyn update (ms)",
            "dyn query (ms)",
            "static upd+recompute (ms)",
            "static/dyn-query ratio",
        ),
        notes=notes,
    )
    program = program_maker()
    for n in sizes:
        script = list(script_maker(n))
        warmup = int(len(script) * warmup_fraction)
        update, query_time = _time_dynamic(program, n, script, query, warmup)
        static = _time_static(
            program.input_vocabulary,
            n,
            script,
            recompute,
            program.symmetric_inputs,
            warmup,
        )
        ratio = static / query_time if query_time > 0 else float("inf")
        table.add(n, update * _MS, query_time * _MS, static * _MS, ratio)
    return table


# ---------------------------------------------------------------------------
# E1 .. E14
# ---------------------------------------------------------------------------


def e01_parity(quick: bool = True) -> Table:
    sizes = (64, 256, 1024) if quick else (64, 256, 1024, 4096)
    return _dyn_static_table(
        "E1",
        "PARITY (Example 3.2): maintained bit vs recount",
        make_parity_program,
        lambda n: bitflip_script(n, 60, seed=1),
        lambda engine: engine.ask("odd"),
        lambda inputs: len(inputs.relation_view("M")) % 2 == 1,
        sizes,
        notes="""Shape: the dyn query cost is flat in n (a nullary-relation
        lookup), as is its per-update cost beyond the mirrored string
        rewrite.  Python's set-size recount is faster in wall clock at any
        feasible n — the reproduced claim is structural: one O(1)-depth FO
        step per request (E16), where statically PARITY needs no FO formula
        at all [A83, FSS84].""",
    )


def e02_reach_u(quick: bool = True) -> Table:
    sizes = (8, 12, 16) if quick else (8, 12, 16, 24, 32)
    return _dyn_static_table(
        "E2",
        "REACH_u (Theorem 4.1): spanning forest vs all-pairs BFS",
        make_reach_u_program,
        lambda n: undirected_script(n, 50, seed=2),
        lambda engine: engine.query("connected"),
        lambda inputs: reachable_pairs_undirected(
            inputs.n, inputs.relation_view("E")
        ),
        sizes,
        notes="""Shape: per-update cost is history-independent (same script
        position costs the same at step 10 and step 1000) and the maintained
        connectivity relation answers all-pairs queries by lookup, while
        the static arm pays a full components recomputation per request.""",
    )


def e03_reach_acyclic(quick: bool = True) -> Table:
    sizes = (8, 12, 16) if quick else (8, 12, 16, 24)
    return _dyn_static_table(
        "E3",
        "REACH(acyclic) (Theorem 4.2): path relation vs DFS closure",
        make_reach_acyclic_program,
        lambda n: dag_script(n, 60, seed=3),
        lambda engine: engine.query("paths"),
        lambda inputs: transitive_closure(inputs.n, inputs.relation_view("E")),
        sizes,
    )


def e04_reach_d(quick: bool = True) -> Table:
    sizes = (6, 8, 10) if quick else (6, 8, 10, 14)
    table = Table(
        "E4",
        "REACH_d (Ex. 2.1 + Prop 5.3): transferred engine vs direct walk",
        ("n", "dyn update (ms)", "dyn query (ms)", "static (ms)", "max target requests"),
        notes="""Shape: each source request translates to a *bounded* number
        of target requests (<= 5 observed; Definition 5.1), so the
        transferred update cost tracks REACH_u's, independent of history.""",
    )
    for n in sizes:
        script = list(reach_d_script(n, 40, seed=4))
        engine = make_reach_d_engine(n)
        start = time.perf_counter()
        for request in script:
            engine.apply(request)
        update = (time.perf_counter() - start) / len(script)
        start = time.perf_counter()
        for _ in range(5):
            engine.ask("reach")
        query = (time.perf_counter() - start) / 5
        shadow = Structure.initial(engine.reduction.source, n)
        start = time.perf_counter()
        for request in script:
            apply_request(shadow, request)
            deterministic_reachable(
                n,
                set(shadow.relation_view("E")),
                shadow.constant("s"),
                shadow.constant("t"),
            )
        static = (time.perf_counter() - start) / len(script)
        table.add(n, update * _MS, query * _MS, static * _MS, engine.max_delta_seen)
    return table


def e05_transitive_reduction(quick: bool = True) -> Table:
    sizes = (8, 12) if quick else (8, 12, 16)
    return _dyn_static_table(
        "E5",
        "Transitive reduction (Corollary 4.3) vs closure-based recompute",
        make_transitive_reduction_program,
        lambda n: dag_script(n, 50, seed=5),
        lambda engine: engine.query("tr"),
        lambda inputs: transitive_reduction_dag(
            inputs.n, set(inputs.relation_view("E"))
        ),
        sizes,
    )


def e06_msf(quick: bool = True) -> Table:
    sizes = (8, 10) if quick else (8, 10, 12, 14)
    return _dyn_static_table(
        "E6",
        "Minimum spanning forest (Theorem 4.4) vs Kruskal",
        make_msf_program,
        lambda n: weighted_script(n, 40, seed=6),
        lambda engine: engine.query("forest"),
        lambda inputs: kruskal_msf(
            inputs.n,
            {(u, v) for (u, v, w) in inputs.relation_view("Ew")},
            {
                (u, v): w
                for (u, v, w) in inputs.relation_view("Ew")
                if u < v
            },
        ),
        sizes,
        notes="""Both arms produce the identical (memoryless) forest under
        the (weight, endpoints) key; the dyn arm keeps PV so connectivity
        queries stay lookups.""",
    )


def e07_bipartite(quick: bool = True) -> Table:
    sizes = (8, 12) if quick else (8, 12, 16)
    return _dyn_static_table(
        "E7",
        "Bipartiteness (Theorem 4.5(1)) vs BFS 2-coloring",
        make_bipartite_program,
        lambda n: undirected_script(n, 50, seed=7),
        lambda engine: engine.ask("bipartite"),
        lambda inputs: is_bipartite(inputs.n, inputs.relation_view("E")),
        sizes,
    )


def e08_kedge(quick: bool = True) -> Table:
    table = Table(
        "E8",
        "k-edge connectivity (Theorem 4.5(2)): composed FO query vs max-flow",
        ("n", "k", "dyn query (ms)", "static min-cut (ms)", "agree"),
        notes="""The k = 2 query composes the Theorem 4.1 deletion formula
        once and quantifies over deleted edges; its cost grows with the
        composition depth (formula size, E16) — the theorem's point is
        expressibility at fixed k, not raw speed.""",
    )
    ks = (1, 2) if quick else (1, 2, 3)
    for n in ((6,) if quick else (6, 8)):
        program = make_kedge_program()
        engine = DynFOEngine(program, n)
        script = undirected_script(n, 24, seed=8, p_delete=0.3)
        for request in script:
            engine.apply(request)
        analyzer = KEdgeAnalyzer(engine, max_deletions=max(ks) - 1)
        inputs = Structure.initial(program.input_vocabulary, n)
        for request in script:
            apply_request(inputs, request, program.symmetric_inputs)
        edges = set(inputs.relation_view("E"))
        for k in ks:
            start = time.perf_counter()
            got = analyzer.is_k_edge_connected(k)
            dyn = time.perf_counter() - start
            start = time.perf_counter()
            want = is_k_edge_connected(n, edges, k)
            static = time.perf_counter() - start
            table.add(n, k, dyn * _MS, static * _MS, got == want)
    return table


def e09_matching(quick: bool = True) -> Table:
    sizes = (8, 12) if quick else (8, 12, 16)

    def greedy_rebuild(inputs: Structure):
        matched: set[int] = set()
        matching = set()
        for (u, v) in sorted(inputs.relation_view("E")):
            if u != v and u not in matched and v not in matched:
                matching.add((u, v))
                matched.update((u, v))
        return matching

    return _dyn_static_table(
        "E9",
        "Maximal matching (Theorem 4.5(3)) vs greedy rebuild",
        make_matching_program,
        lambda n: bounded_degree_script(n, 50, max_degree=3, seed=9),
        lambda engine: engine.query("matching"),
        greedy_rebuild,
        sizes,
        notes="""Answers are property-checked (validity + maximality), not
        equality-checked: the two arms may pick different maximal matchings.""",
    )


def e10_lca(quick: bool = True) -> Table:
    sizes = (8, 12) if quick else (8, 12, 16)

    def all_pairs_lca(inputs: Structure):
        edges = set(inputs.relation_view("E"))
        return {
            (x, y, forest_lca(inputs.n, edges, x, y))
            for x in range(inputs.n)
            for y in range(inputs.n)
        }

    return _dyn_static_table(
        "E10",
        "LCA in directed forests (Theorem 4.5(4)) vs ancestor walks",
        make_lca_program,
        lambda n: forest_script(n, 50, seed=10),
        lambda engine: engine.query("lca"),
        all_pairs_lca,
        sizes,
    )


def e11_regular(quick: bool = True) -> Table:
    sizes = (8, 12, 16) if quick else (8, 12, 16, 24)
    dfa = mod_counter_dfa(3)
    program = make_regular_program(dfa, name="mod3")

    def rebuild(inputs: Structure):
        word: list = [None] * inputs.n
        for symbol in dfa.alphabet:
            for (p,) in inputs.relation_view(symbol_relation(symbol)):
                word[p] = symbol
        return dfa.run(word)

    return _dyn_static_table(
        "E11",
        "Regular language #1(w) = 0 mod 3 (Theorem 4.6) vs DFA re-run",
        lambda: program,
        lambda n: word_edit_script(dfa, n, 50, seed=11),
        lambda engine: engine.ask("accepted"),
        rebuild,
        sizes,
        notes="""The interval table St has Theta(n^2 |Q|^2) tuples, so dyn
        updates grow ~n^2 while the acceptance query stays a lookup; the
        static DFA re-run is O(n) per request but pays per *query* too.""",
    )


def e12_multiplication(quick: bool = True) -> Table:
    sizes = (16, 24) if quick else (16, 24, 32)
    return _dyn_static_table(
        "E12",
        "Multiplication (Proposition 4.7): FO carry updates vs remultiply",
        make_multiplication_program,
        lambda n: number_bit_script(n, 60, seed=12),
        lambda engine: engine.query("product_bits"),
        lambda inputs: bits_to_int(inputs.relation_view("X"))
        * bits_to_int(inputs.relation_view("Y")),
        sizes,
        notes="""Python bignums make the static arm unbeatable in wall
        clock; the reproduced claim is that each bit change is a single
        constant-depth FO step (carry lookahead), not a hardware race.""",
    )


def e13_dyck(quick: bool = True) -> Table:
    sizes = (8, 12) if quick else (8, 12, 16)
    k = 2
    program = make_dyck_program(k)

    def reparse(inputs: Structure):
        word = {}
        for t in range(1, k + 1):
            for (p,) in inputs.relation_view(left_relation(t)):
                word[p] = ("L", t)
            for (p,) in inputs.relation_view(right_relation(t)):
                word[p] = ("R", t)
        from ..baselines import dyck_check

        return dyck_check(word)

    return _dyn_static_table(
        "E13",
        "Dyck language D^2 (Proposition 4.8): level shifts vs re-parse",
        lambda: program,
        lambda n: dyck_edit_script(k, n, 50, seed=13),
        lambda engine: engine.ask("member"),
        reparse,
        sizes,
    )


def e14_pad_reach_a(quick: bool = True) -> Table:
    sizes = (5, 6) if quick else (5, 6, 8)
    table = Table(
        "E14",
        "PAD(REACH_a) (Theorem 5.14): per-request FO step vs full fixpoint",
        (
            "n",
            "per-request (ms)",
            "requests per real change",
            "per real change (ms)",
            "full fixpoint (ms)",
            "answers agree",
        ),
        notes="""Padding gives the program n first-order steps per real
        change; the pipeline's per-request cost is flat, and the aggregate
        per-real-change work tracks one full fixpoint recomputation —
        exactly the amortization the theorem trades on.""",
    )
    for n in sizes:
        program = make_pad_reach_a_program()
        engine = DynFOEngine(program, n)
        adversary = PadAdversary(n)
        for _ in range(n):
            engine.set_const("s", 0)
        rng = random.Random(14)
        agree = True
        start = time.perf_counter()
        requests = 0
        for _ in range(8):
            for request in adversary.random_batch(rng):
                engine.apply(request)
                requests += 1
            got = engine.ask("pad_member")
            want = alternating_reaches(
                n, adversary.edges, adversary.universal, adversary.s, adversary.t
            )
            agree &= got == want
        per_request = (time.perf_counter() - start) / requests
        start = time.perf_counter()
        for _ in range(10):
            alternating_reaches(
                n, adversary.edges, adversary.universal, adversary.s, adversary.t
            )
        fixpoint = (time.perf_counter() - start) / 10
        table.add(
            n,
            per_request * _MS,
            n,
            per_request * n * _MS,
            fixpoint * _MS,
            agree,
        )
    return table


# ---------------------------------------------------------------------------
# E15 .. E18: ablations
# ---------------------------------------------------------------------------


def e15_backends(quick: bool = True) -> Table:
    table = Table(
        "E15",
        "Evaluator ablation on REACH_u updates",
        ("n", "backend", "update (ms)"),
        notes="""naive = brute-force semantics (reference); relational =
        join planning (default); dense = vectorized CRAM simulation with
        scope-shared tensor axes (rank = frame + max quantifier nesting).
        The dense arm wins while n^rank tensors fit in memory — constant
        *depth*, polynomial hardware, exactly the FO = CRAM[1] reading.""",
    )
    cases = [
        (6, ("naive", "relational", "dense")),
        (10, ("relational", "dense")),
        (16, ("relational", "dense")),
    ]
    if not quick:
        cases.append((24, ("relational", "dense")))
    program = make_reach_u_program()
    for n, backends in cases:
        script = undirected_script(n, 30, seed=15)
        for backend in backends:
            update, _ = _time_dynamic(
                program, n, script, lambda e: None, backend=backend
            )
            table.add(n, backend, update * _MS)
    return table


def e16_depth(quick: bool = True) -> Table:
    table = Table(
        "E16",
        "Parallel-time accounting: formula depth and rank are O(1) in n",
        ("program", "max connective depth", "max quantifier rank", "aux arity"),
        notes="""Connective depth = CRAM[1] parallel steps per update; it
        depends on the program, never on n — the 'Parallel' in the title.
        Compare: a static BFS needs Omega(diameter) sequential rounds.""",
    )
    programs = [
        make_parity_program(),
        make_reach_u_program(),
        make_reach_u_arity2_program(),
        make_reach_acyclic_program(),
        make_transitive_reduction_program(),
        make_msf_program(),
        make_bipartite_program(),
        make_matching_program(),
        make_lca_program(),
        make_regular_program(mod_counter_dfa(3), name="mod3"),
        make_multiplication_program(),
        make_dyck_program(2),
        make_pad_reach_a_program(),
    ]
    for program in programs:
        table.add(
            program.name,
            program.max_connective_depth(),
            program.max_quantifier_rank(),
            program.aux_arity(),
        )
    return table


def e17_arity(quick: bool = True) -> Table:
    sizes = (8, 12) if quick else (8, 12, 16, 20)
    table = Table(
        "E17",
        "Auxiliary arity ablation: PV (arity 3) vs FD+TC (arity 2, [DS95])",
        ("n", "arity-3 update (ms)", "arity-2 update (ms)", "aux tuples a3", "aux tuples a2"),
        notes="""The arity-2 program stores O(n^2) auxiliary tuples against
        PV's O(n^3); updates pay for rerooting instead.  Answers agree
        (tested), so this is a pure space/maintenance trade-off.""",
    )
    for n in sizes:
        script = undirected_script(n, 40, seed=17)
        p3, p2 = make_reach_u_program(), make_reach_u_arity2_program()
        u3, _ = _time_dynamic(p3, n, script, lambda e: None)
        u2, _ = _time_dynamic(p2, n, script, lambda e: None)
        e3 = DynFOEngine(p3, n)
        e3.run(script)
        e2 = DynFOEngine(p2, n)
        e2.run(script)
        tuples3 = sum(e3.structure.cardinality(r.name) for r in p3.aux_vocabulary)
        tuples2 = sum(e2.structure.cardinality(r.name) for r in p2.aux_vocabulary)
        table.add(n, u3 * _MS, u2 * _MS, tuples3, tuples2)
    return table


def e18_expansion(quick: bool = True) -> Table:
    trials = 120 if quick else 400
    table = Table(
        "E18",
        "Bounded expansion of I_{d-u} (Definition 5.1, Example 2.1)",
        ("n", "trials", "max changed target tuples", "bound holds (<= 6)"),
        notes="""Random single requests against random sources; the output
        of the reduction never changes in more than a constant number of
        tuples, which is what lets Proposition 5.3 transfer Dyn-FO.""",
    )
    for n in ((5, 7) if quick else (5, 7, 9)):
        report = measure_expansion(reduction_d_to_u(), n=n, trials=trials, seed=18)
        table.add(n, report.trials, report.max_delta, report.max_delta <= 6)
    return table


def e19_history_independence(quick: bool = True) -> Table:
    steps = 160 if quick else 400
    n = 10
    table = Table(
        "E19",
        "History independence: per-request cost along a long run (REACH_u)",
        ("segment", "avg update (ms)", "avg tuples written", "avg temp tuples"),
        notes="""Definition 3.1's g_n sees only (current structure, request):
        per-request cost depends on the current density, never on how many
        requests came before.  Segment averages along one long run stay
        flat once the density stabilizes (the first segment is cheaper only
        because the graph is still filling up).""",
    )
    program = make_reach_u_program()
    engine = DynFOEngine(program, n)
    script = undirected_script(n, steps, seed=19)
    quarter = len(script) // 4
    for index in range(4):
        segment = script[index * quarter : (index + 1) * quarter]
        tuples = 0
        temps = 0
        start = time.perf_counter()
        for request in segment:
            engine.apply(request)
            tuples += engine.last_update_stats["tuples_written"]
            temps += engine.last_update_stats["temporary_tuples"]
        elapsed = (time.perf_counter() - start) / len(segment)
        label = f"requests {index * quarter}..{(index + 1) * quarter - 1}"
        table.add(label, elapsed * _MS, tuples / len(segment), temps / len(segment))
    return table


def e20_query_crossover(quick: bool = True) -> Table:
    sizes = (8, 12) if quick else (8, 12, 16, 20)
    table = Table(
        "E20",
        "Query-frequency crossover: maintained lookups vs per-query BFS",
        (
            "n",
            "dyn update (ms)",
            "dyn lookup (ms)",
            "static point query (ms)",
            "break-even queries/update",
        ),
        notes="""A maintained structure pays per *update* and answers each
        point query by one auxiliary-tuple lookup (PV(a, b, a)); a lazy one
        recomputes connectivity per query.  The dyn arm amortizes once each
        update is followed by ~ dyn_update / (static_query - dyn_lookup)
        queries — the crossover DESIGN.md's shape claims are about.""",
    )
    program = make_reach_u_program()
    for n in sizes:
        script = undirected_script(n, 40, seed=20)
        engine = DynFOEngine(program, n)
        start = time.perf_counter()
        for request in script:
            engine.apply(request)
        update = (time.perf_counter() - start) / len(script)
        pairs = [(a, b) for a in range(0, n, 2) for b in range(1, n, 2)][:20]
        # the maintained answer is literally one auxiliary tuple: PV(a, b, a)
        structure = engine.structure
        start = time.perf_counter()
        for _ in range(50):
            for (a, b) in pairs:
                a == b or structure.holds("PV", (a, b, a))
        dyn_query = (time.perf_counter() - start) / (50 * len(pairs))
        inputs = Structure.initial(program.input_vocabulary, n)
        for request in script:
            apply_request(inputs, request, program.symmetric_inputs)
        edges = inputs.relation_view("E")
        sets = None
        start = time.perf_counter()
        for (a, b) in pairs:
            from ..baselines import same_component

            same_component(n, edges).connected(a, b)
        static_query = (time.perf_counter() - start) / len(pairs)
        if static_query > dyn_query:
            breakeven = update / (static_query - dyn_query)
            table.add(n, update * _MS, dyn_query * _MS, static_query * _MS, round(breakeven))
        else:
            table.add(n, update * _MS, dyn_query * _MS, static_query * _MS, "none")
    return table


EXPERIMENTS: Mapping[str, Callable[[bool], Table]] = {
    "E1": e01_parity,
    "E2": e02_reach_u,
    "E3": e03_reach_acyclic,
    "E4": e04_reach_d,
    "E5": e05_transitive_reduction,
    "E6": e06_msf,
    "E7": e07_bipartite,
    "E8": e08_kedge,
    "E9": e09_matching,
    "E10": e10_lca,
    "E11": e11_regular,
    "E12": e12_multiplication,
    "E13": e13_dyck,
    "E14": e14_pad_reach_a,
    "E15": e15_backends,
    "E16": e16_depth,
    "E17": e17_arity,
    "E18": e18_expansion,
    "E19": e19_history_independence,
    "E20": e20_query_crossover,
}


def run_experiment(name: str, quick: bool = True) -> Table:
    """Run one experiment by id (e.g. ``"E2"``)."""
    try:
        fn = EXPERIMENTS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {', '.join(EXPERIMENTS)}"
        ) from None
    return fn(quick)
