"""Machine-readable serving-layer benchmark E22 (``BENCH_service.json``).

Two sweeps against a live NDJSON/TCP server hosting one warmed ``reach_u``
session:

``read_fanout``
    Aggregate read throughput as real client *processes* scale (1, 2, 4,
    8), in two arms.  The ``hot`` arm hammers the expensive unbound
    ``connected`` query — every client asks the same question of the same
    structure version, so the scheduler's singleflight collapsing serves
    the fan-out from one evaluation per version; aggregate throughput
    scales with client count even on a single core.  The ``point`` arm
    cycles cheap distinct ``ask reach`` probes — nothing collapses, so it
    shows the connection/scheduling overhead floor instead.

``write_batch``
    Per-request write cost as one client chunks the same request stream
    into ``apply_script`` batches of size 1, 4, 16, 32.  Group commit
    shares one journal fsync per batch; the ``fsyncs_per_request`` column
    is the amortization made visible.

Emit with ``python benchmarks/emit.py --service`` (or ``--quick`` for the
CI smoke variant).  The headline — hot-arm throughput at max clients over
the single-client serial baseline — is the acceptance number for the
serving layer: >= 2x on a warmed session.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from ..dynfo.requests import Delete, Insert
from ..service import DynFOServer, DynFOService, TCPServiceClient

__all__ = ["collect", "write_json"]


def _warm_script(n: int):
    """A connected-ish graph: a ring plus chords, so ``reach`` is busy and
    ``connected`` has plenty of rows."""
    requests = [Insert("E", i, i + 1) for i in range(n - 1)]
    requests.append(Insert("E", n - 1, 0))
    requests.extend(Insert("E", i, (i + n // 2) % n) for i in range(0, n, 7))
    return requests


def _read_client(
    port: int,
    session: str,
    mode: str,
    n: int,
    duration: float,
    barrier,
    results,
    index: int,
) -> None:
    """One client process: spin on reads for ``duration`` seconds after the
    shared barrier, then report how many completed."""
    with TCPServiceClient(port=port) as client:
        if mode == "hot":
            frames = [
                {"op": "query", "session": session, "name": "connected", "params": {}}
            ]
        else:
            frames = [
                {
                    "op": "ask",
                    "session": session,
                    "name": "reach",
                    "params": {"s": s, "t": (s + n // 2) % n},
                }
                for s in range(index, n, 3)
            ]
        client.request(dict(frames[0]))  # warm the connection and the plans
        barrier.wait()
        deadline = time.perf_counter() + duration
        done = 0
        while time.perf_counter() < deadline:
            client.request(dict(frames[done % len(frames)]))
            done += 1
        results.put((index, done))


def _run_fanout_arm(
    port: int, session: str, mode: str, n: int, clients: int, duration: float
) -> dict:
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(clients + 1)
    results = ctx.Queue()
    procs = [
        ctx.Process(
            target=_read_client,
            args=(port, session, mode, n, duration, barrier, results, i),
            daemon=True,
        )
        for i in range(clients)
    ]
    for proc in procs:
        proc.start()
    barrier.wait()
    started = time.perf_counter()
    counts = [results.get(timeout=duration + 60.0) for _ in procs]
    elapsed = time.perf_counter() - started
    for proc in procs:
        proc.join(timeout=30.0)
    total = sum(count for _, count in counts)
    return {
        "mode": mode,
        "clients": clients,
        "duration_s": round(elapsed, 3),
        "requests": total,
        "throughput_rps": round(total / elapsed, 1) if elapsed else 0.0,
    }


def _measure_read_fanout(
    port: int, session: str, stats, n: int, client_counts, duration: float
) -> dict:
    out: dict = {"arms": []}
    for mode in ("hot", "point"):
        before = stats()
        for clients in client_counts:
            arm = _run_fanout_arm(port, session, mode, n, clients, duration)
            after = stats()
            arm["reads_collapsed_delta"] = (
                after["reads_collapsed"] - before["reads_collapsed"]
            )
            before = after
            out["arms"].append(arm)
    hot = {a["clients"]: a for a in out["arms"] if a["mode"] == "hot"}
    base = hot.get(min(hot))
    peak = hot.get(max(hot))
    if base and peak and base["throughput_rps"]:
        out["headline"] = {
            "metric": "hot read throughput, max clients vs serial",
            "clients": peak["clients"],
            "serial_rps": base["throughput_rps"],
            "fanout_rps": peak["throughput_rps"],
            "speedup_x": round(peak["throughput_rps"] / base["throughput_rps"], 2),
        }
    return out


def _measure_write_batches(
    client: TCPServiceClient, session: str, stats, total: int, batch_sizes
) -> list[dict]:
    """Chunked insert/delete churn on a *sparse* session — reach_u deletes
    on dense graphs are orders of magnitude pricier (spanning-forest
    repair), which would drown the fsync amortization being measured."""
    out = []
    edges = [(i % 23, (i * 7 + 3) % 23) for i in range(total)]
    for batch in batch_sizes:
        # insert then delete the same edges: state returns to baseline, so
        # every batch size measures the same work
        requests = []
        for a, b in edges:
            requests.append(Insert("E", a, b))
        for a, b in edges:
            requests.append(Delete("E", a, b))
        before = stats()
        started = time.perf_counter()
        for i in range(0, len(requests), batch):
            client.apply_script(session, requests[i : i + batch])
        elapsed = time.perf_counter() - started
        after = stats()
        applied = len(requests)
        fsyncs = after["journal"]["fsyncs"] - before["journal"]["fsyncs"]
        out.append(
            {
                "batch_size": batch,
                "requests": applied,
                "per_request_us": round(elapsed / applied * 1e6, 1),
                "fsyncs": fsyncs,
                "fsyncs_per_request": round(fsyncs / applied, 4),
            }
        )
    return out


def collect(quick: bool = False) -> dict:
    """Run both sweeps against a fresh server and return the payload."""
    n = 32 if quick else 96
    write_n = 24 if quick else 32
    duration = 0.4 if quick else 2.0
    client_counts = [1, 4] if quick else [1, 2, 4, 8]
    write_total = 8 if quick else 24
    batch_sizes = [1, 8] if quick else [1, 4, 16, 32]
    session = "bench-read"
    write_session = "bench-write"

    with tempfile.TemporaryDirectory(prefix="dynfo-e22-") as tmp:
        service = DynFOService(
            data_dir=Path(tmp), read_workers=8, max_batch=64, max_queue_depth=1024
        )
        server = DynFOServer(port=0, service=service)
        server.serve_in_background()
        try:
            client = TCPServiceClient(port=server.port)
            client.open(session, "reach_u", n=n)
            # warming a large dense universe takes minutes of update work;
            # exempt it from the serving deadline meant for live traffic
            client.apply_script(session, _warm_script(n), deadline_ms=600_000)
            client.open(write_session, "reach_u", n=write_n)

            def stats(name: str = session) -> dict:
                return client.stats(name)[name]

            connected_rows = len(client.query(session, "connected"))
            read_fanout = _measure_read_fanout(
                server.port, session, stats, n, client_counts, duration
            )
            write_batch = _measure_write_batches(
                client,
                write_session,
                lambda: stats(write_session),
                write_total,
                batch_sizes,
            )
            final = stats()
            client.close()
        finally:
            server.stop(snapshot=False)

    return {
        "experiment": "E22",
        "benchmark": "serving layer: read fan-out and write batching (reach_u)",
        "quick": quick,
        "config": {
            "n": n,
            "write_n": write_n,
            "connected_rows": connected_rows,
            "duration_s": duration,
            "client_counts": client_counts,
            "write_requests_per_arm": write_total * 2,
            "batch_sizes": batch_sizes,
        },
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "read_fanout": read_fanout,
        "write_batch": write_batch,
        "session_stats": {
            "reads": final["reads"],
            "reads_collapsed": final["reads_collapsed"],
            "writes": final["writes"],
            "batches": final["batches"],
            "batch_size_max": final["batch_size_max"],
            "plan_cache": final["plan_cache"],
        },
    }


def write_json(path: str | Path, payload: dict) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


if __name__ == "__main__":  # pragma: no cover
    print(json.dumps(collect(quick="--quick" in sys.argv), indent=2))
