"""Benchmark harness and the experiment suite E1-E18 (DESIGN.md Sec. 4)."""

from .experiments import EXPERIMENTS, run_experiment
from .harness import Table, crossover, time_per_step

__all__ = ["EXPERIMENTS", "run_experiment", "Table", "crossover", "time_per_step"]
