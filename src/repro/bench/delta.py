"""Machine-readable delta-path benchmark (``BENCH_delta.json``).

Experiment E24.  The delta-restricted update path (PR 5) claims three
things, each measured by one arm here:

``speedup``
    Parameter-specialized plans + indexed atom probes + symmetric-difference
    staging make a reach_u update on the relational backend at n=64 at least
    3x faster than the PR-4 full-rematerialization path.  Both arms replay
    the *identical* script; the full arm is the production engine with
    ``use_delta=False`` — exactly the ``--no-delta`` escape hatch.

``journal``
    Effect records on the delta path carry the handful of tuples an update
    actually changed instead of full-relation rewrites, cutting journal
    bytes per update by at least 5x (measured via
    :attr:`~repro.dynfo.journal.RequestJournal.bytes_written` with
    ``record_effects=True`` in both modes).

``history_independence``
    Per-update latency stays flat as history accumulates — the paper's
    memorylessness, observed as performance: over a long script, bucketed
    median latencies vary by no more than ~20% after warm-up.  (A delta
    path that secretly accumulated work per request would show a slope.)

Emitted as JSON by ``python benchmarks/emit.py --delta`` so the perf
trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import random
import statistics
import tempfile
import time
from pathlib import Path
from typing import Sequence

from ..dynfo.engine import DynFOEngine
from ..dynfo.journal import RequestJournal
from ..dynfo.requests import Delete, Insert, Request
from ..programs import PROGRAM_FACTORIES
from ..workloads import undirected_script

__all__ = [
    "measure_mode",
    "churn_script",
    "measure_history_curve",
    "collect",
    "write_json",
]


def _script(n: int, steps: int, seed: int) -> Sequence[Request]:
    return undirected_script(n, steps, seed=seed)


def measure_mode(
    *,
    use_delta: bool,
    backend: str = "relational",
    n: int = 64,
    steps: int = 60,
    seed: int = 11,
) -> dict:
    """One arm: replay the reach_u script with or without the delta path,
    journaling effect records, and report per-update time, journal bytes,
    and the engine's delta/cache counters."""
    program = PROGRAM_FACTORIES["reach_u"]()  # fresh program => clean caches
    script = _script(n, steps, seed)
    with tempfile.TemporaryDirectory(prefix="dynfo-delta-bench-") as tmp:
        journal = RequestJournal(
            Path(tmp) / "journal.ndjson", fsync=False, record_effects=True
        )
        engine = DynFOEngine(
            program, n, backend=backend, journal=journal, use_delta=use_delta
        )
        added = removed = 0
        started = time.perf_counter_ns()
        for request in script:
            engine.apply(request)
            added += engine.last_update_stats["tuples_added"]
            removed += engine.last_update_stats["tuples_removed"]
        per_update_ns = (time.perf_counter_ns() - started) // max(1, len(script))
        journal_bytes = journal.bytes_written
        journal.close()
        spec = engine.specialized_plan_cache_stats()
    return {
        "mode": "delta" if use_delta else "full",
        "backend": backend,
        "n": n,
        "steps": len(script),
        "per_update_ns": per_update_ns,
        "journal_bytes_total": journal_bytes,
        "journal_bytes_per_update": journal_bytes // max(1, len(script)),
        "tuples_added_total": added,
        "tuples_removed_total": removed,
        "specialized_plan_cache": spec,
    }


def churn_script(
    n: int, steps: int, seed: int = 11, density: float = 0.5
) -> tuple[list[Request], list[Request]]:
    """(warmup, churn): build a random graph at the target edge density,
    then cycle delete/reinsert over a fixed rotation of its edges, so that
    after every pair the structure is back in its baseline state.

    The cycle is the point: the engine revisits the *identical* state
    sequence for the entire churn phase, so per-update cost is pinned to a
    function of the state alone — any slope across buckets is per-request
    state accumulating inside the engine, exactly what the paper's
    memorylessness forbids.
    """
    rng = random.Random(seed)
    pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    target = max(2, int(len(pairs) * density))
    present = sorted(rng.sample(pairs, target))
    warmup = [Insert("E", edge) for edge in present]
    victims = rng.sample(present, min(16, len(present)))
    churn: list[Request] = []
    i = 0
    while len(churn) < steps:
        edge = victims[i % len(victims)]
        churn.append(Delete("E", edge))
        churn.append(Insert("E", edge))
        i += 1
    return warmup, churn[:steps]


def measure_history_curve(
    *,
    n: int = 12,
    steps: int = 10_000,
    buckets: int = 10,
    seed: int = 11,
    backend: str = "relational",
    density: float = 0.5,
) -> dict:
    """Memorylessness as a performance property: per-update latency over a
    long density-preserving churn script, bucketed; the curve is *flat*
    when the max and min bucket medians agree within the reported ratio.

    The build phase (graph filling up from empty) is excluded — it measures
    growth, not steady state.  Every delete/reinsert pair returns the
    structure to its baseline, so all buckets time the identical state
    sequence and a rising curve could only mean per-request state
    accumulating in the engine.
    """
    program = PROGRAM_FACTORIES["reach_u"]()
    warmup, churn = churn_script(n, steps, seed=seed, density=density)
    engine = DynFOEngine(program, n, backend=backend, use_delta=True)
    for request in warmup:
        engine.apply(request)
    # time each delete+insert pair as one sample: individually the stream is
    # bimodal (inserts are far cheaper than deletes) and a bucket median
    # would sit on the mode boundary; per-pair cost is unimodal
    latencies: list[int] = []
    for i in range(0, len(churn) - 1, 2):
        started = time.perf_counter_ns()
        engine.apply(churn[i])
        engine.apply(churn[i + 1])
        latencies.append((time.perf_counter_ns() - started) // 2)
    size = max(1, len(latencies) // buckets)
    medians = [
        int(statistics.median(latencies[i * size : (i + 1) * size]))
        for i in range(buckets)
        if latencies[i * size : (i + 1) * size]
    ]
    flatness = round(max(medians) / max(1, min(medians)), 3)
    return {
        "backend": backend,
        "n": n,
        "steps": len(churn),
        "samples": len(latencies),
        "warmup_steps": len(warmup),
        "edges": len(warmup),
        "buckets": buckets,
        "bucket_median_ns": medians,
        "flatness_ratio": flatness,
        "median_ns": int(statistics.median(latencies)),
    }


def collect(*, quick: bool = False) -> dict:
    """The full ``BENCH_delta.json`` payload.

    ``quick`` shrinks universes and scripts for the CI smoke run; the
    headline acceptance numbers (>=3x speedup, >=5x journal reduction,
    flatness <= 1.2) come from the full run at n=64 / 10k steps.
    """
    steps = 20 if quick else 60
    # reach_u's delete rule needs 5 free variables, so the dense backend's
    # n^5 tensor budget caps its universe well below the relational arm's
    sizes = {"relational": 12 if quick else 64, "dense": 12 if quick else 32}
    arms: dict[str, dict] = {}
    for backend in ("relational", "dense"):
        n = sizes[backend]
        delta = measure_mode(use_delta=True, backend=backend, n=n, steps=steps)
        full = measure_mode(use_delta=False, backend=backend, n=n, steps=steps)
        arms[backend] = {
            "delta": delta,
            "full": full,
            "speedup_x": round(
                full["per_update_ns"] / max(1, delta["per_update_ns"]), 2
            ),
            "journal_reduction_x": round(
                full["journal_bytes_per_update"]
                / max(1, delta["journal_bytes_per_update"]),
                2,
            ),
        }
    payload: dict = {
        "benchmark": "delta",
        "unit": "ns/update",
        "quick": quick,
        "program": "reach_u",
        "arms": arms,
        "history_independence": measure_history_curve(
            n=8 if quick else 12,
            steps=200 if quick else 10_000,
            buckets=4 if quick else 10,
        ),
    }
    return payload


def write_json(path: str | Path, payload: dict) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
