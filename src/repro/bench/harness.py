"""Experiment harness: timed arms, tables, crossover detection.

The paper is a theory paper with no numeric tables, so DESIGN.md defines the
experiment suite E1-E18 that quantifies its claims.  Every experiment
produces a :class:`Table`; ``python -m repro bench E2`` renders it, and the
``benchmarks/`` pytest-benchmark files time the same kernels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = ["Table", "time_per_step", "crossover"]


@dataclass
class Table:
    """A rendered experiment result (our stand-in for a paper table)."""

    experiment: str
    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: str = ""

    def add(self, *row: object) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row width {len(row)} != {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        headers = [str(c) for c in self.columns]
        body = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        if self.notes:
            lines.append("")
            for note_line in self.notes.strip().splitlines():
                lines.append(f"  {note_line.strip()}")
        return "\n".join(lines)


def time_per_step(step: Callable[[], None], repeats: int) -> float:
    """Average seconds per call of ``step`` over ``repeats`` calls."""
    start = time.perf_counter()
    for _ in range(repeats):
        step()
    return (time.perf_counter() - start) / max(repeats, 1)


def crossover(
    xs: Iterable[float], dynamic: Iterable[float], static: Iterable[float]
) -> float | None:
    """First x at which the dynamic arm is at least as fast as the static
    arm, or None if it never is within the sweep."""
    for x, d, s in zip(xs, dynamic, static):
        if d <= s:
            return x
    return None
