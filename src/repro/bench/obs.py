"""Machine-readable observability-overhead benchmark E23 (``BENCH_obs.json``).

Measures what the tracing layer costs on the E22 hot-read path: one warmed
``reach_u`` session served in-process, hammered with the expensive unbound
``connected`` query in three arms —

``untraced``
    Plain requests.  The skeleton trace (queue/lock/eval spans) is always
    recorded, so this arm is the real production hot path.
``traced``
    The same requests with ``"trace": true``: detailed per-rule engine
    timing plus span-tree serialization into every response.
``traced_write``
    Informational: traced vs plain ``apply`` on a churn edge, showing the
    per-rule ``eval:*`` child-span cost on the write path.  Runs against a
    separate small (n=24) session: span overhead is independent of the
    universe size, while ``reach_u`` deletions grow so fast with *n* that
    churning the big read session would drown the benchmark in engine time.

Arms alternate in interleaved rounds and report medians, so drift (thermal,
scheduler) hits both sides equally.  The acceptance gate is the headline:
detailed tracing must cost <= ``GATE_OVERHEAD_PCT`` percent on the hot
read.  Emit with ``python benchmarks/emit.py --obs`` (``--quick`` for the
CI smoke variant).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from statistics import median

from ..service import DynFOService, ServiceClient
from .service import _warm_script

__all__ = ["GATE_OVERHEAD_PCT", "collect", "write_json"]

#: The acceptance ceiling: detailed tracing may slow the hot read by at
#: most this much (percent of the untraced median).
GATE_OVERHEAD_PCT = 5.0


def _time_requests(client: ServiceClient, frame: dict, reps: int) -> list[float]:
    """Per-request wall times (seconds) for ``reps`` identical requests."""
    times = []
    for _ in range(reps):
        started = time.perf_counter()
        client.request(dict(frame))
        times.append(time.perf_counter() - started)
    return times


def _interleaved(
    client: ServiceClient, plain: dict, traced: dict, rounds: int, reps: int
) -> tuple[list[float], list[float]]:
    """Alternate plain/traced blocks, flipping which goes first each round,
    so monotone ambient drift (cache warmup, thermal) cancels instead of
    landing on whichever arm consistently runs second."""
    plain_times: list[float] = []
    traced_times: list[float] = []
    for round_index in range(rounds):
        if round_index % 2 == 0:
            plain_times.extend(_time_requests(client, plain, reps))
            traced_times.extend(_time_requests(client, traced, reps))
        else:
            traced_times.extend(_time_requests(client, traced, reps))
            plain_times.extend(_time_requests(client, plain, reps))
    return plain_times, traced_times


def _arm(name: str, times: list[float]) -> dict:
    times = sorted(times)
    return {
        "arm": name,
        "requests": len(times),
        "median_us": round(median(times) * 1e6, 1),
        "p90_us": round(times[int(len(times) * 0.9)] * 1e6, 1),
    }


def collect(quick: bool = False) -> dict:
    """Run the overhead comparison in-process and return the payload."""
    n = 24 if quick else 48
    rounds = 4 if quick else 6
    reps = 8 if quick else 12
    write_reps = 6 if quick else 20
    write_n = 24  # deletions on reach_u blow up with n; span cost does not

    service = DynFOService(read_workers=4)
    try:
        client = ServiceClient(service)
        session = "bench-obs"
        client.open(session, "reach_u", n=n)
        client.apply_script(session, _warm_script(n))
        write_session = "bench-obs-write"
        client.open(write_session, "reach_u", n=write_n)
        client.apply_script(write_session, _warm_script(write_n))

        hot = {"op": "query", "session": session, "name": "connected", "params": {}}
        for _ in range(reps):  # warm plans, caches, and the collapse path
            client.request(dict(hot))
            client.request({**hot, "trace": True})
        plain_times, traced_times = _interleaved(
            client, hot, {**hot, "trace": True}, rounds, reps
        )

        # write path (informational): churn one edge so state is stable
        ins = {
            "op": "apply",
            "session": write_session,
            "request": {"op": "ins", "rel": "E", "tup": [1, 3]},
        }
        rm = {**ins, "request": {"op": "del", "rel": "E", "tup": [1, 3]}}
        write_plain: list[float] = []
        write_traced: list[float] = []
        for _ in range(write_reps):
            started = time.perf_counter()
            client.request(dict(ins))
            client.request(dict(rm))
            write_plain.append((time.perf_counter() - started) / 2)
            started = time.perf_counter()
            client.request({**ins, "trace": True})
            client.request({**rm, "trace": True})
            write_traced.append((time.perf_counter() - started) / 2)
    finally:
        service.close(snapshot=False)

    untraced = _arm("untraced", plain_times)
    traced = _arm("traced", traced_times)
    overhead_pct = round(
        (traced["median_us"] - untraced["median_us"])
        / untraced["median_us"]
        * 100.0,
        2,
    )
    write_untraced = _arm("untraced_write", write_plain)
    write_traced_arm = _arm("traced_write", write_traced)
    return {
        "experiment": "E23",
        "benchmark": "observability overhead on the E22 hot-read path (reach_u)",
        "quick": quick,
        "config": {
            "n": n,
            "rounds": rounds,
            "reps_per_round": reps,
            "write_n": write_n,
            "write_reps": write_reps,
        },
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "read_arms": [untraced, traced],
        "write_arms": [write_untraced, write_traced_arm],
        "headline": {
            "metric": "detailed-trace overhead on the hot read (median)",
            "untraced_median_us": untraced["median_us"],
            "traced_median_us": traced["median_us"],
            "overhead_pct": overhead_pct,
            "gate_pct": GATE_OVERHEAD_PCT,
            "pass": overhead_pct <= GATE_OVERHEAD_PCT,
        },
    }


def write_json(path: str | Path, payload: dict) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


if __name__ == "__main__":  # pragma: no cover
    print(json.dumps(collect(quick="--quick" in sys.argv), indent=2))
