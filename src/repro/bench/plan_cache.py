"""Machine-readable plan-cache benchmark (``BENCH_plan_cache.json``).

The compiled-plan pipeline claims two things: plans are compiled exactly
once per (rule, backend, n) — so compile time amortizes to nothing — and
the cached plans execute updates faster than the pre-refactor path that
re-derived an evaluation strategy per request.  This module measures both
and emits them as JSON so the perf trajectory is tracked across PRs
(``python benchmarks/emit.py`` or ``dynfo bench --bench-json PATH``).

Three arms per program:

``compiled``
    The production path: :class:`~repro.dynfo.engine.DynFOEngine` replaying
    cached plans, with the engine's ``plan_cache_stats()`` counters.
``per_request_recompile``
    The same engine forced to recompile every plan on every request (the
    ad-hoc compile cache is cleared between requests) — isolates what the
    cache saves in *planning* work.
``baseline`` (optional, reach_u only)
    The true pre-refactor per-request path, checked out from git history
    and run in a subprocess — isolates what the refactor saved in *total*
    work (planning plus the old evaluators' per-request strategy).
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Sequence

from ..dynfo.engine import DynFOEngine
from ..dynfo.requests import Request
from ..logic import plan as plan_module
from ..logic.relational import RelationalEvaluator
from ..programs import PROGRAM_FACTORIES
from ..programs.dyck import make_dyck_program
from ..workloads import number_bit_script, undirected_script
from ..workloads.strings import dyck_edit_script

__all__ = [
    "SUITE",
    "measure_compiled",
    "measure_per_request",
    "measure_baseline_rev",
    "collect",
    "write_json",
]

# The commit immediately before the plan IR landed — the pre-refactor
# per-request evaluators live at this revision.
PRE_REFACTOR_REV = "bc27e05"

# program -> (factory, script maker, default n, default steps)
SUITE: dict[str, tuple[Callable, Callable[[int, int, int], Sequence[Request]], int, int]] = {
    "reach_u": (
        PROGRAM_FACTORIES["reach_u"],
        lambda n, steps, seed: undirected_script(n, steps, seed=seed),
        32,
        60,
    ),
    "dyck": (
        lambda: make_dyck_program(2),
        lambda n, steps, seed: dyck_edit_script(2, n, steps, seed=seed),
        24,
        60,
    ),
    "multiplication": (
        PROGRAM_FACTORIES["multiplication"],
        lambda n, steps, seed: number_bit_script(n, steps, seed=seed),
        16,
        60,
    ),
}


def _replay(engine: DynFOEngine, script: Sequence[Request]) -> int:
    started = time.perf_counter_ns()
    for request in script:
        engine.apply(request)
    return (time.perf_counter_ns() - started) // max(1, len(script))


def measure_compiled(
    name: str,
    backend: str = "relational",
    n: int | None = None,
    steps: int | None = None,
    seed: int = 11,
) -> dict:
    """Per-update cost of the production (cached-plan) path, plus the
    engine's plan-cache counters proving compile-once."""
    factory, maker, default_n, default_steps = SUITE[name]
    n = default_n if n is None else n
    steps = default_steps if steps is None else steps
    program = factory()  # fresh program => fresh plan cache, clean counters
    engine = DynFOEngine(program, n, backend=backend)
    script = maker(n, steps, seed)
    per_update_ns = _replay(engine, script)
    stats = engine.plan_cache_stats()
    lookups = stats["hits"] + stats["misses"]
    return {
        "backend": backend,
        "n": n,
        "steps": len(script),
        "per_update_ns": per_update_ns,
        "compile_ns_total": stats["compile_ns"],
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
        "cache_hit_rate": round(stats["hits"] / lookups, 4) if lookups else 0.0,
        # compile cost amortized over the whole run, as a fraction of it
        "compile_amortized_fraction": round(
            stats["compile_ns"] / max(1, per_update_ns * len(script)), 6
        ),
    }


def measure_per_request(
    name: str,
    n: int | None = None,
    steps: int | None = None,
    seed: int = 11,
) -> dict:
    """Per-update cost when every request recompiles its plans: the engine
    runs through a callable factory (bypassing the program-level plan cache)
    and the ad-hoc compile cache is cleared between requests."""
    factory, maker, default_n, default_steps = SUITE[name]
    n = default_n if n is None else n
    steps = default_steps if steps is None else steps
    program = factory()
    engine = DynFOEngine(
        program, n, backend=lambda s, p: RelationalEvaluator(s, p)
    )
    script = maker(n, steps, seed)
    started = time.perf_counter_ns()
    for request in script:
        plan_module._ADHOC_CACHE.clear()
        engine.apply(request)
    per_update_ns = (time.perf_counter_ns() - started) // max(1, len(script))
    return {
        "backend": "relational",
        "n": n,
        "steps": len(script),
        "per_update_ns": per_update_ns,
    }


_BASELINE_SCRIPT = """\
import sys, time
from repro.programs import make_reach_u_program
from repro.workloads import undirected_script
from repro.dynfo.engine import DynFOEngine

n, steps, seed = int(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3])
program = make_reach_u_program()
engine = DynFOEngine(program, n)
script = undirected_script(n, steps, seed=seed)
started = time.perf_counter_ns()
for request in script:
    engine.apply(request)
print((time.perf_counter_ns() - started) // max(1, len(script)))
"""

# Modules whose pre-refactor versions constitute the per-request path; the
# rest of the tree (programs, workloads, engine plumbing) is current.
_BASELINE_OVERLAY = (
    "src/repro/logic/relational.py",
    "src/repro/logic/dense.py",
    "src/repro/dynfo/engine.py",
)


def measure_baseline_rev(
    rev: str = PRE_REFACTOR_REV,
    n: int = 64,
    steps: int = 4,
    seed: int = 11,
    timeout: float = 900.0,
) -> dict | None:
    """Measure the true pre-refactor per-request path on reach_u.

    Copies the current source tree into a temp dir, overlays the
    pre-refactor evaluator/engine modules from git history, and times the
    replay in a subprocess.  Returns ``None`` when git history is
    unavailable (shallow clone, no git) so callers can skip the arm.
    """
    repo = Path(__file__).resolve()
    while repo.parent != repo and not (repo / ".git").exists():
        repo = repo.parent
    if not (repo / ".git").exists():
        return None
    with tempfile.TemporaryDirectory(prefix="dynfo-baseline-") as tmp:
        shadow = Path(tmp)
        shutil.copytree(repo / "src", shadow / "src")
        for rel_path in _BASELINE_OVERLAY:
            show = subprocess.run(
                ["git", "-C", str(repo), "show", f"{rev}:{rel_path}"],
                capture_output=True,
                text=True,
            )
            if show.returncode != 0:
                return None
            (shadow / rel_path).write_text(show.stdout)
        run = subprocess.run(
            [sys.executable, "-c", _BASELINE_SCRIPT, str(n), str(steps), str(seed)],
            capture_output=True,
            text=True,
            timeout=timeout,
            env={**os.environ, "PYTHONPATH": str(shadow / "src")},
        )
    if run.returncode != 0:
        return None
    return {
        "source": f"git:{rev}",
        "backend": "relational",
        "n": n,
        "steps": steps,
        "per_update_ns": int(run.stdout.strip()),
    }


def collect(
    *,
    quick: bool = False,
    baseline_rev: str | None = PRE_REFACTOR_REV,
    reach_n: int = 64,
) -> dict:
    """The full ``BENCH_plan_cache.json`` payload.

    ``quick`` shrinks universes and scripts (for CI smoke); ``baseline_rev``
    of ``None`` skips the git-history arm.  ``reach_n`` is the universe for
    the headline reach_u speedup comparison (the acceptance bar is n >= 64).
    """
    programs: dict[str, dict] = {}
    for name in SUITE:
        steps = 20 if quick else None
        n = None
        if quick:
            n = {"reach_u": 12, "dyck": 12, "multiplication": 12}[name]
        entry: dict = {
            "compiled": {
                "relational": measure_compiled(name, "relational", n=n, steps=steps),
                "dense": measure_compiled(name, "dense", n=n, steps=steps),
            },
            "per_request_recompile": measure_per_request(name, n=n, steps=steps),
        }
        compiled = entry["compiled"]["relational"]["per_update_ns"]
        recompile = entry["per_request_recompile"]["per_update_ns"]
        entry["recompile_overhead_x"] = round(recompile / max(1, compiled), 2)
        programs[name] = entry

    payload: dict = {
        "benchmark": "plan_cache",
        "unit": "ns/update",
        "quick": quick,
        "programs": programs,
    }
    if not quick:
        # Both arms replay the *identical* script: same n, steps, and seed.
        # 60 steps reach a dense enough graph for the comparison to measure
        # sustained per-update cost, not the near-empty warm-up.
        headline_steps = 60
        headline = measure_compiled(
            "reach_u", "relational", n=reach_n, steps=headline_steps
        )
        payload["reach_u_headline"] = {"compiled": headline}
        if baseline_rev is not None:
            baseline = measure_baseline_rev(
                baseline_rev, n=reach_n, steps=headline_steps
            )
            if baseline is not None:
                payload["reach_u_headline"]["pre_refactor_baseline"] = baseline
                payload["reach_u_headline"]["speedup_x"] = round(
                    baseline["per_update_ns"] / max(1, headline["per_update_ns"]), 2
                )
    return payload


def write_json(path: str | Path, payload: dict) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
