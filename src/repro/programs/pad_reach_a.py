"""PAD(REACH_a) is in Dyn-FO (Theorem 5.14) — a P-complete problem,
maintainable in first-order because padding slows the adversary down.

``REACH_a`` (alternating reachability, = the circuit value problem) is
complete for P, so it is presumably *not* in Dyn-FO (Corollary 5.7).  But
``PAD(S)`` (Definition 5.13) stores n identical copies of the input, so
changing the real input costs the adversary n single-tuple requests — and a
Dyn-FO program gets one first-order step per request, i.e. n FO steps per
real change.  Since REACH_a is in FO[n] (its alternating-path fixpoint
converges within n first-order iterations), those steps suffice.

**Encoding.**  The padded input is ``E3(i, x, y)`` (edge (x, y) in copy i),
``A2(i, x)`` (x universal in copy i), and constants ``s``, ``t``; copy
indices and vertices share the universe.  "All copies equal" is itself
first-order, so it needs no auxiliary state.

**The stage pipeline.**  The auxiliary relation ``R(j, x)`` holds the j-th
iterate of the alternating-reachability operator on the copy-0 graph.
*Every* request replaces, in one simultaneous FO step,

    R'(0, x) := x = t          R'(j, x) := Phi(R(j-1, .))(x)   (j >= 1)

where Phi is the alternating step evaluated on the *post-request* copy-0
graph.  After m requests during which copy 0 is stable, R(j, .) is exact for
all j <= m; since PAD forces n requests per real change, R(n-1, .) is the
true fixpoint whenever the copies are all equal again — provided the
adversary updates copy 0 *first*, the canonical discipline our workloads and
tests follow.  (The answer is only ever claimed when all copies are equal,
exactly as PAD(S) membership demands.)

This reproduces the theorem's point: padding converts "FO[n] static
complexity" into "Dyn-FO with n amortized steps".
"""

from __future__ import annotations

from ..dynfo.program import DynFOProgram, Query, RelationDef, UpdateRule
from ..logic.dsl import Rel, c, eq, exists, forall, le, lit, lt
from ..logic.structure import Structure
from ..logic.syntax import Formula, TermLike
from ..logic.vocabulary import Vocabulary

__all__ = ["make_pad_reach_a_program", "INPUT_VOCABULARY", "AUX_VOCABULARY"]

INPUT_VOCABULARY = Vocabulary.parse("E3^3, A2^2, s, t")
AUX_VOCABULARY = Vocabulary.parse("E3^3, A2^2, R^2, s, t")

E3 = Rel("E3")
A2 = Rel("A2")
R = Rel("R")
_S, _T = c("s"), c("t")


def _phi(
    x: TermLike,
    stage: TermLike,
    edge: "FormulaBuilder",
    universal: "FormulaBuilder1",
    target: TermLike,
) -> Formula:
    """One alternating-reachability step reading R(stage, .)."""
    some_succ_good = exists("ye", edge(x, "ye") & R(stage, "ye"))
    has_succ = exists("yh", edge(x, "yh"))
    all_succ_good = forall("ya", edge(x, "ya") >> R(stage, "ya"))
    return (
        eq(x, target)
        | (~universal(x) & some_succ_good)
        | (universal(x) & has_succ & all_succ_good)
    )


def _pipeline_def(
    edge, universal, target: TermLike
) -> RelationDef:
    """R'(j, x) — the whole pipeline advances one step."""
    j, x = "j", "x"
    prev = lt("j0", j) & forall("wj", lt("wj", j) >> le("wj", "j0"))  # j0 = j-1
    body = (eq(j, 0) & eq(x, target)) | exists(
        "j0", prev & _phi(x, "j0", edge, universal, target)
    )
    return RelationDef("R", (j, x), body)


def _identity_edge(x: TermLike, y: TermLike) -> Formula:
    return E3(lit(0), x, y)


def _identity_universal(x: TermLike) -> Formula:
    return A2(lit(0), x)


def make_pad_reach_a_program() -> DynFOProgram:
    """Build the Dyn-FO program of Theorem 5.14."""
    _I, _A, _B = c("i"), c("a"), c("b")

    # post-request copy-0 graph, per request kind
    def edge_after_insert(x: TermLike, y: TermLike) -> Formula:
        return E3(lit(0), x, y) | (
            eq(_I, lit(0)) & eq(x, _A) & eq(y, _B)
        )

    def edge_after_delete(x: TermLike, y: TermLike) -> Formula:
        return E3(lit(0), x, y) & ~(
            eq(_I, lit(0)) & eq(x, _A) & eq(y, _B)
        )

    def universal_after_insert(x: TermLike) -> Formula:
        return A2(lit(0), x) | (eq(_I, lit(0)) & eq(x, _A))

    def universal_after_delete(x: TermLike) -> Formula:
        return A2(lit(0), x) & ~(eq(_I, lit(0)) & eq(x, _A))

    i3, x3, y3 = "i3", "x3", "y3"
    on_insert = {
        "E3": UpdateRule(
            params=("i", "a", "b"),
            definitions=(
                RelationDef(
                    "E3",
                    (i3, x3, y3),
                    E3(i3, x3, y3)
                    | (eq(i3, _I) & eq(x3, _A) & eq(y3, _B)),
                ),
                _pipeline_def(edge_after_insert, _identity_universal, _T),
            ),
        ),
        "A2": UpdateRule(
            params=("i", "a"),
            definitions=(
                RelationDef(
                    "A2", (i3, x3), A2(i3, x3) | (eq(i3, _I) & eq(x3, _A))
                ),
                _pipeline_def(_identity_edge, universal_after_insert, _T),
            ),
        ),
    }
    on_delete = {
        "E3": UpdateRule(
            params=("i", "a", "b"),
            definitions=(
                RelationDef(
                    "E3",
                    (i3, x3, y3),
                    E3(i3, x3, y3)
                    & ~(eq(i3, _I) & eq(x3, _A) & eq(y3, _B)),
                ),
                _pipeline_def(edge_after_delete, _identity_universal, _T),
            ),
        ),
        "A2": UpdateRule(
            params=("i", "a"),
            definitions=(
                RelationDef(
                    "A2", (i3, x3), A2(i3, x3) & ~(eq(i3, _I) & eq(x3, _A))
                ),
                _pipeline_def(_identity_edge, universal_after_delete, _T),
            ),
        ),
    }
    # setting s or t also pumps the pipeline (t is read post-update)
    on_set = {
        "s": UpdateRule(
            params=("v",),
            definitions=(
                _pipeline_def(_identity_edge, _identity_universal, _T),
            ),
        ),
        "t": UpdateRule(
            params=("v",),
            definitions=(
                _pipeline_def(_identity_edge, _identity_universal, c("v")),
            ),
        ),
    }

    copies_equal = forall(
        "ic xc yc",
        (E3("ic", "xc", "yc").iff(E3(lit(0), "xc", "yc")))
        & (A2("ic", "xc").iff(A2(lit(0), "xc"))),
    )
    converged = R(c("max"), _S)
    queries = {
        "copies_equal": Query("copies_equal", copies_equal),
        "reach_a": Query("reach_a", converged),
        "pad_member": Query("pad_member", copies_equal & converged),
        "stage": Query("stage", R("j", "x"), frame=("j", "x")),
    }

    return DynFOProgram(
        name="pad_reach_a",
        input_vocabulary=INPUT_VOCABULARY,
        aux_vocabulary=AUX_VOCABULARY,
        initial=lambda n: Structure.initial(AUX_VOCABULARY, n),
        on_insert=on_insert,
        on_delete=on_delete,
        on_set=on_set,
        queries=queries,
        notes=(
            "Theorem 5.14.  R(max, s) is exact whenever copy 0 has been "
            "stable for n-1 requests — which PAD guarantees under the "
            "copy-0-first update discipline."
        ),
    )
