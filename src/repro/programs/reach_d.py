"""REACH_d — deterministic reachability — is in Dyn-FO (Theorem 4.2).

The paper's route (which we follow verbatim): REACH_d reduces to REACH_u by
the bounded-expansion first-order reduction ``I_{d-u}`` of Example 2.1, and
bfo reductions transfer Dyn-FO membership (Proposition 5.3).  So the
"program" here is the generic :class:`~repro.reductions.transfer.
TransferredEngine` instantiated with that reduction on top of the spanning
forest program of Theorem 4.1.

Input: a directed graph E with constants s, t; requests are edge
inserts/deletes and ``set(s, v)`` / ``set(t, v)``.  The deterministic-path
semantics (a path may leave a vertex only along its unique out-edge, and
edges out of t are ignored) are entirely the reduction's doing.
"""

from __future__ import annotations

from ..reductions.catalog import reduction_d_to_u
from ..reductions.transfer import TransferredEngine
from .reach_u import make_reach_u_program

__all__ = ["make_reach_d_engine"]


def make_reach_d_engine(
    n: int, backend: str = "relational", max_expansion: int = 8
) -> TransferredEngine:
    """A dynamic REACH_d solver for universe size ``n``.

    Usage::

        engine = make_reach_d_engine(8)
        engine.insert("E", 0, 1)
        engine.set_const("s", 0); engine.set_const("t", 1)
        engine.ask("reach")      # s, t injected from the reduction
    """
    return TransferredEngine(
        reduction=reduction_d_to_u(),
        target_program=make_reach_u_program(),
        n=n,
        max_expansion=max_expansion,
        backend=backend,
    )
