"""REACH_u — undirected reachability — is in Dyn-FO (Theorem 4.1).

The auxiliary structure maintains a spanning forest of the graph:

* ``E(x, y)`` — the (symmetric) input edge relation;
* ``F(x, y)`` — (x, y) is a forest edge (symmetric);
* ``PV(x, y, z)`` — x != y lie in the same tree and z lies on the unique
  forest path from x to y (endpoints included), the paper's arity-3
  auxiliary relation.

Abbreviations from the proof, as formula builders:

* ``P(x, y)``  :=  x = y | PV(x, y, x)          — "same tree";
* ``seg(x, u, z)``  :=  (x = u & z = u) | PV(x, u, z)
  — z on the (possibly empty) path from x to u.

**Insert(E, a, b).**  The paper's formulas, with the (implicit) guard
``~P(a, b)`` on the PV extension made explicit: the forest and PV change only
when (a, b) joins two distinct trees.

**Delete(E, a, b).**  If (a, b) is not a forest edge only E changes.
Otherwise the paper's *temporary relations* are computed first —

* ``TP(x, y, z)``: PV restricted to paths avoiding the severed edge, and
* ``NewE(x, y)``: the replacement edge, which the paper elides; per its
  footnote 2 we take the *lexicographically least* surviving edge running
  from the tree of ``a`` to the tree of ``b`` (deterministic)

— and the primed F and PV are then defined from them.  The temporaries are
pure abbreviations (inlining them recovers the single first-order formula of
the paper); see :func:`repro.dynfo.program.inline_temporaries`.
"""

from __future__ import annotations

from ..dynfo.program import DynFOProgram, Query, RelationDef, UpdateRule
from ..logic.dsl import Rel, c, eq, eq2, exists, forall, le, lt
from ..logic.structure import Structure
from ..logic.syntax import Formula, TermLike
from ..logic.vocabulary import Vocabulary

__all__ = [
    "make_reach_u_program",
    "INPUT_VOCABULARY",
    "AUX_VOCABULARY",
    "same_tree",
    "path_segment",
    "forest_insert_parts",
    "forest_delete_parts",
    "severed_path",
    "severed_same_tree",
    "severed_segment",
    "replacement_edge",
]

INPUT_VOCABULARY = Vocabulary.parse("E^2")
AUX_VOCABULARY = Vocabulary.parse("E^2, F^2, PV^3")

E = Rel("E")
F = Rel("F")
PV = Rel("PV")
# temporaries of the delete rule
TP = Rel("TP")  # the paper's T: PV with the severed edge removed
CandE = Rel("CandE")  # surviving edges crossing the severed cut
NewE = Rel("NewE")  # the replacement edge across the cut
_A, _B = c("a"), c("b")


def same_tree(x: TermLike, y: TermLike) -> Formula:
    """The paper's ``P(x, y)``: x and y lie in the same forest tree."""
    return eq(x, y) | PV(x, y, x)


def path_segment(x: TermLike, u: TermLike, z: TermLike) -> Formula:
    """z lies on the forest path from x to u (endpoints included; the
    degenerate x = u path is just {x})."""
    return (eq(x, u) & eq(z, u)) | PV(x, u, z)


# -- delete-side abbreviations (over the temporary TP) -------------------------


def severed_path(x: TermLike, y: TermLike, z: TermLike) -> Formula:
    """The temporary T of the proof, as an atom over the scratch relation."""
    return TP(x, y, z)


def severed_same_tree(x: TermLike, u: TermLike) -> Formula:
    return eq(x, u) | TP(x, u, x)


def severed_segment(x: TermLike, u: TermLike, z: TermLike) -> Formula:
    return (eq(x, u) & eq(z, u)) | TP(x, u, z)


def replacement_edge(x: TermLike, y: TermLike) -> Formula:
    return NewE(x, y)


def _tp_formula(x: str, y: str, z: str) -> Formula:
    """T(x,y,z) := PV(x,y,z) & ~(PV(x,y,a) & PV(x,y,b)) — paths that do not
    cross the severed forest edge (valid when F(a, b) held)."""
    return PV(x, y, z) & ~(PV(x, y, _A) & PV(x, y, _B))


def _candidate_formula(u: str, v: str) -> Formula:
    """A surviving edge from a's tree to b's tree (after severing)."""
    surviving = E(u, v) & ~eq2(u, v, _A, _B)
    return surviving & severed_same_tree(u, _A) & severed_same_tree(v, _B)


def _new_edge_formula(x: str, y: str) -> Formula:
    """The lexicographically least candidate edge (read from the
    materialized CandE temporary, keeping the minimality check cheap)."""
    minimal = forall(
        "u2 v2",
        CandE("u2", "v2") >> (lt(x, "u2") | (eq(x, "u2") & le(y, "v2"))),
    )
    return CandE(x, y) & minimal


def forest_insert_parts() -> tuple[tuple[RelationDef, ...], tuple[RelationDef, ...]]:
    """(temporaries, definitions) for ``Insert(E, a, b)``; shared with the
    bipartiteness and k-edge-connectivity programs."""
    x, y, z = "x", "y", "z"
    e_ins = E(x, y) | eq2(x, y, _A, _B)
    f_ins = F(x, y) | (eq2(x, y, _A, _B) & ~same_tree(_A, _B))
    pv_ins = PV(x, y, z) | (
        ~same_tree(_A, _B)
        & exists(
            "u v",
            eq2("u", "v", _A, _B)
            & same_tree(x, "u")
            & same_tree("v", y)
            & (path_segment(x, "u", z) | path_segment("v", y, z)),
        )
    )
    definitions = (
        RelationDef("E", (x, y), e_ins),
        RelationDef("F", (x, y), f_ins),
        RelationDef("PV", (x, y, z), pv_ins),
    )
    return (), definitions


def forest_delete_parts() -> tuple[tuple[RelationDef, ...], tuple[RelationDef, ...]]:
    """(temporaries, definitions) for ``Delete(E, a, b)``."""
    x, y, z = "x", "y", "z"
    temporaries = (
        RelationDef("TP", (x, y, z), _tp_formula(x, y, z)),
        RelationDef("CandE", ("u2", "v2"), _candidate_formula("u2", "v2")),
        RelationDef("NewE", (x, y), _new_edge_formula(x, y)),
    )

    severed = F(_A, _B)  # was the deleted edge a forest edge?
    e_del = E(x, y) & ~eq2(x, y, _A, _B)

    cross = NewE(x, y) | NewE(y, x)
    f_del = (~severed & F(x, y)) | (
        severed & ((F(x, y) & ~eq2(x, y, _A, _B)) | cross)
    )

    bridged = exists(
        "u v",
        (NewE("u", "v") | NewE("v", "u"))
        & severed_same_tree(x, "u")
        & severed_same_tree(y, "v")
        & (severed_segment(x, "u", z) | severed_segment(y, "v", z)),
    )
    pv_del = (~severed & PV(x, y, z)) | (severed & (TP(x, y, z) | bridged))

    definitions = (
        RelationDef("E", (x, y), e_del),
        RelationDef("F", (x, y), f_del),
        RelationDef("PV", (x, y, z), pv_del),
    )
    return temporaries, definitions


def make_reach_u_program() -> DynFOProgram:
    """Build the Dyn-FO program of Theorem 4.1."""
    x, y, z = "x", "y", "z"

    ins_temps, ins_defs = forest_insert_parts()
    del_temps, del_defs = forest_delete_parts()
    insert_rule = UpdateRule(
        params=("a", "b"), definitions=ins_defs, temporaries=ins_temps
    )
    delete_rule = UpdateRule(
        params=("a", "b"), definitions=del_defs, temporaries=del_temps
    )

    queries = {
        # boolean: is t reachable from s?
        "reach": Query(
            "reach", same_tree(c("s"), c("t")), frame=(), params=("s", "t")
        ),
        # the full connectivity relation (u != v in the same component)
        "connected": Query("connected", PV(x, y, x), frame=(x, y)),
        "forest": Query("forest", F(x, y), frame=(x, y)),
        "pv": Query("pv", PV(x, y, z), frame=(x, y, z)),
    }

    return DynFOProgram(
        name="reach_u",
        input_vocabulary=INPUT_VOCABULARY,
        aux_vocabulary=AUX_VOCABULARY,
        initial=lambda n: Structure.initial(AUX_VOCABULARY, n),
        on_insert={"E": insert_rule},
        on_delete={"E": delete_rule},
        queries=queries,
        symmetric_inputs=frozenset({"E"}),
        notes=(
            "Theorem 4.1.  Spanning-forest maintenance with arity-3 PV; "
            "deletions replace a severed forest edge by the lexicographically "
            "least crossing edge (footnote 2's ordering tie-break)."
        ),
    )
