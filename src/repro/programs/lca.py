"""Lowest common ancestors in directed forests are in Dyn-FO (Thm 4.5(4)).

Input ``sigma = <E^2>`` — edges point parent -> child, and updates are
promised to keep the graph a directed forest (each vertex at most one
parent, no cycles).  A forest is acyclic, so the path relation ``P`` is
maintained exactly as in Theorem 4.2.

The query is the paper's formula (with the path relation read reflexively,
so that every vertex is its own ancestor)::

    lca(x, y, w)  :=  anc(w, x) & anc(w, y)
                      & forall z. (anc(z, x) & anc(z, y)) -> anc(z, w)

where ``anc(z, x) := z = x | P(z, x)``.
"""

from __future__ import annotations

from ..dynfo.program import DynFOProgram, Query, RelationDef, UpdateRule
from ..logic.dsl import c, eq, forall
from ..logic.structure import Structure
from ..logic.syntax import Formula, TermLike
from ..logic.vocabulary import Vocabulary
from .reach_acyclic import (
    E,
    P,
    path_delete_formula,
    path_insert_formula,
    path_or_eq,
)

__all__ = ["make_lca_program", "INPUT_VOCABULARY", "AUX_VOCABULARY", "ancestor"]

INPUT_VOCABULARY = Vocabulary.parse("E^2")
AUX_VOCABULARY = Vocabulary.parse("E^2, P^2")

_A, _B = c("a"), c("b")


def ancestor(z: TermLike, x: TermLike) -> Formula:
    """z is an ancestor of x (reflexively)."""
    return path_or_eq(z, x)


def lca_formula(x: TermLike, y: TermLike, w: TermLike) -> Formula:
    """w is the lowest common ancestor of x and y."""
    common = ancestor(w, x) & ancestor(w, y)
    lowest = forall(
        "z", (ancestor("z", x) & ancestor("z", y)) >> ancestor("z", w)
    )
    return common & lowest


def make_lca_program() -> DynFOProgram:
    """Build the Dyn-FO program of Theorem 4.5(4)."""
    x, y = "x", "y"

    insert_rule = UpdateRule(
        params=("a", "b"),
        definitions=(
            RelationDef("E", (x, y), E(x, y) | (eq(x, _A) & eq(y, _B))),
            RelationDef("P", (x, y), path_insert_formula(x, y)),
        ),
    )
    delete_rule = UpdateRule(
        params=("a", "b"),
        definitions=(
            RelationDef("E", (x, y), E(x, y) & ~(eq(x, _A) & eq(y, _B))),
            RelationDef("P", (x, y), path_delete_formula(x, y)),
        ),
    )

    queries = {
        # the full LCA relation: (x, y, w) with w = lca(x, y)
        "lca": Query("lca", lca_formula(x, y, "w"), frame=(x, y, "w")),
        # pointwise: the lca of two given vertices (empty if disjoint trees)
        "lca_of": Query(
            "lca_of",
            lca_formula(c("u"), c("v"), "w"),
            frame=("w",),
            params=("u", "v"),
        ),
        "paths": Query("paths", P(x, y), frame=(x, y)),
    }

    return DynFOProgram(
        name="lca",
        input_vocabulary=INPUT_VOCABULARY,
        aux_vocabulary=AUX_VOCABULARY,
        initial=lambda n: Structure.initial(AUX_VOCABULARY, n),
        on_insert={"E": insert_rule},
        on_delete={"E": delete_rule},
        queries=queries,
        notes="Theorem 4.5(4); requires a directed-forest history.",
    )
