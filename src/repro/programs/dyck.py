"""The Dyck languages D^k are in Dyn-FO (Proposition 4.8).

The word lives on positions 0..n-1: input relations ``L1..Lk`` and
``R1..Rk`` mark left / right parentheses of each type; empty positions are
the empty string.  Following the paper's *level trick*, the auxiliary
structure maintains the prefix height

    h(q) = #left parens at positions <= q  -  #right parens at positions <= q

split into two relations because h can dip negative while the levels are
being edited:

* ``Hp(q, l)`` — h(q) = l  (l >= 0);
* ``Hn(q, j)`` — h(q) = -(j + 1).

Inserting a left parenthesis at p adds one to h(q) for every q >= p (and
symmetrically for right parentheses / deletions) — exactly the paper's
"insertion of a left parenthesis at position p causes a one to be added to
the level of each position q >= p", a first-order shift along the successor
relation.  Contract: at most one token per position, and fewer than n tokens
in total (so h never reaches n).

Membership (the paper's criterion): all levels nonnegative, the final level
is zero, and every left parenthesis has a matching right parenthesis of the
same type, where the match of l is the first r > l whose height returns to
h(l) - 1.
"""

from __future__ import annotations

from ..dynfo.program import DynFOProgram, Query, RelationDef, UpdateRule
from ..logic.dsl import Rel, c, eq, exists, forall, le, lt
from ..logic.structure import Structure
from ..logic.syntax import Formula, TermLike
from ..logic.vocabulary import Vocabulary

__all__ = ["make_dyck_program", "left_relation", "right_relation"]

Hp = Rel("Hp")
Hn = Rel("Hn")
_P = c("p")


def left_relation(ptype: int) -> str:
    return f"L{ptype}"


def right_relation(ptype: int) -> str:
    return f"R{ptype}"


def _succ(u: TermLike, v: TermLike) -> Formula:
    """v = u + 1 in the ordering."""
    return lt(u, v) & forall("ws", lt(u, "ws") >> le(v, "ws"))


# -- height shifts --------------------------------------------------------------


def _height_up() -> tuple[RelationDef, RelationDef]:
    """(Hp', Hn') when h(q) += 1 for q >= p."""
    q, l, j = "q", "l", "j"
    hp = (lt(q, _P) & Hp(q, l)) | (
        le(_P, q)
        & (
            exists("l0", Hp(q, "l0") & _succ("l0", l))
            | (Hn(q, 0) & eq(l, 0))
        )
    )
    hn = (lt(q, _P) & Hn(q, j)) | (
        le(_P, q) & exists("j0", Hn(q, "j0") & _succ(j, "j0"))
    )
    return RelationDef("Hp", (q, l), hp), RelationDef("Hn", (q, j), hn)


def _height_down() -> tuple[RelationDef, RelationDef]:
    """(Hp', Hn') when h(q) -= 1 for q >= p."""
    q, l, j = "q", "l", "j"
    hp = (lt(q, _P) & Hp(q, l)) | (
        le(_P, q) & exists("l0", Hp(q, "l0") & _succ(l, "l0"))
    )
    hn = (lt(q, _P) & Hn(q, j)) | (
        le(_P, q)
        & (
            exists("j0", Hn(q, "j0") & _succ("j0", j))
            | (Hp(q, 0) & eq(j, 0))
        )
    )
    return RelationDef("Hp", (q, l), hp), RelationDef("Hn", (q, j), hn)


def make_dyck_program(k: int) -> DynFOProgram:
    """Build the Dyn-FO program of Proposition 4.8 for D^k."""
    if k < 1:
        raise ValueError("k must be >= 1")
    types = range(1, k + 1)
    sym_names = [left_relation(t) for t in types] + [
        right_relation(t) for t in types
    ]
    input_vocab = Vocabulary.make(relations=[(s, 1) for s in sym_names])
    aux_vocab = input_vocab.extend(relations=[("Hp", 2), ("Hn", 2)])

    def initial(n: int) -> Structure:
        structure = Structure.initial(aux_vocab, n)
        structure.set_relation("Hp", {(q, 0) for q in range(n)})
        return structure

    on_insert: dict[str, UpdateRule] = {}
    on_delete: dict[str, UpdateRule] = {}
    for name in sym_names:
        sym = Rel(name)
        is_left = name.startswith("L")
        own_ins = RelationDef(name, ("x",), sym("x") | eq("x", _P))
        own_del = RelationDef(name, ("x",), sym("x") & ~eq("x", _P))
        up, down = _height_up(), _height_down()
        on_insert[name] = UpdateRule(
            params=("p",), definitions=(own_ins,) + (up if is_left else down)
        )
        on_delete[name] = UpdateRule(
            params=("p",), definitions=(own_del,) + (down if is_left else up)
        )

    # -- the membership sentence --------------------------------------------

    def height_ge(q1: TermLike, q2: TermLike) -> Formula:
        """h(q1) >= h(q2)."""
        return (
            exists("ha hb", Hp(q1, "ha") & Hp(q2, "hb") & le("hb", "ha"))
            | exists("ha hj", Hp(q1, "ha") & Hn(q2, "hj"))
            | exists("hi hj", Hn(q1, "hi") & Hn(q2, "hj") & le("hi", "hj"))
        )

    def height_drop(l: TermLike, r: TermLike) -> Formula:
        """h(r) = h(l) - 1."""
        return (
            exists("da db", Hp(l, "da") & Hp(r, "db") & _succ("db", "da"))
            | (Hp(l, 0) & Hn(r, 0))
            | exists("di dj", Hn(l, "di") & Hn(r, "dj") & _succ("di", "dj"))
        )

    def match(l: TermLike, r: TermLike) -> Formula:
        first_return = forall(
            "mm", (le(l, "mm") & lt("mm", r)) >> height_ge("mm", l)
        )
        return lt(l, r) & height_drop(l, r) & first_return

    nonneg = forall("qn", ~exists("jn", Hn("qn", "jn")))
    balanced = Hp(c("max"), 0)
    typed_matches = []
    for t in types:
        left, right = Rel(left_relation(t)), Rel(right_relation(t))
        typed_matches.append(
            forall(
                "lp", left("lp") >> exists("rp", right("rp") & match("lp", "rp"))
            )
        )
    member = nonneg & balanced
    for clause in typed_matches:
        member = member & clause

    queries = {
        "member": Query("member", member),
        "height": Query("height", Hp("q", "l"), frame=("q", "l")),
        "height_negative": Query(
            "height_negative", Hn("q", "j"), frame=("q", "j")
        ),
    }

    return DynFOProgram(
        name=f"dyck_{k}",
        input_vocabulary=input_vocab,
        aux_vocabulary=aux_vocab,
        initial=initial,
        on_insert=on_insert,
        on_delete=on_delete,
        queries=queries,
        notes=(
            "Proposition 4.8: prefix heights shifted in FO; membership via "
            "the level trick.  Needs < n tokens in total."
        ),
    )
