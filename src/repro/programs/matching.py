"""Maximal matching is in Dyn-FO (Theorem 4.5(3)).

The auxiliary structure is just the (symmetric) relation ``Match``.  The
answer is not unique — any maximal matching is acceptable — so verification
checks validity + maximality rather than set equality.

* ``Insert(E, a, b)``: add (a, b) to the matching iff both endpoints are
  currently free (and a != b)::

      Match'(x, y) := Match(x, y) | (Eq(x, y, a, b) & a != b & ~MP(a) & ~MP(b))

  with ``MP(x) := exists z. Match(x, z)``.

* ``Delete(E, a, b)``: if (a, b) was matched, both endpoints become free and
  are greedily re-matched — ``a`` takes its least free neighbor (if any),
  then ``b`` takes its least free neighbor not claimed by ``a``.  Both picks
  are written as one simultaneous first-order update.
"""

from __future__ import annotations

from ..dynfo.program import DynFOProgram, Query, RelationDef, UpdateRule
from ..logic.dsl import Rel, c, eq, eq2, exists, forall, le, neq
from ..logic.structure import Structure
from ..logic.syntax import Formula, TermLike
from ..logic.vocabulary import Vocabulary

__all__ = ["make_matching_program", "INPUT_VOCABULARY", "AUX_VOCABULARY"]

INPUT_VOCABULARY = Vocabulary.parse("E^2")
AUX_VOCABULARY = Vocabulary.parse("E^2, Match^2")

E = Rel("E")
Match = Rel("Match")
_A, _B = c("a"), c("b")


def _matched(x: TermLike) -> Formula:
    """The paper's ``MP(x)``: x is matched."""
    return exists("zm", Match(x, "zm"))


def _free_after_unmatch(u: TermLike) -> Formula:
    """u is unmatched once the pair (a, b) is removed from the matching."""
    return ~exists("zf", Match(u, "zf") & ~eq2(u, "zf", _A, _B))


def _survives(x: TermLike, y: TermLike) -> Formula:
    """Matching edge that outlives the deletion of graph edge (a, b)."""
    return Match(x, y) & ~eq2(x, y, _A, _B)


def _pick_a(u: TermLike) -> Formula:
    """u is the least free neighbor of ``a`` after the unmatch (if any)."""
    candidate = (
        E(_A, u) & ~eq2(_A, u, _A, _B) & neq(u, _A) & _free_after_unmatch(u)
    )
    minimal = forall(
        "w",
        (E(_A, "w") & ~eq2(_A, "w", _A, _B) & neq("w", _A) & _free_after_unmatch("w"))
        >> le(u, "w"),
    )
    return candidate & minimal


def _pick_b(v: TermLike) -> Formula:
    """v is the least free neighbor of ``b`` not claimed by ``a``'s pick."""
    candidate = (
        E(_B, v)
        & ~eq2(_B, v, _A, _B)
        & neq(v, _B)
        & _free_after_unmatch(v)
        & ~_pick_a(v)
        & neq(v, _A)  # `a` itself is being re-matched or left to its pick
    )
    minimal = forall(
        "w2",
        (
            E(_B, "w2")
            & ~eq2(_B, "w2", _A, _B)
            & neq("w2", _B)
            & _free_after_unmatch("w2")
            & ~_pick_a("w2")
            & neq("w2", _A)
        )
        >> le(v, "w2"),
    )
    return candidate & minimal


def make_matching_program() -> DynFOProgram:
    """Build the Dyn-FO program of Theorem 4.5(3)."""
    x, y = "x", "y"

    # ---- Insert(E, a, b) ----
    e_ins = E(x, y) | eq2(x, y, _A, _B)
    match_ins = Match(x, y) | (
        eq2(x, y, _A, _B) & neq(_A, _B) & ~_matched(_A) & ~_matched(_B)
    )
    insert_rule = UpdateRule(
        params=("a", "b"),
        definitions=(
            RelationDef("E", (x, y), e_ins),
            RelationDef("Match", (x, y), match_ins),
        ),
    )

    # ---- Delete(E, a, b) ----
    e_del = E(x, y) & ~eq2(x, y, _A, _B)
    was_matched = Match(_A, _B)
    repair = (
        (eq(x, _A) & _pick_a(y))
        | (eq(y, _A) & _pick_a(x))
        | (eq(x, _B) & _pick_b(y))
        | (eq(y, _B) & _pick_b(x))
    )
    match_del = (~was_matched & Match(x, y)) | (
        was_matched & (_survives(x, y) | repair)
    )
    delete_rule = UpdateRule(
        params=("a", "b"),
        definitions=(
            RelationDef("E", (x, y), e_del),
            RelationDef("Match", (x, y), match_del),
        ),
    )

    queries = {
        "matching": Query("matching", Match(x, y), frame=(x, y)),
        "is_matched": Query(
            "is_matched", _matched(c("v")), frame=(), params=("v",)
        ),
    }

    return DynFOProgram(
        name="maximal_matching",
        input_vocabulary=INPUT_VOCABULARY,
        aux_vocabulary=AUX_VOCABULARY,
        initial=lambda n: Structure.initial(AUX_VOCABULARY, n),
        on_insert={"E": insert_rule},
        on_delete={"E": delete_rule},
        queries=queries,
        symmetric_inputs=frozenset({"E"}),
        notes=(
            "Theorem 4.5(3).  The maintained matching is maximal but not "
            "canonical; the verification checks validity and maximality."
        ),
    )
