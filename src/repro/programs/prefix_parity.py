"""Dynamic prefix parity — the [FS89] lower-bound problem, in Dyn-FO.

The paper cites Fredman and Saks' Omega(log n / log log n) cell-probe lower
bound for *dynamic prefix parity*: maintain a bit string under flips and
answer "is the number of ones at positions <= p odd?".  The lower bound
lives in the sequential cell-probe model; in the paper's parallel model the
problem is comfortably first-order — a nice illustration of how the two
dynamic models diverge.

Auxiliary relation ``Podd(p)``: the prefix [0..p] contains an odd number of
ones.  Setting bit ``a`` flips ``Podd(p)`` for every p >= a (one FO step,
the same shift idiom as the Dyck levels of Proposition 4.8); clearing flips
them back.  Queries: ``prefix_odd(p)`` and total ``odd`` (= Podd(max)).
"""

from __future__ import annotations

from ..dynfo.program import DynFOProgram, Query, RelationDef, UpdateRule
from ..logic.dsl import Rel, c, eq, le, lt
from ..logic.structure import Structure
from ..logic.vocabulary import Vocabulary

__all__ = ["make_prefix_parity_program", "INPUT_VOCABULARY", "AUX_VOCABULARY"]

INPUT_VOCABULARY = Vocabulary.parse("M^1")
AUX_VOCABULARY = Vocabulary.parse("M^1, Podd^1")

M = Rel("M")
Podd = Rel("Podd")
_A = c("a")


def _flip_from(p: str) -> "object":
    """Podd'(p) after all prefixes from position a onward flip parity."""
    return (lt(p, _A) & Podd(p)) | (le(_A, p) & ~Podd(p))


def make_prefix_parity_program() -> DynFOProgram:
    """Build the Dyn-FO program for dynamic prefix parity."""
    p = "p"
    insert_rule = UpdateRule(
        params=("a",),
        definitions=(
            RelationDef("M", (p,), M(p) | eq(p, _A)),
            # a fresh one at position a flips every prefix at or beyond a
            RelationDef(
                "Podd", (p,), (M(_A) & Podd(p)) | (~M(_A) & _flip_from(p))
            ),
        ),
    )
    delete_rule = UpdateRule(
        params=("a",),
        definitions=(
            RelationDef("M", (p,), M(p) & ~eq(p, _A)),
            RelationDef(
                "Podd", (p,), (~M(_A) & Podd(p)) | (M(_A) & _flip_from(p))
            ),
        ),
    )
    queries = {
        "prefix_odd": Query(
            "prefix_odd", Podd(c("p0")), frame=(), params=("p0",)
        ),
        "odd": Query("odd", Podd(c("max"))),
        "prefixes": Query("prefixes", Podd(p), frame=(p,)),
    }
    return DynFOProgram(
        name="prefix_parity",
        input_vocabulary=INPUT_VOCABULARY,
        aux_vocabulary=AUX_VOCABULARY,
        initial=lambda n: Structure.initial(AUX_VOCABULARY, n),
        on_insert={"M": insert_rule},
        on_delete={"M": delete_rule},
        queries=queries,
        notes=(
            "The [FS89] cell-probe lower-bound problem; first-order (hence "
            "CRAM[1] per update) in the paper's parallel dynamic model."
        ),
    )
