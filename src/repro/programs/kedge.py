"""k-edge connectivity, for fixed k, is in Dyn-FO (Theorem 4.5(2)).

The auxiliary structure is exactly the spanning forest of Theorem 4.1 —
insertions and deletions are handled by the same rules.  The *query* is
where the theorem earns its keep: "is the graph k-edge connected?" is the
first-order sentence obtained by universally quantifying over k-1 edges and
composing the single-deletion update formula k-1 times::

    forall a1 b1 .. a_{k-1} b_{k-1} .
      forall x y . (active(x) & active(y) & x != y) -> connected_{k-1}(x, y)

where ``connected_d`` reads the PV relation of the d-fold composed delete
rule and ``active`` means "touches an edge" in the *current* graph.  By
Menger's theorem this matches "every active pair is joined by >= k
edge-disjoint paths", which is what the max-flow oracle checks.

``k_edge_connectivity_sentence`` builds that single FO sentence (useful for
the depth/size metrics of experiment E16).  Because its 2(k-1) outer
universal variables make one-shot evaluation expensive, ``KEdgeAnalyzer``
evaluates it the way a CRAM would schedule it: the outer block is enumerated
(in parallel, on the paper's model) over d-tuples of current edges, each
instance being the composed formula with the deletion parameters bound as
constants.  Both paths are pure first-order evaluation.
"""

from __future__ import annotations

import itertools

from ..dynfo.compose import compose_rule
from ..dynfo.engine import DynFOEngine
from ..dynfo.program import DynFOProgram, Query, UpdateRule, inline_temporaries
from ..logic.dsl import Rel, eq, exists, forall, neq
from ..logic.structure import Structure
from ..logic.syntax import Formula, Var
from ..logic.transform import substitute_constants
from .reach_u import (
    AUX_VOCABULARY,
    E,
    INPUT_VOCABULARY,
    forest_delete_parts,
    forest_insert_parts,
)

__all__ = [
    "make_kedge_program",
    "k_edge_connectivity_sentence",
    "KEdgeAnalyzer",
]


def _active(x: str, edge_formula: Formula | None = None) -> Formula:
    return exists("wact", E(x, "wact"))


def _composed_connectivity(deletions: int) -> Formula:
    """``connected_d(x, y)`` — x, y still connected after the d hypothetical
    deletions with parameters a1..ad, b1..bd (as symbolic constants)."""
    del_temps, del_defs = forest_delete_parts()
    delete_rule = inline_temporaries(
        UpdateRule(params=("a", "b"), definitions=del_defs, temporaries=del_temps)
    )
    composed = compose_rule(delete_rule, deletions)
    if not composed:  # d = 0: read PV directly
        return eq("x", "y") | Rel("PV")("x", "y", "x")
    pv_frame, pv_formula = composed["PV"]
    # instantiate PV_d(x, y, x)
    from ..logic.transform import standardize_apart, substitute

    body = standardize_apart(pv_formula, avoid=("x", "y"))
    mapping = dict(zip(pv_frame, (Var("x"), Var("y"), Var("x"))))
    return eq("x", "y") | substitute(body, mapping)


def k_edge_connectivity_sentence(k: int) -> Formula:
    """The single FO sentence "the graph is k-edge connected" (k >= 1)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    deletions = k - 1
    connected = _composed_connectivity(deletions)
    body = (
        (_active("x") & _active("y") & neq("x", "y")) >> connected
    )
    sentence: Formula = forall("x y", body)
    for level in range(deletions, 0, -1):
        # turn the level's parameter constants into quantified variables
        sentence = substitute_constants(
            sentence,
            {f"a{level}": Var(f"qa{level}"), f"b{level}": Var(f"qb{level}")},
        )
        sentence = forall((f"qa{level}", f"qb{level}"), sentence)
    return sentence


def make_kedge_program() -> DynFOProgram:
    """The maintenance side of Theorem 4.5(2): identical to Theorem 4.1."""
    ins_temps, ins_defs = forest_insert_parts()
    del_temps, del_defs = forest_delete_parts()
    insert_rule = UpdateRule(
        params=("a", "b"), definitions=ins_defs, temporaries=ins_temps
    )
    delete_rule = UpdateRule(
        params=("a", "b"), definitions=del_defs, temporaries=del_temps
    )
    x, y = "x", "y"
    queries = {
        "connected": Query("connected", Rel("PV")(x, y, x), frame=(x, y)),
        "forest": Query("forest", Rel("F")(x, y), frame=(x, y)),
    }
    return DynFOProgram(
        name="k_edge_connectivity",
        input_vocabulary=INPUT_VOCABULARY,
        aux_vocabulary=AUX_VOCABULARY,
        initial=lambda n: Structure.initial(AUX_VOCABULARY, n),
        on_insert={"E": insert_rule},
        on_delete={"E": delete_rule},
        queries=queries,
        symmetric_inputs=frozenset({"E"}),
        notes="Theorem 4.5(2): forest maintenance + composed-deletion query.",
    )


class KEdgeAnalyzer:
    """Evaluates the k-edge-connectivity query against a running engine.

    The outer universal block over deleted edges is enumerated explicitly
    (each instance is one evaluation of the composed first-order formula
    with the parameters bound); a CRAM runs these instances in parallel,
    which is why the whole query is a single constant-time parallel step.
    """

    def __init__(self, engine: DynFOEngine, max_deletions: int = 2) -> None:
        self.engine = engine
        self._per_deletions: dict[int, Formula] = {}
        for d in range(max_deletions + 1):
            connected = _composed_connectivity(d)
            self._per_deletions[d] = forall(
                "x y",
                (_active("x") & _active("y") & neq("x", "y")) >> connected,
            )

    def _instance_holds(self, deletions: int, params: dict[str, int]) -> bool:
        from ..logic.relational import RelationalEvaluator

        evaluator = RelationalEvaluator(self.engine.structure, params)
        return evaluator.truth(self._per_deletions[deletions])

    def is_k_edge_connected(self, k: int) -> bool:
        """k >= 1.  Enumerates d = k-1 deletions over current edges (with
        repetition, covering all smaller deletion sets)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        deletions = k - 1
        if deletions not in self._per_deletions:
            raise ValueError(
                f"analyzer was built for up to {max(self._per_deletions)} deletions"
            )
        edges = sorted(
            {
                (min(u, v), max(u, v))
                for (u, v) in self.engine.structure.relation_view("E")
                if u != v
            }
        )
        if deletions == 0:
            return self._instance_holds(0, {})
        for combo in itertools.combinations_with_replacement(edges, deletions):
            params: dict[str, int] = {}
            for i, (u, v) in enumerate(combo, start=1):
                params[f"a{i}"] = u
                params[f"b{i}"] = v
            if not self._instance_holds(deletions, params):
                return False
        return True
