"""Multiplication is in Dyn-FO (Proposition 4.7).

Two numbers are stored as unary bit relations ``X`` and ``Y`` over the
positions 0..n-1; the auxiliary relation ``Pr`` holds the bits of the
product X * Y.  Contract: callers only set bits at positions < n // 2, so
shifted summands and the product itself fit in n bits.

Setting bit ``p`` of X to 1 adds ``Y << p`` to the product; clearing it
subtracts the same summand — the paper's two cases, realized as the classic
FO carry / borrow lookahead formulas:

    carry(k)  := exists j < k. (A(j) & B(j) & forall m in (j,k). A(m) | B(m))
    borrow(k) := exists j < k. (~A(j) & B(j) & forall m in (j,k). ~(A(m) & ~B(m)))

with the sum / difference bit ``A(k) xor B(k) xor carry/borrow(k)``.

The shifted summand needs position arithmetic: ``sh(k) := exists j. Y(j) &
j + p = k``.  Addition of positions is famously FO-definable from BIT (see
:func:`plus_formula`, which spells the carry-lookahead definition out over
BIT); since it is therefore part of the FO-computable initial structure, we
precompute it once as the auxiliary relation ``PlusR(x, y, z)`` ("x + y =
z") instead of re-deriving it per update — the tests check ``PlusR`` against
the pure-BIT formula.  This keeps the program inside plain Dyn-FO: the
initial structure remains first-order definable (Definition 3.1, cond. 4).
"""

from __future__ import annotations

from ..dynfo.program import DynFOProgram, Query, RelationDef, UpdateRule
from ..logic.dsl import Rel, bit, c, eq, exists, forall, lt
from ..logic.structure import Structure
from ..logic.syntax import Formula, Iff, Not, TermLike
from ..logic.vocabulary import Vocabulary

__all__ = ["make_multiplication_program", "plus_formula", "INPUT_VOCABULARY", "AUX_VOCABULARY"]

INPUT_VOCABULARY = Vocabulary.parse("X^1, Y^1")
AUX_VOCABULARY = Vocabulary.parse("X^1, Y^1, Pr^1, PlusR^3")

X = Rel("X")
Y = Rel("Y")
Pr = Rel("Pr")
PlusR = Rel("PlusR")
Sh = Rel("Sh")  # temporary: the shifted summand
CB = Rel("CB")  # temporary: carry (on insert) / borrow (on delete) bits
_P = c("p")


def _xor(a: Formula, b: Formula) -> Formula:
    return Not(Iff(a, b))


def plus_formula(x: str = "x", y: str = "y", z: str = "z") -> Formula:
    """``x + y = z`` defined purely from BIT and < (carry lookahead over the
    binary encodings) — the first-order definition justifying PlusR."""
    def carry(k: TermLike) -> Formula:
        return exists(
            "jc",
            lt("jc", k)
            & bit(x, "jc")
            & bit(y, "jc")
            & forall(
                "mc",
                (lt("jc", "mc") & lt("mc", k)) >> (bit(x, "mc") | bit(y, "mc")),
            ),
        )

    return forall(
        "kb", Iff(bit(z, "kb"), _xor(_xor(bit(x, "kb"), bit(y, "kb")), carry("kb")))
    )


def _initial(n: int) -> Structure:
    structure = Structure.initial(AUX_VOCABULARY, n)
    structure.set_relation(
        "PlusR",
        {
            (x, y, x + y)
            for x in range(n)
            for y in range(n)
            if x + y < n
        },
    )
    return structure


def _shift_def(source: Rel) -> RelationDef:
    """Sh(k) := bit k of (source << p)."""
    return RelationDef(
        "Sh", ("k",), exists("js", source("js") & PlusR("js", _P, "k"))
    )


def _carry_def() -> RelationDef:
    """CB(k) := carry into position k of Pr + Sh."""
    body = exists(
        "j",
        lt("j", "k")
        & Pr("j")
        & Sh("j")
        & forall("m", (lt("j", "m") & lt("m", "k")) >> (Pr("m") | Sh("m"))),
    )
    return RelationDef("CB", ("k",), body)


def _borrow_def() -> RelationDef:
    """CB(k) := borrow into position k of Pr - Sh (Pr >= Sh always holds)."""
    body = exists(
        "j",
        lt("j", "k")
        & ~Pr("j")
        & Sh("j")
        & forall(
            "m", (lt("j", "m") & lt("m", "k")) >> ~(Pr("m") & ~Sh("m"))
        ),
    )
    return RelationDef("CB", ("k",), body)


def _rules_for(source_name: str, other: Rel) -> tuple[UpdateRule, UpdateRule]:
    """(insert, delete) rules for setting/clearing a bit of ``source_name``;
    ``other`` is the factor whose shifted copy is added / subtracted."""
    source = Rel(source_name)
    k = "k"
    changed_sum = _xor(_xor(Pr(k), Sh(k)), CB(k))

    bits_ins = RelationDef(source_name, ("x2",), source("x2") | eq("x2", _P))
    pr_ins = RelationDef(
        "Pr", (k,), (source(_P) & Pr(k)) | (~source(_P) & changed_sum)
    )
    insert_rule = UpdateRule(
        params=("p",),
        temporaries=(_shift_def(other), _carry_def()),
        definitions=(bits_ins, pr_ins),
    )

    bits_del = RelationDef(source_name, ("x2",), source("x2") & ~eq("x2", _P))
    pr_del = RelationDef(
        "Pr", (k,), (~source(_P) & Pr(k)) | (source(_P) & changed_sum)
    )
    delete_rule = UpdateRule(
        params=("p",),
        temporaries=(_shift_def(other), _borrow_def()),
        definitions=(bits_del, pr_del),
    )
    return insert_rule, delete_rule


def make_multiplication_program() -> DynFOProgram:
    """Build the Dyn-FO program of Proposition 4.7."""
    x_ins, x_del = _rules_for("X", Y)
    y_ins, y_del = _rules_for("Y", X)
    queries = {
        "product_bits": Query("product_bits", Pr("k"), frame=("k",)),
        "x_bits": Query("x_bits", X("k"), frame=("k",)),
        "y_bits": Query("y_bits", Y("k"), frame=("k",)),
    }
    return DynFOProgram(
        name="multiplication",
        input_vocabulary=INPUT_VOCABULARY,
        aux_vocabulary=AUX_VOCABULARY,
        initial=_initial,
        on_insert={"X": x_ins, "Y": y_ins},
        on_delete={"X": x_del, "Y": y_del},
        queries=queries,
        notes=(
            "Proposition 4.7.  Bit positions must stay below n // 2 so "
            "summands fit; PlusR is the FO-definable addition table."
        ),
    )
