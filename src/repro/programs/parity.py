"""PARITY is in Dyn-FO (Example 3.2 of the paper).

Input vocabulary ``sigma = <M^1>``: a binary string of length ``n``, with
``M(i)`` meaning bit ``i`` is one.  Auxiliary vocabulary ``tau = <M^1, b^0>``
where the nullary relation ``b`` (the paper's boolean constant) holds iff the
string has an odd number of ones.

The update formulas are the paper's verbatim:

* ``ins(M, a)``: ``M'(x) := M(x) | x = a`` and
  ``b' := (b & M(a)) | (~b & ~M(a))`` — the bit toggles exactly when the
  request actually changes the string.
* ``del(M, a)``: ``M'(x) := M(x) & x != a`` and
  ``b' := (b & ~M(a)) | (~b & M(a))``.
"""

from __future__ import annotations

from ..dynfo.program import DynFOProgram, Query, RelationDef, UpdateRule
from ..logic.dsl import Rel, c, eq, neq
from ..logic.structure import Structure
from ..logic.vocabulary import Vocabulary

__all__ = ["make_parity_program", "INPUT_VOCABULARY"]

INPUT_VOCABULARY = Vocabulary.parse("M^1")
AUX_VOCABULARY = Vocabulary.parse("M^1, b^0")

_M = Rel("M")
_B = Rel("b")
_A = c("a")


def make_parity_program() -> DynFOProgram:
    """Build the Dyn-FO program for PARITY."""
    x = "x"
    insert_rule = UpdateRule(
        params=("a",),
        definitions=(
            RelationDef("M", (x,), _M(x) | eq(x, _A)),
            RelationDef("b", (), (_B() & _M(_A)) | (~_B() & ~_M(_A))),
        ),
    )
    delete_rule = UpdateRule(
        params=("a",),
        definitions=(
            RelationDef("M", (x,), _M(x) & neq(x, _A)),
            RelationDef("b", (), (_B() & ~_M(_A)) | (~_B() & _M(_A))),
        ),
    )
    return DynFOProgram(
        name="parity",
        input_vocabulary=INPUT_VOCABULARY,
        aux_vocabulary=AUX_VOCABULARY,
        initial=lambda n: Structure.initial(AUX_VOCABULARY, n),
        on_insert={"M": insert_rule},
        on_delete={"M": delete_rule},
        queries={"odd": Query("odd", _B())},
        notes="Example 3.2; PARITY is not in static FO [A83, FSS84].",
    )
