"""Transitive reduction of DAGs is in memoryless Dyn-FO (Corollary 4.3).

For an acyclic graph the transitive reduction is unique:
``TR = {(u, v) in E : no directed path u -> v of length >= 2}``.
The auxiliary structure carries the path relation ``P`` (maintained exactly
as in Theorem 4.2) together with ``TR`` itself.

The paper's formulas use the convention that the path relation is read
reflexively at the update endpoints; we spell those endpoint cases out with
``refl(x, y) := x = y | P(x, y)`` and exclude the degenerate "path" that is
just the touched edge itself:

* ``Insert(E, a, b)``: if P(a, b) already holds nothing changes (the new
  edge is born redundant); otherwise (a, b) joins TR and every TR edge
  (x, y) != (a, b) with refl(x, a) and refl(b, y) becomes redundant.
* ``Delete(E, a, b)``: a redundant edge (x, y) whose length->=2 witnesses all
  crossed (a, b) is promoted into TR; the witness-free condition is the
  negated detour of Theorem 4.2 restricted to (u, v) != (x, y) so that the
  edge (x, y) itself does not count as its own 2+ path.

Memoryless: TR and P are determined by the current graph alone.
"""

from __future__ import annotations

from ..dynfo.program import DynFOProgram, Query, RelationDef, UpdateRule
from ..logic.dsl import Rel, c, eq, exists
from ..logic.structure import Structure
from ..logic.vocabulary import Vocabulary
from .reach_acyclic import (
    E,
    P,
    path_delete_formula,
    path_insert_formula,
    path_or_eq,
)

__all__ = ["make_transitive_reduction_program", "INPUT_VOCABULARY", "AUX_VOCABULARY"]

INPUT_VOCABULARY = Vocabulary.parse("E^2")
AUX_VOCABULARY = Vocabulary.parse("E^2, P^2, TR^2")

TR = Rel("TR")
_A, _B = c("a"), c("b")


def make_transitive_reduction_program() -> DynFOProgram:
    """Build the Dyn-FO program of Corollary 4.3."""
    x, y = "x", "y"

    # ---- Insert(E, a, b) ----
    e_ins = E(x, y) | (eq(x, _A) & eq(y, _B))
    fresh = ~P(_A, _B)  # the new edge is essential only if no prior path
    made_redundant = (
        path_or_eq(x, _A) & path_or_eq(_B, y) & ~(eq(x, _A) & eq(y, _B))
    )
    tr_ins = (fresh & eq(x, _A) & eq(y, _B)) | (
        TR(x, y) & ~(fresh & made_redundant)
    )
    insert_rule = UpdateRule(
        params=("a", "b"),
        definitions=(
            RelationDef("E", (x, y), e_ins),
            RelationDef("P", (x, y), path_insert_formula(x, y)),
            RelationDef("TR", (x, y), tr_ins),
        ),
    )

    # ---- Delete(E, a, b) ----
    e_del = E(x, y) & ~(eq(x, _A) & eq(y, _B))
    # a surviving length >= 2 path x -> y (detour of Thm 4.2, excluding the
    # edge (x, y) itself)
    long_detour = exists(
        "u v",
        path_or_eq(x, "u")
        & path_or_eq("u", _A)
        & E("u", "v")
        & ~(eq("u", _A) & eq("v", _B))
        & ~(eq("u", x) & eq("v", y))
        & ~path_or_eq("v", _A)
        & path_or_eq("v", y),
    )
    promoted = (
        E(x, y)
        & ~(eq(x, _A) & eq(y, _B))
        & ~TR(x, y)
        & path_or_eq(x, _A)
        & path_or_eq(_B, y)
        & ~long_detour
    )
    tr_del = (TR(x, y) & ~(eq(x, _A) & eq(y, _B))) | promoted
    delete_rule = UpdateRule(
        params=("a", "b"),
        definitions=(
            RelationDef("E", (x, y), e_del),
            RelationDef("P", (x, y), path_delete_formula(x, y)),
            RelationDef("TR", (x, y), tr_del),
        ),
    )

    queries = {
        "tr": Query("tr", TR(x, y), frame=(x, y)),
        "paths": Query("paths", P(x, y), frame=(x, y)),
    }

    return DynFOProgram(
        name="transitive_reduction",
        input_vocabulary=INPUT_VOCABULARY,
        aux_vocabulary=AUX_VOCABULARY,
        initial=lambda n: Structure.initial(AUX_VOCABULARY, n),
        on_insert={"E": insert_rule},
        on_delete={"E": delete_rule},
        queries=queries,
        notes="Corollary 4.3; memoryless, requires acyclic history.",
    )
