"""REACH restricted to acyclic graphs is in Dyn-FO (Theorem 4.2, [DS93]).

Input ``sigma = <E^2>`` — a *directed* graph whose updates are promised to
keep it acyclic for its entire history (the paper's REACH(acyclic)).  The
auxiliary structure maintains the path relation ``P(x, y)``: there is a
nonempty directed path from x to y.

The update formulas are the paper's verbatim:

* ``Insert(E, a, b)``::

      P'(x, y) := P(x, y) | ((P(x, a) | x = a) & (P(b, y) | b = y))

  (the paper writes ``P(x, a) & P(b, y)`` with the convention that ``P`` is
  reflexive; we keep ``P`` irreflexive — acyclicity makes P(v, v) impossible
  — so the endpoint cases are spelled out).

* ``Delete(E, a, b)``: a surviving path from x to y either avoided (a, b),
  witnessed by the last vertex u on it from which a is reachable and its
  successor v::

      P'(x,y) := P(x,y) & [ ~via(x,y,a,b)
                 | exists u v. pre(x,u) & reach_a(u) & E(u,v) & ~reach_a(v)
                              & post(v,y) & ~(u = a & v = b) ]

  where ``via`` says every x-y path may cross (a, b), ``pre``/``post`` allow
  the degenerate endpoints, and ``reach_a(u) := u = a | P(u, a)``.
"""

from __future__ import annotations

from ..dynfo.program import DynFOProgram, Query, RelationDef, UpdateRule
from ..logic.dsl import Rel, c, eq, exists
from ..logic.structure import Structure
from ..logic.syntax import Formula, TermLike
from ..logic.vocabulary import Vocabulary

__all__ = [
    "make_reach_acyclic_program",
    "INPUT_VOCABULARY",
    "AUX_VOCABULARY",
    "path_or_eq",
    "path_insert_formula",
    "path_delete_formula",
]

INPUT_VOCABULARY = Vocabulary.parse("E^2")
AUX_VOCABULARY = Vocabulary.parse("E^2, P^2")

E = Rel("E")
P = Rel("P")
_A, _B = c("a"), c("b")


def path_or_eq(x: TermLike, y: TermLike) -> Formula:
    """Reflexive path relation: x = y or a nonempty path x -> y."""
    return eq(x, y) | P(x, y)


def path_insert_formula(x: str = "x", y: str = "y") -> Formula:
    """``P'`` after ``Insert(E, a, b)`` (free variables x, y; params a, b)."""
    return P(x, y) | (path_or_eq(x, _A) & path_or_eq(_B, y))


def path_delete_formula(x: str = "x", y: str = "y") -> Formula:
    """``P'`` after ``Delete(E, a, b)``.

    u is the last vertex on a surviving x -> y path from which a is
    reachable; v its successor, past a's basin, with (u, v) != (a, b).
    """
    detour = exists(
        "u v",
        path_or_eq(x, "u")
        & path_or_eq("u", _A)
        & E("u", "v")
        & ~(eq("u", _A) & eq("v", _B))
        & ~path_or_eq("v", _A)
        & path_or_eq("v", y),
    )
    return P(x, y) & (~(path_or_eq(x, _A) & path_or_eq(_B, y)) | detour)


def make_reach_acyclic_program() -> DynFOProgram:
    """Build the Dyn-FO program of Theorem 4.2 (acyclic REACH)."""
    x, y = "x", "y"

    e_ins = E(x, y) | (eq(x, _A) & eq(y, _B))
    insert_rule = UpdateRule(
        params=("a", "b"),
        definitions=(
            RelationDef("E", (x, y), e_ins),
            RelationDef("P", (x, y), path_insert_formula(x, y)),
        ),
    )

    e_del = E(x, y) & ~(eq(x, _A) & eq(y, _B))
    delete_rule = UpdateRule(
        params=("a", "b"),
        definitions=(
            RelationDef("E", (x, y), e_del),
            RelationDef("P", (x, y), path_delete_formula(x, y)),
        ),
    )

    queries = {
        "reach": Query(
            "reach", path_or_eq(c("s"), c("t")), frame=(), params=("s", "t")
        ),
        "paths": Query("paths", P(x, y), frame=(x, y)),
    }

    return DynFOProgram(
        name="reach_acyclic",
        input_vocabulary=INPUT_VOCABULARY,
        aux_vocabulary=AUX_VOCABULARY,
        initial=lambda n: Structure.initial(AUX_VOCABULARY, n),
        on_insert={"E": insert_rule},
        on_delete={"E": delete_rule},
        queries=queries,
        notes=(
            "Theorem 4.2 / [DS93].  Requires the update history to preserve "
            "acyclicity; the transitive closure P is then maintainable in FO."
        ),
    )
