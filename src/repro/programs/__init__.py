"""The paper's Dyn-FO programs, one module per theorem.

========================  =====================================
Module                    Paper result
========================  =====================================
``parity``                Example 3.2
``reach_u``               Theorem 4.1
``reach_acyclic``         Theorem 4.2 (with [DS93])
``reach_d``               Theorem 4.2 via Example 2.1 + Prop 5.3
``transitive_reduction``  Corollary 4.3
``msf``                   Theorem 4.4
``bipartite``             Theorem 4.5(1)
``kedge``                 Theorem 4.5(2)
``matching``              Theorem 4.5(3)
``lca``                   Theorem 4.5(4)
``regular``               Theorem 4.6
``multiplication``        Proposition 4.7
``dyck``                  Proposition 4.8
``pad_reach_a``           Theorem 5.14
========================  =====================================

``PROGRAM_FACTORIES`` maps names to zero-argument factories for the
fixed-shape programs (parameterized families — regular languages, Dyck,
reach_d — expose their own factories).
"""

from .bipartite import make_bipartite_program
from .dyck import make_dyck_program
from .kedge import KEdgeAnalyzer, k_edge_connectivity_sentence, make_kedge_program
from .lca import make_lca_program
from .matching import make_matching_program
from .msf import make_msf_program
from .multiplication import make_multiplication_program
from .pad_reach_a import make_pad_reach_a_program
from .parity import make_parity_program
from .prefix_parity import make_prefix_parity_program
from .reach_acyclic import make_reach_acyclic_program
from .reach_d import make_reach_d_engine
from .reach_u import make_reach_u_program
from .reach_u_arity2 import make_reach_u_arity2_program
from .regular import make_regular_program
from .transitive_reduction import make_transitive_reduction_program

PROGRAM_FACTORIES = {
    "parity": make_parity_program,
    "prefix_parity": make_prefix_parity_program,
    "reach_u": make_reach_u_program,
    "reach_u_arity2": make_reach_u_arity2_program,
    "reach_acyclic": make_reach_acyclic_program,
    "transitive_reduction": make_transitive_reduction_program,
    "msf": make_msf_program,
    "bipartite": make_bipartite_program,
    "kedge": make_kedge_program,
    "matching": make_matching_program,
    "lca": make_lca_program,
    "multiplication": make_multiplication_program,
    "pad_reach_a": make_pad_reach_a_program,
}

__all__ = [
    "PROGRAM_FACTORIES",
    "make_parity_program",
    "make_prefix_parity_program",
    "make_reach_u_program",
    "make_reach_u_arity2_program",
    "make_reach_acyclic_program",
    "make_reach_d_engine",
    "make_transitive_reduction_program",
    "make_msf_program",
    "make_bipartite_program",
    "make_kedge_program",
    "KEdgeAnalyzer",
    "k_edge_connectivity_sentence",
    "make_matching_program",
    "make_lca_program",
    "make_regular_program",
    "make_multiplication_program",
    "make_dyck_program",
    "make_pad_reach_a_program",
]
