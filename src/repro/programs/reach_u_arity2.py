"""REACH_u with arity-2 auxiliary relations (the [DS95] improvement).

After Theorem 4.1 the paper asks whether the arity-3 relation PV is
necessary; Dong and Su showed arity 2 suffices: keep a *directed* spanning
forest ``FD(x, y)`` ("y is the parent of x") and its transitive closure
``TC(x, y)`` ("y is a proper ancestor of x").  Two vertices are connected
iff they share a root::

    connected(x, y) := exists r. root(r) & wanc(x, r) & wanc(y, r)

with ``wanc(x, w) := x = w | TC(x, w)`` and ``root(r) := ~exists p FD(r, p)``.

The price of the lower arity is *rerooting*: inserting {a, b} across two
trees re-hangs a's tree from a (every edge on a's ancestor path reverses),
and deleting a forest edge re-hangs the severed subtree from the subtree
endpoint of the replacement edge.  Both re-hangs are first-order: the
ancestor path is a TC row, the reversal flips FD along it, and each
vertex's new ancestor chain splits at its *meet* with the path (deepest
common ancestor) — old chain up to the meet, reversed path below the meet,
then the new parent's chain.  All auxiliary relations (and all temporaries)
have arity <= 2, versus PV's arity 3 — experiment E17 measures what that
buys.

This program is intentionally not memoryless (the forest orientation
depends on history); the connectivity *answers* are still canonical.
"""

from __future__ import annotations

from ..dynfo.program import DynFOProgram, Query, RelationDef, UpdateRule
from ..logic.dsl import Rel, c, eq, eq2, exists, forall, le, lt
from ..logic.structure import Structure
from ..logic.syntax import Formula, TermLike
from ..logic.vocabulary import Vocabulary

__all__ = ["make_reach_u_arity2_program", "INPUT_VOCABULARY", "AUX_VOCABULARY"]

INPUT_VOCABULARY = Vocabulary.parse("E^2")
AUX_VOCABULARY = Vocabulary.parse("E^2, FD^2, TC^2")

E = Rel("E")
FD = Rel("FD")
TC = Rel("TC")
# delete-rule temporaries
Sub = Rel("Sub")  # vertices of the severed subtree
TFD = Rel("TFD")  # FD after severing
TTC = Rel("TTC")  # TC after severing
NewU = Rel("NewU")  # subtree endpoint of the replacement edge
NewV = Rel("NewV")  # outside endpoint of the replacement edge
MeetD = Rel("MeetD")  # meet of each subtree vertex with the reroot path
# insert-rule temporary
MeetI = Rel("MeetI")
_A, _B = c("a"), c("b")


def _wanc(x: TermLike, w: TermLike) -> Formula:
    """w is a weak ancestor of x in the current forest."""
    return eq(x, w) | TC(x, w)


def _root(r: TermLike) -> Formula:
    return ~exists("pr", FD(r, "pr"))


def _same_tree(x: TermLike, y: TermLike) -> Formula:
    return exists("rr", _root("rr") & _wanc(x, "rr") & _wanc(y, "rr"))


# ---------------------------------------------------------------------------
# Insert(E, a, b): reroot a's tree at a, hang a under b
# ---------------------------------------------------------------------------


def _insert_rule() -> UpdateRule:
    x, y, w, p = "x", "y", "w", "p"
    joins = ~_same_tree(_A, _B) & ~eq(_A, _B)

    # MeetI(x, p): p is the deepest weak ancestor of x lying on a's ancestor
    # path; nonempty exactly for x in a's tree.
    meet_formula = (
        _wanc(x, p)
        & _wanc(_A, p)
        & forall("w2", (_wanc(x, "w2") & _wanc(_A, "w2")) >> _wanc(p, "w2"))
    )
    temporaries = (RelationDef("MeetI", (x, p), meet_formula),)

    e_ins = E(x, y) | eq2(x, y, _A, _B)

    # reverse a's ancestor path, attach a under b
    fd_reroot = (
        (FD(x, y) & ~_wanc(_A, x))
        | (FD(y, x) & _wanc(_A, y))
        | (eq(x, _A) & eq(y, _B))
    )
    fd_ins = (joins & fd_reroot) | (~joins & FD(x, y))

    in_a_tree = exists("pm", MeetI(x, "pm"))
    # new ancestors of x: old chain up to the meet, the reversed path below
    # the meet, then b and b's old chain
    new_chain = ~eq(x, w) & exists(
        "pm",
        MeetI(x, "pm")
        & (
            (TC(x, w) & _wanc(w, "pm"))
            | (_wanc(_A, w) & _wanc(w, "pm"))
            | eq(w, _B)
            | TC(_B, w)
        ),
    )
    tc_ins = (~joins & TC(x, w)) | (
        joins & ((~in_a_tree & TC(x, w)) | (in_a_tree & new_chain))
    )

    return UpdateRule(
        params=("a", "b"),
        temporaries=temporaries,
        definitions=(
            RelationDef("E", (x, y), e_ins),
            RelationDef("FD", (x, y), fd_ins),
            RelationDef("TC", (x, w), tc_ins),
        ),
    )


# ---------------------------------------------------------------------------
# Delete(E, a, b): sever, then re-hang the subtree from the replacement edge
# ---------------------------------------------------------------------------


def _wanc_t(u: TermLike, v: TermLike) -> Formula:
    """Weak ancestor in the severed forest (over the TTC temporary)."""
    return eq(u, v) | TTC(u, v)


def _on_path(w: TermLike) -> Formula:
    """w lies on the re-hang path: a weak TTC-ancestor of NewU."""
    return exists("u9", NewU("u9") & _wanc_t("u9", w))


def _cand(u: TermLike, v: TermLike) -> Formula:
    """A surviving edge out of the severed subtree.  The spanning-forest
    invariant guarantees its far endpoint lies in the severed tree's other
    half, so no same-component test is needed."""
    return E(u, v) & ~eq2(u, v, _A, _B) & Sub(u) & ~Sub(v)


def _new_pair(x: TermLike, y: TermLike) -> Formula:
    """The lexicographically least replacement edge."""
    minimal = forall(
        "u2 v2",
        _cand("u2", "v2") >> (lt(x, "u2") | (eq(x, "u2") & le(y, "v2"))),
    )
    return _cand(x, y) & minimal


def _delete_rule() -> UpdateRule:
    x, y, w, p = "x", "y", "w", "p"
    forest_edge = FD(_A, _B) | FD(_B, _A)

    # the severed subtree hangs below the child endpoint of the edge
    sub_formula = (FD(_A, _B) & _wanc(x, _A)) | (FD(_B, _A) & _wanc(x, _B))
    tfd_formula = FD(x, y) & ~eq2(x, y, _A, _B)
    ttc_formula = TC(x, w) & ~(Sub(x) & ~Sub(w))

    meet_formula = (
        Sub(x)
        & _wanc_t(x, p)
        & _on_path(p)
        & forall("w2", (_wanc_t(x, "w2") & _on_path("w2")) >> _wanc_t(p, "w2"))
    )

    temporaries = (
        RelationDef("Sub", (x,), sub_formula),
        RelationDef("TFD", (x, y), tfd_formula),
        RelationDef("TTC", (x, w), ttc_formula),
        RelationDef("NewU", (x,), exists("yn", _new_pair(x, "yn"))),
        RelationDef("NewV", (y,), exists("xn", _new_pair("xn", y))),
        RelationDef("MeetD", (x, p), meet_formula),
    )

    has_cand = exists("uc", NewU("uc"))

    e_del = E(x, y) & ~eq2(x, y, _A, _B)

    fd_rehang = (
        (TFD(x, y) & ~_on_path(x))
        | (TFD(y, x) & _on_path(y))
        | (NewU(x) & NewV(y))
    )
    fd_del = (
        (~forest_edge & FD(x, y))
        | (forest_edge & ~has_cand & TFD(x, y))
        | (forest_edge & has_cand & fd_rehang)
    )

    new_chain = ~eq(x, w) & exists(
        "pm",
        MeetD(x, "pm")
        & (
            (TTC(x, w) & _wanc_t(w, "pm"))
            | (_on_path(w) & _wanc_t(w, "pm"))
            | NewV(w)
            | exists("v0", NewV("v0") & TC("v0", w))
        ),
    )
    tc_del = (
        (~forest_edge & TC(x, w))
        | (forest_edge & ~has_cand & TTC(x, w))
        | (
            forest_edge
            & has_cand
            & ((~Sub(x) & TTC(x, w)) | (Sub(x) & new_chain))
        )
    )

    return UpdateRule(
        params=("a", "b"),
        temporaries=temporaries,
        definitions=(
            RelationDef("E", (x, y), e_del),
            RelationDef("FD", (x, y), fd_del),
            RelationDef("TC", (x, w), tc_del),
        ),
    )


def make_reach_u_arity2_program() -> DynFOProgram:
    """Build the arity-2 REACH_u program ([DS95])."""
    x, y = "x", "y"
    queries = {
        "reach": Query(
            "reach", _same_tree(c("s"), c("t")), frame=(), params=("s", "t")
        ),
        "connected": Query(
            "connected", ~eq(x, y) & _same_tree(x, y), frame=(x, y)
        ),
        "forest": Query("forest", FD(x, y), frame=(x, y)),
        "closure": Query("closure", TC(x, y), frame=(x, y)),
    }
    return DynFOProgram(
        name="reach_u_arity2",
        input_vocabulary=INPUT_VOCABULARY,
        aux_vocabulary=AUX_VOCABULARY,
        initial=lambda n: Structure.initial(AUX_VOCABULARY, n),
        on_insert={"E": _insert_rule()},
        on_delete={"E": _delete_rule()},
        queries=queries,
        symmetric_inputs=frozenset({"E"}),
        notes=(
            "[DS95]: arity-2 auxiliary relations (directed forest + its "
            "transitive closure) suffice for REACH_u; rerooting is FO."
        ),
    )
