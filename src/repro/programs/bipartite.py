"""Bipartiteness is in Dyn-FO (Theorem 4.5(1)).

On top of the spanning-forest relations E/F/PV of Theorem 4.1, the program
maintains ``Odd(x, y)``: x != y lie in the same tree and the (unique) forest
path between them has odd length.  The graph is bipartite iff every edge
joins an odd pair::

    forall x y. E(x, y) -> Odd(x, y)

(a self-loop makes the query false, as it should).

Parity bookkeeping: when a new edge (u, v) bridges the trees of x and y, the
new path x..u, (u,v), v..y has odd length iff the x..u and v..y parities are
*equal* — the paper's ``(Odd & Odd) | (~Odd & ~Odd)`` clause, with the
degenerate x = u / y = v cases counted as even.

Deletion of a forest edge severs the tree; pairs whose path avoided the edge
keep their parity (their path is unchanged), disconnected pairs drop out,
and pairs re-bridged by the replacement edge recompute parity the same way.
"""

from __future__ import annotations

from ..dynfo.program import DynFOProgram, Query, RelationDef, UpdateRule
from ..logic.dsl import Rel, c, eq, eq2, exists, forall
from ..logic.structure import Structure
from ..logic.syntax import Formula, TermLike
from ..logic.vocabulary import Vocabulary
from .reach_u import (
    E,
    F,
    PV,
    forest_delete_parts,
    forest_insert_parts,
    replacement_edge,
    same_tree,
    severed_path,
    severed_same_tree,
)

__all__ = ["make_bipartite_program", "INPUT_VOCABULARY", "AUX_VOCABULARY"]

INPUT_VOCABULARY = Vocabulary.parse("E^2")
AUX_VOCABULARY = Vocabulary.parse("E^2, F^2, PV^3, Odd^2")

Odd = Rel("Odd")
_A, _B = c("a"), c("b")


def _even(x: TermLike, y: TermLike) -> Formula:
    """Forest path of even length (including the empty path x = y)."""
    return eq(x, y) | (PV(x, y, x) & ~Odd(x, y))


def _parity_match(x: TermLike, u: TermLike, y: TermLike, v: TermLike) -> Formula:
    """x..u and y..v have equal parity, so x..u,(u,v),v..y is odd."""
    return (_even(x, u) & _even(y, v)) | (Odd(x, u) & Odd(y, v))


# -- after severing forest edge (a, b): parities over the T relation ------------


def _t_even(x: TermLike, y: TermLike) -> Formula:
    # pairs in the same severed tree kept their path, hence their parity
    return eq(x, y) | (severed_path(x, y, x) & ~Odd(x, y))


def _t_odd(x: TermLike, y: TermLike) -> Formula:
    return severed_path(x, y, x) & Odd(x, y)


def _t_parity_match(
    x: TermLike, u: TermLike, y: TermLike, v: TermLike
) -> Formula:
    return (_t_even(x, u) & _t_even(y, v)) | (_t_odd(x, u) & _t_odd(y, v))


def make_bipartite_program() -> DynFOProgram:
    """Build the Dyn-FO program of Theorem 4.5(1)."""
    x, y = "x", "y"

    # ---- Insert(E, a, b) ----
    odd_ins = Odd(x, y) | (
        ~same_tree(_A, _B)
        & exists(
            "u v",
            eq2("u", "v", _A, _B)
            & same_tree(x, "u")
            & same_tree("v", y)
            & _parity_match(x, "u", y, "v"),
        )
    )
    ins_temps, ins_defs = forest_insert_parts()
    insert_rule = UpdateRule(
        params=("a", "b"),
        temporaries=ins_temps,
        definitions=ins_defs + (RelationDef("Odd", (x, y), odd_ins),),
    )

    # ---- Delete(E, a, b) ----
    severed = F(_A, _B)
    kept = severed_path(x, y, x) & Odd(x, y)
    rebridged = exists(
        "u v",
        (replacement_edge("u", "v") | replacement_edge("v", "u"))
        & severed_same_tree(x, "u")
        & severed_same_tree(y, "v")
        & _t_parity_match(x, "u", y, "v"),
    )
    odd_del = (~severed & Odd(x, y)) | (severed & (kept | rebridged))
    del_temps, del_defs = forest_delete_parts()
    delete_rule = UpdateRule(
        params=("a", "b"),
        temporaries=del_temps,
        definitions=del_defs + (RelationDef("Odd", (x, y), odd_del),),
    )

    queries = {
        "bipartite": Query(
            "bipartite", forall("x y", E("x", "y") >> Odd("x", "y"))
        ),
        "odd": Query("odd", Odd(x, y), frame=(x, y)),
        "connected": Query("connected", PV(x, y, x), frame=(x, y)),
        "forest": Query("forest", F(x, y), frame=(x, y)),
    }

    return DynFOProgram(
        name="bipartite",
        input_vocabulary=INPUT_VOCABULARY,
        aux_vocabulary=AUX_VOCABULARY,
        initial=lambda n: Structure.initial(AUX_VOCABULARY, n),
        on_insert={"E": insert_rule},
        on_delete={"E": delete_rule},
        queries=queries,
        symmetric_inputs=frozenset({"E"}),
        notes="Theorem 4.5(1): Odd-parity forest paths over Theorem 4.1.",
    )
