"""Minimum spanning forests are in (memoryless) Dyn-FO (Theorem 4.4).

Input ``sigma = <Ew^3>``: ``Ew(x, y, w)`` is a (symmetric) edge {x, y} of
weight ``w`` (a universe element).  Contract: at most one weight per edge at
any time — change a weight by deleting and re-inserting.

The auxiliary relations are the spanning-forest pair F/PV of Theorem 4.1,
except the forest maintained is the *minimum* spanning forest under the key

    key(u, v, w)  =  (w, min(u,v), max(u,v))    (lexicographic)

— weight first, endpoints as the paper's footnote-2 ordering tie-break, so
the forest is unique and the program memoryless (Kruskal's forest under the
same key, which is exactly what the oracle recomputes).

* ``Insert(Ew, a, b, w)``: if a, b lie in different trees the edge joins the
  forest (as in Theorem 4.1).  If they are already connected, the maximum-key
  edge on the forest path a..b (temporary ``MaxP``) is located; when
  key(a,b,w) beats it, that edge is swapped out for (a, b) and PV is rewired
  through the new edge via the temporary ``T2`` (PV with the swapped-out
  edge severed).
* ``Delete(Ew, a, b, w)``: a non-forest edge only leaves Ew; a forest edge
  is severed (temporary ``TD``) and the *minimum-key* surviving edge across
  the cut (temporary ``NewW``), if any, is swapped in — Theorem 4.1's delete
  ordered by key instead of by endpoints.
"""

from __future__ import annotations

from ..dynfo.program import DynFOProgram, Query, RelationDef, UpdateRule
from ..logic.dsl import Rel, c, eq, eq2, exists, forall, le, lt, neq
from ..logic.structure import Structure
from ..logic.syntax import Formula, TermLike
from ..logic.vocabulary import Vocabulary

__all__ = ["make_msf_program", "INPUT_VOCABULARY", "AUX_VOCABULARY"]

INPUT_VOCABULARY = Vocabulary.parse("Ew^3")
AUX_VOCABULARY = Vocabulary.parse("Ew^3, F^2, PV^3")

Ew = Rel("Ew")
F = Rel("F")
PV = Rel("PV")
# insert-side temporaries
MaxP = Rel("MaxP")  # the maximum-key forest edge on the path a..b
T2 = Rel("T2")  # PV with the MaxP edge severed
# delete-side temporaries
TD = Rel("TD")  # PV with the deleted forest edge severed
NewW = Rel("NewW")  # the minimum-key replacement edge across the cut
_A, _B, _W = c("a"), c("b"), c("w")


def _same_tree(x: TermLike, y: TermLike) -> Formula:
    return eq(x, y) | PV(x, y, x)


def _segment(x: TermLike, u: TermLike, z: TermLike) -> Formula:
    return (eq(x, u) & eq(z, u)) | PV(x, u, z)


def _key_lt(
    u1: TermLike, v1: TermLike, w1: TermLike,
    u2: TermLike, v2: TermLike, w2: TermLike,
) -> Formula:
    """key(u1,v1,w1) < key(u2,v2,w2); both edges canonically ordered u < v."""
    return (
        lt(w1, w2)
        | (eq(w1, w2) & lt(u1, u2))
        | (eq(w1, w2) & eq(u1, u2) & lt(v1, v2))
    )


def _param_key_lt(u2: TermLike, v2: TermLike, w2: TermLike) -> Formula:
    """key(a, b, w) < key(u2, v2, w2) with the parameter pair canonicalized
    by case split on a <= b."""
    return (le(_A, _B) & _key_lt(_A, _B, _W, u2, v2, w2)) | (
        lt(_B, _A) & _key_lt(_B, _A, _W, u2, v2, w2)
    )


# ---------------------------------------------------------------------------
# Insert
# ---------------------------------------------------------------------------


def _on_path(c2: TermLike, d2: TermLike, w2: TermLike) -> Formula:
    """A forest edge on the path a..b, canonically ordered, with its weight."""
    return (
        F(c2, d2)
        & lt(c2, d2)
        & Ew(c2, d2, w2)
        & PV(_A, _B, c2)
        & PV(_A, _B, d2)
    )


OnP = Rel("OnP")  # temporary: materialized _on_path (forest edges on a..b)


def _max_on_path(cc: str, dd: str, ww: str) -> Formula:
    """(cc, dd, ww) is the maximum-key forest edge on the path a..b (read
    from the materialized OnP temporary, so the universal check is cheap)."""
    dominates = forall(
        "c2 d2 w2",
        OnP("c2", "d2", "w2")
        >> (
            (eq("c2", cc) & eq("d2", dd))
            | _key_lt("c2", "d2", "w2", cc, dd, ww)
        ),
    )
    return OnP(cc, dd, ww) & dominates


def _insert_rule() -> UpdateRule:
    x, y, z = "x", "y", "z"
    temporaries = (
        RelationDef("OnP", ("c2", "d2", "w2"), _on_path("c2", "d2", "w2")),
        RelationDef("MaxP", ("cs", "ds", "ws"), _max_on_path("cs", "ds", "ws")),
        RelationDef(
            "T2",
            (x, y, z),
            PV(x, y, z)
            & ~exists(
                "cs ds ws", MaxP("cs", "ds", "ws") & PV(x, y, "cs") & PV(x, y, "ds")
            ),
        ),
    )

    fresh = ~exists("wf", Ew(_A, _B, "wf"))  # no prior {a, b} edge
    proper = fresh & neq(_A, _B)
    joins = proper & ~_same_tree(_A, _B)
    # swap: a, b already connected and (a, b, w) beats the worst path edge
    beats = exists(
        "cs ds ws", MaxP("cs", "ds", "ws") & _param_key_lt("cs", "ds", "ws")
    )
    swap = proper & _same_tree(_A, _B) & beats

    ew_ins = Ew(x, y, z) | (eq2(x, y, _A, _B) & eq(z, _W))

    f_ins = (
        (F(x, y) & ~swap)
        | (swap & F(x, y) & ~exists("ws", MaxP(x, y, "ws") | MaxP(y, x, "ws")))
        | (eq2(x, y, _A, _B) & (joins | swap))
    )

    def t2_same(p: TermLike, u: TermLike) -> Formula:
        return eq(p, u) | T2(p, u, p)

    def t2_seg(p: TermLike, u: TermLike, r: TermLike) -> Formula:
        return (eq(p, u) & eq(r, u)) | T2(p, u, r)

    pv_join = exists(
        "u v",
        eq2("u", "v", _A, _B)
        & _same_tree(x, "u")
        & _same_tree("v", y)
        & (_segment(x, "u", z) | _segment("v", y, z)),
    )
    pv_swap = T2(x, y, z) | exists(
        "u v",
        eq2("u", "v", _A, _B)
        & t2_same(x, "u")
        & t2_same(y, "v")
        & (t2_seg(x, "u", z) | t2_seg(y, "v", z)),
    )
    pv_ins = (
        (PV(x, y, z) & ~joins & ~swap)
        | (joins & (PV(x, y, z) | pv_join))
        | (swap & pv_swap)
    )

    return UpdateRule(
        params=("a", "b", "w"),
        temporaries=temporaries,
        definitions=(
            RelationDef("Ew", (x, y, z), ew_ins),
            RelationDef("F", (x, y), f_ins),
            RelationDef("PV", (x, y, z), pv_ins),
        ),
    )


# ---------------------------------------------------------------------------
# Delete
# ---------------------------------------------------------------------------


def _td_same(x: TermLike, u: TermLike) -> Formula:
    return eq(x, u) | TD(x, u, x)


def _td_seg(x: TermLike, u: TermLike, z: TermLike) -> Formula:
    return (eq(x, u) & eq(z, u)) | TD(x, u, z)


CandR = Rel("CandR")  # temporary: materialized crossing-edge candidates


def _cand(u: TermLike, v: TermLike, wv: TermLike) -> Formula:
    """A surviving edge crossing the severed cut, canonically ordered."""
    survives = Ew(u, v, wv) & ~(eq2(u, v, _A, _B) & eq(wv, _W))
    crosses = (_td_same(u, _A) & _td_same(v, _B)) | (
        _td_same(u, _B) & _td_same(v, _A)
    )
    return survives & lt(u, v) & crosses


def _min_crossing(u: str, v: str) -> Formula:
    """The minimum-key crossing edge (over the materialized candidates)."""
    minimal = forall(
        "u2 v2 w2",
        CandR("u2", "v2", "w2")
        >> (
            (eq("u2", u) & eq("v2", v))
            | exists("wn", CandR(u, v, "wn") & _key_lt(u, v, "wn", "u2", "v2", "w2"))
        ),
    )
    return exists("wc", CandR(u, v, "wc")) & minimal


def _delete_rule() -> UpdateRule:
    x, y, z = "x", "y", "z"
    temporaries = (
        RelationDef(
            "TD", (x, y, z), PV(x, y, z) & ~(PV(x, y, _A) & PV(x, y, _B))
        ),
        RelationDef("CandR", ("u2", "v2", "w2"), _cand("u2", "v2", "w2")),
        RelationDef("NewW", ("u", "v"), _min_crossing("u", "v")),
    )

    severed = F(_A, _B)
    ew_del = Ew(x, y, z) & ~(eq2(x, y, _A, _B) & eq(z, _W))

    cross = NewW(x, y) | NewW(y, x)
    f_del = (~severed & F(x, y)) | (
        severed & ((F(x, y) & ~eq2(x, y, _A, _B)) | cross)
    )

    bridged = exists(
        "u v",
        (NewW("u", "v") | NewW("v", "u"))
        & _td_same(x, "u")
        & _td_same(y, "v")
        & (_td_seg(x, "u", z) | _td_seg(y, "v", z)),
    )
    pv_del = (~severed & PV(x, y, z)) | (severed & (TD(x, y, z) | bridged))

    return UpdateRule(
        params=("a", "b", "w"),
        temporaries=temporaries,
        definitions=(
            RelationDef("Ew", (x, y, z), ew_del),
            RelationDef("F", (x, y), f_del),
            RelationDef("PV", (x, y, z), pv_del),
        ),
    )


def make_msf_program() -> DynFOProgram:
    """Build the Dyn-FO program of Theorem 4.4."""
    x, y = "x", "y"
    queries = {
        "forest": Query("forest", F(x, y), frame=(x, y)),
        "connected": Query("connected", PV(x, y, x), frame=(x, y)),
        "reach": Query(
            "reach", _same_tree(c("s"), c("t")), frame=(), params=("s", "t")
        ),
    }
    return DynFOProgram(
        name="msf",
        input_vocabulary=INPUT_VOCABULARY,
        aux_vocabulary=AUX_VOCABULARY,
        initial=lambda n: Structure.initial(AUX_VOCABULARY, n),
        on_insert={"Ew": _insert_rule()},
        on_delete={"Ew": _delete_rule()},
        queries=queries,
        symmetric_inputs=frozenset({"Ew"}),
        notes=(
            "Theorem 4.4: the maintained forest equals Kruskal's under the "
            "(weight, endpoints) key, hence memoryless."
        ),
    )
