"""Every regular language is in Dyn-FO (Theorem 4.6).

The input structure codes a word of length ``n``: one unary relation
``S_<sigma>`` per alphabet symbol, with ``S_<sigma>(p)`` meaning position
``p`` holds sigma.  Positions may be empty (the empty-string character the
paper uses for deletions); the well-formedness contract is at most one
symbol per position.

**Relation to the paper's construction.**  The proof of Theorem 4.6 stores,
at every node of a complete binary tree over the positions, the transition
function of the word below that node, and repairs the log n nodes on a
leaf-to-root path by guessing O(log n) bits with O(1) variables (via BIT).
We maintain the equivalent *interval* form of the same idea: the relation

    St(i, j, q, q')   —  reading positions i..j (inclusive) from state q
                          ends in state q'

is the function-composition table for every interval, of which the paper's
tree stores a logarithmic selection.  A single position change at ``p``
rewrites exactly the intervals containing ``p`` by splicing
``St(i, p-1, -, -) ; delta_sigma ; St(p+1, j, -, -)`` — a first-order update
(predecessor and successor are FO in <=).  This trades auxiliary-relation
*size* (n^2 |Q|^2 instead of n |Q|^2) for dispensing with the bit-guessing
encoding; per-update work remains first-order, which is the theorem's
content.  States are universe elements 0..|Q|-1 (so n >= |Q| is required),
with start state 0; ``D_<sigma>`` holds the transition table and ``Acc`` the
accepting states, both constant-size and set up by the FO-definable initial
structure (St starts as the identity on every interval: the empty word).
"""

from __future__ import annotations

from ..baselines.automata import DFA
from ..dynfo.program import DynFOProgram, Query, RelationDef, UpdateRule
from ..logic.dsl import Rel, c, eq, exists, forall, le, lit, lt
from ..logic.structure import Structure
from ..logic.syntax import Formula, TermLike
from ..logic.vocabulary import Vocabulary

__all__ = ["make_regular_program", "symbol_relation", "input_vocabulary"]

St = Rel("St")
Acc = Rel("Acc")
_P = c("p")


def symbol_relation(symbol: str) -> str:
    """Input relation name coding occurrences of ``symbol``."""
    if not symbol.isidentifier():
        raise ValueError(f"alphabet symbols must be identifier-like: {symbol!r}")
    return f"S_{symbol}"


def _delta_relation(symbol: str) -> str:
    return f"D_{symbol}"


def input_vocabulary(dfa: DFA) -> Vocabulary:
    return Vocabulary.make(
        relations=[(symbol_relation(s), 1) for s in dfa.alphabet]
    )


def _aux_vocabulary(dfa: DFA) -> Vocabulary:
    relations = [(symbol_relation(s), 1) for s in dfa.alphabet]
    relations += [(_delta_relation(s), 2) for s in dfa.alphabet]
    relations += [("St", 4), ("Acc", 1)]
    return Vocabulary.make(relations=relations)


def _initial(dfa: DFA, n: int) -> Structure:
    if n < dfa.num_states:
        raise ValueError(
            f"universe of size {n} cannot encode {dfa.num_states} states"
        )
    structure = Structure.initial(_aux_vocabulary(dfa), n)
    for symbol in dfa.alphabet:
        structure.set_relation(
            _delta_relation(symbol),
            {(q, dfa.transitions[(q, symbol)]) for q in range(dfa.num_states)},
        )
    structure.set_relation("Acc", {(q,) for q in dfa.accepting})
    structure.set_relation(
        "St",
        {
            (i, j, q, q)
            for i in range(n)
            for j in range(i, n)
            for q in range(dfa.num_states)
        },
    )
    return structure


# -- interval splicing helpers (p is the update-position parameter) -----------


def _within(i: TermLike, j: TermLike) -> Formula:
    return le(i, _P) & le(_P, j)


def _prefix(i: TermLike, q: TermLike, r: TermLike) -> Formula:
    """Reading i..p-1 from q ends in r (identity when i = p)."""
    before = exists(
        "pm",
        lt("pm", _P)
        & forall("wp", lt("wp", _P) >> le("wp", "pm"))  # pm = p - 1
        & le(i, "pm")
        & St(i, "pm", q, r),
    )
    return (eq(i, _P) & eq(q, r)) | before


def _suffix(j: TermLike, r: TermLike, q2: TermLike) -> Formula:
    """Reading p+1..j from r ends in q2 (identity when j = p)."""
    after = exists(
        "pp",
        lt(_P, "pp")
        & forall("ws", lt(_P, "ws") >> le("pp", "ws"))  # pp = p + 1
        & le("pp", j)
        & St("pp", j, r, q2),
    )
    return (eq(j, _P) & eq(r, q2)) | after


def make_regular_program(dfa: DFA, name: str = "regular") -> DynFOProgram:
    """Build the Dyn-FO program of Theorem 4.6 for ``dfa``'s language."""
    aux = _aux_vocabulary(dfa)
    i, j, q, q2 = "i", "j", "q", "q2"

    on_insert: dict[str, UpdateRule] = {}
    on_delete: dict[str, UpdateRule] = {}
    for symbol in dfa.alphabet:
        sym_rel = Rel(symbol_relation(symbol))
        delta = Rel(_delta_relation(symbol))

        spliced_ins = exists(
            "r r2",
            _prefix(i, q, "r") & delta("r", "r2") & _suffix(j, "r2", q2),
        )
        st_ins = (~_within(i, j) & St(i, j, q, q2)) | (
            _within(i, j) & spliced_ins
        )
        on_insert[symbol_relation(symbol)] = UpdateRule(
            params=("p",),
            definitions=(
                RelationDef(
                    symbol_relation(symbol), ("x",), sym_rel("x") | eq("x", _P)
                ),
                RelationDef("St", (i, j, q, q2), st_ins),
            ),
        )

        spliced_del = exists(
            "r", _prefix(i, q, "r") & _suffix(j, "r", q2)
        )
        st_del = (~_within(i, j) & St(i, j, q, q2)) | (
            _within(i, j) & spliced_del
        )
        on_delete[symbol_relation(symbol)] = UpdateRule(
            params=("p",),
            definitions=(
                RelationDef(
                    symbol_relation(symbol),
                    ("x",),
                    sym_rel("x") & ~eq("x", _P),
                ),
                RelationDef("St", (i, j, q, q2), st_del),
            ),
        )

    accepted = exists(
        "qf", St(c("min"), c("max"), lit(0), "qf") & Acc("qf")
    )
    queries = {
        "accepted": Query("accepted", accepted),
        # the full composition table, for white-box tests
        "st": Query("st", St(i, j, q, q2), frame=(i, j, q, q2)),
    }

    return DynFOProgram(
        name=name,
        input_vocabulary=input_vocabulary(dfa),
        aux_vocabulary=aux,
        initial=lambda n: _initial(dfa, n),
        on_insert=on_insert,
        on_delete=on_delete,
        queries=queries,
        notes=(
            "Theorem 4.6 in interval form: St is the all-intervals "
            "transition-composition table; one position change splices "
            "prefix ; delta ; suffix in FO."
        ),
    )
