"""Deterministic finite automata — the oracle side of Theorem 4.6.

A :class:`DFA` here uses integer states ``0..k-1`` with start state ``0``
(relabel if needed); symbols are short identifier-safe strings.  ``run``
executes the automaton from scratch on a word, which is the static
recomputation arm of experiment E11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

__all__ = [
    "DFA",
    "mod_counter_dfa",
    "alternating_dfa",
    "substring_dfa",
    "group_product_dfa",
    "EPSILON",
]

# The dynamic problem lets a position hold no symbol at all; the DFA treats
# such positions as skipped (the identity map on states).
EPSILON = None


@dataclass(frozen=True)
class DFA:
    """A complete DFA over integer states with start state 0."""

    num_states: int
    alphabet: tuple[str, ...]
    transitions: Mapping[tuple[int, str], int] = field(hash=False)
    accepting: frozenset[int]

    def __post_init__(self) -> None:
        for symbol in self.alphabet:
            for state in range(self.num_states):
                target = self.transitions.get((state, symbol))
                if target is None:
                    raise ValueError(
                        f"DFA incomplete: no transition ({state}, {symbol!r})"
                    )
                if not 0 <= target < self.num_states:
                    raise ValueError(f"transition target {target} out of range")
        if not self.accepting <= set(range(self.num_states)):
            raise ValueError("accepting states out of range")

    def step(self, state: int, symbol: str | None) -> int:
        if symbol is EPSILON:
            return state
        return self.transitions[(state, symbol)]

    def run(self, word: Iterable[str | None]) -> bool:
        """Accept/reject ``word`` (None entries are skipped)."""
        state = 0
        for symbol in word:
            state = self.step(state, symbol)
        return state in self.accepting


def mod_counter_dfa(base: int, residue: int = 0, symbol: str = "one") -> DFA:
    """Accepts words whose number of ``symbol`` occurrences is ``residue``
    mod ``base`` (a canonical non-FO regular language for base >= 2)."""
    transitions = {
        (q, symbol): (q + 1) % base for q in range(base)
    }
    return DFA(
        num_states=base,
        alphabet=(symbol,),
        transitions=transitions,
        accepting=frozenset({residue}),
    )


def alternating_dfa() -> DFA:
    """Accepts (ab)^* — strict alternation starting with 'a' (or empty).

    States: 0 expect-a (accepting), 1 expect-b, 2 sink.
    """
    transitions = {
        (0, "a"): 1,
        (0, "b"): 2,
        (1, "a"): 2,
        (1, "b"): 0,
        (2, "a"): 2,
        (2, "b"): 2,
    }
    return DFA(3, ("a", "b"), transitions, frozenset({0}))


def group_product_dfa(
    generators: Mapping[str, Sequence[int]],
    accept_identity_only: bool = True,
) -> DFA:
    """Iterated group multiplication as a regular language.

    The paper's Corollary 5.12 builds on Barrington's theorem: iterated
    multiplication over S_5 captures NC^1.  Each generator name maps to a
    permutation (a tuple: image of each point); the DFA's states are the
    group elements reachable from the identity, and a word is accepted iff
    its product is the identity.  With S_3's generators this gives a
    6-state automaton the Theorem 4.6 program maintains dynamically —
    dynamic word-problem evaluation over a nonabelian group.
    """
    degree_set = {len(p) for p in generators.values()}
    if len(degree_set) != 1:
        raise ValueError("all generators must permute the same points")
    (degree,) = degree_set
    identity = tuple(range(degree))
    for name, perm in generators.items():
        if sorted(perm) != list(range(degree)):
            raise ValueError(f"{name!r} is not a permutation: {perm}")

    def compose(p: tuple[int, ...], q: Sequence[int]) -> tuple[int, ...]:
        # apply p first, then q
        return tuple(q[p[i]] for i in range(degree))

    elements: list[tuple[int, ...]] = [identity]
    index = {identity: 0}
    frontier = [identity]
    while frontier:
        current = frontier.pop()
        for perm in generators.values():
            nxt = compose(current, tuple(perm))
            if nxt not in index:
                index[nxt] = len(elements)
                elements.append(nxt)
                frontier.append(nxt)
    transitions = {
        (index[element], name): index[compose(element, tuple(perm))]
        for element in elements
        for name, perm in generators.items()
    }
    accepting = (
        frozenset({0})
        if accept_identity_only
        else frozenset(range(len(elements)))
    )
    return DFA(len(elements), tuple(sorted(generators)), transitions, accepting)


def substring_dfa(pattern: Sequence[str], alphabet: Sequence[str]) -> DFA:
    """Accepts words containing ``pattern`` as a (contiguous) substring,
    via the KMP automaton."""
    pattern = list(pattern)
    if not pattern:
        raise ValueError("pattern must be nonempty")
    k = len(pattern)

    def advance(matched: int, symbol: str) -> int:
        while True:
            if matched < k and pattern[matched] == symbol:
                return matched + 1
            if matched == 0:
                return 0
            # longest proper border of pattern[:matched] then retry
            border = 0
            prefix = pattern[:matched]
            for length in range(matched - 1, 0, -1):
                if prefix[:length] == prefix[matched - length:]:
                    border = length
                    break
            matched = border

    transitions: dict[tuple[int, str], int] = {}
    for state in range(k + 1):
        for symbol in alphabet:
            if state == k:
                transitions[(state, symbol)] = k  # absorbing accept
            else:
                transitions[(state, symbol)] = advance(state, symbol)
    return DFA(k + 1, tuple(alphabet), transitions, frozenset({k}))
