"""Disjoint-set forests (union-find) with path compression and union by rank.

Used as the from-scratch oracle for connectivity-flavoured problems and as
the classical-algorithm arm of the benchmarks.
"""

from __future__ import annotations

from typing import Hashable, Iterable

__all__ = ["DisjointSets"]


class DisjointSets:
    """Standard union-find over arbitrary hashable items."""

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._rank: dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: Hashable) -> Hashable:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    def components(self) -> list[set[Hashable]]:
        groups: dict[Hashable, set[Hashable]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), set()).add(item)
        return list(groups.values())

    def __len__(self) -> int:
        return len(self._parent)
