"""Alternating-graph reachability (REACH_a) — oracle for Theorem 5.14.

An alternating graph marks some vertices as universal; a vertex x
"alternating-reaches" the target t when

* x = t, or
* x is existential and some successor alternating-reaches t, or
* x is universal, has at least one successor, and *all* successors
  alternating-reach t.

REACH_a is the canonical P-complete problem (it is CVAL in thin disguise:
universal = AND gate, existential = OR gate).  The least fixpoint below
converges within n iterations, which is what the padded Dyn-FO program's
stage pipeline exploits.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["alternating_reachable", "alternating_reaches", "fixpoint_iterations"]


def _step(
    n: int,
    succ: list[set[int]],
    universal: set[int],
    target: int,
    current: set[int],
) -> set[int]:
    out = set(current)
    out.add(target)
    for x in range(n):
        if x in out:
            continue
        if not succ[x]:
            continue
        if x in universal:
            if succ[x] <= current:
                out.add(x)
        elif succ[x] & current:
            out.add(x)
    return out


def alternating_reachable(
    n: int,
    edges: Iterable[tuple[int, int]],
    universal: Iterable[int],
    target: int,
) -> set[int]:
    """The set of vertices that alternating-reach ``target``."""
    succ: list[set[int]] = [set() for _ in range(n)]
    for u, v in edges:
        succ[u].add(v)
    uni = set(universal)
    current: set[int] = {target}
    while True:
        new = _step(n, succ, uni, target, current)
        if new == current:
            return current
        current = new


def alternating_reaches(
    n: int,
    edges: Iterable[tuple[int, int]],
    universal: Iterable[int],
    source: int,
    target: int,
) -> bool:
    return source in alternating_reachable(n, edges, universal, target)


def fixpoint_iterations(
    n: int,
    edges: Iterable[tuple[int, int]],
    universal: Iterable[int],
    target: int,
) -> int:
    """Number of iterations until the fixpoint stabilizes (<= n)."""
    succ: list[set[int]] = [set() for _ in range(n)]
    for u, v in edges:
        succ[u].add(v)
    uni = set(universal)
    current: set[int] = {target}
    iterations = 0
    while True:
        new = _step(n, succ, uni, target, current)
        if new == current:
            return iterations
        current = new
        iterations += 1
