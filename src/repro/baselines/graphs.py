"""From-scratch graph algorithms used as verification oracles.

Everything here recomputes its answer from the raw edge set — no incremental
state — so these functions double as the "static recomputation" arm of the
benchmarks.  Undirected graphs are represented as a set of ordered pairs
closed under symmetry, or as an arbitrary iterable of pairs which is
symmetrized on entry.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping

from .unionfind import DisjointSets

__all__ = [
    "adjacency",
    "connected_components",
    "reachable_pairs_undirected",
    "same_component",
    "spanning_forest_is_valid",
    "is_bipartite",
    "odd_even_paths",
    "transitive_closure",
    "transitive_reduction_dag",
    "is_acyclic",
    "deterministic_reachable",
    "max_flow_min_cut",
    "edge_connectivity",
    "is_k_edge_connected",
    "kruskal_msf",
    "forest_parents",
    "forest_lca",
    "matching_is_valid",
    "matching_is_maximal",
]


def adjacency(n: int, edges: Iterable[tuple[int, int]]) -> list[set[int]]:
    """Symmetrized adjacency sets over the universe {0..n-1}."""
    adj: list[set[int]] = [set() for _ in range(n)]
    for u, v in edges:
        if u == v:
            continue
        adj[u].add(v)
        adj[v].add(u)
    return adj


def connected_components(n: int, edges: Iterable[tuple[int, int]]) -> list[set[int]]:
    sets = DisjointSets(range(n))
    for u, v in edges:
        sets.union(u, v)
    return sets.components()


def same_component(n: int, edges: Iterable[tuple[int, int]]) -> DisjointSets:
    sets = DisjointSets(range(n))
    for u, v in edges:
        sets.union(u, v)
    return sets


def reachable_pairs_undirected(
    n: int, edges: Iterable[tuple[int, int]]
) -> set[tuple[int, int]]:
    """All ordered pairs (u, v), u != v, in the same component."""
    pairs: set[tuple[int, int]] = set()
    for component in connected_components(n, edges):
        for u in component:
            for v in component:
                if u != v:
                    pairs.add((u, v))
    return pairs


def spanning_forest_is_valid(
    n: int,
    edges: set[tuple[int, int]],
    forest: set[tuple[int, int]],
) -> bool:
    """Is ``forest`` a spanning forest of the graph ``edges``?

    Checks: forest edges are graph edges, the forest is acyclic, and it has
    exactly one fewer edge than vertices per connected component (hence
    spans).  Both edge sets are ordered-pair sets closed under symmetry.
    """
    if not forest <= edges:
        return False
    undirected = {frozenset(e) for e in forest if e[0] != e[1]}
    sets = DisjointSets(range(n))
    for edge in undirected:
        u, v = tuple(edge)
        if not sets.union(u, v):
            return False  # cycle
    graph_sets = same_component(n, edges)
    # same partition into components <=> forest spans
    for u in range(n):
        for v in range(u + 1, n):
            if graph_sets.connected(u, v) != sets.connected(u, v):
                return False
    return True


def odd_even_paths(
    n: int, edges: Iterable[tuple[int, int]]
) -> tuple[set[tuple[int, int]], set[tuple[int, int]], bool]:
    """BFS layering: (odd-distance-parity pairs, even pairs, bipartite?).

    Pairs are computed per component from a 2-coloring attempt; the boolean
    reports whether the whole graph is bipartite.
    """
    edges = list(edges)
    adj = adjacency(n, edges)
    color = [-1] * n
    # a self-loop is an odd cycle
    bipartite = all(u != v for u, v in edges)
    for start in range(n):
        if color[start] != -1:
            continue
        color[start] = 0
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                if color[v] == -1:
                    color[v] = color[u] ^ 1
                    queue.append(v)
                elif color[v] == color[u]:
                    bipartite = False
    odd: set[tuple[int, int]] = set()
    even: set[tuple[int, int]] = set()
    sets = same_component(n, edges)
    for u in range(n):
        for v in range(n):
            if u != v and sets.connected(u, v):
                if color[u] != color[v]:
                    odd.add((u, v))
                else:
                    even.add((u, v))
    return odd, even, bipartite


def is_bipartite(n: int, edges: Iterable[tuple[int, int]]) -> bool:
    return odd_even_paths(n, edges)[2]


# -- directed graphs ------------------------------------------------------


def transitive_closure(
    n: int, edges: Iterable[tuple[int, int]]
) -> set[tuple[int, int]]:
    """All pairs (u, v) with a nonempty directed path u -> v."""
    succ: list[set[int]] = [set() for _ in range(n)]
    for u, v in edges:
        succ[u].add(v)
    closure: set[tuple[int, int]] = set()
    for start in range(n):
        seen: set[int] = set()
        stack = list(succ[start])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(succ[node])
        closure.update((start, node) for node in seen)
    return closure


def is_acyclic(n: int, edges: Iterable[tuple[int, int]]) -> bool:
    closure = transitive_closure(n, list(edges))
    return all((v, v) not in closure for v in range(n))


def transitive_reduction_dag(
    n: int, edges: set[tuple[int, int]]
) -> set[tuple[int, int]]:
    """Minimal subgraph of a DAG with the same transitive closure.

    For DAGs the reduction is unique: keep edge (u, v) unless there is an
    intermediate w with u ->+ w ->+ v.
    """
    closure = transitive_closure(n, edges)
    reduction: set[tuple[int, int]] = set()
    for u, v in edges:
        redundant = any(
            (u, w) in closure and (w, v) in closure
            for w in range(n)
            if w != u and w != v
        )
        if not redundant:
            reduction.add((u, v))
    return reduction


def deterministic_reachable(
    n: int, edges: set[tuple[int, int]], s: int, t: int
) -> bool:
    """REACH_d: is there a path s -> t using only vertices of out-degree 1?

    A deterministic path may leave a vertex only along its unique outgoing
    edge (Example 2.1 of the paper).
    """
    out: list[list[int]] = [[] for _ in range(n)]
    for u, v in edges:
        out[u].append(v)
    node, seen = s, set()
    while True:
        if node == t:
            return True
        if node in seen or len(out[node]) != 1:
            return False
        seen.add(node)
        node = out[node][0]


# -- cuts and connectivity ---------------------------------------------------


def max_flow_min_cut(
    n: int, edges: Iterable[tuple[int, int]], s: int, t: int
) -> int:
    """Edmonds-Karp max flow with unit capacities per undirected edge =
    the number of edge-disjoint s-t paths = min s-t edge cut."""
    capacity: dict[tuple[int, int], int] = {}
    adj: list[set[int]] = [set() for _ in range(n)]
    for u, v in edges:
        if u == v:
            continue
        capacity[(u, v)] = 1
        capacity[(v, u)] = 1
        adj[u].add(v)
        adj[v].add(u)
    flow = 0
    while True:
        parent = [-1] * n
        parent[s] = s
        queue = deque([s])
        while queue and parent[t] == -1:
            u = queue.popleft()
            for v in adj[u]:
                if parent[v] == -1 and capacity.get((u, v), 0) > 0:
                    parent[v] = u
                    queue.append(v)
        if parent[t] == -1:
            return flow
        node = t
        while node != s:
            prev = parent[node]
            capacity[(prev, node)] -= 1
            capacity[(node, prev)] = capacity.get((node, prev), 0) + 1
            node = prev
        flow += 1


def edge_connectivity(n: int, edges: set[tuple[int, int]]) -> int:
    """Global edge connectivity of the undirected graph (0 if disconnected
    or fewer than two active vertices)."""
    vertices = sorted({u for e in edges for u in e})
    if len(vertices) < 2:
        return 0
    components = same_component(n, edges)
    if any(
        not components.connected(vertices[0], v) for v in vertices[1:]
    ):
        return 0
    source = vertices[0]
    return min(max_flow_min_cut(n, edges, source, t) for t in vertices[1:])


def is_k_edge_connected(
    n: int, edges: set[tuple[int, int]], k: int
) -> bool:
    """Are all pairs of *active* vertices connected by >= k edge-disjoint
    paths?  Matches the paper's query: after deleting any k-1 edges, every
    pair that was connected stays connected — restricted to vertices that
    touch an edge.  Vacuously true with fewer than two active vertices."""
    vertices = sorted({u for e in edges for u in e})
    if len(vertices) < 2:
        return True
    source = vertices[0]
    return all(
        max_flow_min_cut(n, edges, source, t) >= k for t in vertices[1:]
    )


# -- weighted forests ----------------------------------------------------------


def kruskal_msf(
    n: int,
    edges: Iterable[tuple[int, int]],
    weight: Mapping[tuple[int, int], int],
) -> tuple[int, set[frozenset[int]]]:
    """Kruskal's algorithm.  Returns (total weight, forest as vertex pairs).

    Ties are broken by (weight, min endpoint, max endpoint), mirroring the
    ordering-based tie-break of Theorem 4.4, so the forest is unique.
    """
    undirected = {frozenset((u, v)) for u, v in edges if u != v}

    def key(edge: frozenset[int]) -> tuple[int, int, int]:
        u, v = sorted(edge)
        return (weight[(u, v)], u, v)

    sets = DisjointSets(range(n))
    forest: set[frozenset[int]] = set()
    total = 0
    for edge in sorted(undirected, key=key):
        u, v = sorted(edge)
        if sets.union(u, v):
            forest.add(edge)
            total += weight[(u, v)]
    return total, forest


# -- rooted forests --------------------------------------------------------------


def forest_parents(
    n: int, edges: set[tuple[int, int]]
) -> list[int | None]:
    """Parent map of a directed forest given parent->child edges.

    Raises ValueError if any vertex has two parents or a cycle exists.
    """
    parent: list[int | None] = [None] * n
    for u, v in edges:
        if parent[v] is not None:
            raise ValueError(f"vertex {v} has two parents")
        parent[v] = u
    for start in range(n):
        node, hops = parent[start], 0
        while node is not None:
            node = parent[node]
            hops += 1
            if hops > n:
                raise ValueError("cycle in claimed forest")
    return parent


def forest_lca(
    n: int, edges: set[tuple[int, int]], x: int, y: int
) -> int | None:
    """Lowest common ancestor of x and y in a directed forest (edges point
    parent -> child).  A vertex is its own ancestor.  None if disjoint."""
    parent = forest_parents(n, edges)
    ancestors: list[int] = []
    node: int | None = x
    while node is not None:
        ancestors.append(node)
        node = parent[node]
    ancestor_set = set(ancestors)
    node = y
    while node is not None:
        if node in ancestor_set:
            return node
        node = parent[node]
    return None


# -- matchings ---------------------------------------------------------------------


def matching_is_valid(
    edges: set[tuple[int, int]], matching: set[tuple[int, int]]
) -> bool:
    """Matching edges are graph edges and vertex-disjoint (symmetric sets)."""
    undirected = {frozenset(e) for e in matching if e[0] != e[1]}
    if not matching <= edges:
        return False
    used: set[int] = set()
    for edge in undirected:
        u, v = tuple(edge)
        if u in used or v in used:
            return False
        used.update((u, v))
    return True


def matching_is_maximal(
    edges: set[tuple[int, int]], matching: set[tuple[int, int]]
) -> bool:
    """No graph edge can be added: every edge touches a matched vertex."""
    matched = {u for e in matching for u in e}
    return all(u in matched or v in matched for u, v in edges if u != v)
