"""Bit-array arithmetic helpers — oracle side of Proposition 4.7.

The dynamic multiplication program stores numbers as unary bit relations;
these helpers convert and recompute products from scratch (via Python
bignums, which are an independent implementation path from the FO formulas).
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["bits_to_int", "int_to_bits", "school_multiply_bits"]


def bits_to_int(bits: Iterable[tuple[int, ...]] | Iterable[int]) -> int:
    """Value of a set of bit positions (accepts {(i,), ...} or {i, ...})."""
    value = 0
    for bit in bits:
        position = bit[0] if isinstance(bit, tuple) else bit
        value |= 1 << position
    return value


def int_to_bits(value: int) -> set[tuple[int]]:
    """Positions of one-bits, as 1-tuples (relation rows)."""
    if value < 0:
        raise ValueError("only nonnegative values have a bit relation")
    out: set[tuple[int]] = set()
    position = 0
    while value:
        if value & 1:
            out.add((position,))
        value >>= 1
        position += 1
    return out


def school_multiply_bits(
    x_bits: set[tuple[int]], y_bits: set[tuple[int]]
) -> set[tuple[int]]:
    """Long multiplication on bit sets — a second, bignum-free oracle."""
    result = 0
    y = bits_to_int(y_bits)
    for (i,) in x_bits:
        result += y << i
    return int_to_bits(result)
