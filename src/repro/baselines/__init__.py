"""From-scratch (static) algorithms: verification oracles and the
"recompute everything" arm of every benchmark.

Nothing in this package touches the FO machinery — these are classical
imperative implementations (union-find, BFS, Kruskal, Edmonds-Karp, KMP,
stack parsing, fixpoint iteration), so agreement with the Dyn-FO programs
is evidence for both sides.
"""

from .alternating import (
    alternating_reachable,
    alternating_reaches,
    fixpoint_iterations,
)
from .arithmetic import bits_to_int, int_to_bits, school_multiply_bits
from .automata import (
    DFA,
    EPSILON,
    alternating_dfa,
    group_product_dfa,
    mod_counter_dfa,
    substring_dfa,
)
from .graphs import (
    adjacency,
    connected_components,
    deterministic_reachable,
    edge_connectivity,
    forest_lca,
    forest_parents,
    is_acyclic,
    is_bipartite,
    is_k_edge_connected,
    kruskal_msf,
    matching_is_maximal,
    matching_is_valid,
    max_flow_min_cut,
    odd_even_paths,
    reachable_pairs_undirected,
    same_component,
    spanning_forest_is_valid,
    transitive_closure,
    transitive_reduction_dag,
)
from .strings import dyck_check, parity
from .unionfind import DisjointSets

__all__ = [
    "DisjointSets",
    "adjacency",
    "connected_components",
    "same_component",
    "reachable_pairs_undirected",
    "spanning_forest_is_valid",
    "is_bipartite",
    "odd_even_paths",
    "transitive_closure",
    "transitive_reduction_dag",
    "is_acyclic",
    "deterministic_reachable",
    "max_flow_min_cut",
    "edge_connectivity",
    "is_k_edge_connected",
    "kruskal_msf",
    "forest_parents",
    "forest_lca",
    "matching_is_valid",
    "matching_is_maximal",
    "DFA",
    "EPSILON",
    "mod_counter_dfa",
    "alternating_dfa",
    "substring_dfa",
    "group_product_dfa",
    "dyck_check",
    "parity",
    "bits_to_int",
    "int_to_bits",
    "school_multiply_bits",
    "alternating_reachable",
    "alternating_reaches",
    "fixpoint_iterations",
]
