"""String oracles: Dyck-language parsing and bit-parity.

``dyck_check`` parses a sparse word (position -> token) with an explicit
stack — the from-scratch arm of experiment E13.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["dyck_check", "parity"]


def dyck_check(word: Mapping[int, tuple[str, int]]) -> bool:
    """Is the word a balanced string over k parenthesis types?

    ``word`` maps position -> ("L" | "R", type); missing positions are
    empty.  Standard stack parse.
    """
    stack: list[int] = []
    for position in sorted(word):
        side, ptype = word[position]
        if side == "L":
            stack.append(ptype)
        elif side == "R":
            if not stack or stack.pop() != ptype:
                return False
        else:
            raise ValueError(f"bad token {word[position]!r}")
    return not stack


def parity(bits) -> bool:
    """Odd number of one-bits?"""
    return len(set(bits)) % 2 == 1
