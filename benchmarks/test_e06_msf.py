"""E6 — Minimum spanning forest (Theorem 4.4) vs Kruskal."""

import pytest

from repro.baselines import kruskal_msf
from repro.programs import make_msf_program
from repro.workloads import weighted_script

from .conftest import replay_dynamic, replay_static

PROGRAM = make_msf_program()


def _kruskal(inputs):
    rows = inputs.relation_view("Ew")
    return kruskal_msf(
        inputs.n,
        {(u, v) for (u, v, w) in rows},
        {(u, v): w for (u, v, w) in rows if u < v},
    )


@pytest.mark.parametrize("n", [8, 10])
def test_dynfo_updates(bench, n):
    bench(replay_dynamic(PROGRAM, n, weighted_script(n, 15, seed=6)))


@pytest.mark.parametrize("n", [8, 10])
def test_static_kruskal(bench, n):
    bench(replay_static(PROGRAM, n, weighted_script(n, 15, seed=6), _kruskal))
