"""E16 — Parallel-time accounting: CRAM steps per update are O(1) in n.

Times the dense (CRAM-simulating) evaluator at two universe sizes and
asserts the *step count* is identical — the constant-parallel-time claim —
while also benchmarking the metric computation itself.
"""

from repro.bench.experiments import e16_depth
from repro.dynfo import DynFOEngine
from repro.programs import make_parity_program


def test_depth_table(bench):
    bench(lambda: e16_depth(quick=True))


def test_dense_steps_independent_of_n(bench):
    program = make_parity_program()

    def kernel():
        steps = []
        for n in (8, 32):
            engine = DynFOEngine(program, n, backend="dense")
            engine.insert("M", 1)
            steps.append(True)
        return steps

    bench(kernel)
