"""E24 — Delta-path smoke: differential staging never loses to full
rematerialization, and effect-record journals shrink with the delta.

Marked ``quick`` so CI can run it without pytest-benchmark as a regression
tripwire for the delta pipeline (``pytest benchmarks -m quick``); the
machine-readable trajectory lives in BENCH_delta.json
(``python benchmarks/emit.py --delta``).
"""

import pytest

from repro.bench.delta import measure_history_curve, measure_mode
from repro.dynfo import DynFOEngine
from repro.programs import make_reach_u_program
from repro.workloads import undirected_script

pytestmark = pytest.mark.quick

# The regression gate: on the tiny smoke workload the delta path's wins are
# modest (indexes and specialization amortize with scale), but it must never
# run meaningfully slower than the full path it replaces.
GATE = 1.1


def test_delta_not_slower_than_full_smoke():
    delta = measure_mode(use_delta=True, n=12, steps=30)
    full = measure_mode(use_delta=False, n=12, steps=30)
    assert delta["per_update_ns"] <= full["per_update_ns"] * GATE, (
        f"delta path regressed: {delta['per_update_ns']} ns/update vs "
        f"{full['per_update_ns']} full (gate {GATE}x)"
    )


def test_delta_journal_bytes_shrink():
    delta = measure_mode(use_delta=True, n=12, steps=30)
    full = measure_mode(use_delta=False, n=12, steps=30)
    assert (
        delta["journal_bytes_per_update"] < full["journal_bytes_per_update"]
    ), "delta effect records should be smaller than full-rewrite records"


def test_specialized_plans_cache_hits():
    """Repeated parameter values must hit the specialized-plan cache, not
    respecialize: replaying the same script again adds zero misses."""
    engine = DynFOEngine(make_reach_u_program(), 8, use_delta=True)
    script = undirected_script(8, 30, seed=2)
    for request in script:
        engine.apply(request)
    first = engine.specialized_plan_cache_stats()
    assert first["misses"] >= 1
    for request in script:
        engine.apply(request)
    second = engine.specialized_plan_cache_stats()
    assert second["misses"] == first["misses"]
    assert second["hits"] >= first["hits"] + len(script)


def test_full_mode_records_displacement_stats():
    """The no-delta arm still accounts tuples_added/removed (displacement
    of the rewritten relations) so dashboards stay comparable."""
    full = measure_mode(use_delta=False, n=10, steps=20)
    assert full["tuples_added_total"] >= 0
    assert full["mode"] == "full"


def test_history_curve_smoke():
    curve = measure_history_curve(n=8, steps=200, buckets=4)
    assert len(curve["bucket_median_ns"]) == 4
    assert curve["flatness_ratio"] >= 1.0
