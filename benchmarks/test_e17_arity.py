"""E17 — Auxiliary arity ablation: PV (arity 3) vs FD+TC (arity 2)."""

import pytest

from repro.programs import make_reach_u_arity2_program, make_reach_u_program
from repro.workloads import undirected_script

from .conftest import replay_dynamic

SCRIPTS = {n: undirected_script(n, 20, seed=17) for n in (8, 12)}


@pytest.mark.parametrize("n", [8, 12])
def test_arity3_updates(bench, n):
    bench(replay_dynamic(make_reach_u_program(), n, SCRIPTS[n]))


@pytest.mark.parametrize("n", [8, 12])
def test_arity2_updates(bench, n):
    bench(replay_dynamic(make_reach_u_arity2_program(), n, SCRIPTS[n]))
