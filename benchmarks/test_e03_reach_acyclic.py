"""E3 — REACH(acyclic) (Theorem 4.2): path relation vs DFS closure."""

import pytest

from repro.baselines import transitive_closure
from repro.programs import make_reach_acyclic_program
from repro.workloads import dag_script

from .conftest import replay_dynamic, replay_static

PROGRAM = make_reach_acyclic_program()


@pytest.mark.parametrize("n", [8, 12, 16])
def test_dynfo_updates(bench, n):
    bench(replay_dynamic(PROGRAM, n, dag_script(n, 25, seed=3)))


@pytest.mark.parametrize("n", [8, 12, 16])
def test_static_closure(bench, n):
    bench(
        replay_static(
            PROGRAM,
            n,
            dag_script(n, 25, seed=3),
            lambda inputs: transitive_closure(inputs.n, inputs.relation_view("E")),
        )
    )
