"""E2 — REACH_u (Theorem 4.1): spanning forest vs all-pairs recompute."""

import pytest

from repro.baselines import reachable_pairs_undirected
from repro.programs import make_reach_u_program
from repro.workloads import undirected_script

from .conftest import replay_dynamic, replay_static

PROGRAM = make_reach_u_program()


@pytest.mark.parametrize("n", [8, 12, 16])
def test_dynfo_updates(bench, n):
    bench(replay_dynamic(PROGRAM, n, undirected_script(n, 20, seed=2)))


@pytest.mark.parametrize("n", [8, 12, 16])
def test_static_all_pairs(bench, n):
    bench(
        replay_static(
            PROGRAM,
            n,
            undirected_script(n, 20, seed=2),
            lambda inputs: reachable_pairs_undirected(
                inputs.n, inputs.relation_view("E")
            ),
        )
    )
