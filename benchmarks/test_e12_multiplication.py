"""E12 — Multiplication (Proposition 4.7): FO carry updates vs remultiply."""

import pytest

from repro.baselines import bits_to_int
from repro.programs import make_multiplication_program
from repro.workloads import number_bit_script

from .conftest import replay_dynamic, replay_static

PROGRAM = make_multiplication_program()


@pytest.mark.parametrize("n", [16, 24])
def test_dynfo_updates(bench, n):
    bench(replay_dynamic(PROGRAM, n, number_bit_script(n, 30, seed=12)))


@pytest.mark.parametrize("n", [16, 24])
def test_static_remultiply(bench, n):
    bench(
        replay_static(
            PROGRAM,
            n,
            number_bit_script(n, 30, seed=12),
            lambda inputs: bits_to_int(inputs.relation_view("X"))
            * bits_to_int(inputs.relation_view("Y")),
        )
    )
