"""E23 — Observability-overhead smoke: tracing stays cheap on the hot path.

Marked ``quick`` so CI can run it as a regression tripwire
(``pytest benchmarks -m quick``).  The mechanism tests assert the payload
shape and the gate verdict; the one wall-clock assertion is the gate
itself — detailed tracing must cost <= ``GATE_OVERHEAD_PCT`` percent on
the E22 hot read, which is the acceptance number for the observability
layer (``python benchmarks/emit.py --obs``).
"""

import pytest

from repro.bench.obs import GATE_OVERHEAD_PCT, collect

pytestmark = pytest.mark.quick


def test_quick_payload_gate_and_shape():
    payload = collect(quick=True)
    assert payload["experiment"] == "E23"
    headline = payload["headline"]
    assert set(headline) >= {
        "untraced_median_us",
        "traced_median_us",
        "overhead_pct",
        "gate_pct",
        "pass",
    }
    assert headline["gate_pct"] == GATE_OVERHEAD_PCT
    arms = {arm["arm"]: arm for arm in payload["read_arms"]}
    assert set(arms) == {"untraced", "traced"}
    assert all(arm["median_us"] > 0 for arm in arms.values())
    write_arms = {arm["arm"]: arm for arm in payload["write_arms"]}
    assert set(write_arms) == {"untraced_write", "traced_write"}
    # the acceptance gate: detailed tracing is within budget on the hot read
    assert headline["pass"], (
        f"tracing overhead {headline['overhead_pct']}% exceeds the "
        f"{GATE_OVERHEAD_PCT}% gate"
    )
