"""E1 — PARITY (Example 3.2): maintained parity bit vs recount."""

import pytest

from repro.programs import make_parity_program
from repro.workloads import bitflip_script

from .conftest import replay_dynamic, replay_static

PROGRAM = make_parity_program()


@pytest.mark.parametrize("n", [64, 256])
def test_dynfo_updates(bench, n):
    bench(replay_dynamic(PROGRAM, n, bitflip_script(n, 20, seed=1)))


@pytest.mark.parametrize("n", [64, 256])
def test_static_recount(bench, n):
    bench(
        replay_static(
            PROGRAM,
            n,
            bitflip_script(n, 20, seed=1),
            lambda inputs: len(inputs.relation_view("M")) % 2 == 1,
        )
    )
