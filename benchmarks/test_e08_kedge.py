"""E8 — k-edge connectivity (Theorem 4.5(2)): composed FO query vs max-flow."""

import pytest

from repro.baselines import is_k_edge_connected
from repro.dynfo import DynFOEngine, apply_request
from repro.logic.structure import Structure
from repro.programs import KEdgeAnalyzer, make_kedge_program
from repro.workloads import undirected_script

PROGRAM = make_kedge_program()
N = 6
SCRIPT = undirected_script(N, 18, seed=8, p_delete=0.3)


def _warm_engine():
    engine = DynFOEngine(PROGRAM, N)
    for request in SCRIPT:
        engine.apply(request)
    return engine


def _edges():
    inputs = Structure.initial(PROGRAM.input_vocabulary, N)
    for request in SCRIPT:
        apply_request(inputs, request, PROGRAM.symmetric_inputs)
    return set(inputs.relation_view("E"))


@pytest.mark.parametrize("k", [1, 2])
def test_composed_fo_query(bench, k):
    engine = _warm_engine()
    analyzer = KEdgeAnalyzer(engine, max_deletions=k - 1 if k > 1 else 0)
    bench(lambda: analyzer.is_k_edge_connected(k))


@pytest.mark.parametrize("k", [1, 2])
def test_static_min_cut(bench, k):
    edges = _edges()
    bench(lambda: is_k_edge_connected(N, edges, k))
