"""E5 — Transitive reduction (Corollary 4.3) vs closure-based recompute."""

import pytest

from repro.baselines import transitive_reduction_dag
from repro.programs import make_transitive_reduction_program
from repro.workloads import dag_script

from .conftest import replay_dynamic, replay_static

PROGRAM = make_transitive_reduction_program()


@pytest.mark.parametrize("n", [8, 12])
def test_dynfo_updates(bench, n):
    bench(replay_dynamic(PROGRAM, n, dag_script(n, 20, seed=5)))


@pytest.mark.parametrize("n", [8, 12])
def test_static_reduction(bench, n):
    bench(
        replay_static(
            PROGRAM,
            n,
            dag_script(n, 20, seed=5),
            lambda inputs: transitive_reduction_dag(
                inputs.n, set(inputs.relation_view("E"))
            ),
        )
    )
