"""E9 — Maximal matching (Theorem 4.5(3)) vs greedy rebuild."""

import pytest

from repro.programs import make_matching_program
from repro.workloads import bounded_degree_script

from .conftest import replay_dynamic, replay_static

PROGRAM = make_matching_program()


def _greedy(inputs):
    matched, matching = set(), set()
    for (u, v) in sorted(inputs.relation_view("E")):
        if u != v and u not in matched and v not in matched:
            matching.add((u, v))
            matched.update((u, v))
    return matching


@pytest.mark.parametrize("n", [8, 12])
def test_dynfo_updates(bench, n):
    bench(
        replay_dynamic(
            PROGRAM, n, bounded_degree_script(n, 25, max_degree=3, seed=9)
        )
    )


@pytest.mark.parametrize("n", [8, 12])
def test_static_greedy_rebuild(bench, n):
    bench(
        replay_static(
            PROGRAM, n, bounded_degree_script(n, 25, max_degree=3, seed=9), _greedy
        )
    )
