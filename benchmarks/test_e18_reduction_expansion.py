"""E18 — Bounded expansion of I_{d-u} (Definition 5.1)."""

from repro.reductions import measure_expansion, reduction_d_to_u


def test_expansion_measurement(bench):
    def kernel():
        report = measure_expansion(reduction_d_to_u(), n=6, trials=40, seed=18)
        assert report.max_delta <= 6
        return report.max_delta

    bench(kernel)
