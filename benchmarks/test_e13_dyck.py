"""E13 — Dyck language D^2 (Proposition 4.8): level shifts vs re-parse."""

import pytest

from repro.baselines import dyck_check
from repro.programs import make_dyck_program
from repro.programs.dyck import left_relation, right_relation
from repro.workloads import dyck_edit_script

from .conftest import replay_dynamic, replay_static

K = 2
PROGRAM = make_dyck_program(K)


def _reparse(inputs):
    word = {}
    for t in range(1, K + 1):
        for (p,) in inputs.relation_view(left_relation(t)):
            word[p] = ("L", t)
        for (p,) in inputs.relation_view(right_relation(t)):
            word[p] = ("R", t)
    return dyck_check(word)


@pytest.mark.parametrize("n", [8, 12])
def test_dynfo_updates(bench, n):
    bench(replay_dynamic(PROGRAM, n, dyck_edit_script(K, n, 25, seed=13)))


@pytest.mark.parametrize("n", [8, 12])
def test_static_reparse(bench, n):
    bench(replay_static(PROGRAM, n, dyck_edit_script(K, n, 25, seed=13), _reparse))
