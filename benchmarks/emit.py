#!/usr/bin/env python
"""Emit the machine-readable benchmarks: BENCH_plan_cache.json, with
``--service`` the serving-layer E22 payload BENCH_service.json, with
``--obs`` the observability-overhead E23 payload BENCH_obs.json, and with
``--delta`` the delta-path E24 payload BENCH_delta.json.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/emit.py                  # full run
    PYTHONPATH=src python benchmarks/emit.py --quick          # CI smoke
    PYTHONPATH=src python benchmarks/emit.py --no-baseline    # skip git arm
    PYTHONPATH=src python benchmarks/emit.py --service        # E22 payload
    PYTHONPATH=src python benchmarks/emit.py --obs            # E23 payload
    PYTHONPATH=src python benchmarks/emit.py --delta          # E24 payload

Equivalent to ``dynfo bench --bench-json BENCH_plan_cache.json``; the
measurement kernels live in :mod:`repro.bench.plan_cache` and
:mod:`repro.bench.service` so every entry point emits identical payloads.
See those modules for what the arms mean.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.plan_cache import PRE_REFACTOR_REV, collect, write_json  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_plan_cache.json",
        help="output path (default: %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small universes/scripts; skips the git-history baseline arm",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the pre-refactor git-history baseline arm",
    )
    parser.add_argument(
        "--baseline-rev",
        default=PRE_REFACTOR_REV,
        help="revision holding the pre-refactor evaluators (default: %(default)s)",
    )
    parser.add_argument(
        "--reach-n",
        type=int,
        default=64,
        help="universe size for the reach_u headline comparison",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="emit the serving-layer E22 payload (BENCH_service.json) "
        "instead of the plan-cache one",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="emit the observability-overhead E23 payload (BENCH_obs.json) "
        "instead of the plan-cache one; exits nonzero if detailed tracing "
        "costs more than the gate on the hot read",
    )
    parser.add_argument(
        "--delta",
        action="store_true",
        help="emit the delta-path E24 payload (BENCH_delta.json) instead of "
        "the plan-cache one; reports the delta-vs-full speedup, the journal "
        "bytes reduction, and the history-independence flatness ratio",
    )
    args = parser.parse_args(argv)
    if args.delta:
        from repro.bench.delta import collect as collect_delta
        from repro.bench.delta import write_json as write_delta_json

        out = args.out
        if out == "BENCH_plan_cache.json":  # the plan-cache default
            out = "BENCH_delta.json"
        payload = collect_delta(quick=args.quick)
        path = write_delta_json(out, payload)
        relational = payload["arms"]["relational"]
        curve = payload["history_independence"]
        print(
            f"reach_u n={relational['delta']['n']} relational: "
            f"{relational['speedup_x']}x delta vs full "
            f"({relational['full']['per_update_ns']} -> "
            f"{relational['delta']['per_update_ns']} ns/update); "
            f"journal {relational['journal_reduction_x']}x smaller "
            f"({relational['full']['journal_bytes_per_update']} -> "
            f"{relational['delta']['journal_bytes_per_update']} B/update)"
        )
        print(
            f"history independence: flatness {curve['flatness_ratio']} over "
            f"{curve['steps']} steps (n={curve['n']})"
        )
        print(f"wrote {path}")
        return 0
    if args.obs:
        from repro.bench.obs import collect as collect_obs
        from repro.bench.obs import write_json as write_obs_json

        out = args.out
        if out == "BENCH_plan_cache.json":  # the plan-cache default
            out = "BENCH_obs.json"
        payload = collect_obs(quick=args.quick)
        path = write_obs_json(out, payload)
        headline = payload["headline"]
        print(
            f"hot-read tracing overhead: {headline['overhead_pct']}% "
            f"({headline['untraced_median_us']} -> "
            f"{headline['traced_median_us']} us median; "
            f"gate {headline['gate_pct']}%)"
        )
        print(f"wrote {path}")
        return 0 if headline["pass"] else 1
    if args.service:
        from repro.bench.service import collect as collect_service
        from repro.bench.service import write_json as write_service_json

        out = args.out
        if out == "BENCH_plan_cache.json":  # the plan-cache default
            out = "BENCH_service.json"
        payload = collect_service(quick=args.quick)
        path = write_service_json(out, payload)
        headline = payload["read_fanout"].get("headline", {})
        if "speedup_x" in headline:
            print(
                f"reach_u hot reads, {headline['clients']} clients: "
                f"{headline['speedup_x']}x vs serial "
                f"({headline['serial_rps']} -> {headline['fanout_rps']} req/s)"
            )
        print(f"wrote {path}")
        return 0
    payload = collect(
        quick=args.quick,
        baseline_rev=None if args.no_baseline else args.baseline_rev,
        reach_n=args.reach_n,
    )
    path = write_json(args.out, payload)
    headline = payload.get("reach_u_headline", {})
    if "speedup_x" in headline:
        print(f"reach_u n={args.reach_n}: {headline['speedup_x']}x vs pre-refactor")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
