"""E10 — LCA in directed forests (Theorem 4.5(4)) vs ancestor walks."""

import pytest

from repro.baselines import forest_lca
from repro.programs import make_lca_program
from repro.workloads import forest_script

from .conftest import replay_dynamic, replay_static

PROGRAM = make_lca_program()


def _all_pairs(inputs):
    edges = set(inputs.relation_view("E"))
    return {
        (x, y, forest_lca(inputs.n, edges, x, y))
        for x in range(inputs.n)
        for y in range(inputs.n)
    }


@pytest.mark.parametrize("n", [8, 12])
def test_dynfo_updates(bench, n):
    bench(replay_dynamic(PROGRAM, n, forest_script(n, 25, seed=10)))


@pytest.mark.parametrize("n", [8, 12])
def test_static_all_pairs(bench, n):
    bench(replay_static(PROGRAM, n, forest_script(n, 25, seed=10), _all_pairs))
