"""E21 — Plan-cache smoke: compile-once holds and caching pays for itself.

Marked ``quick`` so CI can run it without pytest-benchmark as a regression
tripwire for the compiled-plan pipeline (``pytest benchmarks -m quick``);
the machine-readable trajectory lives in BENCH_plan_cache.json (see
``benchmarks/emit.py``).
"""

import pytest

from repro.bench.plan_cache import SUITE, measure_compiled, measure_per_request

pytestmark = pytest.mark.quick


@pytest.mark.parametrize("name", sorted(SUITE))
def test_compile_once_per_rule(name):
    result = measure_compiled(name, "relational", n=10, steps=40)
    lookups = result["cache_hits"] + result["cache_misses"]
    assert lookups == 40  # one plan lookup per update
    # compile-once: misses bounded by the program's rule count, not steps
    assert result["cache_misses"] <= 10
    second = measure_compiled(name, "relational", n=10, steps=40)
    assert second["cache_misses"] == result["cache_misses"]


def test_dense_backend_caches_too(quick_n=10):
    result = measure_compiled("reach_u", "dense", n=quick_n, steps=30)
    assert result["cache_misses"] <= 2
    assert result["cache_hit_rate"] > 0.9


def test_compile_cost_amortizes_away():
    """Across a longer run, total compile time is a vanishing fraction."""
    result = measure_compiled("reach_u", "relational", n=12, steps=120)
    assert result["cache_misses"] <= 2
    assert result["compile_amortized_fraction"] < 0.25


def test_cached_plans_not_slower_than_recompiling():
    """The cache must never lose to per-request recompilation by more than
    measurement noise — a tripwire for accidentally keying the cache wrong
    (every lookup missing would double compile work per update)."""
    compiled = measure_compiled("reach_u", "relational", n=12, steps=60)
    recompile = measure_per_request("reach_u", n=12, steps=60)
    assert compiled["per_update_ns"] < recompile["per_update_ns"] * 1.5
