"""E20 — query-frequency crossover: maintained lookup vs per-query BFS."""

from repro.baselines import same_component
from repro.dynfo import DynFOEngine, apply_request
from repro.logic.structure import Structure
from repro.programs import make_reach_u_program
from repro.workloads import undirected_script

PROGRAM = make_reach_u_program()
N = 10
SCRIPT = undirected_script(N, 30, seed=20)
PAIRS = [(a, b) for a in range(0, N, 2) for b in range(1, N, 2)]


def test_maintained_lookup(bench):
    engine = DynFOEngine(PROGRAM, N)
    for request in SCRIPT:
        engine.apply(request)
    structure = engine.structure

    def kernel():
        return [
            a == b or structure.holds("PV", (a, b, a)) for (a, b) in PAIRS
        ]

    bench(kernel)


def test_static_per_query_recompute(bench):
    inputs = Structure.initial(PROGRAM.input_vocabulary, N)
    for request in SCRIPT:
        apply_request(inputs, request, PROGRAM.symmetric_inputs)
    edges = inputs.relation_view("E")

    def kernel():
        return [
            same_component(N, edges).connected(a, b) for (a, b) in PAIRS
        ]

    bench(kernel)
