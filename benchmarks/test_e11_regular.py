"""E11 — Regular languages (Theorem 4.6): interval table vs DFA re-run."""

import pytest

from repro.baselines import alternating_dfa, mod_counter_dfa, substring_dfa
from repro.programs import make_regular_program
from repro.programs.regular import symbol_relation
from repro.workloads import word_edit_script

from .conftest import replay_dynamic, replay_static

DFAS = {
    "mod3": mod_counter_dfa(3),
    "ab_star": alternating_dfa(),
    "contains_aba": substring_dfa(["a", "b", "a"], ["a", "b"]),
}


@pytest.mark.parametrize("name", sorted(DFAS))
def test_dynfo_updates(bench, name):
    dfa = DFAS[name]
    program = make_regular_program(dfa, name=name)
    bench(replay_dynamic(program, 12, word_edit_script(dfa, 12, 25, seed=11)))


@pytest.mark.parametrize("name", sorted(DFAS))
def test_static_rerun(bench, name):
    dfa = DFAS[name]
    program = make_regular_program(dfa, name=name)

    def rerun(inputs):
        word = [None] * inputs.n
        for symbol in dfa.alphabet:
            for (p,) in inputs.relation_view(symbol_relation(symbol)):
                word[p] = symbol
        return dfa.run(word)

    bench(replay_static(program, 12, word_edit_script(dfa, 12, 25, seed=11), rerun))
