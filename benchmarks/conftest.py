"""Shared kernels for the benchmark suite.

Each ``benchmarks/test_eNN_*.py`` file regenerates one experiment of
DESIGN.md Sec. 4 under pytest-benchmark; ``python -m repro bench ENN``
renders the corresponding comparison table with the same kernels.
"""

from __future__ import annotations

from typing import Callable, Sequence

import pytest

from repro.dynfo import DynFOEngine, Request, apply_request
from repro.dynfo.program import DynFOProgram
from repro.logic.structure import Structure


def replay_dynamic(
    program: DynFOProgram,
    n: int,
    script: Sequence[Request],
    backend: str = "relational",
) -> Callable[[], None]:
    """A kernel replaying ``script`` on a fresh engine (the Dyn-FO arm)."""

    def kernel() -> None:
        engine = DynFOEngine(program, n, backend=backend)
        for request in script:
            engine.apply(request)

    return kernel


def replay_static(
    program: DynFOProgram,
    n: int,
    script: Sequence[Request],
    recompute,
) -> Callable[[], None]:
    """A kernel applying requests to a raw input structure and recomputing
    the answer from scratch after each (the static arm)."""

    def kernel() -> None:
        inputs = Structure.initial(program.input_vocabulary, n)
        for request in script:
            apply_request(inputs, request, program.symmetric_inputs)
            recompute(inputs)

    return kernel


@pytest.fixture
def bench(benchmark):
    """Benchmark with tame defaults for our second-scale kernels."""

    def run(kernel):
        return benchmark.pedantic(kernel, rounds=3, iterations=1, warmup_rounds=1)

    return run
