"""E22 — Serving-layer smoke: fan-out, collapsing, and group commit work.

Marked ``quick`` so CI can run it without pytest-benchmark as a regression
tripwire for the serving layer (``pytest benchmarks -m quick``).  These
tests assert *mechanisms* — reads collapse, batches share fsyncs, every
client sees consistent answers — never wall-clock ratios, which belong to
the machine-readable BENCH_service.json (``python benchmarks/emit.py
--service``).
"""

import threading

import pytest

from repro.bench.service import _warm_script, collect
from repro.dynfo.requests import Delete, Insert
from repro.service import DynFOService, ServiceClient

pytestmark = pytest.mark.quick


def test_warm_script_is_connected_and_queryable():
    service = DynFOService()
    client = ServiceClient(service)
    client.open("w", "reach_u", n=16)
    client.apply_script("w", _warm_script(16))
    # the ring alone connects everything; chords only add edges
    assert client.ask("w", "reach", s=0, t=15)
    rows = client.query("w", "connected")
    assert len(rows) == 16 * 15  # every ordered pair of distinct nodes
    service.close()


def test_concurrent_identical_reads_collapse():
    service = DynFOService(read_workers=8)
    client = ServiceClient(service)
    client.open("c", "reach_u", n=24)
    client.apply_script("c", _warm_script(24))

    answers, errors = [], []

    def hammer():
        try:
            local = ServiceClient(service)
            for _ in range(4):
                answers.append(len(local.query("c", "connected")))
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)

    threads = [threading.Thread(target=hammer) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    assert len(set(answers)) == 1  # everyone saw the same relation
    stats = client.stats("c")["c"]
    assert stats["reads_collapsed"] > 0
    assert stats["reads"] >= 24
    service.close()


def test_batched_writes_share_fsyncs(tmp_path):
    service = DynFOService(data_dir=tmp_path, max_batch=64)
    client = ServiceClient(service)
    client.open("b", "reach_u", n=16)
    edges = [(i, (i + 5) % 16) for i in range(10)]

    client.apply_script("b", [Insert("E", a, b) for a, b in edges])
    stats = client.stats("b")["b"]
    assert stats["batches"] == 1  # one contiguous script -> one group commit
    assert stats["batch_size_max"] == len(edges)
    assert stats["journal"]["fsyncs"] == 1
    assert stats["journal"]["appends"] == len(edges)

    client.apply_script("b", [Delete("E", a, b) for a, b in edges])
    stats = client.stats("b")["b"]
    assert stats["batches"] == 2
    assert stats["journal"]["fsyncs"] == 2
    service.close()


def test_quick_payload_shape():
    """The emitted payload carries the fields the trajectory tracking and
    the acceptance check read."""
    payload = collect(quick=True)
    assert payload["experiment"] == "E22"
    headline = payload["read_fanout"]["headline"]
    assert set(headline) >= {"clients", "serial_rps", "fanout_rps", "speedup_x"}
    assert headline["speedup_x"] > 0
    hot = [a for a in payload["read_fanout"]["arms"] if a["mode"] == "hot"]
    assert any(a["reads_collapsed_delta"] > 0 for a in hot if a["clients"] > 1)
    batches = payload["write_batch"]
    assert batches[0]["batch_size"] < batches[-1]["batch_size"]
    # group commit: bigger batches, fewer fsyncs per request
    assert batches[-1]["fsyncs_per_request"] < batches[0]["fsyncs_per_request"]
