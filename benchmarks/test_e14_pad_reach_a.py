"""E14 — PAD(REACH_a) (Theorem 5.14): staged FO steps vs full fixpoint."""

import random

import pytest

from repro.baselines import alternating_reaches
from repro.dynfo import DynFOEngine
from repro.programs import make_pad_reach_a_program
from repro.workloads import PadAdversary

N = 6
PROGRAM = make_pad_reach_a_program()


def test_per_request_fo_step(bench):
    def kernel():
        engine = DynFOEngine(PROGRAM, N)
        adversary = PadAdversary(N)
        rng = random.Random(14)
        for _ in range(N):
            engine.set_const("s", 0)
        for _ in range(4):
            for request in adversary.random_batch(rng):
                engine.apply(request)
            engine.ask("pad_member")

    bench(kernel)


def test_static_full_fixpoint_per_real_change(bench):
    adversary = PadAdversary(N)
    rng = random.Random(14)
    for _ in range(6):
        adversary.random_batch(rng)

    def kernel():
        for _ in range(4):
            alternating_reaches(
                N, adversary.edges, adversary.universal, adversary.s, adversary.t
            )

    bench(kernel)
