"""E19 — history independence of per-request cost (REACH_u)."""

from repro.dynfo import DynFOEngine
from repro.programs import make_reach_u_program
from repro.workloads import undirected_script

PROGRAM = make_reach_u_program()
N = 10


def _warm(steps):
    engine = DynFOEngine(PROGRAM, N)
    for request in undirected_script(N, steps, seed=19):
        engine.apply(request)
    return engine


def test_requests_early_in_history(bench):
    tail = undirected_script(N, 130, seed=19)[110:]

    def kernel():
        engine = _warm(110)
        for request in tail:
            engine.apply(request)

    bench(kernel)


def test_work_accounting_is_exposed(bench):
    def kernel():
        engine = _warm(30)
        assert engine.last_update_stats["tuples_written"] >= 0
        return engine.last_update_stats

    bench(kernel)
