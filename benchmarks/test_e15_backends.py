"""E15 — Evaluator ablation: naive vs relational vs dense on REACH_u."""

import pytest

from repro.programs import make_reach_u_program
from repro.workloads import undirected_script

from .conftest import replay_dynamic

PROGRAM = make_reach_u_program()


@pytest.mark.parametrize("backend", ["naive", "relational", "dense"])
def test_small_universe(bench, backend):
    bench(replay_dynamic(PROGRAM, 6, undirected_script(6, 12, seed=15), backend))


@pytest.mark.parametrize("backend", ["relational", "dense"])
def test_medium_universe(bench, backend):
    bench(replay_dynamic(PROGRAM, 10, undirected_script(10, 12, seed=15), backend))
