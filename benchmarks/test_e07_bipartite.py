"""E7 — Bipartiteness (Theorem 4.5(1)) vs BFS 2-coloring."""

import pytest

from repro.baselines import is_bipartite
from repro.programs import make_bipartite_program
from repro.workloads import undirected_script

from .conftest import replay_dynamic, replay_static

PROGRAM = make_bipartite_program()


@pytest.mark.parametrize("n", [8, 12])
def test_dynfo_updates(bench, n):
    bench(replay_dynamic(PROGRAM, n, undirected_script(n, 20, seed=7)))


@pytest.mark.parametrize("n", [8, 12])
def test_static_two_coloring(bench, n):
    bench(
        replay_static(
            PROGRAM,
            n,
            undirected_script(n, 20, seed=7),
            lambda inputs: is_bipartite(inputs.n, inputs.relation_view("E")),
        )
    )
