"""E4 — REACH_d (Example 2.1 + Prop 5.3): transferred engine vs walk."""

import pytest

from repro.baselines import deterministic_reachable
from repro.dynfo import apply_request
from repro.logic.structure import Structure
from repro.programs import make_reach_d_engine
from repro.workloads import reach_d_script


@pytest.mark.parametrize("n", [6, 8])
def test_transferred_updates(bench, n):
    script = reach_d_script(n, 20, seed=4)

    def kernel():
        engine = make_reach_d_engine(n)
        for request in script:
            engine.apply(request)
            engine.ask("reach")

    bench(kernel)


@pytest.mark.parametrize("n", [6, 8])
def test_static_walk(bench, n):
    from repro.reductions import reduction_d_to_u

    source = reduction_d_to_u().source
    script = reach_d_script(n, 20, seed=4)

    def kernel():
        inputs = Structure.initial(source, n)
        for request in script:
            apply_request(inputs, request)
            deterministic_reachable(
                n,
                set(inputs.relation_view("E")),
                inputs.constant("s"),
                inputs.constant("t"),
            )

    bench(kernel)
