"""Scenario: a shared social graph served to concurrent clients.

Two clients share one durable ``reach_u`` session over the serving layer
(docs/TUTORIAL.md Sec. 8): Amy's client adds friendships while Bo's client
watches who Amy can reach.  The point being demonstrated is
*read-your-writes under concurrency*: a write is acknowledged only after
its group-commit batch is durably journaled, and reads always run against
the current structure version — so the moment Amy's ``add`` returns, Bo's
next query sees the new edge, no matter how the scheduler interleaved the
two connections.

Run:  PYTHONPATH=src python examples/chat_over_dynfo.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from repro.dynfo.requests import Insert
from repro.service import DynFOServer, DynFOService, TCPServiceClient

PEOPLE = ["amy", "bo", "cam", "dee", "eli", "fay", "gus", "hal"]
INDEX = {name: i for i, name in enumerate(PEOPLE)}

FRIENDSHIPS = [
    ("amy", "cam"),
    ("cam", "dee"),
    ("bo", "eli"),
    ("eli", "fay"),
    ("dee", "bo"),  # this one bridges Amy's circle and Bo's
    ("amy", "hal"),
]


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="dynfo-chat-") as tmp:
        server = DynFOServer(port=0, service=DynFOService(data_dir=Path(tmp)))
        server.serve_in_background()
        print(f"serving on 127.0.0.1:{server.port}\n")

        amy = TCPServiceClient(port=server.port)
        bo = TCPServiceClient(port=server.port)
        amy.open("friends", "reach_u", n=len(PEOPLE))
        bo.open("friends")  # same session, second connection

        seen = []

        def bo_watches(a: str, b: str) -> None:
            # runs on Bo's own connection, concurrently with Amy's writes
            reachable = bo.ask(
                "friends", "reach", s=INDEX[a], t=INDEX[b]
            )
            seen.append(((a, b), reachable))

        for a, b in FRIENDSHIPS:
            amy.apply("friends", Insert("E", INDEX[a], INDEX[b]))
            # Amy's apply() has returned, so the edge is committed AND
            # durable; Bo must see its consequences even from another
            # connection, even on a concurrent thread.
            watcher = threading.Thread(target=bo_watches, args=("amy", "bo"))
            watcher.start()
            watcher.join()
            (pair, reachable) = seen[-1]
            print(
                f"amy added {a:>3} -- {b:<3}  |  bo asks amy~bo: "
                f"{'connected' if reachable else 'not yet'}"
            )

        assert seen[-1][1], "read-your-writes: the bridge must be visible"

        rows = sorted(
            (PEOPLE[x], PEOPLE[y])
            for (x, y) in bo.query("friends", "connected")
            if x < y
        )
        print(f"\nconnected pairs now: {len(rows)}")
        stats = bo.stats("friends")["friends"]
        print(
            f"session counters: {stats['writes']} writes in "
            f"{stats['batches']} batches, {stats['reads']} reads, "
            f"journal fsyncs {stats['journal']['fsyncs']}"
        )

        amy.close()
        bo.close()
        server.stop()
        print("server stopped; the session is on disk and would survive a restart")


if __name__ == "__main__":
    main()
