"""Scenario: Theorem 5.14 in action — evaluating a *changing circuit*
(a P-complete problem!) with first-order steps, thanks to padding.

REACH_a — alternating-graph reachability — is the circuit value problem:
universal vertices are AND gates, existential vertices are OR gates, and
"s alternating-reaches t" means "the circuit output is true".  It is
complete for P, so it should not be first-order maintainable... unless the
input is padded: with n copies to keep in sync, every real edit buys the
maintainer n first-order steps, and REACH_a's fixpoint needs only n.

We evaluate the little monotone circuit

    out = AND(or1, or2),  or1 = OR(in_a, in_b),  or2 = OR(in_b, in_c)

by encoding gates as vertices (edges point gate -> operand; a true input is
an edge to the constant-true vertex) and flipping inputs live.

Run:  python examples/padded_circuit.py
"""

from repro import DynFOEngine, make_pad_reach_a_program
from repro.workloads import PadAdversary

VERTICES = {"out": 0, "or1": 1, "or2": 2, "in_a": 3, "in_b": 4, "in_c": 5, "TRUE": 6}
N = 7


def main() -> None:
    engine = DynFOEngine(make_pad_reach_a_program(), N)
    adversary = PadAdversary(N)

    def apply(batch) -> None:
        for request in batch:
            engine.apply(request)

    # prime the stage pipeline on the empty graph
    for _ in range(N):
        engine.set_const("s", 0)

    # sources / target: the query is "does `out` reach TRUE?"
    apply(adversary.retarget("s", VERTICES["out"]))
    apply(adversary.retarget("t", VERTICES["TRUE"]))

    # wire the circuit: out is an AND gate (universal vertex)
    apply(adversary.toggle_universal(VERTICES["out"]))
    for gate, operands in [("out", ("or1", "or2")), ("or1", ("in_a", "in_b")),
                           ("or2", ("in_b", "in_c"))]:
        for operand in operands:
            apply(adversary.toggle_edge(VERTICES[gate], VERTICES[operand]))

    def set_input(name: str, value: bool) -> None:
        wired = (VERTICES[name], VERTICES["TRUE"]) in adversary.edges
        if wired != value:
            apply(adversary.toggle_edge(VERTICES[name], VERTICES["TRUE"]))

    def evaluate(a: bool, b: bool, c: bool) -> bool:
        set_input("in_a", a)
        set_input("in_b", b)
        set_input("in_c", c)
        assert engine.ask("copies_equal")
        return engine.ask("pad_member")

    print("circuit: out = (a | b) & (b | c)")
    print(f"{'a':>5} {'b':>5} {'c':>5}   out")
    for a in (False, True):
        for b in (False, True):
            for c in (False, True):
                got = evaluate(a, b, c)
                want = (a or b) and (b or c)
                marker = "" if got == want else "  <-- MISMATCH"
                print(f"{a!s:>5} {b!s:>5} {c!s:>5}   {got}{marker}")
    print()
    print(f"every row above was reached by single-tuple padded requests")
    print(f"({N} per real change), each a constant-depth FO update.")


if __name__ == "__main__":
    main()
