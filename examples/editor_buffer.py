"""Scenario: live syntax feedback in an editor buffer.

Each keystroke is a single-position update; two checks stay current through
first-order updates only:

* bracket balance over two bracket types — the Dyck language D^2
  (Proposition 4.8);
* a lexical rule "identifiers alternate a/b starting with a" — a regular
  language via the interval-composition table of Theorem 4.6.

Run:  python examples/editor_buffer.py
"""

from repro import DynFOEngine, make_dyck_program, make_regular_program
from repro.baselines import alternating_dfa
from repro.programs.dyck import left_relation, right_relation
from repro.programs.regular import symbol_relation

WIDTH = 12


class BracketBuffer:
    """A WIDTH-cell buffer holding (), [] tokens with live balance checks."""

    GLYPHS = {("L", 1): "(", ("R", 1): ")", ("L", 2): "[", ("R", 2): "]"}
    TOKENS = {glyph: token for token, glyph in GLYPHS.items()}

    def __init__(self) -> None:
        self.engine = DynFOEngine(make_dyck_program(2), WIDTH)
        self.cells: dict[int, tuple[str, int]] = {}

    def type_char(self, position: int, glyph: str) -> None:
        if position in self.cells:
            self.erase(position)
        side, ptype = self.TOKENS[glyph]
        rel = left_relation(ptype) if side == "L" else right_relation(ptype)
        self.engine.insert(rel, position)
        self.cells[position] = (side, ptype)

    def erase(self, position: int) -> None:
        if position not in self.cells:
            return
        side, ptype = self.cells.pop(position)
        rel = left_relation(ptype) if side == "L" else right_relation(ptype)
        self.engine.delete(rel, position)

    def render(self) -> str:
        return "".join(
            self.GLYPHS.get(self.cells.get(i), "·") for i in range(WIDTH)
        )

    def status(self) -> str:
        return "balanced" if self.engine.ask("member") else "UNBALANCED"


def bracket_demo() -> None:
    print("== live bracket matching (Dyck D^2, Prop 4.8) ==")
    buffer = BracketBuffer()
    for position, glyph in [(0, "("), (1, "["), (4, "]"), (6, ")")]:
        buffer.type_char(position, glyph)
        print(f"  {buffer.render()}   {buffer.status()}")
    buffer.type_char(4, ")")  # oops: wrong closer
    print(f"  {buffer.render()}   {buffer.status()}  <- type mismatch")
    buffer.type_char(4, "]")
    print(f"  {buffer.render()}   {buffer.status()}")
    buffer.erase(0)
    print(f"  {buffer.render()}   {buffer.status()}  <- dangling closers")
    print()


def lexical_demo() -> None:
    print("== lexical rule (ab)* (regular, Thm 4.6) ==")
    dfa = alternating_dfa()
    engine = DynFOEngine(make_regular_program(dfa, name="ab_star"), WIDTH)
    word: dict[int, str] = {}

    def put(position: int, symbol: str) -> None:
        if position in word:
            engine.delete(symbol_relation(word.pop(position)), position)
        engine.insert(symbol_relation(symbol), position)
        word[position] = symbol
        text = "".join(word.get(i, "·") for i in range(WIDTH))
        verdict = "ok" if engine.ask("accepted") else "REJECT"
        print(f"  {text}   {verdict}")

    put(0, "a")
    put(3, "b")   # gaps are fine: the word reads "ab"
    put(5, "a")
    put(9, "b")   # "abab"
    put(5, "b")   # "abbb" - breaks alternation
    put(5, "a")   # fixed


if __name__ == "__main__":
    bracket_demo()
    lexical_demo()
