"""Scenario: a social graph under churn — the database-flavoured workload
the paper's introduction motivates ("a fairly large object being worked on
over a period of time ... repeatedly modified by users").

We maintain, purely with first-order updates:

* community membership (REACH_u, Theorem 4.1) — "are Ann and Max in the
  same friend cluster?";
* a study-buddy pairing (maximal matching, Theorem 4.5(3)) that survives
  friendships appearing and disappearing.

Run:  python examples/social_network.py
"""

import random

from repro import DynFOEngine, make_matching_program, make_reach_u_program

PEOPLE = [
    "ann", "bea", "cal", "dee", "eli", "fay", "gus", "hal", "ivy", "joe",
]
INDEX = {name: i for i, name in enumerate(PEOPLE)}


def name_of(i: int) -> str:
    return PEOPLE[i]


def main() -> None:
    n = len(PEOPLE)
    communities = DynFOEngine(make_reach_u_program(), n)
    buddies = DynFOEngine(make_matching_program(), n)

    def befriend(a: str, b: str) -> None:
        communities.insert("E", INDEX[a], INDEX[b])
        buddies.insert("E", INDEX[a], INDEX[b])

    def unfriend(a: str, b: str) -> None:
        communities.delete("E", INDEX[a], INDEX[b])
        buddies.delete("E", INDEX[a], INDEX[b])

    def same_community(a: str, b: str) -> bool:
        return communities.ask("reach", s=INDEX[a], t=INDEX[b])

    def current_pairs() -> list[tuple[str, str]]:
        pairs = {
            tuple(sorted((name_of(u), name_of(v))))
            for (u, v) in buddies.query("matching")
        }
        return sorted(pairs)

    print("== initial friendships ==")
    for a, b in [("ann", "bea"), ("bea", "cal"), ("dee", "eli"),
                 ("fay", "gus"), ("gus", "hal"), ("ivy", "joe")]:
        befriend(a, b)
        print(f"  {a} <-> {b}")

    print("\nann ~ cal (via bea)?", same_community("ann", "cal"))
    print("ann ~ joe?          ", same_community("ann", "joe"))
    print("study pairs:", current_pairs())

    print("\n== churn ==")
    befriend("cal", "dee")
    print("  cal <-> dee   (merges two clusters)")
    print("  ann ~ eli now?", same_community("ann", "eli"))

    unfriend("bea", "cal")
    print("  bea x cal     (splits them again?)")
    print("  ann ~ eli now?", same_community("ann", "eli"),
          "(no other bridge)")

    unfriend("fay", "gus")
    print("  fay x gus     (fay's buddy pairing repairs itself)")
    print("  study pairs:", current_pairs())

    print("\n== a burst of random churn, answers stay exact ==")
    rng = random.Random(7)
    for _ in range(30):
        a, b = rng.sample(PEOPLE, 2)
        if rng.random() < 0.5:
            befriend(a, b)
        else:
            unfriend(a, b)
    clusters: dict[str, list[str]] = {}
    for person in PEOPLE:
        root = next(
            (other for other in PEOPLE if same_community(person, other)),
            person,
        )
        clusters.setdefault(root, []).append(person)
    print("clusters:", sorted(clusters.values(), key=len, reverse=True))
    print("pairs:   ", current_pairs())


if __name__ == "__main__":
    main()
