"""Quickstart: maintaining non-first-order queries with first-order updates.

The headline of Patnaik & Immerman's paper: properties like PARITY and
undirected reachability, famously *not* expressible in static first-order
logic (relational calculus), become first-order once you maintain an
auxiliary database under updates.  This script runs both flagship examples.

Run:  python examples/quickstart.py
"""

from repro import DynFOEngine, make_parity_program, make_reach_u_program


def parity_demo() -> None:
    print("== PARITY (Example 3.2) ==")
    engine = DynFOEngine(make_parity_program(), n=16)
    print("empty string            -> odd?", engine.ask("odd"))
    engine.insert("M", 3)
    engine.insert("M", 7)
    engine.insert("M", 11)
    print("set bits 3, 7, 11       -> odd?", engine.ask("odd"))
    engine.insert("M", 7)  # inserting a present bit changes nothing
    print("re-set bit 7 (no-op)    -> odd?", engine.ask("odd"))
    engine.delete("M", 3)
    print("clear bit 3             -> odd?", engine.ask("odd"))
    print()


def reachability_demo() -> None:
    print("== REACH_u (Theorem 4.1) ==")
    engine = DynFOEngine(make_reach_u_program(), n=16)
    # build two chains: 0-1-2-3 and 10-11-12
    for (u, v) in [(0, 1), (1, 2), (2, 3), (10, 11), (11, 12)]:
        engine.insert("E", u, v)
    print("two chains: 0..3 and 10..12")
    print("  0 ~ 3  ?", engine.ask("reach", s=0, t=3))
    print("  0 ~ 12 ?", engine.ask("reach", s=0, t=12))

    engine.insert("E", 3, 10)  # bridge the chains
    print("bridge 3-10 inserted")
    print("  0 ~ 12 ?", engine.ask("reach", s=0, t=12))

    engine.delete("E", 2, 3)  # cut the first chain
    print("edge 2-3 deleted")
    print("  0 ~ 12 ?", engine.ask("reach", s=0, t=12))
    print("  3 ~ 12 ?", engine.ask("reach", s=3, t=12))

    forest = sorted(tuple(sorted(edge)) for edge in engine.query("forest"))
    print("  spanning forest:", sorted(set(forest)))
    print()
    print("every update above was one first-order (relational calculus)")
    print("step over the auxiliary database - no recursion, no loops.")


if __name__ == "__main__":
    parity_demo()
    reachability_demo()
