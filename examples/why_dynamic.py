"""Why "dynamic"? — the inexpressibility side of the paper's story.

Section 4 opens: "It is well known that the graph reachability problem is
not first-order expressible and this has often been used as a justification
for using database query languages more powerful than FO."  The classical
proof tool is the Ehrenfeucht-Fraissé game: if Duplicator survives k rounds
on two structures that differ on a property, no FO sentence of quantifier
rank k expresses that property.

This script plays the games live:

1. one long cycle vs. two short cycles — they differ on *connectivity*,
   yet Duplicator survives several rounds;
2. then the punchline: the Dyn-FO program of Theorem 4.1 answers the same
   connectivity question exactly, using only FO *updates*.

Run:  python examples/why_dynamic.py
"""

from repro import DynFOEngine, Structure, Vocabulary, make_reach_u_program
from repro.logic import distinguishing_rank, duplicator_wins

VOC = Vocabulary.parse("E^2")


def make_graph(n, edges):
    structure = Structure(VOC, n)
    for (u, v) in edges:
        structure.add("E", (u, v))
        structure.add("E", (v, u))
    return structure


def cycle_edges(vertices):
    return [
        (vertices[i], vertices[(i + 1) % len(vertices)])
        for i in range(len(vertices))
    ]


def main() -> None:
    one_cycle = make_graph(8, cycle_edges(list(range(8))))
    two_cycles = make_graph(
        8, cycle_edges([0, 1, 2, 3]) + cycle_edges([4, 5, 6, 7])
    )

    print("A = C_8 (connected);  B = C_4 + C_4 (disconnected)")
    print("round-by-round EF game (Duplicator wins => rank-k FO blind):")
    for k in range(1, 4):
        winner = "Duplicator" if duplicator_wins(one_cycle, two_cycles, k) else "Spoiler"
        print(f"  {k} round(s): {winner} wins")
    rank = distinguishing_rank(one_cycle, two_cycles, max_rounds=4)
    print(f"first distinguishing quantifier rank: {rank}")
    print("(growing the cycles pushes this rank up without bound — no fixed")
    print(" FO sentence decides connectivity; that is the static barrier.)")

    print()
    print("the dynamic escape (Theorem 4.1): build both graphs by requests,")
    print("let FO *updates* maintain connectivity:")
    for name, edges in (
        ("C_8", cycle_edges(list(range(8)))),
        ("C_4 + C_4", cycle_edges([0, 1, 2, 3]) + cycle_edges([4, 5, 6, 7])),
    ):
        engine = DynFOEngine(make_reach_u_program(), 8)
        for (u, v) in edges:
            engine.insert("E", u, v)
        print(f"  {name:<10} 0 ~ 5 ?  {engine.ask('reach', s=0, t=5)}")
    print()
    print("same logic, different resource: per-update FO replaces per-query FO.")


if __name__ == "__main__":
    main()
