"""Scenario: live monitoring of an evolving network topology.

Links flap; three health invariants are maintained by first-order updates:

* two-tier wiring discipline — spine/leaf fabrics must stay *bipartite*
  (Theorem 4.5(1)): any same-tier link shows up as an odd cycle;
* resilience — is the fabric 2-edge-connected (no single link is a
  bridge)?  Theorem 4.5(2)'s composed-deletion query;
* a minimum-cost backup tree — the MSF of Theorem 4.4 under link costs.

Run:  python examples/network_monitor.py
"""

from repro import DynFOEngine, make_bipartite_program, make_msf_program
from repro.programs import KEdgeAnalyzer, make_kedge_program

SPINES = {0: "spine-A", 1: "spine-B"}
LEAVES = {4: "leaf-1", 5: "leaf-2", 6: "leaf-3"}
NAMES = {**SPINES, **LEAVES}


def main() -> None:
    n = 8
    wiring = DynFOEngine(make_bipartite_program(), n)
    resilience = DynFOEngine(make_kedge_program(), n)
    analyzer = KEdgeAnalyzer(resilience, max_deletions=1)
    backup = DynFOEngine(make_msf_program(), n)

    def link_up(u: int, v: int, cost: int) -> None:
        wiring.insert("E", u, v)
        resilience.insert("E", u, v)
        backup.insert("Ew", u, v, cost)

    def link_down(u: int, v: int, cost: int) -> None:
        wiring.delete("E", u, v)
        resilience.delete("E", u, v)
        backup.delete("Ew", u, v, cost)

    def report(event: str) -> None:
        tree = sorted(
            {tuple(sorted((NAMES[u], NAMES[v]))) for (u, v) in backup.query("forest")}
        )
        print(f"{event}")
        print(f"  wiring discipline ok : {wiring.ask('bipartite')}")
        print(f"  survives 1 link loss : {analyzer.is_k_edge_connected(2)}")
        print(f"  backup tree          : {tree}")

    print("== bring up a full spine-leaf mesh ==")
    costs = {}
    cost = 1
    for spine in SPINES:
        for leaf in LEAVES:
            costs[(spine, leaf)] = cost
            link_up(spine, leaf, cost)
            cost += 1
    report("mesh up (6 links)")

    print("\n== incident 1: a cross-spine cable is patched in ==")
    costs[(0, 1)] = 7
    link_up(0, 1, 7)
    report("spine-A <-> spine-B (violates two-tier wiring!)")
    link_down(0, 1, 7)
    report("rogue cable removed")

    print("\n== incident 2: links to leaf-3 flap ==")
    link_down(0, 6, costs[(0, 6)])
    report("spine-A -> leaf-3 down (leaf-3 now single-homed)")
    link_down(1, 6, costs[(1, 6)])
    report("spine-B -> leaf-3 down (leaf-3 dark; resilience vacuous for rest)")
    link_up(0, 6, costs[(0, 6)])
    link_up(1, 6, costs[(1, 6)])
    report("leaf-3 restored")


if __name__ == "__main__":
    main()
