"""Scenario: a build system's dependency DAG under refactoring.

Targets and their dependencies change constantly; two maintained views
(both pure first-order updates, both *not* static-FO queries):

* "does A (transitively) depend on B?" — acyclic REACH (Theorem 4.2);
* the pruned dependency graph — the transitive reduction (Corollary 4.3),
  i.e. the edges a build file actually needs to declare.

Run:  python examples/build_dependencies.py
"""

from repro import DynFOEngine, make_transitive_reduction_program

TARGETS = ["app", "ui", "core", "net", "json", "base", "tests", "docs"]
INDEX = {name: i for i, name in enumerate(TARGETS)}


def main() -> None:
    engine = DynFOEngine(make_transitive_reduction_program(), len(TARGETS))

    def declare(a: str, b: str) -> None:
        engine.insert("E", INDEX[a], INDEX[b])

    def remove(a: str, b: str) -> None:
        engine.delete("E", INDEX[a], INDEX[b])

    def depends(a: str, b: str) -> bool:
        return (INDEX[a], INDEX[b]) in engine.query("paths")

    def minimal_edges() -> list[str]:
        return sorted(
            f"{TARGETS[u]} -> {TARGETS[v]}" for (u, v) in engine.query("tr")
        )

    print("== declared dependencies ==")
    for a, b in [
        ("app", "ui"), ("ui", "core"), ("core", "base"),
        ("app", "core"),        # redundant: app -> ui -> core
        ("core", "json"), ("json", "base"),
        ("net", "base"), ("app", "net"),
        ("tests", "app"), ("docs", "app"),
    ]:
        declare(a, b)
        print(f"  {a} -> {b}")

    print("\napp depends on base?  ", depends("app", "base"))
    print("docs depends on json? ", depends("docs", "json"))
    print("net depends on json?  ", depends("net", "json"))

    print("\nminimal build file (transitive reduction):")
    for edge in minimal_edges():
        print(f"  {edge}")
    print("note: 'app -> core' was pruned automatically (redundant),")
    print("and 'core -> base' too (core -> json -> base covers it).")

    print("\n== refactor: core stops using json ==")
    remove("core", "json")
    print("core depends on base? ", depends("core", "base"))
    print("minimal build file now:")
    for edge in minimal_edges():
        print(f"  {edge}")
    print("'core -> base' was *promoted* back: with json gone it is the")
    print("only remaining route, exactly Corollary 4.3's delete case.")


if __name__ == "__main__":
    main()
