"""Unit tests for vocabularies (signatures)."""

import pytest

from repro.logic import Vocabulary, VocabularyError
from repro.logic.vocabulary import ConstantSymbol, RelationSymbol


class TestSymbols:
    def test_relation_symbol_str(self):
        assert str(RelationSymbol("E", 2)) == "E^2"

    def test_negative_arity_rejected(self):
        with pytest.raises(VocabularyError):
            RelationSymbol("E", -1)

    def test_reserved_name_rejected(self):
        with pytest.raises(VocabularyError):
            RelationSymbol("BIT", 2)
        with pytest.raises(VocabularyError):
            ConstantSymbol("min")

    def test_bad_names_rejected(self):
        with pytest.raises(VocabularyError):
            RelationSymbol("", 1)
        with pytest.raises(VocabularyError):
            RelationSymbol("2fast", 1)
        with pytest.raises(VocabularyError):
            ConstantSymbol("has space")


class TestVocabulary:
    def test_parse(self):
        voc = Vocabulary.parse("E^2, F^2, PV^3, s, t")
        assert voc.relation_names() == ("E", "F", "PV")
        assert voc.constant_names() == ("s", "t")
        assert voc.arity("PV") == 3

    def test_parse_empty_tokens_skipped(self):
        voc = Vocabulary.parse("E^2,, s,")
        assert voc.relation_names() == ("E",)
        assert voc.constant_names() == ("s",)

    def test_duplicate_relation_rejected(self):
        with pytest.raises(VocabularyError):
            Vocabulary.parse("E^2, E^1")

    def test_relation_constant_clash_rejected(self):
        with pytest.raises(VocabularyError):
            Vocabulary.make(relations=[("s", 1)], constants=["s"])

    def test_contains(self):
        voc = Vocabulary.parse("E^2, s")
        assert "E" in voc
        assert "s" in voc
        assert "F" not in voc
        assert 7 not in voc

    def test_unknown_arity_raises(self):
        with pytest.raises(VocabularyError):
            Vocabulary.parse("E^2").arity("F")

    def test_extend(self):
        voc = Vocabulary.parse("E^2").extend(relations=[("F", 2)], constants=["s"])
        assert voc.relation_names() == ("E", "F")
        assert voc.constant_names() == ("s",)

    def test_extend_duplicate_rejected(self):
        with pytest.raises(VocabularyError):
            Vocabulary.parse("E^2").extend(relations=[("E", 2)])

    def test_union_merges(self):
        a = Vocabulary.parse("E^2, s")
        b = Vocabulary.parse("E^2, F^1, t")
        merged = a.union(b)
        assert merged.relation_names() == ("E", "F")
        assert merged.constant_names() == ("s", "t")

    def test_union_arity_clash(self):
        with pytest.raises(VocabularyError):
            Vocabulary.parse("E^2").union(Vocabulary.parse("E^3"))

    def test_rename(self):
        voc = Vocabulary.parse("E^2, s").rename({"E": "Edge", "s": "src"})
        assert voc.relation_names() == ("Edge",)
        assert voc.constant_names() == ("src",)

    def test_str(self):
        assert str(Vocabulary.parse("E^2, s")) == "<E^2, s>"

    def test_iteration_order_is_declaration_order(self):
        voc = Vocabulary.parse("B^1, A^2")
        assert [r.name for r in voc] == ["B", "A"]
