"""Persistence snapshots and the EXPLAIN plan facility."""

import pytest

from repro.dynfo import DynFOEngine
from repro.dynfo.persistence import (
    PersistenceError,
    load_engine,
    save_engine,
    structure_from_dict,
    structure_to_dict,
)
from repro.logic import Structure, Vocabulary
from repro.logic.dsl import Rel, exists
from repro.logic.explain import explain, plan_events
from repro.programs import make_parity_program, make_reach_u_program
from repro.workloads import undirected_script


class TestStructureRoundTrip:
    def test_roundtrip(self):
        voc = Vocabulary.parse("E^2, U^1, s")
        structure = Structure(
            voc, 5, relations={"E": [(0, 1), (2, 3)], "U": [(4,)]}, constants={"s": 3}
        )
        assert structure_from_dict(structure_to_dict(structure)) == structure

    def test_malformed_rejected(self):
        with pytest.raises(PersistenceError):
            structure_from_dict({"n": 3})


class TestEngineSnapshots:
    def test_save_load_continues_run(self, tmp_path):
        program = make_reach_u_program()
        script = undirected_script(6, 40, seed=21)
        engine = DynFOEngine(program, 6)
        for request in script[:25]:
            engine.apply(request)
        path = tmp_path / "reach_u.json"
        save_engine(engine, path)

        restored = load_engine(make_reach_u_program(), path)
        assert restored.aux_snapshot() == engine.aux_snapshot()
        assert restored.requests_applied == engine.requests_applied
        # continuing both runs stays in lock-step
        for request in script[25:]:
            engine.apply(request)
            restored.apply(request)
        assert restored.aux_snapshot() == engine.aux_snapshot()

    def test_wrong_program_rejected(self, tmp_path):
        engine = DynFOEngine(make_parity_program(), 6)
        path = tmp_path / "parity.json"
        save_engine(engine, path)
        with pytest.raises(PersistenceError):
            load_engine(make_reach_u_program(), path)

    def test_not_json_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("definitely not json {")
        with pytest.raises(PersistenceError):
            load_engine(make_parity_program(), path)

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "somebody-else/9"}')
        with pytest.raises(PersistenceError):
            load_engine(make_parity_program(), path)


class TestExplain:
    @pytest.fixture
    def structure(self):
        voc = Vocabulary.parse("E^2")
        return Structure(
            voc, 5, relations={"E": [(0, 1), (1, 2), (2, 3)]}
        )

    def test_events_and_result(self, structure):
        E = Rel("E")
        formula = exists("z", E("x", "z") & E("z", "y"))
        events, rows = plan_events(formula, structure, ("x", "y"))
        assert rows == {(0, 2), (1, 3)}
        kinds = [event for (_, event, _, _) in events]
        assert any(k.startswith("join") for k in kinds)
        assert any("Exists" in k for k in kinds)

    def test_render(self, structure):
        E = Rel("E")
        text = explain(exists("z", E("x", "z") & E("z", "y")), structure, ("x", "y"))
        assert text.startswith("plan for frame ('x', 'y')")
        assert "peak intermediate size" in text
        assert "-> 2 rows" in text

    def test_trace_off_by_default(self, structure):
        from repro.logic import RelationalEvaluator

        evaluator = RelationalEvaluator(structure)
        E = Rel("E")
        evaluator.rows(E("x", "y"), ("x", "y"))
        assert evaluator.trace is None

    def test_explain_real_update_formula(self, structure):
        """The PV' insert formula of Theorem 4.1 produces a bounded plan."""
        program = make_reach_u_program()
        rule = program.on_insert["E"]
        pv_def = next(d for d in rule.definitions if d.name == "PV")
        aux = Structure(program.aux_vocabulary, 5)
        aux.add("E", (0, 1))
        aux.add("E", (1, 0))
        aux.add("F", (0, 1))
        aux.add("F", (1, 0))
        text = explain(
            pv_def.formula, aux, pv_def.frame, params={"a": 1, "b": 2}
        )
        assert "peak intermediate size" in text
