"""Theorem 4.5(4): lowest common ancestors in directed forests."""

import pytest

from repro.dynfo import DynFOEngine, verify_program
from repro.dynfo.oracles import lca_checker, paths_checker
from repro.programs import make_lca_program
from repro.workloads import forest_script


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_against_oracle(seed):
    verify_program(
        make_lca_program(),
        7,
        forest_script(7, 80, seed),
        [lca_checker(), paths_checker()],
    )


def test_hand_tree():
    engine = DynFOEngine(make_lca_program(), 8)
    #        0
    #       / \
    #      1   2
    #     / \
    #    3   4
    for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4)]:
        engine.insert("E", u, v)
    assert engine.query("lca_of", u=3, v=4) == {(1,)}
    assert engine.query("lca_of", u=3, v=2) == {(0,)}
    assert engine.query("lca_of", u=3, v=1) == {(1,)}
    assert engine.query("lca_of", u=3, v=3) == {(3,)}
    assert engine.query("lca_of", u=3, v=5) == set()  # different trees


def test_lca_after_subtree_detach():
    engine = DynFOEngine(make_lca_program(), 8)
    for (u, v) in [(0, 1), (1, 2), (1, 3)]:
        engine.insert("E", u, v)
    assert engine.query("lca_of", u=2, v=3) == {(1,)}
    engine.delete("E", 0, 1)  # detaching above the LCA changes nothing here
    assert engine.query("lca_of", u=2, v=3) == {(1,)}
    engine.delete("E", 1, 2)
    assert engine.query("lca_of", u=2, v=3) == set()
