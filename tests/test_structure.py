"""Unit tests for finite structures (database instances)."""

import pytest

from repro.logic import Structure, StructureError, Vocabulary


@pytest.fixture
def voc():
    return Vocabulary.parse("E^2, U^1, s")


class TestBasics:
    def test_initial_is_empty(self, voc):
        structure = Structure.initial(voc, 5)
        assert structure.cardinality("E") == 0
        assert structure.constant("s") == 0

    def test_nonpositive_universe_rejected(self, voc):
        with pytest.raises(StructureError):
            Structure(voc, 0)

    def test_add_and_holds(self, voc):
        structure = Structure(voc, 4)
        structure.add("E", (1, 2))
        assert structure.holds("E", (1, 2))
        assert not structure.holds("E", (2, 1))

    def test_discard_is_idempotent(self, voc):
        structure = Structure(voc, 4)
        structure.add("E", (1, 2))
        structure.discard("E", (1, 2))
        structure.discard("E", (1, 2))
        assert structure.cardinality("E") == 0

    def test_out_of_universe_rejected(self, voc):
        structure = Structure(voc, 4)
        with pytest.raises(StructureError):
            structure.add("E", (1, 4))
        with pytest.raises(StructureError):
            structure.add("E", (-1, 0))

    def test_wrong_arity_rejected(self, voc):
        structure = Structure(voc, 4)
        with pytest.raises(StructureError):
            structure.add("E", (1,))

    def test_bool_elements_rejected(self, voc):
        structure = Structure(voc, 4)
        with pytest.raises(StructureError):
            structure.add("U", (True,))

    def test_unknown_relation(self, voc):
        structure = Structure(voc, 4)
        with pytest.raises(StructureError):
            structure.relation("X")
        with pytest.raises(StructureError):
            structure.constant("q")

    def test_set_relation_replaces(self, voc):
        structure = Structure(voc, 4)
        structure.add("E", (0, 1))
        structure.set_relation("E", {(2, 3), (3, 2)})
        assert structure.relation("E") == {(2, 3), (3, 2)}

    def test_set_constant(self, voc):
        structure = Structure(voc, 4)
        structure.set_constant("s", 3)
        assert structure.constant("s") == 3
        with pytest.raises(StructureError):
            structure.set_constant("s", 4)


class TestWholeStructure:
    def test_copy_is_independent(self, voc):
        structure = Structure(voc, 4)
        structure.add("E", (0, 1))
        clone = structure.copy()
        clone.add("E", (1, 2))
        assert structure.cardinality("E") == 1
        assert clone.cardinality("E") == 2

    def test_equality(self, voc):
        a = Structure(voc, 4, relations={"E": [(0, 1)]}, constants={"s": 2})
        b = Structure(voc, 4, relations={"E": [(0, 1)]}, constants={"s": 2})
        assert a == b
        b.add("U", (0,))
        assert a != b

    def test_structures_are_unhashable_but_freeze_hashes(self, voc):
        structure = Structure(voc, 4, relations={"E": [(0, 1)]})
        with pytest.raises(TypeError):
            hash(structure)
        frozen = structure.freeze()
        assert hash(frozen) == hash(structure.freeze())
        assert frozen.thaw() == structure

    def test_restrict(self, voc):
        structure = Structure(voc, 4, relations={"E": [(0, 1)], "U": [(2,)]})
        reduct = structure.restrict(Vocabulary.parse("E^2"))
        assert reduct.relation("E") == {(0, 1)}
        assert not reduct.vocabulary.has_relation("U")

    def test_expand(self, voc):
        structure = Structure(voc, 4, relations={"E": [(0, 1)]})
        bigger = structure.expand(
            voc.extend(relations=[("F", 2)]), relations={"F": [(1, 1)]}
        )
        assert bigger.relation("E") == {(0, 1)}
        assert bigger.relation("F") == {(1, 1)}

    def test_describe_mentions_everything(self, voc):
        structure = Structure(voc, 3, relations={"E": [(0, 1)]}, constants={"s": 2})
        text = structure.describe()
        assert "E = {(0, 1)}" in text
        assert "s = 2" in text
        assert "universe = {0..2}" in text

    def test_repr_summarizes(self, voc):
        structure = Structure(voc, 3, relations={"E": [(0, 1)]})
        assert "E:1" in repr(structure)
