"""EF games: the paper's static-inexpressibility motivation, demonstrated.

Connectivity and parity are not static FO (over the bare relational
vocabulary); the k-round game makes that concrete on small structures.
"""


from repro.logic import Structure, Vocabulary, distinguishing_rank, duplicator_wins
from repro.logic.games import partial_isomorphism

VOC = Vocabulary.parse("E^2")


def cycle(n: int, length: int, offset: int = 0) -> set[tuple[int, int]]:
    return {
        ((offset + i) % n, (offset + (i + 1) % length) % n)
        for i in range(length)
    }


def make_graph(n: int, edges) -> Structure:
    structure = Structure(VOC, n)
    for (u, v) in edges:
        structure.add("E", (u, v))
        structure.add("E", (v, u))
    return structure


class TestPartialIsomorphism:
    def test_empty_map_on_same_vocab(self):
        a, b = make_graph(3, []), make_graph(4, [])
        assert partial_isomorphism(a, b, ())

    def test_edge_mismatch_detected(self):
        a = make_graph(3, [(0, 1)])
        b = make_graph(3, [])
        assert not partial_isomorphism(a, b, ((0, 0), (1, 1)))

    def test_non_injective_rejected(self):
        a = make_graph(3, [])
        b = make_graph(3, [])
        assert not partial_isomorphism(a, b, ((0, 0), (1, 0)))

    def test_order_respected_when_asked(self):
        a = make_graph(3, [])
        b = make_graph(3, [])
        pairs = ((0, 2), (1, 1))
        assert partial_isomorphism(a, b, pairs)
        assert not partial_isomorphism(a, b, pairs, with_order=True)


class TestGames:
    def test_identical_structures_always_duplicated(self):
        g = make_graph(4, [(0, 1), (2, 3)])
        assert duplicator_wins(g, g.copy(), 3)

    def test_one_cycle_vs_two_cycles(self):
        """C_8 is connected; 2 C_4 is not — yet Duplicator survives 2
        rounds, illustrating why connectivity needs the *dynamic* route."""
        one = make_graph(8, cycle(8, 8))
        two_edges = {(i, (i + 1) % 4) for i in range(4)} | {
            (4 + i, 4 + (i + 1) % 4) for i in range(4)
        }
        two = make_graph(8, two_edges)
        assert duplicator_wins(one, two, 2)
        rank = distinguishing_rank(one, two, max_rounds=4)
        assert rank is not None and rank >= 3

    def test_edge_count_parity_needs_rank(self):
        """A single edge vs no edge is distinguished with 2 pebbles."""
        some = make_graph(4, [(0, 1)])
        none = make_graph(4, [])
        assert distinguishing_rank(some, none, max_rounds=3) == 2

    def test_distinguishing_rank_none_for_isomorphic(self):
        a = make_graph(4, [(0, 1)])
        b = make_graph(4, [(2, 3)])
        assert distinguishing_rank(a, b, max_rounds=3) is None
