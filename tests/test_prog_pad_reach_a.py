"""Theorem 5.14: PAD(REACH_a) — a P-complete problem in Dyn-FO."""

import random

import pytest

from repro.baselines import alternating_reaches, fixpoint_iterations
from repro.dynfo import DynFOEngine
from repro.programs import make_pad_reach_a_program
from repro.workloads import PadAdversary


def _fresh(n):
    engine = DynFOEngine(make_pad_reach_a_program(), n)
    adversary = PadAdversary(n)
    # prime the pipeline on the empty graph
    for _ in range(n):
        engine.set_const("s", 0)
    return engine, adversary


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_against_fixpoint(seed):
    n = 6
    engine, adversary = _fresh(n)
    rng = random.Random(seed)
    for _ in range(20):
        for request in adversary.random_batch(rng):
            engine.apply(request)
        assert engine.ask("copies_equal")
        got = engine.ask("pad_member")
        want = alternating_reaches(
            n, adversary.edges, adversary.universal, adversary.s, adversary.t
        )
        assert got == want


def test_copies_unequal_mid_change():
    n = 5
    engine, adversary = _fresh(n)
    batch = adversary.toggle_edge(0, 1)
    engine.apply(batch[0])  # copy 0 only
    assert not engine.ask("copies_equal")
    assert not engine.ask("pad_member")  # PAD membership requires equality
    for request in batch[1:]:
        engine.apply(request)
    assert engine.ask("copies_equal")


def test_universal_vertex_needs_all_successors():
    n = 5
    engine, adversary = _fresh(n)
    rng = random.Random(0)
    for request in adversary.retarget("t", 3):
        engine.apply(request)
    for request in adversary.toggle_edge(0, 3):
        engine.apply(request)
    for request in adversary.toggle_edge(0, 4):
        engine.apply(request)
    assert engine.ask("pad_member")  # existential 0 reaches 3 via edge
    for request in adversary.toggle_universal(0):
        engine.apply(request)
    # universal 0 must have ALL successors reach 3; 4 does not
    assert not engine.ask("pad_member")
    for request in adversary.toggle_edge(4, 3):
        engine.apply(request)
    assert engine.ask("pad_member")


def test_fixpoint_converges_within_n():
    """The staging argument needs the operator to converge in <= n-1 extra
    iterations; spot-check the oracle's iteration count."""
    rng = random.Random(7)
    n = 8
    edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(12)}
    universal = {rng.randrange(n) for _ in range(3)}
    assert fixpoint_iterations(n, edges, universal, target=0) <= n - 1
