"""Executes the EDGE-PARITY program exactly as docs/TUTORIAL.md builds it,
so the tutorial cannot drift from the API."""

from repro.dynfo import (
    DynFOEngine,
    DynFOProgram,
    Query,
    RelationDef,
    UpdateRule,
    verify_program,
)
from repro.dynfo.verify import exact_boolean_checker
from repro.logic import Structure, Vocabulary
from repro.logic.dsl import Rel, c, eq2, neq
from repro.workloads import undirected_script

INPUT = Vocabulary.parse("E^2")
AUX = Vocabulary.parse("E^2, odd^0")

E, odd = Rel("E"), Rel("odd")
a, b = c("a"), c("b")

present = E(a, b)
flip = (odd() & present) | (~odd() & ~present)
flop = (odd() & ~present) | (~odd() & present)

e_ins = E("x", "y") | eq2("x", "y", a, b)
odd_ins = (neq(a, b) & flip) | (~neq(a, b) & odd())
e_del = E("x", "y") & ~eq2("x", "y", a, b)
odd_del = (neq(a, b) & flop) | (~neq(a, b) & odd())


def make_edge_parity_program() -> DynFOProgram:
    return DynFOProgram(
        name="edge_parity",
        input_vocabulary=INPUT,
        aux_vocabulary=AUX,
        initial=lambda n: Structure.initial(AUX, n),
        on_insert={
            "E": UpdateRule(
                params=("a", "b"),
                definitions=(
                    RelationDef("E", ("x", "y"), e_ins),
                    RelationDef("odd", (), odd_ins),
                ),
            )
        },
        on_delete={
            "E": UpdateRule(
                params=("a", "b"),
                definitions=(
                    RelationDef("E", ("x", "y"), e_del),
                    RelationDef("odd", (), odd_del),
                ),
            )
        },
        queries={"odd_edges": Query("odd_edges", odd())},
        symmetric_inputs=frozenset({"E"}),
    )


def test_tutorial_session():
    engine = DynFOEngine(make_edge_parity_program(), n=8)
    engine.insert("E", 1, 2)
    assert engine.ask("odd_edges")
    engine.insert("E", 1, 2)  # duplicate: graph unchanged
    assert engine.ask("odd_edges")
    engine.insert("E", 3, 4)
    assert not engine.ask("odd_edges")
    engine.delete("E", 1, 2)
    assert engine.ask("odd_edges")


def test_tutorial_verification():
    checker = exact_boolean_checker(
        "odd_edges",
        lambda inputs: (len(inputs.relation_view("E")) // 2) % 2 == 1,
    )
    verify_program(
        make_edge_parity_program(),
        8,
        undirected_script(8, 120, seed=0),
        [checker],
    )


def test_self_loop_requests_ignored_by_the_bit():
    engine = DynFOEngine(make_edge_parity_program(), n=6)
    engine.insert("E", 2, 2)
    assert not engine.ask("odd_edges")
    engine.delete("E", 2, 2)
    assert not engine.ask("odd_edges")
