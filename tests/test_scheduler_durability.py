"""Regression tests for the scheduler durability sweep.

Three bugs, each with a deterministic failing-before/passing-after test:

* ``Session.close()`` could detach and close the journal between a batch's
  engine apply and its group-commit ``sync()`` — an acknowledged write that
  was never durable.  The sync now runs *inside* the write-lock scope, so
  close (which also takes the write lock) must wait for the durability
  point.
* A failed group-commit sync used to fail the batch but leave the session
  serving writes whose in-memory effects were ahead of the durable log.
  It now poisons the session: writes are refused typed
  (``SessionPoisonedError``), reads stay allowed.
* ``deadline=0`` fell through truthiness checks and meant "no deadline".
  Every deadline comparison is now against ``None``; zero means "expire
  immediately unless served at once".

Plus the lock-scope fix for :meth:`SessionManager.get`'s error message and
a writers/closers/zero-deadline-readers stress run under injected faults.
"""

import collections
import threading
import time

import pytest

from repro.dynfo.engine import DynFOEngine
from repro.dynfo.errors import EngineError, JournalError
from repro.dynfo.journal import read_journal
from repro.dynfo.requests import Delete, Insert
from repro.programs import PROGRAM_FACTORIES
from repro.service import (
    DynFOService,
    OverloadError,
    ServiceClient,
    SessionError,
    SessionManager,
    SessionPoisonedError,
    code_for,
)


def make_service(**kwargs) -> DynFOService:
    kwargs.setdefault("read_workers", 4)
    return DynFOService(**kwargs)


class _HookedJournal:
    """Delegates to a real journal, running a callback before each sync —
    the deterministic interleaving probe for the close/sync race."""

    def __init__(self, inner, on_sync):
        self._inner = inner
        self._on_sync = on_sync

    def sync(self):
        self._on_sync()
        return self._inner.sync()

    def __getattr__(self, name):
        return getattr(self._inner, name)


class _FlakySyncJournal:
    """Delegates to a real journal; ``sync`` raises once per arming."""

    def __init__(self, inner):
        self._inner = inner
        self.fail_next = False

    def sync(self):
        if self.fail_next:
            self.fail_next = False
            raise OSError("injected: device lost mid-fsync")
        return self._inner.sync()

    def __getattr__(self, name):
        return getattr(self._inner, name)


# -- bug 1: close cannot slip between apply and sync ------------------------


def test_close_waits_for_the_group_commit_sync(tmp_path):
    """A close racing a committing batch must block until the batch's
    durability point.  Before the fix, the close ran between ``apply`` and
    ``sync()``, detached the journal, and the sync failed — an ACKed-but-
    not-durable write.  The hook starts a close *during* the sync and
    observes it blocked on the write lock."""
    service = make_service(data_dir=tmp_path)
    try:
        manager = service.sessions
        session = manager.open("race", "reach_u", n=8)
        inner = session.engine.journal
        probe: dict = {}

        def on_sync():
            closer = threading.Thread(
                target=manager.close, args=("race",), kwargs={"snapshot": False}
            )
            closer.start()
            closer.join(timeout=0.5)
            probe["closer"] = closer
            probe["close_blocked_during_sync"] = closer.is_alive()

        session.engine.attach_journal(_HookedJournal(inner, on_sync))

        stats = service.scheduler.apply(session, Insert("E", 0, 1))
        assert stats is not None  # the write was ACKed without error
        probe["closer"].join(timeout=5.0)
        assert not probe["closer"].is_alive()
        # the decisive assertion: close could not complete mid-sync
        assert probe["close_blocked_during_sync"]
        # and the ACK was honest — the entry is durable on disk
        entries = read_journal(tmp_path / "race" / "journal.ndjson")
        assert [request for _, request in entries] == [Insert("E", 0, 1)]
        assert session.closed
    finally:
        service.close(snapshot=False)


def test_write_queued_behind_a_close_fails_typed_not_silent(tmp_path):
    """A write still queued when the session closes must come back as a
    typed SessionError — not be applied into a detached engine."""
    service = make_service(data_dir=tmp_path)
    try:
        manager = service.sessions
        session = manager.open("q", "reach_u", n=8)
        inner = session.engine.journal

        def close_now():
            # runs inside the first batch's sync: the close enqueues behind
            # the write lock and lands before the second write drains
            threading.Thread(
                target=manager.close, args=("q",), kwargs={"snapshot": False}
            ).start()

        hooked = _HookedJournal(inner, close_now)
        session.engine.attach_journal(hooked)
        service.scheduler.apply(session, Insert("E", 0, 1))
        deadline = time.monotonic() + 5.0
        while not session.closed and time.monotonic() < deadline:
            time.sleep(0.01)
        assert session.closed
        with pytest.raises(SessionError, match="closed while the write was queued"):
            service.scheduler.apply(session, Insert("E", 1, 2))
        entries = read_journal(tmp_path / "q" / "journal.ndjson")
        assert [request for _, request in entries] == [Insert("E", 0, 1)]
    finally:
        service.close(snapshot=False)


# -- bug 2: failed sync poisons the session ---------------------------------


def test_failed_group_sync_poisons_the_session(tmp_path):
    service = make_service(data_dir=tmp_path)
    try:
        manager = service.sessions
        session = manager.open("p", "reach_u", n=8)
        flaky = _FlakySyncJournal(session.engine.journal)
        session.engine.attach_journal(flaky)
        client = ServiceClient(service)

        flaky.fail_next = True
        with pytest.raises(JournalError, match="poisoned"):
            service.scheduler.apply(session, Insert("E", 0, 1))

        # every later write is refused with the typed, wire-stable error
        with pytest.raises(SessionPoisonedError, match="poisoned"):
            service.scheduler.apply(session, Insert("E", 1, 2))
        with pytest.raises(SessionPoisonedError):
            client.apply("p", Insert("E", 2, 3))
        with pytest.raises(SessionPoisonedError):
            client.apply_script("p", [Insert("E", 3, 4)])
        assert code_for(SessionPoisonedError("x")) == "SESSION_POISONED"

        # reads stay allowed (the divergence is documented in the reason)
        assert isinstance(client.ask("p", "reach", s=0, t=1), bool)
        assert "sync failed" in client.stats("p")["p"]["poisoned"]

        # close + reopen is the recovery path: the journal replay yields a
        # session whose state matches the durable log again
        manager.close("p", snapshot=False)
        reopened = manager.open("p", "reach_u", n=8)
        assert reopened.poisoned is None
        service.scheduler.apply(reopened, Insert("E", 5, 6))
        assert reopened.engine.ask("reach", s=5, t=6)
    finally:
        service.close(snapshot=False)


# -- bug 3: deadline zero means "expire immediately" ------------------------


def test_zero_deadline_write_expires_instead_of_waiting_forever():
    service = make_service()
    try:
        session = service.sessions.open("z", "reach_u", n=6)
        with pytest.raises(OverloadError, match="deadline"):
            service.scheduler.apply(session, Insert("E", 0, 1), deadline=0.0)
        assert session.engine.requests_applied == 0
        assert session.metrics.snapshot()["overloads"] >= 1
        # a None deadline still means "no deadline": the write commits
        service.scheduler.apply(session, Insert("E", 0, 1), deadline=None)
        assert session.engine.requests_applied == 1
    finally:
        service.close(snapshot=False)


def test_zero_deadline_collapsed_read_expires_immediately():
    service = make_service()
    try:
        session = service.sessions.open("z2", "reach_u", n=6)
        release = threading.Event()
        leader_result: list = []

        def slow_eval():
            release.wait(timeout=10.0)
            return 42

        leader = threading.Thread(
            target=lambda: leader_result.append(
                service.scheduler.read(session, slow_eval, key=("probe",))
            )
        )
        leader.start()
        deadline = time.monotonic() + 5.0
        while not service.scheduler._inflight and time.monotonic() < deadline:
            time.sleep(0.005)
        assert service.scheduler._inflight, "leader never registered in-flight"

        started = time.monotonic()
        with pytest.raises(OverloadError, match="deadline"):
            service.scheduler.read(
                session, slow_eval, key=("probe",), deadline=0.0
            )
        # before the fix, deadline=0 meant a 60s wait on the leader
        assert time.monotonic() - started < 5.0

        release.set()
        leader.join(timeout=10.0)
        assert leader_result == [42]
    finally:
        release.set()
        service.close(snapshot=False)


# -- SessionManager.get formats its error under the lock --------------------


def test_get_error_lists_active_sessions():
    manager = SessionManager()
    manager.open("alpha", "reach_u", n=4)
    manager.open("beta", "reach_u", n=4)
    with pytest.raises(SessionError, match=r"active: alpha, beta"):
        manager.get("ghost")
    manager.close_all(snapshot=False)
    with pytest.raises(SessionError, match=r"active: none"):
        manager.get("alpha")


# -- stress: writers + closers + zero-deadline readers under faults ---------


@pytest.mark.timeout(120)
def test_stress_durability_under_churn_and_faults(tmp_path):
    """Writer threads, a closer/reopener cycling the session, zero-deadline
    readers, out-of-universe poison pills, and a journal whose sync fails
    every few batches.  Invariants checked afterwards:

    * every error any thread saw was a *typed* service/engine error;
    * every ACKed write is present in the durable journal (ACK => durable);
    * replaying the journal into a fresh engine agrees with the state a
      recovery open reconstructs (journal/engine agreement).
    """
    service = make_service(data_dir=tmp_path, max_queue_depth=64)
    manager, scheduler = service.sessions, service.scheduler
    name = "storm"
    sync_counter = {"n": 0}

    class _EveryNthSyncFails:
        def __init__(self, inner):
            self._inner = inner

        def sync(self):
            sync_counter["n"] += 1
            if sync_counter["n"] % 5 == 0:
                raise OSError("injected: flaky device")
            return self._inner.sync()

        def __getattr__(self, attr):
            return getattr(self._inner, attr)

    open_lock = threading.Lock()

    def open_session():
        with open_lock:
            session = manager.open(name, "reach_u", n=8)
            if not isinstance(session.engine.journal, _EveryNthSyncFails):
                session.engine.attach_journal(
                    _EveryNthSyncFails(session.engine.journal)
                )
            return session

    open_session()
    acked: collections.Counter = collections.Counter()
    acked_lock = threading.Lock()
    unexpected: list = []
    typed = (
        SessionError,
        SessionPoisonedError,
        OverloadError,
        JournalError,
        EngineError,
    )

    def writer(seed: int) -> None:
        for i in range(40):
            a, b = (seed + i) % 8, (seed + 3 * i + 1) % 8
            request = (
                Insert("E", a, b) if (seed + i) % 3 else Delete("E", a, b)
            )
            if i % 13 == 7:
                request = Insert("E", a, 99)  # out of universe: typed reject
            try:
                session = open_session()
                scheduler.apply(session, request, deadline=5.0)
            except typed:
                continue
            except Exception as error:  # pragma: no cover - the failure mode
                unexpected.append(error)
                return
            if request.tup != (a, 99):
                with acked_lock:
                    acked[(type(request).__name__, request.rel, request.tup)] += 1

    def closer() -> None:
        for i in range(12):
            time.sleep(0.02)
            try:
                manager.close(name, snapshot=bool(i % 2))
            except typed:
                pass
            except Exception as error:  # pragma: no cover
                unexpected.append(error)
                return

    def reader(seed: int) -> None:
        for i in range(50):
            deadline = 0.0 if i % 3 == 0 else 2.0
            try:
                session = manager.get(name)
                scheduler.read(
                    session,
                    lambda s=session: s.engine.ask(
                        "reach", s=seed % 8, t=(seed + i) % 8
                    ),
                    key=("reach", seed % 8, (seed + i) % 8),
                    deadline=deadline,
                )
            except typed:
                continue
            except Exception as error:  # pragma: no cover
                unexpected.append(error)
                return

    threads = (
        [threading.Thread(target=writer, args=(s,)) for s in range(3)]
        + [threading.Thread(target=closer)]
        + [threading.Thread(target=reader, args=(s,)) for s in range(2)]
    )
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=90.0)
    assert not any(thread.is_alive() for thread in threads), "stress run wedged"
    assert unexpected == [], f"untyped errors escaped: {unexpected!r}"

    service.close(snapshot=False)

    # ACK => durable: every acknowledged request appears in the journal
    entries = read_journal(tmp_path / name / "journal.ndjson")
    journaled: collections.Counter = collections.Counter(
        (type(request).__name__, request.rel, request.tup) for _, request in entries
    )
    for key, count in acked.items():
        assert journaled[key] >= count, (
            f"ACKed write {key} x{count} missing from the durable journal "
            f"(journal has {journaled[key]})"
        )

    # journal/engine agreement: a recovery open and a from-scratch replay
    # of the durable log answer every reach query identically
    recovered = SessionManager(data_dir=tmp_path).open(name)
    replayed = DynFOEngine(PROGRAM_FACTORIES["reach_u"](), 8)
    for _, request in entries:
        replayed.apply(request)
    for s in range(8):
        for t in range(8):
            assert recovered.engine.ask("reach", s=s, t=t) == replayed.ask(
                "reach", s=s, t=t
            ), f"recovered state diverges from journal replay at reach({s},{t})"
    recovered.close(snapshot=False)
