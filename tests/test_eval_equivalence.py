"""Property tests: the three evaluators implement the same logic.

The naive evaluator is the semantics; the relational planner and the dense
tensor engine must agree with it on random formulas over random structures.
"""

from hypothesis import given, settings

from repro.logic import DenseEvaluator, RelationalEvaluator, naive_query
from repro.logic.transform import free_vars

from .formula_gen import VARS, formulas, structures


@settings(max_examples=150, deadline=None)
@given(formulas(), structures())
def test_relational_matches_naive(formula, structure):
    frame = tuple(sorted(free_vars(formula)))
    expected = naive_query(formula, structure, frame)
    got = RelationalEvaluator(structure).rows(formula, frame)
    assert got == expected


@settings(max_examples=150, deadline=None)
@given(formulas(), structures())
def test_dense_matches_naive(formula, structure):
    frame = tuple(sorted(free_vars(formula)))
    expected = naive_query(formula, structure, frame)
    got = DenseEvaluator(structure).rows(formula, frame)
    assert got == expected


@settings(max_examples=75, deadline=None)
@given(formulas(), structures())
def test_full_frame_agreement(formula, structure):
    """Even with extra unconstrained frame columns, all engines agree."""
    frame = tuple(VARS)
    expected = naive_query(formula, structure, frame)
    assert RelationalEvaluator(structure).rows(formula, frame) == expected
    assert DenseEvaluator(structure).rows(formula, frame) == expected
