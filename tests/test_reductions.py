"""Section 5: first-order reductions, bounded expansion, transfer, PAD,
COLOR-REACH."""

import pytest

from repro.baselines import deterministic_reachable, same_component
from repro.logic import Structure, Vocabulary
from repro.logic.dsl import Rel, eq
from repro.reductions import (
    ColorReachInstance,
    ExpansionExceeded,
    FirstOrderReduction,
    TransferredEngine,
    color_reach_reachable,
    decode_element,
    encode_tuple,
    measure_expansion,
    pad_structure,
    reduction_d_to_u,
    structure_delta,
)
from repro.programs import make_reach_u_program


class TestEncoding:
    def test_roundtrip(self):
        assert decode_element(encode_tuple((2, 3), 5), 5, 2) == (2, 3)
        assert encode_tuple((2, 3), 5) == 2 * 5 + 3

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            encode_tuple((5,), 5)


class TestFirstOrderReduction:
    def test_d_to_u_semantics(self):
        """I_{d-u} keeps exactly the unique out-edges not leaving t."""
        reduction = reduction_d_to_u()
        structure = Structure(reduction.source, 5)
        structure.add("E", (0, 1))
        structure.add("E", (1, 2))
        structure.add("E", (1, 3))  # vertex 1 branches: both dropped
        structure.set_constant("s", 0)
        structure.set_constant("t", 2)
        image = reduction.apply(structure)
        assert image.relation("E") == {(0, 1), (1, 0)}

    def test_edges_out_of_t_removed(self):
        reduction = reduction_d_to_u()
        structure = Structure(reduction.source, 4)
        structure.add("E", (2, 0))
        structure.set_constant("t", 2)
        assert reduction.apply(structure).relation("E") == set()

    def test_many_one_property_spot_check(self):
        import random

        reduction = reduction_d_to_u()
        rng = random.Random(4)
        structures = []
        for _ in range(25):
            structure = Structure(reduction.source, 5)
            for _ in range(rng.randrange(8)):
                structure.add("E", (rng.randrange(5), rng.randrange(5)))
            structure.set_constant("s", rng.randrange(5))
            structure.set_constant("t", rng.randrange(5))
            structures.append(structure)

        def source_member(structure):
            return deterministic_reachable(
                structure.n,
                set(structure.relation_view("E")),
                structure.constant("s"),
                structure.constant("t"),
            )

        def target_member(structure):
            sets = same_component(structure.n, structure.relation_view("E"))
            return sets.connected(structure.constant("s"), structure.constant("t"))

        assert reduction.is_many_one_for(source_member, target_member, structures)

    def test_binary_reduction_squares_universe(self):
        """A toy 2-ary reduction: target edge (x1 x2) -> (y1 y2) iff
        E(x1, y1) — checks the k-ary encoding plumbing."""
        source = Vocabulary.parse("E^2")
        target = Vocabulary.parse("E^2")
        E = Rel("E")
        reduction = FirstOrderReduction(
            name="toy2",
            k=2,
            source=source,
            target=target,
            formulas={"E": E("x1", "y1")},
            frames={"E": ("x1", "x2", "y1", "y2")},
        )
        structure = Structure(source, 3, relations={"E": [(0, 1)]})
        image = reduction.apply(structure)
        assert image.n == 9
        assert len(image.relation("E")) == 9  # 3 choices each for x2, y2
        assert (encode_tuple((0, 0), 3), encode_tuple((1, 0), 3)) in image.relation("E")

    def test_validation(self):
        source = Vocabulary.parse("E^2")
        target = Vocabulary.parse("E^2")
        with pytest.raises(ValueError):
            FirstOrderReduction(
                name="bad",
                k=1,
                source=source,
                target=target,
                formulas={"E": eq("x", "y")},
                frames={"E": ("x",)},  # wrong frame width
            )


class TestBoundedExpansion:
    def test_d_to_u_is_bounded(self):
        report = measure_expansion(reduction_d_to_u(), n=6, trials=150, seed=1)
        assert report.is_bounded_by(6)
        assert report.trials == 150

    def test_structure_delta(self):
        voc = Vocabulary.parse("E^2, s")
        a = Structure(voc, 3, relations={"E": [(0, 1)]})
        b = Structure(voc, 3, relations={"E": [(1, 2)]}, constants={"s": 2})
        assert structure_delta(a, b) == 3

    def test_unbounded_reduction_detected(self):
        """E'(x, y) := exists z E(z, z) & x = x — one self-loop flips the
        whole n^2 output; measurement must exceed any small constant."""
        source = Vocabulary.parse("E^2")
        target = Vocabulary.parse("E^2")
        E = Rel("E")
        from repro.logic.dsl import exists

        reduction = FirstOrderReduction(
            name="blowup",
            k=1,
            source=source,
            target=target,
            formulas={"E": exists("z", E("z", "z"))},
            frames={"E": ("x", "y")},
        )
        report = measure_expansion(reduction, n=5, trials=80, seed=2)
        assert not report.is_bounded_by(6)


class TestTransfer:
    def test_expansion_guard_trips(self):
        source = Vocabulary.parse("E^2")
        target = Vocabulary.parse("E^2")
        E = Rel("E")
        from repro.logic.dsl import exists

        blowup = FirstOrderReduction(
            name="blowup",
            k=1,
            source=source,
            target=target,
            formulas={"E": exists("z", E("z", "z"))},
            frames={"E": ("x", "y")},
        )
        engine = TransferredEngine(
            blowup, make_reach_u_program(), n=5, max_expansion=4
        )
        with pytest.raises(ExpansionExceeded):
            engine.insert("E", 2, 2)

    def test_constants_tracked_for_queries(self):
        from repro.programs import make_reach_d_engine

        engine = make_reach_d_engine(5)
        engine.set_const("s", 1)
        engine.set_const("t", 3)
        engine.insert("E", 1, 3)
        assert engine.ask("reach")
        assert engine.target_constants == {"s": 1, "t": 3}


class TestPad:
    def test_pad_structure_copies(self):
        voc = Vocabulary.parse("E^2, s")
        structure = Structure(voc, 4, relations={"E": [(0, 1)]}, constants={"s": 2})
        padded = pad_structure(structure)
        assert padded.vocabulary.arity("E") == 3
        assert padded.relation("E") == {(i, 0, 1) for i in range(4)}
        assert padded.constant("s") == 2


class TestColorReach:
    def test_color_bit_rewires_class(self):
        # vertices 0, 1 in class 1; zero-edges to 2, one-edges to 3
        instance = ColorReachInstance(
            n=4,
            zero_edges={0: 2, 1: 2},
            one_edges={0: 3, 1: 3},
            vertex_class=[1, 1, 0, 0],
            colors={1: False},
        )
        assert color_reach_reachable(instance, 0, 2)
        assert not color_reach_reachable(instance, 0, 3)
        instance.set_color(1, True)  # one bit flips both vertices' edges
        assert color_reach_reachable(instance, 0, 3)
        assert not color_reach_reachable(instance, 0, 2)

    def test_class_zero_keeps_both_edges(self):
        instance = ColorReachInstance(
            n=3,
            zero_edges={0: 1},
            one_edges={0: 2},
            vertex_class=[0, 0, 0],
            colors={},
        )
        assert color_reach_reachable(instance, 0, 1)
        assert color_reach_reachable(instance, 0, 2)
        with pytest.raises(ValueError):
            instance.set_color(0, True)
