"""The oracle layer itself, cross-checked (where possible against networkx,
a third independent implementation)."""

import random

import pytest

from repro.baselines import (
    DFA,
    DisjointSets,
    alternating_dfa,
    alternating_reachable,
    bits_to_int,
    connected_components,
    deterministic_reachable,
    dyck_check,
    edge_connectivity,
    forest_lca,
    forest_parents,
    int_to_bits,
    is_acyclic,
    is_bipartite,
    is_k_edge_connected,
    kruskal_msf,
    matching_is_maximal,
    matching_is_valid,
    max_flow_min_cut,
    mod_counter_dfa,
    school_multiply_bits,
    spanning_forest_is_valid,
    substring_dfa,
    transitive_closure,
    transitive_reduction_dag,
)

networkx = pytest.importorskip("networkx")


def _random_edges(rng, n, m):
    return {
        (min(a, b), max(a, b))
        for a, b in (
            (rng.randrange(n), rng.randrange(n)) for _ in range(m)
        )
        if a != b
    }


class TestUnionFind:
    def test_components(self):
        sets = DisjointSets(range(5))
        sets.union(0, 1)
        sets.union(3, 4)
        components = {frozenset(c) for c in sets.components()}
        assert components == {frozenset({0, 1}), frozenset({2}), frozenset({3, 4})}

    def test_union_reports_merge(self):
        sets = DisjointSets()
        assert sets.union("a", "b")
        assert not sets.union("a", "b")
        assert len(sets) == 2


class TestGraphOraclesAgainstNetworkx:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_components(self, seed):
        rng = random.Random(seed)
        n, edges = 10, _random_edges(rng, 10, 14)
        graph = networkx.Graph(sorted(edges))
        graph.add_nodes_from(range(n))
        ours = {frozenset(c) for c in connected_components(n, edges)}
        theirs = {frozenset(c) for c in networkx.connected_components(graph)}
        assert ours == theirs

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bipartite(self, seed):
        rng = random.Random(seed)
        edges = _random_edges(rng, 8, 10)
        graph = networkx.Graph(sorted(edges))
        assert is_bipartite(8, edges) == networkx.is_bipartite(graph)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_min_cut(self, seed):
        rng = random.Random(seed)
        edges = _random_edges(rng, 7, 12)
        graph = networkx.Graph(sorted(edges))
        graph.add_nodes_from(range(7))
        for s in range(3):
            for t in range(3, 6):
                ours = max_flow_min_cut(7, edges, s, t)
                if networkx.has_path(graph, s, t):
                    theirs = len(networkx.minimum_edge_cut(graph, s, t))
                elif s != t:
                    theirs = 0
                assert ours == theirs

    @pytest.mark.parametrize("seed", [0, 1])
    def test_kruskal_weight(self, seed):
        rng = random.Random(seed)
        edges = _random_edges(rng, 8, 14)
        weight = {e: rng.randrange(1, 9) for e in edges}
        total, forest = kruskal_msf(8, edges, weight)
        graph = networkx.Graph()
        graph.add_nodes_from(range(8))
        for (u, v), w in weight.items():
            graph.add_edge(u, v, weight=w)
        theirs = sum(
            d["weight"]
            for (_, _, d) in networkx.minimum_spanning_edges(graph, data=True)
        )
        assert total == theirs

    @pytest.mark.parametrize("seed", [0, 1])
    def test_transitive_closure(self, seed):
        rng = random.Random(seed)
        edges = {(rng.randrange(7), rng.randrange(7)) for _ in range(12)}
        digraph = networkx.DiGraph(sorted(edges))
        digraph.add_nodes_from(range(7))
        theirs = set(networkx.transitive_closure(digraph).edges()) - {
            (v, v) for v in range(7)
        }
        ours = transitive_closure(7, edges) - {(v, v) for v in range(7)}
        assert ours == theirs

    def test_transitive_reduction_dag(self):
        edges = {(0, 1), (1, 2), (0, 2), (2, 3), (0, 3)}
        ours = transitive_reduction_dag(5, edges)
        digraph = networkx.DiGraph(sorted(edges))
        theirs = set(networkx.transitive_reduction(digraph).edges())
        assert ours == theirs


class TestGraphHelpers:
    def test_is_acyclic(self):
        assert is_acyclic(4, {(0, 1), (1, 2)})
        assert not is_acyclic(4, {(0, 1), (1, 0)})

    def test_spanning_forest_validation(self):
        edges = {(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)}
        good = {(0, 1), (1, 0), (1, 2), (2, 1)}
        cyclic = edges
        assert spanning_forest_is_valid(4, edges, good)
        assert not spanning_forest_is_valid(4, edges, cyclic)
        assert not spanning_forest_is_valid(4, edges, set())  # doesn't span

    def test_k_edge_connected_small_cases(self):
        triangle = {(0, 1), (1, 2), (0, 2)}
        assert is_k_edge_connected(4, triangle, 2)
        assert not is_k_edge_connected(4, triangle, 3)
        assert edge_connectivity(4, triangle) == 2
        path = {(0, 1), (1, 2)}
        assert not is_k_edge_connected(4, path, 2)
        assert is_k_edge_connected(4, set(), 1)  # vacuous

    def test_deterministic_reachable(self):
        edges = {(0, 1), (1, 2), (1, 3)}
        assert deterministic_reachable(5, edges, 0, 1)
        assert not deterministic_reachable(5, edges, 0, 2)  # 1 branches
        assert deterministic_reachable(5, edges, 4, 4)

    def test_deterministic_reachable_terminates_on_cycle(self):
        assert not deterministic_reachable(4, {(0, 1), (1, 0)}, 0, 3)

    def test_forest_parents_rejects_double_parent(self):
        with pytest.raises(ValueError):
            forest_parents(4, {(0, 2), (1, 2)})

    def test_forest_lca(self):
        edges = {(0, 1), (0, 2), (1, 3)}
        assert forest_lca(5, edges, 3, 2) == 0
        assert forest_lca(5, edges, 3, 1) == 1
        assert forest_lca(5, edges, 3, 4) is None

    def test_matching_predicates(self):
        edges = {(0, 1), (1, 0), (1, 2), (2, 1)}
        matching = {(0, 1), (1, 0)}
        assert matching_is_valid(edges, matching)
        assert matching_is_maximal(edges, matching)
        assert not matching_is_maximal(edges, set())
        overlapping = {(0, 1), (1, 0), (1, 2), (2, 1)}
        assert not matching_is_valid(edges, overlapping)


class TestAutomata:
    def test_mod_counter(self):
        dfa = mod_counter_dfa(3)
        assert dfa.run(["one"] * 6)
        assert not dfa.run(["one"] * 4)
        assert dfa.run([None, "one", None, "one", "one"])

    def test_substring(self):
        dfa = substring_dfa(["a", "b"], ["a", "b"])
        assert dfa.run(list("aab"))
        assert not dfa.run(list("bba"))
        assert dfa.run(list("abbb"))  # absorbing accept

    def test_alternating(self):
        dfa = alternating_dfa()
        assert dfa.run([])
        assert dfa.run(list("abab"))
        assert not dfa.run(list("aba"))

    def test_incomplete_dfa_rejected(self):
        with pytest.raises(ValueError):
            DFA(2, ("a",), {(0, "a"): 1}, frozenset({0}))


class TestStringsAndArithmetic:
    def test_dyck_check(self):
        assert dyck_check({0: ("L", 1), 3: ("R", 1)})
        assert not dyck_check({0: ("R", 1), 1: ("L", 1)})
        assert not dyck_check({0: ("L", 1), 1: ("R", 2)})

    def test_bits_roundtrip(self):
        assert bits_to_int(int_to_bits(1234)) == 1234
        assert bits_to_int({(0,), (3,)}) == 9

    def test_school_multiplication(self):
        x, y = int_to_bits(37), int_to_bits(21)
        assert bits_to_int(school_multiply_bits(x, y)) == 37 * 21


class TestAlternating:
    def test_and_or_semantics(self):
        # 0 universal -> {1, 2}; 1 -> 3; 2 has no path to 3
        edges = {(0, 1), (0, 2), (1, 3)}
        assert 0 not in alternating_reachable(5, edges, {0}, 3)
        assert 0 in alternating_reachable(5, edges, set(), 3)
        edges.add((2, 3))
        assert 0 in alternating_reachable(5, edges, {0}, 3)

    def test_universal_with_no_successors_fails(self):
        assert 0 not in alternating_reachable(3, set(), {0}, 2)
