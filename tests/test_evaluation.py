"""The reference (naive) evaluator: hand-checked semantics."""

import pytest

from repro.logic import (
    Bit,
    Const,
    EvaluationError,
    Le,
    Lit,
    Lt,
    holds,
    naive_query,
)
from repro.logic.dsl import Rel, eq, exists, forall
from repro.logic.evaluation import eval_term
from repro.logic.syntax import Var

E = Rel("E")


class TestTerms:
    def test_min_max(self, path_graph):
        assert eval_term(Const("min"), path_graph, {}) == 0
        assert eval_term(Const("max"), path_graph, {}) == 5

    def test_structure_constants(self, path_graph):
        assert eval_term(Const("t"), path_graph, {}) == 3

    def test_params_shadow_structure_constants(self, path_graph):
        assert eval_term(Const("t"), path_graph, {}, {"t": 1}) == 1

    def test_unbound_variable(self, path_graph):
        with pytest.raises(EvaluationError):
            eval_term(Var("zz"), path_graph, {})

    def test_literal_out_of_universe(self, path_graph):
        with pytest.raises(EvaluationError):
            eval_term(Lit(6), path_graph, {})


class TestHolds:
    def test_atom(self, path_graph):
        assert holds(E(0, 1), path_graph)
        assert not holds(E(1, 0), path_graph)

    def test_numeric_predicates(self, path_graph):
        assert holds(Le(2, 2), path_graph)
        assert not holds(Lt(2, 2), path_graph)
        assert holds(Bit(5, 0), path_graph)  # 5 = 0b101
        assert holds(Bit(5, 2), path_graph)
        assert not holds(Bit(5, 1), path_graph)

    def test_quantifiers(self, path_graph):
        two_step = exists("z", E("x", "z") & E("z", "y"))
        assert holds(two_step, path_graph, {"x": 0, "y": 2})
        assert not holds(two_step, path_graph, {"x": 0, "y": 3})
        assert holds(forall("u v", E("u", "v") >> Lt("u", "v")), path_graph)

    def test_quantifier_shadowing_restores_assignment(self, path_graph):
        formula = exists("x", E("x", 1))
        assignment = {"x": 5}
        assert holds(formula, path_graph, assignment)
        assert assignment == {"x": 5}

    def test_implies_iff(self, path_graph):
        assert holds(E(0, 1) >> E(1, 2), path_graph)
        assert holds(E(0, 1).iff(E(1, 2)), path_graph)
        assert not holds(E(0, 1).iff(E(1, 0)), path_graph)


class TestNaiveQuery:
    def test_frame_must_cover_free_vars(self, path_graph):
        with pytest.raises(EvaluationError):
            naive_query(E("x", "y"), path_graph, ("x",))

    def test_extra_frame_columns_enumerate(self, path_graph):
        rows = naive_query(eq("x", 0), path_graph, ("x", "w"))
        assert rows == {(0, w) for w in range(6)}

    def test_two_step_pairs(self, path_graph):
        rows = naive_query(
            exists("z", E("x", "z") & E("z", "y")), path_graph, ("x", "y")
        )
        assert rows == {(0, 2), (1, 3)}
