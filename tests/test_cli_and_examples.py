"""Smoke tests: the CLI and every example script run end to end."""

import pathlib
import subprocess
import sys

import pytest

from repro.cli import main

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "reach_u" in out and "parity" in out

    def test_verify(self, capsys):
        assert main(["verify", "parity", "--n", "6", "--steps", "20"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_verify_unknown_program(self, capsys):
        assert main(["verify", "nope"]) == 2

    def test_bench_single(self, capsys):
        assert main(["bench", "E18"]) == 0
        assert "Bounded expansion" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "PV'" in out and "reach(0, 2) = True" in out


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "MISMATCH" not in result.stdout
    assert result.stdout.strip()
