"""Smoke tests: the CLI and every example script run end to end."""

import pathlib
import subprocess
import sys

import pytest

from repro.cli import main

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "reach_u" in out and "parity" in out

    def test_verify(self, capsys):
        assert main(["verify", "parity", "--n", "6", "--steps", "20"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_verify_unknown_program(self, capsys):
        assert main(["verify", "nope"]) == 2

    def test_verify_with_max_rows(self, capsys):
        assert (
            main(
                ["verify", "parity", "--n", "6", "--steps", "10",
                 "--max-rows", "100000"]
            )
            == 0
        )
        assert "verified" in capsys.readouterr().out

    def test_explain(self, capsys):
        assert main(["explain", "reach_u", "--rule", "insert:E"]) == 0
        out = capsys.readouterr().out
        assert "compiled plans" in out and "AtomScan" in out

    def test_explain_query_filter(self, capsys):
        assert main(["explain", "reach_u", "--query", "reach"]) == 0
        out = capsys.readouterr().out
        assert "query :: reach" in out and "insert:E" not in out

    def test_explain_dense_backend(self, capsys):
        assert main(["explain", "parity", "--backend", "dense"]) == 0
        assert "backend 'dense'" in capsys.readouterr().out

    def test_explain_unknown(self, capsys):
        assert main(["explain", "nope"]) == 2
        assert main(["explain", "reach_u", "--rule", "insert:Q"]) == 2

    def test_bench_json_quick(self, capsys, tmp_path):
        out = tmp_path / "bench.json"
        assert main(["bench", "--bench-json", str(out), "--quick-json"]) == 0
        import json

        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "plan_cache"
        assert set(payload["programs"]) == {"reach_u", "dyck", "multiplication"}

    def test_bench_single(self, capsys):
        assert main(["bench", "E18"]) == 0
        assert "Bounded expansion" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "PV'" in out and "reach(0, 2) = True" in out


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "MISMATCH" not in result.stdout
    assert result.stdout.strip()
