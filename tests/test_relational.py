"""The relational (join-planning) evaluator: algebra unit tests and planner
edge cases."""

import pytest

from repro.logic import (
    EvaluationError,
    RelationalEvaluator,
    Structure,
    Vocabulary,
)
from repro.logic.dsl import Rel, c, eq, exists, forall, le, lt, neq
from repro.logic.relational import Relation

E = Rel("E")
U = Rel("U")


@pytest.fixture
def structure():
    voc = Vocabulary.parse("E^2, U^1, s")
    return Structure(
        voc,
        5,
        relations={"E": [(0, 1), (1, 2), (2, 3), (3, 3)], "U": [(1,), (4,)]},
        constants={"s": 2},
    )


class TestRelationAlgebra:
    def test_join_shares_columns(self):
        left = Relation(("x", "y"), {(0, 1), (1, 2)})
        right = Relation(("y", "z"), {(1, 5), (2, 6), (9, 9)})
        out = left.join(right)
        assert set(out.vars) == {"x", "y", "z"}
        projected = out.project(("x", "z"))
        assert projected.rows == {(0, 5), (1, 6)}

    def test_join_disjoint_is_cross_product(self):
        left = Relation(("x",), {(0,), (1,)})
        right = Relation(("y",), {(5,)})
        assert len(left.join(right)) == 2

    def test_project_dedups(self):
        rel = Relation(("x", "y"), {(0, 1), (0, 2)})
        assert rel.project(("x",)).rows == {(0,)}

    def test_extend(self):
        rel = Relation(("x",), {(3,)}).extend("w", range(2))
        assert rel.rows == {(3, 0), (3, 1)}

    def test_rename(self):
        rel = Relation(("x",), {(3,)}).rename({"x": "y"})
        assert rel.vars == ("y",)


class TestEvaluator:
    def test_atom_with_constant(self, structure):
        rows = RelationalEvaluator(structure).rows(E(c("s"), "y"), ("y",))
        assert rows == {(3,)}

    def test_atom_with_repeated_var(self, structure):
        rows = RelationalEvaluator(structure).rows(E("x", "x"), ("x",))
        assert rows == {(3,)}

    def test_pure_negation_conjunction(self, structure):
        # no positive generator at all: planner must widen by the universe
        formula = ~E("x", "y") & ~U("x")
        rows = RelationalEvaluator(structure).rows(formula, ("x", "y"))
        expected = {
            (x, y)
            for x in range(5)
            for y in range(5)
            if (x, y) not in {(0, 1), (1, 2), (2, 3), (3, 3)} and x not in (1, 4)
        }
        assert rows == expected

    def test_nullary_relation(self):
        voc = Vocabulary.parse("b^0")
        structure = Structure(voc, 3)
        evaluator = RelationalEvaluator(structure)
        assert not evaluator.truth(Rel("b")())
        structure.add("b", ())
        assert RelationalEvaluator(structure).truth(Rel("b")())

    def test_forall_guarded(self, structure):
        sentence = forall("x y", E("x", "y") >> le("x", "y"))
        assert RelationalEvaluator(structure).truth(sentence)
        sentence = forall("x y", E("x", "y") >> lt("x", "y"))
        assert not RelationalEvaluator(structure).truth(sentence)  # (3,3)

    def test_truth_requires_sentence(self, structure):
        with pytest.raises(EvaluationError):
            RelationalEvaluator(structure).truth(E("x", "y"))

    def test_frame_must_cover(self, structure):
        with pytest.raises(EvaluationError):
            RelationalEvaluator(structure).rows(E("x", "y"), ("x",))

    def test_size_guard(self, structure):
        evaluator = RelationalEvaluator(structure, max_rows=10)
        with pytest.raises(EvaluationError):
            evaluator.rows(~E("x", "y") & ~E("y", "z"), ("x", "y", "z"))

    def test_params(self, structure):
        evaluator = RelationalEvaluator(structure, {"a": 1})
        assert evaluator.rows(E(c("a"), "y"), ("y",)) == {(2,)}

    def test_memoization_reuses_results(self, structure):
        evaluator = RelationalEvaluator(structure)
        sub = exists("z", E("x", "z") & E("z", "y"))
        first = evaluator.rows(sub, ("x", "y"))
        second = evaluator.rows(sub, ("x", "y"))
        assert first == second == {(0, 2), (1, 3), (2, 3), (3, 3)}

    def test_distribution_over_wide_or(self, structure):
        # (seg | seg) shape: arms over different 3-variable frames
        formula = exists(
            "u",
            E("u", "x") & ((E("x", "y") & eq("z", "x")) | (E("y", "z") & neq("x", "y"))),
        )
        rows = RelationalEvaluator(structure).rows(formula, ("x", "y", "z"))
        # cross-check against the naive evaluator
        from repro.logic import naive_query

        assert rows == naive_query(formula, structure, ("x", "y", "z"))
