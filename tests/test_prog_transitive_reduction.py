"""Corollary 4.3: transitive reduction of DAGs (memoryless)."""

import pytest

from repro.dynfo import DynFOEngine, Insert, check_memoryless, verify_program
from repro.dynfo.oracles import paths_checker, transitive_reduction_checker
from repro.programs import make_transitive_reduction_program
from repro.workloads import dag_script


@pytest.mark.parametrize("seed,n", [(0, 6), (1, 7), (2, 8)])
def test_randomized_against_oracle(seed, n):
    verify_program(
        make_transitive_reduction_program(),
        n,
        dag_script(n, 110, seed),
        [paths_checker(), transitive_reduction_checker()],
    )


def test_redundant_edge_never_enters_tr():
    engine = DynFOEngine(make_transitive_reduction_program(), 5)
    engine.insert("E", 0, 1)
    engine.insert("E", 1, 2)
    assert engine.query("tr") == {(0, 1), (1, 2)}
    engine.insert("E", 0, 2)  # redundant immediately
    assert engine.query("tr") == {(0, 1), (1, 2)}


def test_essential_edge_promoted_on_delete():
    engine = DynFOEngine(make_transitive_reduction_program(), 5)
    engine.insert("E", 0, 1)
    engine.insert("E", 1, 2)
    engine.insert("E", 0, 2)
    engine.delete("E", 0, 1)  # now (0, 2) is the only 0 -> 2 route
    assert engine.query("tr") == {(0, 2), (1, 2)}


def test_insert_kills_now_redundant_edges():
    engine = DynFOEngine(make_transitive_reduction_program(), 6)
    engine.insert("E", 0, 3)
    engine.insert("E", 0, 1)
    assert (0, 3) in engine.query("tr")
    engine.insert("E", 1, 3)  # 0 -> 1 -> 3 makes (0, 3) redundant
    assert (0, 3) not in engine.query("tr")


def test_memoryless():
    check_memoryless(
        make_transitive_reduction_program(),
        6,
        [Insert("E", (0, 1)), Insert("E", (1, 2)), Insert("E", (0, 2))],
        [Insert("E", (0, 2)), Insert("E", (1, 2)), Insert("E", (0, 1))],
    )
