"""Hypothesis stateful testing: drive whole Dyn-FO programs with random
request sequences, checking the oracle invariant at every step.

These complement the seeded-script tests: hypothesis explores and *shrinks*
adversarial request interleavings.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.baselines import (
    matching_is_maximal,
    matching_is_valid,
    reachable_pairs_undirected,
    spanning_forest_is_valid,
)
from repro.dynfo import DynFOEngine
from repro.programs import (
    make_matching_program,
    make_parity_program,
    make_reach_u_program,
)

N = 5
VERTS = st.integers(0, N - 1)


class ParityMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.engine = DynFOEngine(make_parity_program(), N)
        self.ones: set[int] = set()

    @rule(position=VERTS)
    def set_bit(self, position):
        self.engine.insert("M", position)
        self.ones.add(position)

    @rule(position=VERTS)
    def clear_bit(self, position):
        self.engine.delete("M", position)
        self.ones.discard(position)

    @invariant()
    def parity_matches(self):
        assert self.engine.ask("odd") == (len(self.ones) % 2 == 1)


class ReachMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.engine = DynFOEngine(make_reach_u_program(), N)
        self.edges: set[tuple[int, int]] = set()

    @rule(u=VERTS, v=VERTS)
    def add_edge(self, u, v):
        self.engine.insert("E", u, v)
        self.edges.add((u, v))
        self.edges.add((v, u))

    @rule(u=VERTS, v=VERTS)
    def remove_edge(self, u, v):
        self.engine.delete("E", u, v)
        self.edges.discard((u, v))
        self.edges.discard((v, u))

    @invariant()
    def connectivity_matches(self):
        expected = reachable_pairs_undirected(N, self.edges)
        assert self.engine.query("connected") == expected

    @invariant()
    def forest_is_valid(self):
        forest = self.engine.query("forest")
        assert spanning_forest_is_valid(N, set(self.edges), forest)


class MatchingMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.engine = DynFOEngine(make_matching_program(), N)
        self.edges: set[tuple[int, int]] = set()

    @rule(u=VERTS, v=VERTS)
    def add_edge(self, u, v):
        self.engine.insert("E", u, v)
        self.edges.add((u, v))
        self.edges.add((v, u))

    @rule(u=VERTS, v=VERTS)
    def remove_edge(self, u, v):
        self.engine.delete("E", u, v)
        self.edges.discard((u, v))
        self.edges.discard((v, u))

    @invariant()
    def matching_is_maximal_and_valid(self):
        matching = self.engine.query("matching")
        assert matching_is_valid(self.edges, matching)
        assert matching_is_maximal(self.edges, matching)


_settings = settings(max_examples=25, stateful_step_count=12, deadline=None)

TestParityMachine = ParityMachine.TestCase
TestParityMachine.settings = _settings
TestReachMachine = ReachMachine.TestCase
TestReachMachine.settings = _settings
TestMatchingMachine = MatchingMachine.TestCase
TestMatchingMachine.settings = _settings
