"""Workload generators: determinism and contract preservation."""

import pytest

from repro.baselines import forest_parents, is_acyclic
from repro.dynfo import Request, evaluate_script
from repro.logic import Vocabulary
from repro.workloads import (
    bitflip_script,
    bounded_degree_script,
    dag_script,
    dyck_edit_script,
    forest_script,
    number_bit_script,
    undirected_script,
    weighted_script,
    word_edit_script,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: undirected_script(8, 50, seed=3),
            lambda: dag_script(8, 50, seed=3),
            lambda: forest_script(8, 50, seed=3),
            lambda: weighted_script(8, 50, seed=3),
            lambda: bitflip_script(8, 50, seed=3),
            lambda: number_bit_script(8, 50, seed=3),
        ],
    )
    def test_same_seed_same_script(self, maker):
        assert maker() == maker()


class TestContracts:
    def test_dag_script_every_prefix_acyclic(self):
        voc = Vocabulary.parse("E^2")
        script = dag_script(8, 80, seed=1)
        for cut in range(0, len(script) + 1, 8):
            structure = evaluate_script(voc, 8, script[:cut])
            assert is_acyclic(8, structure.relation_view("E"))

    def test_forest_script_every_prefix_is_forest(self):
        voc = Vocabulary.parse("E^2")
        script = forest_script(8, 60, seed=2)
        for cut in range(0, len(script) + 1, 6):
            structure = evaluate_script(voc, 8, script[:cut])
            forest_parents(8, set(structure.relation_view("E")))  # raises if not

    def test_weighted_script_unique_weights(self):
        voc = Vocabulary.parse("Ew^3")
        script = weighted_script(8, 80, seed=4)
        for cut in range(0, len(script) + 1, 10):
            structure = evaluate_script(voc, 8, script[:cut])
            seen = {}
            for (u, v, w) in structure.relation_view("Ew"):
                key = (min(u, v), max(u, v))
                assert seen.setdefault(key, w) == w

    def test_bounded_degree_script(self):
        voc = Vocabulary.parse("E^2")
        script = bounded_degree_script(8, 60, max_degree=2, seed=5)
        structure = evaluate_script(voc, 8, script, symmetric={"E"})
        degree = [0] * 8
        for (u, v) in structure.relation_view("E"):
            if u < v:
                degree[u] += 1
                degree[v] += 1
        assert max(degree) <= 2

    def test_word_edit_script_one_symbol_per_position(self):
        from repro.baselines import alternating_dfa
        from repro.programs.regular import input_vocabulary

        dfa = alternating_dfa()
        script = word_edit_script(dfa, 8, 70, seed=6)
        structure = evaluate_script(input_vocabulary(dfa), 8, script)
        occupancy = [0] * 8
        for rel in structure.vocabulary:
            for (p,) in structure.relation_view(rel.name):
                occupancy[p] += 1
        assert max(occupancy) <= 1

    def test_dyck_script_token_budget(self):
        from repro.programs.dyck import left_relation, right_relation

        voc = Vocabulary.make(
            relations=[(left_relation(1), 1), (right_relation(1), 1),
                       (left_relation(2), 1), (right_relation(2), 1)]
        )
        script = dyck_edit_script(2, 8, 100, seed=7)
        structure = evaluate_script(voc, 8, script)
        total = sum(structure.cardinality(r.name) for r in voc)
        assert total < 8

    def test_number_bit_script_positions_bounded(self):
        for request in number_bit_script(12, 60, seed=8):
            assert request.tup[0] < 6

    def test_scripts_are_requests(self):
        for request in undirected_script(6, 10, seed=0):
            assert isinstance(request, Request)
