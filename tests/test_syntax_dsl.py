"""Unit tests for the formula AST and combinator DSL."""

import pytest

from repro.logic import (
    And,
    Atom,
    BOT,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Lit,
    Not,
    Or,
    TOP,
    Var,
)
from repro.logic.dsl import Rel, c, either_order, eq, eq2, exists, lit, neq
from repro.logic.syntax import as_term


class TestTerms:
    def test_as_term_coercions(self):
        assert as_term("x") == Var("x")
        assert as_term(3) == Lit(3)
        assert as_term(Var("y")) == Var("y")

    def test_bool_is_not_a_term(self):
        with pytest.raises(TypeError):
            as_term(True)

    def test_atom_coerces_args(self):
        atom = Atom("E", ("x", 2))
        assert atom.args == (Var("x"), Lit(2))


class TestConnectives:
    def test_operator_sugar(self):
        E = Rel("E")
        formula = ~E("x", "y") & E("y", "x") | eq("x", "y")
        assert isinstance(formula, Or)

    def test_implies_and_iff(self):
        p, q = eq("x", "y"), eq("y", "x")
        assert isinstance(p >> q, Implies)
        assert isinstance(p.iff(q), Iff)

    def test_and_of_flattens_and_prunes(self):
        p, q, r = eq("x", 1), eq("y", 2), eq("z", 3)
        assert And.of(p, And.of(q, r)) == And((p, q, r))
        assert And.of(p, TOP) == p
        assert And.of(p, BOT) == BOT
        assert And.of() == TOP

    def test_or_of_flattens_and_prunes(self):
        p, q = eq("x", 1), eq("y", 2)
        assert Or.of(p, Or.of(q, p)) == Or((p, q, p))
        assert Or.of(p, BOT) == p
        assert Or.of(p, TOP) == TOP
        assert Or.of() == BOT


class TestQuantifiers:
    def test_vars_from_string(self):
        formula = exists("u v", eq("u", "v"))
        assert isinstance(formula, Exists)
        assert formula.vars == ("u", "v")

    def test_empty_quantifier_rejected(self):
        with pytest.raises(ValueError):
            Exists((), TOP)

    def test_repeated_variable_rejected(self):
        with pytest.raises(ValueError):
            Forall("x x", TOP)


class TestHelpers:
    def test_eq2_matches_paper_abbreviation(self):
        formula = eq2("x", "y", c("a"), c("b"))
        assert isinstance(formula, Or)
        assert len(formula.parts) == 2

    def test_neq(self):
        assert neq("x", "y") == Not(Eq("x", "y"))

    def test_either_order(self):
        E = Rel("E")
        formula = either_order(E, "x", "y")
        assert formula == E("x", "y") | E("y", "x")

    def test_lit(self):
        assert lit(4) == Lit(4)

    def test_formulas_are_hashable(self):
        E = Rel("E")
        formula = exists("z", E("x", "z") & E("z", "y"))
        assert formula in {formula}
