"""Delta staging is an optimization, not a semantics change: for any request
script, the delta engine (specialized plans, indexed scans, differential
staging) must produce the *bit-identical* auxiliary structure the
full-rematerialization engine (``use_delta=False``, the PR-4 path) produces,
on both optimized backends — and journals written in either mode must replay
to the same state, physically or logically."""

import pytest

from repro.dynfo import DynFOEngine
from repro.dynfo.journal import RequestJournal, read_journal_entries, recover
from repro.programs import make_multiplication_program, make_reach_u_program
from repro.programs.dyck import make_dyck_program
from repro.workloads import number_bit_script, undirected_script
from repro.workloads.strings import dyck_edit_script

N = 7
CASES = {
    "reach_u": (make_reach_u_program, lambda seed: undirected_script(N, 40, seed=seed)),
    "dyck": (
        lambda: make_dyck_program(2),
        lambda seed: dyck_edit_script(2, N, 40, seed=seed),
    ),
    "multiplication": (
        make_multiplication_program,
        lambda seed: number_bit_script(N, 40, seed=seed),
    ),
}
BACKENDS = ["relational", "dense"]


def case_grid():
    return [
        pytest.param(name, backend, seed, id=f"{name}-{backend}-s{seed}")
        for name in CASES
        for backend in BACKENDS
        for seed in (3, 17)
    ]


class TestDeltaEqualsFull:
    @pytest.mark.parametrize("name,backend,seed", case_grid())
    def test_random_script_bit_identical(self, name, backend, seed):
        """After every request, the delta engine's auxiliary structure
        equals the full-rematerialization engine's exactly."""
        factory, maker = CASES[name]
        program = factory()
        script = maker(seed)
        delta = DynFOEngine(program, N, backend=backend, use_delta=True)
        full = DynFOEngine(program, N, backend=backend, use_delta=False)
        for step, request in enumerate(script):
            delta.apply(request)
            full.apply(request)
            assert delta.aux_snapshot() == full.aux_snapshot(), (
                f"{name}/{backend}: delta and full diverged after "
                f"step {step} ({request})"
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delta_stats_account_for_the_symmetric_difference(self, backend):
        """tuples_added/tuples_removed reflect actual state change: an
        update replayed onto an identical state is a no-op delta."""
        program = make_reach_u_program()
        script = undirected_script(N, 30, seed=9)
        engine = DynFOEngine(program, N, backend=backend, use_delta=True)
        for request in script:
            engine.apply(request)
        before = engine.aux_snapshot()
        # re-applying the last insert (already present) must stage nothing
        # for the mirrored relation beyond what the rule re-derives
        engine.apply(script[-1])
        again = engine.aux_snapshot()
        if again == before:
            stats = engine.last_update_stats
            assert stats["tuples_added"] == 0
            assert stats["tuples_removed"] == 0


class TestJournalEquivalence:
    @pytest.mark.parametrize("name,backend,seed", case_grid())
    def test_delta_journal_replay_matches_full_rewrite_journal(
        self, tmp_path, name, backend, seed
    ):
        """A journal written with delta effect records and one written with
        full-rewrite effect records recover to identical structures."""
        factory, maker = CASES[name]
        script = maker(seed)
        paths = {}
        snapshots = {}
        for mode, use_delta in (("delta", True), ("full", False)):
            program = factory()
            path = tmp_path / f"{mode}.ndjson"
            journal = RequestJournal(path, fsync=False, record_effects=True)
            engine = DynFOEngine(
                program, N, backend=backend, journal=journal, use_delta=use_delta
            )
            for request in script:
                engine.apply(request)
            journal.close()
            paths[mode] = path
            snapshots[mode] = engine.aux_snapshot()
        assert snapshots["delta"] == snapshots["full"]
        for mode, path in paths.items():
            recovered = recover(
                factory(), path, n=N, backend=backend, attach=False
            )
            assert recovered.aux_snapshot() == snapshots[mode], (
                f"{name}/{backend}: physical replay of the {mode} journal "
                "diverged from the live engine"
            )

    @pytest.mark.parametrize("name,backend,seed", case_grid())
    def test_physical_and_logical_recovery_agree(
        self, tmp_path, name, backend, seed
    ):
        """Replaying recorded effects directly and re-evaluating every
        update formula reach the same state."""
        factory, maker = CASES[name]
        script = maker(seed)
        path = tmp_path / "journal.ndjson"
        program = factory()
        journal = RequestJournal(path, fsync=False, record_effects=True)
        engine = DynFOEngine(program, N, backend=backend, journal=journal)
        for request in script:
            engine.apply(request)
        journal.close()
        entries = read_journal_entries(path)
        assert entries and all(fx is not None for _, _, fx in entries)
        physical = recover(factory(), path, n=N, backend=backend, attach=False)
        logical = recover(
            factory(), path, n=N, backend=backend, attach=False, physical=False
        )
        assert physical.aux_snapshot() == logical.aux_snapshot()
        assert physical.aux_snapshot() == engine.aux_snapshot()
        assert physical.requests_applied == len(script)

    def test_delta_journal_is_smaller_on_reach_u(self, tmp_path):
        """The point of effect records: delta journals carry the symmetric
        difference, full journals carry whole-relation rewrites."""
        script = undirected_script(N, 40, seed=5)
        sizes = {}
        for mode, use_delta in (("delta", True), ("full", False)):
            journal = RequestJournal(
                tmp_path / f"{mode}.ndjson", fsync=False, record_effects=True
            )
            engine = DynFOEngine(
                make_reach_u_program(), N, journal=journal, use_delta=use_delta
            )
            for request in script:
                engine.apply(request)
            journal.close()
            sizes[mode] = journal.bytes_written
        assert sizes["delta"] < sizes["full"]
