"""Theorem 4.1: REACH_u via spanning-forest maintenance."""

import pytest

from repro.dynfo import DynFOEngine, verify_program
from repro.dynfo.oracles import connectivity_checker, spanning_forest_checker
from repro.programs import make_reach_u_program
from repro.workloads import undirected_script


@pytest.mark.parametrize("seed,n", [(0, 6), (1, 7), (2, 8)])
def test_randomized_against_oracle(seed, n):
    verify_program(
        make_reach_u_program(),
        n,
        undirected_script(n, 90, seed),
        [connectivity_checker(), spanning_forest_checker()],
    )


def test_dense_insert_delete_churn():
    """Heavier delete rate stresses the reconnection path."""
    verify_program(
        make_reach_u_program(),
        6,
        undirected_script(6, 120, seed=5, p_delete=0.6),
        [connectivity_checker(), spanning_forest_checker()],
    )


def test_hand_case_bridge_deletion():
    engine = DynFOEngine(make_reach_u_program(), 6)
    # triangle 0-1-2 plus pendant 2-3
    for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)]:
        engine.insert("E", u, v)
    assert engine.ask("reach", s=0, t=3)
    engine.delete("E", 2, 3)  # bridge: 3 disconnects
    assert not engine.ask("reach", s=0, t=3)
    engine.delete("E", 0, 1)  # cycle edge: connectivity survives
    assert engine.ask("reach", s=0, t=1)


def test_self_loop_is_harmless():
    engine = DynFOEngine(make_reach_u_program(), 4)
    engine.insert("E", 2, 2)
    assert engine.query("forest") == set()
    engine.insert("E", 1, 2)
    assert engine.ask("reach", s=1, t=2)
    engine.delete("E", 2, 2)
    assert engine.ask("reach", s=1, t=2)


def test_forest_invariant_pv_consistent():
    """PV's endpoints-included convention: F(x,y) implies PV(x,y,x) and
    PV(x,y,y) (the paper's stated invariant)."""
    engine = DynFOEngine(make_reach_u_program(), 6)
    engine.run(undirected_script(6, 50, seed=9))
    pv = engine.query("pv")
    for (x, y) in engine.query("forest"):
        if x != y:
            assert (x, y, x) in pv and (x, y, y) in pv


@pytest.mark.parametrize("backend", ["relational", "dense", "naive"])
def test_backends_agree(backend):
    script = undirected_script(5, 25, seed=11)
    engine = DynFOEngine(make_reach_u_program(), 5, backend=backend)
    engine.run(script)
    reference = DynFOEngine(make_reach_u_program(), 5)
    reference.run(script)
    assert engine.aux_snapshot() == reference.aux_snapshot()


def test_request_order_independence_of_answers():
    """The *answers* (not the forest) are history-independent: two
    permutations of the same insert set agree on connectivity."""
    inserts = [(0, 1), (1, 2), (3, 4), (2, 3)]
    a = DynFOEngine(make_reach_u_program(), 6)
    b = DynFOEngine(make_reach_u_program(), 6)
    for (u, v) in inserts:
        a.insert("E", u, v)
    for (u, v) in reversed(inserts):
        b.insert("E", u, v)
    assert a.query("connected") == b.query("connected")
