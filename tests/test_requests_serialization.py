"""Error paths and round-trips for the request script codecs (ISSUE 1
satellite): malformed items, unknown ops, nested Operation expansions."""

import pytest

from repro.dynfo import (
    Delete,
    Insert,
    Operation,
    SetConst,
    request_from_item,
    request_to_item,
    script_from_json,
    script_to_json,
)


def _nested_operation() -> Operation:
    inner = Operation(
        "swap", (1, 2), expansion=(Delete("E", (1, 2)), Insert("E", (2, 1)))
    )
    return Operation(
        "rewire",
        (0, 1, 2),
        expansion=(Insert("E", (0, 1)), inner, SetConst("root", 2)),
    )


class TestRoundTrips:
    def test_basic_script_roundtrip(self):
        script = [Insert("E", (0, 1)), Delete("E", (0, 1)), SetConst("s", 3)]
        assert script_from_json(script_to_json(script)) == script

    def test_nested_operation_roundtrip(self):
        script = [_nested_operation(), Insert("E", (3, 4))]
        restored = script_from_json(script_to_json(script))
        assert restored == script
        assert restored[0].expansion[1].expansion == (
            Delete("E", (1, 2)),
            Insert("E", (2, 1)),
        )

    def test_item_roundtrip(self):
        request = _nested_operation()
        assert request_from_item(request_to_item(request)) == request

    def test_empty_script(self):
        assert script_from_json(script_to_json([])) == []


class TestMalformedItems:
    def test_not_json(self):
        with pytest.raises(ValueError, match="not a request script"):
            script_from_json("{nope")

    def test_top_level_not_a_list(self):
        with pytest.raises(ValueError, match="JSON array"):
            script_from_json('{"op": "ins"}')

    def test_item_not_an_object(self):
        with pytest.raises(ValueError, match="must be an object"):
            script_from_json('["ins"]')

    def test_missing_op(self):
        with pytest.raises(ValueError, match="missing 'op'"):
            request_from_item({"rel": "E", "tup": [0, 1]})

    def test_unknown_op(self):
        with pytest.raises(ValueError, match="unknown request op"):
            request_from_item({"op": "truncate", "rel": "E"})

    def test_missing_field_reports_which_item(self):
        with pytest.raises(ValueError, match="malformed 'ins'"):
            request_from_item({"op": "ins", "rel": "E"})  # no tup

    def test_wrong_field_type(self):
        with pytest.raises(ValueError, match="malformed 'ins'"):
            request_from_item({"op": "ins", "rel": "E", "tup": 7})

    def test_malformed_nested_expansion(self):
        with pytest.raises(ValueError, match="malformed"):
            request_from_item(
                {
                    "op": "operation",
                    "name": "zap",
                    "args": [],
                    "expansion": [{"op": "ins", "rel": "E"}],
                }
            )

    def test_malformed_operation_missing_expansion(self):
        with pytest.raises(ValueError, match="malformed 'operation'"):
            request_from_item({"op": "operation", "name": "zap", "args": []})
