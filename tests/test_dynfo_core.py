"""The Section 3 machinery: requests, program validation, the engine's
synchronous/temporary semantics, and the verification harness itself."""

import pytest

from repro.dynfo import (
    Delete,
    DynFOEngine,
    DynFOProgram,
    Insert,
    ProgramError,
    Query,
    RelationDef,
    ReplayHarness,
    SetConst,
    UnsupportedRequest,
    UpdateRule,
    VerificationError,
    apply_request,
    check_memoryless,
    evaluate_script,
    inline_temporaries,
    script_from_json,
    script_to_json,
    verify_program,
)
from repro.dynfo.verify import exact_boolean_checker
from repro.logic import Structure, Vocabulary
from repro.logic.dsl import Rel, c, eq, neq
from repro.programs import make_parity_program


class TestRequests:
    def test_str_forms(self):
        assert str(Insert("E", (1, 2))) == "ins(E, 1, 2)"
        assert str(Delete("E", (1, 2))) == "del(E, 1, 2)"
        assert str(SetConst("s", 3)) == "set(s, 3)"

    def test_varargs_construction(self):
        assert Insert("E", 1, 2) == Insert("E", (1, 2))

    def test_json_roundtrip(self):
        script = [Insert("E", (0, 1)), Delete("E", (0, 1)), SetConst("s", 2)]
        assert script_from_json(script_to_json(script)) == script

    def test_bad_json_op(self):
        with pytest.raises(ValueError):
            script_from_json('[{"op": "upsert"}]')

    def test_evaluate_script(self):
        voc = Vocabulary.parse("E^2, s")
        structure = evaluate_script(
            voc, 4, [Insert("E", (0, 1)), SetConst("s", 3), Delete("E", (0, 1))]
        )
        assert structure.cardinality("E") == 0
        assert structure.constant("s") == 3

    def test_symmetric_application(self):
        voc = Vocabulary.parse("E^2")
        structure = Structure.initial(voc, 4)
        apply_request(structure, Insert("E", (0, 1)), symmetric={"E"})
        assert structure.relation("E") == {(0, 1), (1, 0)}
        apply_request(structure, Delete("E", (1, 0)), symmetric={"E"})
        assert structure.cardinality("E") == 0

    def test_symmetric_with_payload_column(self):
        voc = Vocabulary.parse("Ew^3")
        structure = Structure.initial(voc, 5)
        apply_request(structure, Insert("Ew", (0, 1, 4)), symmetric={"Ew"})
        assert structure.relation("Ew") == {(0, 1, 4), (1, 0, 4)}


SIGMA = Vocabulary.parse("M^1")
TAU = Vocabulary.parse("M^1, b^0")
M, B = Rel("M"), Rel("b")


def _rule(defs, params=("a",), temps=()):
    return UpdateRule(params=params, definitions=tuple(defs), temporaries=tuple(temps))


class TestProgramValidation:
    def _program(self, **overrides):
        kwargs = dict(
            name="t",
            input_vocabulary=SIGMA,
            aux_vocabulary=TAU,
            initial=lambda n: Structure.initial(TAU, n),
            on_insert={"M": _rule([RelationDef("M", ("x",), M("x") | eq("x", c("a")))])},
        )
        kwargs.update(overrides)
        return DynFOProgram(**kwargs)

    def test_valid_program_builds(self):
        self._program()

    def test_unknown_relation_in_rule_key(self):
        with pytest.raises(ProgramError):
            self._program(on_insert={"Z": _rule([])})

    def test_param_count_must_match_arity(self):
        with pytest.raises(ProgramError):
            self._program(
                on_insert={"M": _rule([], params=("a", "b"))}
            )

    def test_unknown_aux_relation_in_definition(self):
        with pytest.raises(ProgramError):
            self._program(
                on_insert={"M": _rule([RelationDef("Z", ("x",), M("x"))])}
            )

    def test_frame_arity_mismatch(self):
        with pytest.raises(ProgramError):
            self._program(
                on_insert={"M": _rule([RelationDef("M", ("x", "y"), M("x"))])}
            )

    def test_unbound_variable_in_formula(self):
        with pytest.raises(ProgramError):
            self._program(
                on_insert={"M": _rule([RelationDef("M", ("x",), M("y"))])}
            )

    def test_unknown_constant_in_formula(self):
        with pytest.raises(ProgramError):
            self._program(
                on_insert={"M": _rule([RelationDef("M", ("x",), eq("x", c("zz")))])}
            )

    def test_out_of_tau_relation_in_formula(self):
        with pytest.raises(ProgramError):
            self._program(
                on_insert={"M": _rule([RelationDef("M", ("x",), Rel("Z")("x"))])}
            )

    def test_duplicate_definition_rejected(self):
        definition = RelationDef("M", ("x",), M("x"))
        with pytest.raises(ProgramError):
            self._program(on_insert={"M": _rule([definition, definition])})

    def test_temporary_shadowing_rejected(self):
        with pytest.raises(ProgramError):
            self._program(
                on_insert={
                    "M": _rule(
                        [RelationDef("M", ("x",), M("x"))],
                        temps=[RelationDef("M", ("x",), M("x"))],
                    )
                }
            )

    def test_temporaries_visible_to_definitions(self):
        self._program(
            on_insert={
                "M": _rule(
                    [RelationDef("M", ("x",), Rel("T0")("x"))],
                    temps=[RelationDef("T0", ("x",), M("x") | eq("x", c("a")))],
                )
            }
        )

    def test_set_rule_for_unknown_constant(self):
        with pytest.raises(ProgramError):
            self._program(on_set={"q": _rule([], params=("v",))})

    def test_metrics(self):
        program = make_parity_program()
        assert program.max_quantifier_rank() == 0
        assert program.max_connective_depth() >= 2
        assert program.aux_arity() == 1


class TestEngine:
    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            DynFOEngine(make_parity_program(), 4, backend="quantum")

    def test_unsupported_request(self):
        engine = DynFOEngine(make_parity_program(), 4)
        with pytest.raises(UnsupportedRequest):
            engine.apply(Insert("Z", (0,)))

    def test_unknown_query(self):
        engine = DynFOEngine(make_parity_program(), 4)
        with pytest.raises(KeyError):
            engine.ask("nope")

    def test_relational_query_via_ask_rejected(self):
        program = make_parity_program()
        program.queries = dict(program.queries)
        program.queries["bits"] = Query("bits", M("x"), frame=("x",))
        engine = DynFOEngine(program, 4)
        with pytest.raises(ValueError):
            engine.ask("bits")
        assert engine.query("bits") == set()

    def test_holds_in(self):
        program = make_parity_program()
        program.queries = dict(program.queries)
        program.queries["bits"] = Query("bits", M("x"), frame=("x",))
        engine = DynFOEngine(program, 4)
        engine.insert("M", 2)
        assert engine.holds_in("bits", 2)
        assert not engine.holds_in("bits", 1)
        with pytest.raises(ValueError):
            engine.holds_in("bits", 1, 2)

    def test_synchronous_semantics(self):
        """b' must read the *old* M: inserting a fresh bit flips b even
        though M' contains the bit."""
        engine = DynFOEngine(make_parity_program(), 4)
        engine.insert("M", 1)
        assert engine.ask("odd")

    def test_requests_applied_counter(self):
        engine = DynFOEngine(make_parity_program(), 4)
        engine.insert("M", 1)
        engine.delete("M", 1)
        assert engine.requests_applied == 2

    def test_temporaries_do_not_leak_into_aux(self):
        program = DynFOProgram(
            name="t",
            input_vocabulary=SIGMA,
            aux_vocabulary=TAU,
            initial=lambda n: Structure.initial(TAU, n),
            on_insert={
                "M": _rule(
                    [RelationDef("M", ("x",), Rel("T0")("x"))],
                    temps=[RelationDef("T0", ("x",), M("x") | eq("x", c("a")))],
                )
            },
        )
        engine = DynFOEngine(program, 4)
        engine.insert("M", 2)
        assert engine.structure.relation("M") == {(2,)}
        assert not engine.structure.vocabulary.has_relation("T0")


class TestInlineTemporaries:
    def test_inlining_preserves_semantics(self):
        temp = RelationDef("T0", ("x",), M("x") | eq("x", c("a")))
        rule = _rule(
            [RelationDef("M", ("x",), Rel("T0")("x") & neq("x", c("a")) | Rel("T0")("x"))],
            temps=[temp],
        )
        flat = inline_temporaries(rule)
        assert flat.temporaries == ()
        program_t = DynFOProgram(
            name="with_temps",
            input_vocabulary=SIGMA,
            aux_vocabulary=TAU,
            initial=lambda n: Structure.initial(TAU, n),
            on_insert={"M": rule},
        )
        program_f = DynFOProgram(
            name="inlined",
            input_vocabulary=SIGMA,
            aux_vocabulary=TAU,
            initial=lambda n: Structure.initial(TAU, n),
            on_insert={"M": flat},
        )
        ea, eb = DynFOEngine(program_t, 5), DynFOEngine(program_f, 5)
        for bitpos in (1, 3, 1):
            ea.insert("M", bitpos)
            eb.insert("M", bitpos)
            assert ea.aux_snapshot() == eb.aux_snapshot()


class TestVerifyHarness:
    def test_catches_broken_program(self):
        """A PARITY program with an inverted toggle must be caught."""
        broken = make_parity_program()
        rule = broken.on_insert["M"]
        # swap the b' definition for plain b (never toggles)
        defs = tuple(
            d if d.name != "b" else RelationDef("b", (), B())
            for d in rule.definitions
        )
        broken.on_insert = {"M": UpdateRule(params=("a",), definitions=defs)}
        checker = exact_boolean_checker(
            "odd", lambda inputs: len(inputs.relation_view("M")) % 2 == 1
        )
        with pytest.raises(VerificationError):
            verify_program(broken, 4, [Insert("M", (1,))], [checker])

    def test_mirror_check(self):
        harness = ReplayHarness(make_parity_program(), 4)
        harness.step(Insert("M", (2,)))
        harness.check_input_mirrored()

    def test_memoryless_accepts_parity(self):
        check_memoryless(
            make_parity_program(),
            4,
            [Insert("M", (1,)), Insert("M", (2,))],
            [Insert("M", (2,)), Insert("M", (1,)), Insert("M", (1,))],
        )

    def test_memoryless_rejects_different_inputs(self):
        with pytest.raises(ValueError):
            check_memoryless(
                make_parity_program(), 4, [Insert("M", (1,))], [Insert("M", (2,))]
            )
