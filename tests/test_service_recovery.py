"""Crash recovery of served sessions: a served engine killed mid-batch
recovers to exactly the state an oracle reaches by replaying the ACKed
requests — byte-identical auxiliary structure, not just equal answers.

The scheduler's contract is ACK-implies-durable: a request whose outcome
resolves without error was journaled and fsynced before the acknowledgment.
So after any crash, replaying precisely the ACKed prefix from scratch must
reproduce the recovered state (the engine is memoryless — Definition 3.1).
"""

from __future__ import annotations

import json

import pytest

from repro.dynfo import DynFOEngine
from repro.dynfo.faults import FaultPlan, FaultyBackend
from repro.dynfo.journal import read_journal
from repro.dynfo.persistence import structure_to_dict
from repro.dynfo.requests import Delete, Insert
from repro.programs import PROGRAM_FACTORIES
from repro.service import DynFOService, SessionManager
from repro.service.scheduler import Scheduler


def canonical(engine: DynFOEngine) -> str:
    """The auxiliary structure as deterministic bytes."""
    return json.dumps(structure_to_dict(engine.aux_snapshot()), sort_keys=True)


def oracle_replay(requests, n: int) -> DynFOEngine:
    engine = DynFOEngine(PROGRAM_FACTORIES["reach_u"](), n)
    for request in requests:
        engine.apply(request)
    return engine


SCRIPT = [
    Insert("E", 0, 1),
    Insert("E", 1, 2),
    Insert("E", 2, 3),
    Insert("E", 4, 5),
    Delete("E", 1, 2),
    Insert("E", 3, 4),
    Insert("E", 0, 5),
    Delete("E", 2, 3),
]


def test_mid_batch_kill_recovers_to_oracle_state(tmp_path):
    """Kill the engine mid-batch (injected evaluator fault), abandon the
    session without snapshotting — a crash — then restart and compare the
    recovered structure byte-for-byte against a from-scratch replay of the
    requests that were ACKed."""
    n = 8
    # sabotage one evaluation somewhere inside the batch commit (the script
    # costs 30 evaluations total; 14 lands mid-way through request 5)
    backend = FaultyBackend("relational", FaultPlan("raise", at=14))
    manager = SessionManager(data_dir=tmp_path)
    scheduler = Scheduler(max_batch=64)
    session = manager.open("srv", "reach_u", n=n, backend=backend)

    outcomes = scheduler.apply_script(session, SCRIPT)
    acked = [o.request for o in outcomes if o.error is None]
    failed = [o for o in outcomes if o.error is not None]
    assert failed, "the fault plan must kill at least one request mid-batch"
    assert len(acked) < len(SCRIPT)
    assert session.engine.requests_applied == len(acked)
    before_crash = canonical(session.engine)

    # crash: no snapshot, no graceful close
    session.abandon()
    scheduler.close()

    # only ACKed requests ever reached the journal
    journaled = read_journal(tmp_path / "srv" / "journal.ndjson")
    assert [request for _, request in journaled] == acked

    # restart: a new manager recovers the session from meta + journal
    manager2 = SessionManager(data_dir=tmp_path)
    recovered = manager2.open("srv")
    assert recovered.recovered
    assert recovered.engine.requests_applied == len(acked)
    assert canonical(recovered.engine) == before_crash

    # the decisive check: recovered state == from-scratch oracle replay
    oracle = oracle_replay(acked, n)
    assert canonical(recovered.engine) == canonical(oracle)

    # and the recovered session keeps serving correctly
    scheduler2 = Scheduler()
    scheduler2.apply(recovered, Insert("E", 6, 7))
    oracle.apply(Insert("E", 6, 7))
    assert canonical(recovered.engine) == canonical(oracle)
    manager2.close_all()
    scheduler2.close()


def test_faulted_request_fails_typed_through_the_service(tmp_path):
    """Through the full service stack, a mid-batch engine fault surfaces as
    a typed per-request error while the rest of the script commits."""
    backend = FaultyBackend("relational", FaultPlan("raise", at=14))
    service = DynFOService(data_dir=tmp_path)
    try:
        session = service.sessions.open("srv", "reach_u", n=8, backend=backend)
        outcomes = service.scheduler.apply_script(session, SCRIPT)
        errors = [o.error for o in outcomes if o.error is not None]
        assert errors
        from repro.service.errors import code_for

        assert all(code_for(e) != "INTERNAL_ERROR" for e in errors)
    finally:
        service.close(snapshot=False)


def test_recovery_with_snapshot_plus_journal_tail(tmp_path):
    """A snapshot mid-history plus later journaled requests recovers to the
    same bytes as replaying everything — the served-session version of the
    snapshot+WAL recovery story."""
    manager = SessionManager(data_dir=tmp_path)
    scheduler = Scheduler()
    session = manager.open("srv", "reach_u", n=8)
    scheduler.apply_script(session, SCRIPT[:4])
    session.save()  # snapshot now; the tail stays journal-only
    scheduler.apply_script(session, SCRIPT[4:])
    expected = canonical(session.engine)
    session.abandon()
    scheduler.close()

    manager2 = SessionManager(data_dir=tmp_path)
    recovered = manager2.open("srv")
    assert recovered.recovered
    assert canonical(recovered.engine) == expected
    assert canonical(recovered.engine) == canonical(oracle_replay(SCRIPT, 8))
    manager2.close_all()


@pytest.mark.parametrize("fault_at", [1, 14, 25])
def test_recovery_oracle_identity_across_fault_positions(tmp_path, fault_at):
    """Wherever the fault lands in the batch, recovery equals the oracle on
    the ACKed prefix."""
    backend = FaultyBackend("relational", FaultPlan("raise", at=fault_at))
    manager = SessionManager(data_dir=tmp_path)
    scheduler = Scheduler()
    session = manager.open("srv", "reach_u", n=8, backend=backend)
    outcomes = scheduler.apply_script(session, SCRIPT)
    acked = [o.request for o in outcomes if o.error is None]
    session.abandon()
    scheduler.close()

    manager2 = SessionManager(data_dir=tmp_path)
    recovered = manager2.open("srv")
    assert recovered.engine.requests_applied == len(acked)
    assert canonical(recovered.engine) == canonical(oracle_replay(acked, 8))
    manager2.close_all()
