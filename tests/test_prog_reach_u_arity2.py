"""[DS95] extension: arity-2 auxiliary REACH_u with FO rerooting."""

import pytest

from repro.baselines import transitive_closure
from repro.dynfo import DynFOEngine, VerificationError, verify_program
from repro.dynfo.oracles import connectivity_checker
from repro.logic.structure import Structure
from repro.programs.reach_u import make_reach_u_program
from repro.programs.reach_u_arity2 import make_reach_u_arity2_program
from repro.workloads import undirected_script


def _invariant_checker(inputs: Structure, engine) -> None:
    forest = engine.query("forest")
    closure = engine.query("closure")
    parents: dict[int, int] = {}
    for (child, parent) in forest:
        if child in parents:
            raise VerificationError(f"vertex {child} has two parents")
        parents[child] = parent
    want = transitive_closure(inputs.n, forest)
    if any((v, v) in want for v in range(inputs.n)):
        raise VerificationError(f"cycle in FD: {sorted(forest)}")
    if closure != want:
        raise VerificationError("TC is not the closure of FD")


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_with_invariants(seed):
    verify_program(
        make_reach_u_arity2_program(),
        7,
        undirected_script(7, 80, seed),
        [connectivity_checker(), _invariant_checker],
    )


def test_heavy_deletion_churn():
    verify_program(
        make_reach_u_arity2_program(),
        6,
        undirected_script(6, 110, seed=9, p_delete=0.6),
        [connectivity_checker(), _invariant_checker],
    )


def test_aux_arity_is_two_vs_three():
    assert make_reach_u_arity2_program().aux_arity() == 2
    assert make_reach_u_program().aux_arity() == 3


def test_reroot_hand_case():
    engine = DynFOEngine(make_reach_u_arity2_program(), 7)
    # chain 0 <- 1 <- 2 (2's parent is 1, 1's parent is 0)
    engine.insert("E", 1, 0)
    engine.insert("E", 2, 1)
    # joining 0's tree from the deep end forces a reroot
    engine.insert("E", 0, 5)
    assert engine.ask("reach", s=2, t=5)
    assert engine.ask("reach", s=0, t=5)
    closure = engine.query("closure")
    # every non-root vertex still has the unique root as an ancestor
    forest = engine.query("forest")
    children = {child for (child, _) in forest}
    roots = {v for v in range(7) if v not in children}
    for child in children:
        assert any((child, root) in closure for root in roots)


def test_answers_agree_with_arity3_program():
    """Both programs answer identical connectivity on the same script."""
    script = undirected_script(6, 60, seed=4)
    a2 = DynFOEngine(make_reach_u_arity2_program(), 6)
    a3 = DynFOEngine(make_reach_u_program(), 6)
    for request in script:
        a2.apply(request)
        a3.apply(request)
    assert a2.query("connected") == a3.query("connected")
