"""Proposition 4.8: the Dyck languages D^k."""

import pytest

from repro.baselines import dyck_check
from repro.dynfo import DynFOEngine, ReplayHarness, VerificationError
from repro.logic.structure import Structure
from repro.programs import make_dyck_program
from repro.programs.dyck import left_relation, right_relation
from repro.workloads import dyck_edit_script


def _dyck_checker(k):
    def check(inputs: Structure, engine) -> None:
        word = {}
        for t in range(1, k + 1):
            for (p,) in inputs.relation_view(left_relation(t)):
                word[p] = ("L", t)
            for (p,) in inputs.relation_view(right_relation(t)):
                word[p] = ("R", t)
        expected = dyck_check(word)
        got = engine.ask("member")
        if expected != got:
            raise VerificationError(f"{word}: parser says {expected}, got {got}")

    return check


@pytest.mark.parametrize("k,seed", [(1, 0), (2, 1), (2, 2), (3, 3)])
def test_randomized_against_parser(k, seed):
    program = make_dyck_program(k)
    harness = ReplayHarness(program, 9, checkers=[_dyck_checker(k)])
    harness.run(dyck_edit_script(k, 9, 110, seed))


def test_k_must_be_positive():
    with pytest.raises(ValueError):
        make_dyck_program(0)


def _write(engine, tokens):
    for position, (side, t) in enumerate(tokens):
        name = left_relation(t) if side == "L" else right_relation(t)
        engine.insert(name, position)


def test_balanced_nesting():
    engine = DynFOEngine(make_dyck_program(2), 10)
    _write(engine, [("L", 1), ("L", 2), ("R", 2), ("R", 1)])
    assert engine.ask("member")


def test_type_mismatch_rejected():
    engine = DynFOEngine(make_dyck_program(2), 10)
    _write(engine, [("L", 1), ("R", 2)])
    assert not engine.ask("member")


def test_negative_dip_rejected_then_recovers():
    engine = DynFOEngine(make_dyck_program(1), 10)
    engine.insert(right_relation(1), 2)
    assert not engine.ask("member")
    engine.insert(left_relation(1), 0)
    assert engine.ask("member")


def test_empty_word_is_member():
    engine = DynFOEngine(make_dyck_program(3), 6)
    assert engine.ask("member")


def test_heights_track_prefix_sums():
    engine = DynFOEngine(make_dyck_program(1), 8)
    _write(engine, [("L", 1), ("L", 1), ("R", 1)])
    heights = dict()
    for (q, l) in engine.query("height"):
        heights[q] = l
    assert heights[0] == 1 and heights[1] == 2 and heights[2] == 1
    assert heights[7] == 1  # trailing empties keep the last height
