"""Whole-run backend agreement: the relational, dense, and (where feasible)
naive evaluators must produce byte-identical auxiliary structures for every
program on the same workload — the strongest cross-check that the three
engines implement the same logic."""

import pytest

from repro.baselines import alternating_dfa
from repro.dynfo import DynFOEngine
from repro.programs import (
    make_dyck_program,
    make_lca_program,
    make_matching_program,
    make_msf_program,
    make_multiplication_program,
    make_prefix_parity_program,
    make_regular_program,
    make_transitive_reduction_program,
)
from repro.workloads import (
    bitflip_script,
    bounded_degree_script,
    dag_script,
    dyck_edit_script,
    forest_script,
    number_bit_script,
    weighted_script,
    word_edit_script,
)

N = 6
CASES = {
    "transitive_reduction": (
        make_transitive_reduction_program,
        lambda: dag_script(N, 30, seed=31),
    ),
    "lca": (make_lca_program, lambda: forest_script(N, 30, seed=32)),
    "matching": (
        make_matching_program,
        lambda: bounded_degree_script(N, 30, max_degree=3, seed=33),
    ),
    "msf": (make_msf_program, lambda: weighted_script(N, 20, seed=34)),
    "multiplication": (
        make_multiplication_program,
        lambda: number_bit_script(N, 30, seed=35),
    ),
    "prefix_parity": (
        make_prefix_parity_program,
        lambda: bitflip_script(N, 30, seed=36),
    ),
    "dyck": (
        lambda: make_dyck_program(2),
        lambda: dyck_edit_script(2, N, 30, seed=37),
    ),
    "regular": (
        lambda: make_regular_program(alternating_dfa(), name="ab_star"),
        lambda: word_edit_script(alternating_dfa(), N, 30, seed=38),
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_relational_and_dense_agree(name):
    program_maker, script_maker = CASES[name]
    script = script_maker()
    relational = DynFOEngine(program_maker(), N, backend="relational")
    dense = DynFOEngine(program_maker(), N, backend="dense")
    for step, request in enumerate(script):
        relational.apply(request)
        dense.apply(request)
    assert relational.aux_snapshot() == dense.aux_snapshot(), name


@pytest.mark.parametrize("name", ["prefix_parity", "matching", "dyck"])
def test_naive_agrees_on_short_runs(name):
    program_maker, script_maker = CASES[name]
    script = script_maker()[:12]
    relational = DynFOEngine(program_maker(), N, backend="relational")
    naive = DynFOEngine(program_maker(), N, backend="naive")
    for request in script:
        relational.apply(request)
        naive.apply(request)
    assert relational.aux_snapshot() == naive.aux_snapshot(), name


def test_update_stats_exposed_and_sane():
    engine = DynFOEngine(make_msf_program(), N)
    engine.insert("Ew", 0, 1, 3)
    stats = engine.last_update_stats
    assert stats["relations_redefined"] == 3  # Ew, F, PV
    assert stats["tuples_written"] >= 4  # both orientations of Ew and F
    assert stats["temporary_tuples"] >= 0
