"""Parser / printer: hand cases, precedence, and round-trip properties."""

import pytest
from hypothesis import given, settings

from repro.logic import (
    And,
    Atom,
    Bit,
    Const,
    Eq,
    Exists,
    Forall,
    Implies,
    Le,
    Lit,
    Lt,
    Not,
    Or,
    ParseError,
    TOP,
    Var,
    format_formula,
    parse_formula,
)

from .formula_gen import formulas


class TestParsing:
    def test_atom(self):
        assert parse_formula("E(x, y)") == Atom("E", ("x", "y"))

    def test_nullary_atom(self):
        assert parse_formula("b()") == Atom("b", ())

    def test_comparisons(self):
        assert parse_formula("x = y") == Eq("x", "y")
        assert parse_formula("x <= y") == Le("x", "y")
        assert parse_formula("x < 3") == Lt("x", 3)
        assert parse_formula("BIT(x, y)") == Bit("x", "y")

    def test_constants_need_declaring(self):
        assert parse_formula("x = a").right == Var("a")
        assert parse_formula("x = a", constants=["a"]).right == Const("a")
        assert parse_formula("x = min").right == Const("min")
        assert parse_formula("x = 2").right == Lit(2)

    def test_precedence(self):
        formula = parse_formula("P(x) & Q(x) | R(x)")
        assert isinstance(formula, Or)
        formula = parse_formula("P(x) -> Q(x) -> R(x)")  # right associative
        assert isinstance(formula, Implies)
        assert isinstance(formula.right, Implies)

    def test_quantifier_binds_tightly(self):
        formula = parse_formula("exists x. P(x) & Q(y)")
        assert isinstance(formula, And)
        assert isinstance(formula.parts[0], Exists)

    def test_quantifier_with_parens_widens(self):
        formula = parse_formula("exists x. (P(x) & Q(x))")
        assert isinstance(formula, Exists)
        assert isinstance(formula.body, And)

    def test_multi_variable_quantifier(self):
        formula = parse_formula("forall u v. E(u, v)")
        assert isinstance(formula, Forall)
        assert formula.vars == ("u", "v")

    def test_not_variants(self):
        assert parse_formula("~P(x)") == Not(Atom("P", ("x",)))
        assert parse_formula("!P(x)") == Not(Atom("P", ("x",)))

    def test_true_false(self):
        assert parse_formula("true") == TOP

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("P(x) P(y)")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("(P(x)")

    def test_bad_character_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("P(x) @ Q(y)")

    def test_bit_arity_checked(self):
        with pytest.raises(ParseError):
            parse_formula("BIT(x)")

    def test_keyword_as_term_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("x = exists")


class TestPrinting:
    def test_simple(self):
        assert format_formula(Atom("E", ("x", "y"))) == "E(x, y)"

    def test_or_of_ands_needs_no_parens(self):
        formula = Or((And((Atom("P", ("x",)), Atom("Q", ("x",)))), Atom("R", ("x",))))
        assert format_formula(formula) == "P(x) & Q(x) | R(x)"

    def test_and_of_ors_parenthesizes(self):
        formula = And((Or((Atom("P", ("x",)), Atom("Q", ("x",)))), Atom("R", ("x",))))
        assert format_formula(formula) == "(P(x) | Q(x)) & R(x)"


@settings(max_examples=200, deadline=None)
@given(formulas())
def test_print_parse_roundtrip(formula):
    """Printing then parsing is the identity (constants declared)."""
    text = format_formula(formula)
    reparsed = parse_formula(text, constants=["s", "t"])
    assert reparsed == formula, text
