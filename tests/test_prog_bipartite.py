"""Theorem 4.5(1): bipartiteness via odd-parity forest paths."""

import pytest

from repro.dynfo import DynFOEngine, verify_program
from repro.dynfo.oracles import bipartite_checker, connectivity_checker
from repro.programs import make_bipartite_program
from repro.workloads import undirected_script


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_against_oracle(seed):
    verify_program(
        make_bipartite_program(),
        7,
        undirected_script(7, 80, seed),
        [bipartite_checker(), connectivity_checker()],
    )


def test_odd_cycle_detected_and_recovered():
    engine = DynFOEngine(make_bipartite_program(), 6)
    for (u, v) in [(0, 1), (1, 2)]:
        engine.insert("E", u, v)
    assert engine.ask("bipartite")
    engine.insert("E", 0, 2)  # triangle
    assert not engine.ask("bipartite")
    engine.delete("E", 1, 2)
    assert engine.ask("bipartite")


def test_even_cycle_stays_bipartite():
    engine = DynFOEngine(make_bipartite_program(), 6)
    for (u, v) in [(0, 1), (1, 2), (2, 3), (0, 3)]:
        engine.insert("E", u, v)
    assert engine.ask("bipartite")


def test_self_loop_not_bipartite():
    engine = DynFOEngine(make_bipartite_program(), 4)
    engine.insert("E", 1, 1)
    assert not engine.ask("bipartite")
    engine.delete("E", 1, 1)
    assert engine.ask("bipartite")


def test_odd_relation_is_forest_path_parity():
    engine = DynFOEngine(make_bipartite_program(), 6)
    for (u, v) in [(0, 1), (1, 2), (2, 3)]:
        engine.insert("E", u, v)
    odd = engine.query("odd")
    assert (0, 1) in odd and (0, 3) in odd
    assert (0, 2) not in odd
    assert (1, 0) in odd  # symmetric


def test_deleting_non_forest_edge_keeps_odd():
    engine = DynFOEngine(make_bipartite_program(), 6)
    for (u, v) in [(0, 1), (1, 2), (0, 2)]:
        engine.insert("E", u, v)
    engine.delete("E", 0, 2)  # non-forest edge (triangle closer)
    assert engine.ask("bipartite")
    # odd pairs of the path 0-1-2 must be intact
    odd = engine.query("odd")
    assert (0, 1) in odd and (1, 2) in odd and (0, 2) not in odd
