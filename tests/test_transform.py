"""Syntactic transformations: free variables, substitution, normal forms,
metrics, and the second-order substitutions behind composition/transfer."""

import pytest

from repro.logic import (
    And,
    Const,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Lit,
    Not,
    Or,
    Structure,
    TOP,
    Var,
    Vocabulary,
    connective_depth,
    constants_of,
    free_vars,
    formula_size,
    holds,
    quantifier_rank,
    relations_of,
    simplify,
    standardize_apart,
    substitute,
    to_nnf,
)
from repro.logic.dsl import Rel, exists, forall
from repro.logic.transform import substitute_constants, substitute_relations

E = Rel("E")
P = Rel("P")


class TestFreeVars:
    def test_atom(self):
        assert free_vars(E("x", "y")) == {"x", "y"}

    def test_quantifier_binds(self):
        assert free_vars(exists("x", E("x", "y"))) == {"y"}

    def test_constants_are_not_free(self):
        assert free_vars(Eq(Const("a"), Lit(3))) == set()

    def test_relations_and_constants_of(self):
        formula = E("x", "y") & Eq("x", Const("a")) & P("y")
        assert relations_of(formula) == {"E", "P"}
        assert constants_of(formula) == {"a"}


class TestSubstitute:
    def test_simple(self):
        formula = substitute(E("x", "y"), {"x": Lit(2)})
        assert formula == E(2, "y")

    def test_bound_variables_untouched(self):
        formula = exists("x", E("x", "y"))
        assert substitute(formula, {"x": Lit(2)}) == formula

    def test_capture_avoided(self):
        # substituting y := x under exists x must rename the binder
        formula = exists("x", E("x", "y"))
        out = substitute(formula, {"y": Var("x")})
        assert isinstance(out, Exists)
        assert out.vars[0] != "x"
        # semantics check: out says "exists q. E(q, x)"
        voc = Vocabulary.parse("E^2")
        structure = Structure(voc, 3, relations={"E": [(1, 2)]})
        assert holds(out, structure, {"x": 2})
        assert not holds(out, structure, {"x": 1})


class TestStandardizeApart:
    def test_distinct_binders(self):
        formula = exists("x", E("x", "y")) & exists("x", P("x"))
        out = standardize_apart(formula)
        binders = []

        def collect(node):
            if isinstance(node, (Exists, Forall)):
                binders.extend(node.vars)
                collect(node.body)
            elif isinstance(node, (And, Or)):
                for part in node.parts:
                    collect(part)
            elif isinstance(node, Not):
                collect(node.body)

        collect(out)
        assert len(binders) == len(set(binders))
        assert free_vars(out) == {"y"}

    def test_avoid_extra_names(self):
        formula = exists("x", P("x"))
        out = standardize_apart(formula, avoid=("q0",))
        assert out.vars[0] not in ("x", "q0") or out.vars[0] != "q0"


class TestNormalForms:
    def test_nnf_pushes_negation(self):
        formula = to_nnf(~(E("x", "y") & ~P("x")))
        assert isinstance(formula, Or)

    def test_nnf_dualizes_quantifiers(self):
        formula = to_nnf(~forall("x", P("x")))
        assert isinstance(formula, Exists)
        assert isinstance(formula.body, Not)

    def test_nnf_expands_implies(self):
        formula = to_nnf(E("x", "y") >> P("x"))
        assert isinstance(formula, Or)

    def test_simplify_units(self):
        assert simplify(TOP & P("x")) == P("x")
        assert simplify(~~P("x")) == P("x")
        assert simplify(Eq("x", "x")) == TOP
        assert simplify(Implies(TOP, P("x"))) == P("x")
        assert simplify(Iff(P("x"), P("x"))) == TOP

    def test_simplify_vacuous_quantifier(self):
        assert simplify(exists("z", P("x"))) == P("x")

    def test_simplify_literal_comparison(self):
        assert simplify(Eq(Lit(1), Lit(2))) == simplify(~TOP)


class TestMetrics:
    def test_quantifier_rank_counts_block_width(self):
        formula = exists("u v", forall("w", E("u", "w")))
        assert quantifier_rank(formula) == 3

    def test_connective_depth(self):
        formula = ~(P("x") & P("y"))
        assert connective_depth(formula) == 2

    def test_formula_size(self):
        assert formula_size(P("x") & P("y")) == 3


class TestSecondOrderSubstitution:
    def test_substitute_constants(self):
        formula = Eq("x", Const("a")) & E(Const("a"), Const("b"))
        out = substitute_constants(formula, {"a": Var("w")})
        assert free_vars(out) == {"x", "w"}
        assert constants_of(out) == {"b"}

    def test_substitute_constants_capture_detected(self):
        formula = exists("w", Eq("w", Const("a")))
        with pytest.raises(ValueError):
            substitute_constants(formula, {"a": Var("w")})

    def test_substitute_relations_inlines_definition(self):
        # P(x, y) := exists z. E(x, z) & E(z, y); inline into P(u, v)
        definition = exists("z", E("x", "z") & E("z", "y"))
        out = substitute_relations(
            P("u", "v"), {"P": (("x", "y"), definition)}
        )
        assert relations_of(out) == {"E"}
        assert free_vars(out) == {"u", "v"}
        voc = Vocabulary.parse("E^2")
        structure = Structure(voc, 4, relations={"E": [(0, 1), (1, 2)]})
        assert holds(out, structure, {"u": 0, "v": 2})
        assert not holds(out, structure, {"u": 0, "v": 3})

    def test_substitute_relations_avoids_capture(self):
        # definition binds z; the atom argument is also z
        definition = exists("z", E("x", "z"))
        out = substitute_relations(P("z"), {"P": (("x",), definition)})
        assert free_vars(out) == {"z"}
        voc = Vocabulary.parse("E^2")
        structure = Structure(voc, 3, relations={"E": [(1, 0)]})
        assert holds(out, structure, {"z": 1})
        assert not holds(out, structure, {"z": 0})

    def test_substitute_relations_arity_checked(self):
        with pytest.raises(ValueError):
            substitute_relations(P("x", "y"), {"P": (("x",), TOP)})
