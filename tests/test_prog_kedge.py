"""Theorem 4.5(2): k-edge connectivity via composed deletion formulas."""

import pytest

from repro.baselines import is_k_edge_connected
from repro.dynfo import Delete, Insert, ReplayHarness
from repro.logic.transform import connective_depth, formula_size, free_vars
from repro.programs import KEdgeAnalyzer, k_edge_connectivity_sentence, make_kedge_program
from repro.workloads import undirected_script


def test_sentence_is_closed_and_grows_with_k():
    s1 = k_edge_connectivity_sentence(1)
    s2 = k_edge_connectivity_sentence(2)
    assert free_vars(s1) == set() and free_vars(s2) == set()
    assert formula_size(s2) > formula_size(s1)
    assert connective_depth(s2) > connective_depth(s1)


def test_k_must_be_positive():
    with pytest.raises(ValueError):
        k_edge_connectivity_sentence(0)


def test_hand_cases():
    harness = ReplayHarness(make_kedge_program(), 6)
    analyzer = KEdgeAnalyzer(harness.engine, max_deletions=2)
    # a path: 1-edge-connected only
    for (u, v) in [(0, 1), (1, 2)]:
        harness.step(Insert("E", (u, v)))
    assert analyzer.is_k_edge_connected(1)
    assert not analyzer.is_k_edge_connected(2)
    # close the triangle: now 2-edge-connected, not 3
    harness.step(Insert("E", (0, 2)))
    assert analyzer.is_k_edge_connected(2)
    assert not analyzer.is_k_edge_connected(3)


@pytest.mark.parametrize("seed", [0, 1])
def test_randomized_against_max_flow(seed):
    harness = ReplayHarness(make_kedge_program(), 6)
    analyzer = KEdgeAnalyzer(harness.engine, max_deletions=1)
    for i, request in enumerate(undirected_script(6, 30, seed, p_delete=0.35)):
        harness.step(request)
        if i % 5 == 0:
            edges = set(harness.inputs.relation_view("E"))
            for k in (1, 2):
                got = analyzer.is_k_edge_connected(k)
                want = is_k_edge_connected(6, edges, k)
                assert got == want, (i, k, sorted(edges))


def test_k3_spot_check():
    """One deeper composition (two symbolic deletions) on a small graph."""
    harness = ReplayHarness(make_kedge_program(), 5)
    analyzer = KEdgeAnalyzer(harness.engine, max_deletions=2)
    # K4 on {0,1,2,3} is 3-edge-connected
    for u in range(4):
        for v in range(u + 1, 4):
            harness.step(Insert("E", (u, v)))
    edges = set(harness.inputs.relation_view("E"))
    assert is_k_edge_connected(5, edges, 3)
    assert analyzer.is_k_edge_connected(3)
    harness.step(Delete("E", (0, 1)))
    edges = set(harness.inputs.relation_view("E"))
    assert not is_k_edge_connected(5, edges, 3)
    assert not analyzer.is_k_edge_connected(3)
