"""Dyn_s (insert-only) restrictions, the bench harness, and the oracle
checkers' failure reporting."""

import pytest

from repro.bench import Table, crossover, run_experiment, time_per_step
from repro.dynfo import (
    DynFOEngine,
    Insert,
    UnsupportedRequest,
    semidynamic,
    verify_program,
)
from repro.dynfo.oracles import connectivity_checker, parity_checker
from repro.dynfo.verify import VerificationError
from repro.programs import make_parity_program, make_reach_u_program
from repro.workloads import undirected_script


class TestSemidynamic:
    def test_deletes_refused(self):
        program = semidynamic(make_reach_u_program())
        engine = DynFOEngine(program, 6)
        engine.insert("E", 0, 1)
        with pytest.raises(UnsupportedRequest):
            engine.delete("E", 0, 1)

    def test_insert_only_behaviour_matches_full_program(self):
        script = [
            request
            for request in undirected_script(6, 60, seed=2, p_delete=0.0)
            if isinstance(request, Insert)
        ]
        semi = DynFOEngine(semidynamic(make_reach_u_program()), 6)
        full = DynFOEngine(make_reach_u_program(), 6)
        for request in script:
            semi.apply(request)
            full.apply(request)
        assert semi.aux_snapshot() == full.aux_snapshot()

    def test_verification_on_insert_only_workload(self):
        program = semidynamic(make_reach_u_program())
        script = undirected_script(6, 50, seed=3, p_delete=0.0)
        verify_program(program, 6, script, [connectivity_checker()])

    def test_name_and_notes_marked(self):
        program = semidynamic(make_parity_program())
        assert program.name == "parity_semidynamic"
        assert "Dyn_s" in program.notes


class TestBenchHarness:
    def test_table_rendering(self):
        table = Table("EX", "demo", ("a", "b"), notes="a note")
        table.add(1, 2.5)
        text = table.render()
        assert "EX: demo" in text
        assert "2.5" in text
        assert "a note" in text

    def test_table_row_width_checked(self):
        table = Table("EX", "demo", ("a", "b"))
        with pytest.raises(ValueError):
            table.add(1)

    def test_time_per_step(self):
        calls = []
        avg = time_per_step(lambda: calls.append(1), repeats=5)
        assert len(calls) == 5
        assert avg >= 0

    def test_crossover(self):
        assert crossover([1, 2, 3], [9, 2, 1], [3, 3, 3]) == 2
        assert crossover([1, 2], [9, 9], [1, 1]) is None

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    @pytest.mark.parametrize("name", ["E16", "E18"])
    def test_cheap_experiments_produce_rows(self, name):
        table = run_experiment(name, quick=True)
        assert table.rows
        assert len(table.columns) == len(table.rows[0])


class TestOracleFailureReporting:
    def test_parity_checker_message_names_query(self):
        engine = DynFOEngine(make_parity_program(), 5)
        engine.insert("M", 1)
        from repro.logic import Structure

        wrong_inputs = Structure(
            make_parity_program().input_vocabulary, 5
        )  # claims empty string
        with pytest.raises(VerificationError, match="odd"):
            parity_checker()(wrong_inputs, engine)

    def test_connectivity_checker_lists_discrepancies(self):
        program = make_reach_u_program()
        engine = DynFOEngine(program, 5)
        engine.insert("E", 0, 1)
        from repro.logic import Structure

        empty = Structure(program.input_vocabulary, 5)
        with pytest.raises(VerificationError, match="extra"):
            connectivity_checker()(empty, engine)
