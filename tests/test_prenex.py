"""Prenex normal form: structure and semantics."""

from hypothesis import given, settings

from repro.logic import (
    And,
    Exists,
    Forall,
    Not,
    Or,
    naive_query,
    quantifier_prefix,
    to_prenex,
)
from repro.logic.dsl import Rel, exists, forall
from repro.logic.transform import free_vars

from .formula_gen import formulas, structures

E = Rel("E")
U = Rel("U")


def _is_prenex(formula) -> bool:
    node = formula
    while isinstance(node, (Exists, Forall)):
        node = node.body
    # the matrix must be quantifier-free
    stack = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, (Exists, Forall)):
            return False
        if isinstance(item, (And, Or)):
            stack.extend(item.parts)
        elif isinstance(item, Not):
            stack.append(item.body)
    return True


class TestShape:
    def test_already_prenex(self):
        formula = exists("x", forall("y", E("x", "y")))
        assert _is_prenex(to_prenex(formula))

    def test_hoists_from_conjunction(self):
        formula = exists("x", U("x")) & forall("y", U("y"))
        prenexed = to_prenex(formula)
        assert _is_prenex(prenexed)
        prefix = quantifier_prefix(prenexed)
        assert sorted(kind for kind, _ in prefix) == ["exists", "forall"]

    def test_negated_quantifier_dualizes(self):
        formula = ~exists("x", U("x"))
        prenexed = to_prenex(formula)
        assert isinstance(prenexed, Forall)

    def test_vacuous_quantifier_dropped(self):
        formula = exists("x", U("y"))
        prenexed = to_prenex(formula)
        assert quantifier_prefix(prenexed) == []

    def test_free_vars_preserved(self):
        formula = exists("z", E("x", "z")) | forall("z", E("z", "y"))
        assert free_vars(to_prenex(formula)) == {"x", "y"}


@settings(max_examples=120, deadline=None)
@given(formulas(), structures())
def test_prenex_preserves_semantics(formula, structure):
    frame = tuple(sorted(free_vars(formula)))
    expected = naive_query(formula, structure, frame)
    prenexed = to_prenex(formula)
    assert _is_prenex(prenexed)
    assert naive_query(prenexed, structure, frame) == expected
