"""Chaos tests: fault injection against the transactional engine.

The acceptance bar (ISSUE 1): with a fault injected at *every* evaluation
position of an update, a failed ``apply()`` leaves the auxiliary structure
byte-identical to the pre-update snapshot and a clean retry succeeds; and
silent (in-universe) corruption is caught by the integrity audit, whose
``IntegrityError`` carries a minimized repro script that reproduces the
divergence.
"""

import pytest

from repro.dynfo import (
    DynFOEngine,
    EngineError,
    FaultPlan,
    FaultyBackend,
    InjectedFault,
    IntegrityError,
    UpdateError,
    minimize_script,
)
from repro.programs import make_parity_program, make_reach_u_program
from repro.workloads import bitflip_script, undirected_script


def _evaluations_used(program, n, script) -> int:
    probe = FaultyBackend("relational", FaultPlan("raise", at=10**9))
    engine = DynFOEngine(program, n, backend=probe)
    engine.run(script)
    return probe.evaluations


class TestAtomicity:
    def test_every_evaluation_position_aborts_cleanly(self):
        """Inject an exception at each evaluation position in turn: every
        failed apply must be a perfect no-op, and the retry must succeed and
        land on the fault-free final structure."""
        program = make_reach_u_program()
        script = undirected_script(6, 12, seed=5)
        reference = DynFOEngine(program, 6)
        reference.run(script)
        total = _evaluations_used(program, 6, script)
        assert total > len(script)  # several evaluations per request
        for at in range(1, total + 1):
            backend = FaultyBackend("relational", FaultPlan("raise", at=at))
            engine = DynFOEngine(program, 6, backend=backend)
            failures = 0
            for request in script:
                before = engine.aux_snapshot()
                try:
                    engine.apply(request)
                except UpdateError as error:
                    failures += 1
                    assert isinstance(error.__cause__, InjectedFault)
                    assert engine.aux_snapshot() == before  # untouched
                    engine.apply(request)  # retry without the (one-shot) fault
            assert failures == 1
            assert backend.faults_fired == 1
            assert engine.aux_snapshot() == reference.aux_snapshot()
            assert engine.requests_applied == len(script)

    def test_out_of_universe_corruption_rejected_at_staging(self):
        """A backend emitting out-of-universe rows must not commit anything:
        the staged batch is rejected wholesale."""
        program = make_reach_u_program()
        script = undirected_script(6, 10, seed=1)
        backend = FaultyBackend("relational", FaultPlan("corrupt_oob", at=4))
        engine = DynFOEngine(program, 6, backend=backend)
        failures = 0
        for request in script:
            before = engine.aux_snapshot()
            try:
                engine.apply(request)
            except UpdateError:
                failures += 1
                assert engine.aux_snapshot() == before
                engine.apply(request)
        assert failures == 1
        reference = DynFOEngine(program, 6)
        reference.run(script)
        assert engine.aux_snapshot() == reference.aux_snapshot()


class TestIntegrityAudit:
    def test_silent_corruption_raises_integrity_error(self):
        """Dropped tuples are invisible to validation but caught by the
        audit's from-scratch replay; the attached repro is no longer than
        the audited script and actually reproduces the divergence."""
        program = make_reach_u_program()
        script = undirected_script(6, 30, seed=3)
        backend = FaultyBackend("relational", FaultPlan("drop", at=10, count=2))
        engine = DynFOEngine(program, 6, backend=backend, audit_every=1)
        with pytest.raises(IntegrityError) as excinfo:
            engine.run(script)
        error = excinfo.value
        assert 0 < len(error.repro) <= engine.requests_applied <= len(script)
        assert error.detail
        # the minimized script reproduces the divergence: faulty replay
        # differs from pristine replay
        subject = DynFOEngine(program, 6, backend=backend.fresh())
        pristine = DynFOEngine(program, 6)
        for request in error.repro:
            subject.apply(request)
            pristine.apply(request)
        assert subject.aux_snapshot() != pristine.aux_snapshot()

    def test_corrupt_rows_caught_and_minimized(self):
        program = make_reach_u_program()
        script = undirected_script(6, 30, seed=3)
        backend = FaultyBackend("relational", FaultPlan("corrupt", at=12, seed=7))
        engine = DynFOEngine(program, 6, backend=backend, audit_every=9)
        with pytest.raises(IntegrityError) as excinfo:
            engine.run(script)
        repro = excinfo.value.repro
        assert len(repro) <= engine.requests_applied
        # strictly smaller than the audited prefix for this workload
        assert len(repro) < engine.requests_applied

    def test_clean_run_passes_audit(self):
        program = make_parity_program()
        script = bitflip_script(8, 40, seed=2)
        engine = DynFOEngine(program, 8, backend="relational", audit_every=4)
        engine.run(script)  # no IntegrityError
        assert engine.requests_applied == len(script)

    def test_manual_audit_requires_logging(self):
        engine = DynFOEngine(make_parity_program(), 4)
        with pytest.raises(EngineError):
            engine.audit()

    def test_externally_poked_structure_detected(self):
        """Corruption that did not come from the backend (someone poked the
        structure directly) is still detected; the repro then degrades to
        the full audited script, never longer."""
        program = make_parity_program()
        script = bitflip_script(6, 10, seed=0)
        engine = DynFOEngine(program, 6, audit_every=len(script))
        for request in script[:-1]:
            engine.apply(request)
        engine.structure.add("M", (3,))  # sabotage behind the engine's back
        with pytest.raises(IntegrityError) as excinfo:
            engine.apply(script[-1])
        assert len(excinfo.value.repro) <= len(script)


class TestFaultPlanAndMinimizer:
    def test_bad_plans_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan("explode", at=1)
        with pytest.raises(ValueError):
            FaultPlan("raise", at=0)
        with pytest.raises(ValueError):
            FaultyBackend("quantum", FaultPlan("raise", at=1))

    def test_fresh_resets_determinism(self):
        backend = FaultyBackend("relational", FaultPlan("raise", at=1))
        program = make_parity_program()
        engine = DynFOEngine(program, 4, backend=backend)
        with pytest.raises(UpdateError):
            engine.insert("M", 1)
        assert backend.evaluations == 1
        clone = backend.fresh()
        assert clone.evaluations == 0 and clone.plan == backend.plan
        # the fresh copy misbehaves identically on a fresh engine
        engine2 = DynFOEngine(program, 4, backend=clone)
        with pytest.raises(UpdateError):
            engine2.insert("M", 1)

    def test_minimize_script_finds_small_witness(self):
        # predicate: the subsequence contains both 3 and 7
        script = list(range(20))
        result = minimize_script(
            script, lambda s: 3 in s and 7 in s
        )
        assert sorted(result) == [3, 7]

    def test_minimize_script_non_failing_input_unchanged(self):
        script = [1, 2, 3]
        assert minimize_script(script, lambda s: False) == (1, 2, 3)
        assert minimize_script([], lambda s: True) == ()
