"""Engine-level plan caching: compile-once and the max_rows budget knob."""

import pytest

from repro.dynfo.engine import DynFOEngine
from repro.dynfo.errors import EngineError, UpdateError
from repro.programs import make_parity_program, make_reach_u_program
from repro.workloads import bitflip_script, undirected_script


class TestCompileOnce:
    def test_exactly_one_compile_per_rule_over_1000_updates(self):
        program = make_parity_program()
        engine = DynFOEngine(program, 8, backend="relational")
        script = bitflip_script(8, 1000, seed=3)
        kinds = {type(request).__name__ for request in script}
        assert len(kinds) == 2  # inserts and deletes both exercised
        engine.run(script)
        stats = engine.plan_cache_stats()
        # one rule_plans lookup per request; exactly one compile per rule
        assert stats["misses"] == 2
        assert stats["hits"] == 1000 - 2
        assert stats["compile_ns"] > 0

    def test_queries_compile_once_too(self):
        program = make_parity_program()
        engine = DynFOEngine(program, 8, backend="relational")
        engine.insert("M", 3)
        before = engine.plan_cache_stats()["misses"]
        for _ in range(5):
            assert engine.ask("odd") is True
        stats = engine.plan_cache_stats()
        assert stats["misses"] == before + 1  # the query, compiled once

    def test_engines_sharing_a_program_share_the_cache(self):
        program = make_parity_program()
        first = DynFOEngine(program, 8, backend="relational")
        first.run(bitflip_script(8, 10, seed=1))
        misses = first.plan_cache_stats()["misses"]
        second = DynFOEngine(program, 8, backend="relational")
        second.run(bitflip_script(8, 10, seed=2))
        # the second engine found every plan already compiled
        assert second.plan_cache_stats()["misses"] == misses

    def test_cache_keyed_by_backend_and_n(self):
        program = make_parity_program()
        assert program.compile("relational", 8) is program.compile("relational", 8)
        assert program.compile("relational", 8) is not program.compile("dense", 8)
        assert program.compile("relational", 8) is not program.compile("relational", 9)

    def test_naive_backend_keeps_per_request_path(self):
        program = make_parity_program()
        engine = DynFOEngine(program, 6, backend="naive")
        engine.run(bitflip_script(6, 5, seed=0))
        assert engine.plan_cache_stats() == {
            "hits": 0,
            "misses": 0,
            "compile_ns": 0,
        }


class TestMaxRowsKnob:
    def test_update_over_budget_raises_typed_update_error(self):
        program = make_reach_u_program()
        engine = DynFOEngine(program, 16, backend="relational", max_rows=10)
        with pytest.raises(UpdateError):
            engine.insert("E", 0, 1)
        # transactional: the auxiliary structure is untouched and usable
        assert engine.requests_applied == 0

    def test_query_over_budget_raises_typed_engine_error(self):
        # the connected query is binary: its dense plan needs n^2 = 256
        # cells, far over a 10-cell budget
        program = make_reach_u_program()
        engine = DynFOEngine(program, 16, backend="dense", max_rows=10)
        with pytest.raises(EngineError):
            engine.query("connected")

    def test_generous_budget_changes_nothing(self):
        program = make_reach_u_program()
        engine = DynFOEngine(
            program, 8, backend="relational", max_rows=10_000_000
        )
        reference = DynFOEngine(program, 8, backend="relational")
        for request in undirected_script(8, 30, seed=4):
            engine.apply(request)
            reference.apply(request)
        assert engine.aux_snapshot() == reference.aux_snapshot()

    def test_max_rows_requires_plan_backend(self):
        program = make_parity_program()
        with pytest.raises(ValueError, match="max_rows requires"):
            DynFOEngine(program, 6, backend="naive", max_rows=100)

    def test_max_rows_must_be_positive(self):
        program = make_parity_program()
        with pytest.raises(ValueError, match="positive"):
            DynFOEngine(program, 6, backend="relational", max_rows=0)
