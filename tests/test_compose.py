"""Symbolic rule composition: compose_rule's level-k formulas must agree
with actually applying the rule k times."""

from repro.dynfo import DynFOEngine, compose_rule, inline_temporaries
from repro.logic import RelationalEvaluator
from repro.programs import make_reach_u_program
from repro.programs.parity import make_parity_program
from repro.workloads import undirected_script


def test_composed_parity_insert_equals_two_inserts():
    program = make_parity_program()
    rule = program.on_insert["M"]
    composed = compose_rule(rule, 2)
    engine = DynFOEngine(program, 6)
    engine.insert("M", 1)  # some existing state
    # apply the level-2 formulas with params a1 = 2, a2 = 4
    evaluator = RelationalEvaluator(engine.structure, {"a1": 2, "a2": 4})
    frame_m, formula_m = composed["M"]
    frame_b, formula_b = composed["b"]
    composed_m = evaluator.rows(formula_m, frame_m)
    composed_b = evaluator.rows(formula_b, frame_b)
    # versus actually applying the two inserts
    engine.insert("M", 2)
    engine.insert("M", 4)
    assert composed_m == engine.structure.relation("M")
    assert bool(composed_b) == engine.structure.holds("b", ())


def test_composed_reach_u_delete_equals_two_deletes():
    program = make_reach_u_program()
    rule = inline_temporaries(program.on_delete["E"])
    composed = compose_rule(rule, 2)
    engine = DynFOEngine(program, 6)
    engine.run(undirected_script(6, 25, seed=3, p_delete=0.2))
    params = {"a1": 0, "b1": 1, "a2": 1, "b2": 2}
    evaluator = RelationalEvaluator(engine.structure, params)
    results = {
        name: evaluator.rows(formula, frame)
        for name, (frame, formula) in composed.items()
    }
    engine.delete("E", 0, 1)
    engine.delete("E", 1, 2)
    for name, rows in results.items():
        assert rows == engine.structure.relation(name), name


def test_zero_levels_is_empty():
    program = make_parity_program()
    assert compose_rule(program.on_insert["M"], 0) == {}
