"""Theorem 4.2: REACH restricted to acyclic histories."""

import pytest

from repro.dynfo import DynFOEngine, Insert, check_memoryless, verify_program
from repro.dynfo.oracles import paths_checker
from repro.programs import make_reach_acyclic_program
from repro.workloads import dag_script


@pytest.mark.parametrize("seed,n", [(0, 7), (1, 8), (2, 9)])
def test_randomized_against_oracle(seed, n):
    verify_program(
        make_reach_acyclic_program(), n, dag_script(n, 120, seed), [paths_checker()]
    )


def test_delete_with_detour():
    engine = DynFOEngine(make_reach_acyclic_program(), 6)
    # diamond 0 -> {1, 2} -> 3
    for (u, v) in [(0, 1), (1, 3), (0, 2), (2, 3)]:
        engine.insert("E", u, v)
    assert engine.ask("reach", s=0, t=3)
    engine.delete("E", 1, 3)
    assert engine.ask("reach", s=0, t=3)  # detour via 2 survives
    engine.delete("E", 2, 3)
    assert not engine.ask("reach", s=0, t=3)


def test_trivial_reach_is_reflexive():
    engine = DynFOEngine(make_reach_acyclic_program(), 4)
    assert engine.ask("reach", s=2, t=2)


def test_memoryless():
    check_memoryless(
        make_reach_acyclic_program(),
        6,
        [Insert("E", (0, 1)), Insert("E", (1, 2))],
        [Insert("E", (1, 2)), Insert("E", (0, 1)), Insert("E", (0, 1))],
    )


@pytest.mark.parametrize("backend", ["relational", "dense"])
def test_backends_agree(backend):
    script = dag_script(6, 40, seed=4)
    engine = DynFOEngine(make_reach_acyclic_program(), 6, backend=backend)
    engine.run(script)
    reference = DynFOEngine(make_reach_acyclic_program(), 6)
    reference.run(script)
    assert engine.aux_snapshot() == reference.aux_snapshot()
