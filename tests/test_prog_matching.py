"""Theorem 4.5(3): maximal matching (answer checked by property)."""

import pytest

from repro.dynfo import DynFOEngine, verify_program
from repro.dynfo.oracles import matching_checker
from repro.programs import make_matching_program
from repro.workloads import bounded_degree_script, undirected_script


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_general_graphs(seed):
    verify_program(
        make_matching_program(), 7, undirected_script(7, 120, seed), [matching_checker()]
    )


@pytest.mark.parametrize("seed", [3, 4])
def test_randomized_bounded_degree(seed):
    """The regime the paper highlights (no sub-linear classical algorithm)."""
    verify_program(
        make_matching_program(),
        8,
        bounded_degree_script(8, 100, max_degree=3, seed=seed),
        [matching_checker()],
    )


def test_insert_matches_free_endpoints():
    engine = DynFOEngine(make_matching_program(), 6)
    engine.insert("E", 0, 1)
    assert engine.query("matching") == {(0, 1), (1, 0)}
    engine.insert("E", 1, 2)  # 1 already matched
    assert engine.query("matching") == {(0, 1), (1, 0)}
    engine.insert("E", 2, 3)  # both free
    assert {(2, 3), (3, 2)} <= engine.query("matching")


def test_delete_rematches_greedily():
    engine = DynFOEngine(make_matching_program(), 6)
    engine.insert("E", 1, 2)          # matched
    engine.insert("E", 1, 0)
    engine.insert("E", 2, 3)
    engine.delete("E", 1, 2)
    matching = engine.query("matching")
    assert (1, 0) in matching or (0, 1) in matching
    assert (2, 3) in matching


def test_delete_unmatched_edge_is_noop_for_matching():
    engine = DynFOEngine(make_matching_program(), 6)
    engine.insert("E", 0, 1)
    engine.insert("E", 1, 2)
    before = engine.query("matching")
    engine.delete("E", 1, 2)
    assert engine.query("matching") == before


def test_self_loop_never_matched():
    engine = DynFOEngine(make_matching_program(), 4)
    engine.insert("E", 2, 2)
    assert engine.query("matching") == set()


def test_is_matched_query():
    engine = DynFOEngine(make_matching_program(), 5)
    engine.insert("E", 0, 1)
    assert engine.ask("is_matched", v=0)
    assert not engine.ask("is_matched", v=2)
