"""Request validation and the typed error taxonomy (ISSUE 1 satellites).

Regression anchor: ``DynFOEngine._dispatch`` used to build params with
``dict(zip(rule.params, request.tup))``, silently dropping components when
the request tuple arity didn't match the rule — ``Insert("E", 1)`` against
a binary rule would bind only ``a`` and quietly evaluate garbage.
"""

import pytest

from repro.dynfo import (
    Delete,
    DynFOEngine,
    EngineError,
    Insert,
    Operation,
    RequestValidationError,
    SetConst,
    UnsupportedRequest,
    UpdateError,
)
from repro.programs import make_parity_program, make_reach_u_program


@pytest.fixture()
def reach_engine():
    return DynFOEngine(make_reach_u_program(), 6)


class TestArityValidation:
    def test_insert_arity_mismatch_rejected(self, reach_engine):
        """The regression from the issue: a 1-tuple against the binary E
        rule must raise, not silently truncate the parameter binding."""
        before = reach_engine.aux_snapshot()
        with pytest.raises(RequestValidationError, match="carries 1 components"):
            reach_engine.apply(Insert("E", 1))
        assert reach_engine.aux_snapshot() == before
        assert reach_engine.requests_applied == 0

    def test_insert_too_many_components_rejected(self, reach_engine):
        with pytest.raises(RequestValidationError, match="expects 2"):
            reach_engine.apply(Insert("E", (0, 1, 2)))

    def test_delete_arity_mismatch_rejected(self, reach_engine):
        with pytest.raises(RequestValidationError):
            reach_engine.apply(Delete("E", 1))

    def test_valid_requests_still_work(self, reach_engine):
        reach_engine.insert("E", 0, 1)
        assert reach_engine.ask("reach", s=0, t=1)


class TestUniverseValidation:
    def test_out_of_range_element_rejected(self, reach_engine):
        with pytest.raises(RequestValidationError, match="outside the universe"):
            reach_engine.insert("E", 0, 6)

    def test_negative_element_rejected(self, reach_engine):
        with pytest.raises(RequestValidationError):
            reach_engine.insert("E", -1, 0)

    def test_non_int_element_rejected(self, reach_engine):
        with pytest.raises(RequestValidationError, match="must be an int"):
            reach_engine.apply(Insert("E", (0, True)))

    def test_set_const_value_range_checked(self):
        engine = DynFOEngine(make_parity_program(), 4)
        # parity has no set rule, so the unknown-rule error fires first;
        # build the range check via a supported request shape instead
        with pytest.raises(UnsupportedRequest):
            engine.apply(SetConst("c", 2))

    def test_operation_args_range_checked(self, reach_engine):
        # reach_u has no operations: unknown-rule error, still validation
        with pytest.raises(UnsupportedRequest):
            reach_engine.apply(Operation("zap", (99,), expansion=()))


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(UnsupportedRequest, RequestValidationError)
        assert issubclass(RequestValidationError, EngineError)
        assert issubclass(UpdateError, EngineError)
        assert issubclass(EngineError, ValueError)

    def test_one_clause_catches_everything(self, reach_engine):
        for bad in (Insert("E", 1), Insert("Z", (0, 1)), Insert("E", (0, 9))):
            with pytest.raises(EngineError):
                reach_engine.apply(bad)
        assert reach_engine.requests_applied == 0
