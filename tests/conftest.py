"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.logic import Structure, Vocabulary


@pytest.fixture
def graph_vocab() -> Vocabulary:
    return Vocabulary.parse("E^2, s, t")


@pytest.fixture
def path_graph(graph_vocab) -> Structure:
    """0 -> 1 -> 2 -> 3 on a universe of 6, s = 0, t = 3."""
    structure = Structure(graph_vocab, 6)
    for u in range(3):
        structure.add("E", (u, u + 1))
    structure.set_constant("s", 0)
    structure.set_constant("t", 3)
    return structure


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xDEC0DE)
