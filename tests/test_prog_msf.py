"""Theorem 4.4: minimum spanning forests (memoryless via key tie-break)."""

import pytest

from repro.dynfo import DynFOEngine, Insert, check_memoryless, verify_program
from repro.dynfo.oracles import msf_checker
from repro.programs import make_msf_program
from repro.workloads import weighted_script


@pytest.mark.parametrize("seed", [0, 1])
def test_randomized_against_kruskal(seed):
    verify_program(
        make_msf_program(), 7, weighted_script(7, 90, seed), [msf_checker()]
    )


def test_insert_swap_replaces_heaviest_path_edge():
    engine = DynFOEngine(make_msf_program(), 6)
    engine.insert("Ew", 0, 1, 5)
    engine.insert("Ew", 1, 2, 4)
    forest = {frozenset(e) for e in engine.query("forest")}
    assert forest == {frozenset((0, 1)), frozenset((1, 2))}
    # a cheaper 0-2 edge swaps out the heaviest edge on the 0..2 path
    engine.insert("Ew", 0, 2, 1)
    forest = {frozenset(e) for e in engine.query("forest")}
    assert forest == {frozenset((0, 2)), frozenset((1, 2))}


def test_insert_worse_edge_changes_nothing():
    engine = DynFOEngine(make_msf_program(), 6)
    engine.insert("Ew", 0, 1, 1)
    engine.insert("Ew", 1, 2, 2)
    before = engine.query("forest")
    engine.insert("Ew", 0, 2, 5)
    assert engine.query("forest") == before


def test_delete_reconnects_via_cheapest():
    engine = DynFOEngine(make_msf_program(), 6)
    engine.insert("Ew", 0, 1, 1)
    engine.insert("Ew", 1, 2, 1)
    engine.insert("Ew", 0, 2, 4)  # non-forest backup edge
    engine.delete("Ew", 0, 1, 1)
    forest = {frozenset(e) for e in engine.query("forest")}
    assert forest == {frozenset((1, 2)), frozenset((0, 2))}
    assert engine.ask("reach", s=0, t=1)


def test_ties_break_by_endpoints():
    engine = DynFOEngine(make_msf_program(), 6)
    engine.insert("Ew", 1, 2, 3)
    engine.insert("Ew", 0, 2, 3)
    engine.insert("Ew", 0, 1, 3)  # closes a triangle of equal weights
    forest = {tuple(sorted(e)) for e in engine.query("forest")}
    # Kruskal under (weight, u, v): (0,1) then (0,2); (1,2) rejected
    assert forest == {(0, 1), (0, 2)}


def test_memoryless():
    check_memoryless(
        make_msf_program(),
        6,
        [Insert("Ew", (0, 1, 2)), Insert("Ew", (1, 2, 3)), Insert("Ew", (0, 2, 1))],
        [Insert("Ew", (0, 2, 1)), Insert("Ew", (0, 1, 2)), Insert("Ew", (1, 2, 3))],
    )
