"""Crash-safe persistence: write-ahead journal, recovery, v2 snapshots.

The acceptance bar (ISSUE 1): kill a journaled run mid-script after an
fsync'd append, ``recover()`` the engine, finish the script, and the final
auxiliary structure equals that of an uninterrupted run.
"""

import json

import pytest

from repro.dynfo import (
    DynFOEngine,
    JournalError,
    PersistenceError,
    RequestJournal,
    load_engine,
    read_journal,
    recover,
    save_engine,
)
from repro.programs import make_parity_program, make_reach_u_program
from repro.workloads import undirected_script


class _CrashAfter:
    """A journal wrapper that simulates power loss: after ``k`` appends the
    append itself completes (fsync'd) but the engine 'process' dies before
    commit can be acknowledged any further."""

    def __init__(self, journal: RequestJournal, k: int) -> None:
        self.journal = journal
        self.k = k
        self.appended = 0

    def append(self, seq, request):
        self.journal.append(seq, request)
        self.appended += 1
        if self.appended == self.k:
            self.journal.close()
            raise KeyboardInterrupt("simulated crash after fsync'd append")


class TestJournalRecovery:
    def test_crash_mid_script_then_recover_matches_uninterrupted_run(self, tmp_path):
        program = make_reach_u_program()
        script = undirected_script(6, 40, seed=21)
        journal_path = tmp_path / "run.journal"
        crash_at = 17

        engine = DynFOEngine(program, 6)
        engine.attach_journal(_CrashAfter(RequestJournal(journal_path), crash_at))
        applied = 0
        with pytest.raises(KeyboardInterrupt):
            for request in script:
                engine.apply(request)
                applied += 1
        assert applied == crash_at - 1  # the crashing request never committed

        # recover from nothing but the journal, then finish the script
        restored = recover(program, journal_path, n=6)
        # WAL ordering: the fsync'd append survives, so the crashing request
        # is re-applied during recovery
        assert restored.requests_applied == crash_at
        for request in script[crash_at:]:
            restored.apply(request)
        restored.journal.close()

        uninterrupted = DynFOEngine(program, 6)
        uninterrupted.run(script)
        assert restored.aux_snapshot() == uninterrupted.aux_snapshot()
        assert restored.requests_applied == len(script)

        # and the journal now replays to the same final state again
        replayed = recover(program, journal_path, n=6, attach=False)
        assert replayed.aux_snapshot() == uninterrupted.aux_snapshot()

    def test_recover_with_snapshot_plus_journal_tail(self, tmp_path):
        program = make_reach_u_program()
        script = undirected_script(6, 30, seed=4)
        journal_path = tmp_path / "run.journal"
        snapshot_path = tmp_path / "run.snapshot"

        engine = DynFOEngine(program, 6, journal=RequestJournal(journal_path))
        for request in script[:12]:
            engine.apply(request)
        save_engine(engine, snapshot_path)
        for request in script[12:25]:
            engine.apply(request)
        engine.journal.close()  # crash here

        restored = recover(
            program, journal_path, snapshot_path=snapshot_path, attach=True
        )
        assert restored.requests_applied == 25
        for request in script[25:]:
            restored.apply(request)
        restored.journal.close()

        uninterrupted = DynFOEngine(program, 6)
        uninterrupted.run(script)
        assert restored.aux_snapshot() == uninterrupted.aux_snapshot()

    def test_torn_final_line_is_dropped(self, tmp_path):
        program = make_parity_program()
        journal_path = tmp_path / "run.journal"
        with RequestJournal(journal_path) as journal:
            engine = DynFOEngine(program, 5, journal=journal)
            engine.insert("M", 1)
            engine.insert("M", 2)
        # simulate a crash mid-append: a torn, non-JSON tail
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"seq":2,"req":{"op":"ins","rel"')
        entries = read_journal(journal_path)
        assert [seq for seq, _ in entries] == [0, 1]
        restored = recover(program, journal_path, n=5, attach=False)
        assert restored.requests_applied == 2

    def test_mid_file_corruption_is_a_hard_error(self, tmp_path):
        journal_path = tmp_path / "run.journal"
        journal_path.write_text(
            '{"seq":0,"req":{"op":"ins","rel":"M","tup":[1]}}\n'
            "garbage\n"
            '{"seq":1,"req":{"op":"ins","rel":"M","tup":[2]}}\n'
        )
        with pytest.raises(JournalError):
            read_journal(journal_path)

    def test_seq_gap_is_a_hard_error(self, tmp_path):
        journal_path = tmp_path / "run.journal"
        journal_path.write_text(
            '{"seq":5,"req":{"op":"ins","rel":"M","tup":[1]}}\n'
        )
        with pytest.raises(JournalError):
            recover(make_parity_program(), journal_path, n=5)

    def test_recover_without_snapshot_needs_n(self, tmp_path):
        with pytest.raises(JournalError):
            recover(make_parity_program(), tmp_path / "missing.journal")

    def test_append_to_closed_journal_rejected(self, tmp_path):
        journal = RequestJournal(tmp_path / "j")
        journal.close()
        from repro.dynfo import Insert

        with pytest.raises(JournalError):
            journal.append(0, Insert("M", 1))


class TestSnapshotV2:
    def test_snapshot_has_checksum_and_roundtrips(self, tmp_path):
        program = make_reach_u_program()
        script = undirected_script(6, 20, seed=9)
        engine = DynFOEngine(program, 6)
        engine.run(script)
        path = tmp_path / "snap.json"
        save_engine(engine, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro.dynfo/2"
        assert len(payload["checksum"]) == 64
        restored = load_engine(make_reach_u_program(), path)
        assert restored.aux_snapshot() == engine.aux_snapshot()

    def test_corrupted_payload_detected(self, tmp_path):
        program = make_reach_u_program()
        engine = DynFOEngine(program, 6)
        engine.run(undirected_script(6, 10, seed=2))
        path = tmp_path / "snap.json"
        save_engine(engine, path)
        payload = json.loads(path.read_text())
        payload["structure"]["constants"]["last_a"] = (
            payload["structure"]["constants"].get("last_a", 0) + 1
        ) % 6
        path.write_text(json.dumps(payload))
        with pytest.raises(PersistenceError, match="checksum"):
            load_engine(make_reach_u_program(), path)

    def test_v1_snapshot_still_loads(self, tmp_path):
        program = make_parity_program()
        engine = DynFOEngine(program, 5)
        engine.insert("M", 1)
        path = tmp_path / "snap.json"
        save_engine(engine, path)
        payload = json.loads(path.read_text())
        payload["format"] = "repro.dynfo/1"
        del payload["checksum"]
        path.write_text(json.dumps(payload))
        restored = load_engine(make_parity_program(), path)
        assert restored.aux_snapshot() == engine.aux_snapshot()

    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        program = make_parity_program()
        engine = DynFOEngine(program, 5)
        path = tmp_path / "snap.json"
        save_engine(engine, path)
        save_engine(engine, path)  # overwrite goes through os.replace too
        assert [p.name for p in tmp_path.iterdir()] == ["snap.json"]

    def test_audit_baseline_reset_after_load(self, tmp_path):
        """An engine restored from a snapshot audits against the snapshot,
        not against an unreplayable from-scratch history."""
        program = make_reach_u_program()
        script = undirected_script(6, 24, seed=13)
        engine = DynFOEngine(program, 6)
        for request in script[:12]:
            engine.apply(request)
        path = tmp_path / "snap.json"
        save_engine(engine, path)
        restored = load_engine(make_reach_u_program(), path)
        restored.audit_every = 3
        for request in script[12:]:
            restored.apply(request)  # audits pass against the snapshot base
        assert restored.requests_applied == len(script)
