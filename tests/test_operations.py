"""Note 3.3: extended operation alphabets, realized by symbolic composition.

An ``Operation`` request fires a program-defined rule in one simultaneous
FO step; ``rule_from_composition`` builds such rules as k-fold compositions
of the basic insert/delete rules.  The key property under test: a compound
operation equals its expansion applied request-by-request.
"""

import pytest

from repro.dynfo import (
    Delete,
    DynFOEngine,
    Insert,
    Operation,
    UnsupportedRequest,
    evaluate_script,
    verify_program,
)
from repro.dynfo.compose import rule_from_composition
from repro.dynfo.oracles import connectivity_checker
from repro.programs import make_parity_program, make_reach_u_program


def _triangle_program():
    """REACH_u extended with insert_triangle(a, b, c) = three edge inserts
    in a single first-order step."""
    program = make_reach_u_program()
    composed = rule_from_composition(program.on_insert["E"], 3)
    program.on_operation = {"insert_triangle": composed}
    program.validate()
    return program


def triangle(a: int, b: int, c: int) -> Operation:
    return Operation(
        "insert_triangle",
        (a, b, b, c, a, c),
        expansion=(Insert("E", (a, b)), Insert("E", (b, c)), Insert("E", (a, c))),
    )


class TestTriangleOperation:
    def test_operation_equals_expansion(self):
        program = _triangle_program()
        via_op = DynFOEngine(program, 7)
        via_basic = DynFOEngine(program, 7)
        via_op.insert("E", 0, 5)
        via_basic.insert("E", 0, 5)
        request = triangle(1, 2, 3)
        via_op.apply(request)
        for basic in request.expansion:
            via_basic.apply(basic)
        assert via_op.aux_snapshot() == via_basic.aux_snapshot()

    def test_operation_under_verification_harness(self):
        program = _triangle_program()
        script = [
            triangle(0, 1, 2),
            Insert("E", (2, 3)),
            triangle(3, 4, 5),
            Delete("E", (2, 3)),
            triangle(0, 3, 6),
        ]
        verify_program(program, 7, script, [connectivity_checker()])

    def test_connectivity_through_triangles(self):
        program = _triangle_program()
        engine = DynFOEngine(program, 7)
        engine.apply(triangle(0, 1, 2))
        engine.apply(triangle(2, 3, 4))
        assert engine.ask("reach", s=0, t=4)
        assert not engine.ask("reach", s=0, t=5)

    def test_evaluate_script_expands_operations(self):
        program = _triangle_program()
        inputs = evaluate_script(
            program.input_vocabulary, 7, [triangle(0, 1, 2)], {"E"}
        )
        assert (0, 1) in inputs.relation_view("E")
        assert (2, 1) in inputs.relation_view("E")  # symmetric orientation

    def test_unknown_operation_rejected(self):
        engine = DynFOEngine(make_parity_program(), 5)
        with pytest.raises(UnsupportedRequest):
            engine.apply(Operation("zap", (), expansion=()))

    def test_wrong_arity_rejected(self):
        program = _triangle_program()
        engine = DynFOEngine(program, 7)
        with pytest.raises(UnsupportedRequest):
            engine.apply(
                Operation("insert_triangle", (0, 1), expansion=())
            )

    def test_operation_str(self):
        assert str(triangle(0, 1, 2)) == "insert_triangle(0, 1, 1, 2, 0, 2)"
