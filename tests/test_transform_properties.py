"""Property tests: every syntactic transformation preserves semantics."""

from hypothesis import given, settings

from repro.logic import (
    naive_query,
    simplify,
    standardize_apart,
    to_nnf,
)
from repro.logic.transform import free_vars

from .formula_gen import formulas, structures


def _rows(formula, structure):
    frame = tuple(sorted(free_vars(formula)))
    return frame, naive_query(formula, structure, frame)


@settings(max_examples=120, deadline=None)
@given(formulas(), structures())
def test_nnf_preserves_semantics(formula, structure):
    frame, expected = _rows(formula, structure)
    transformed = to_nnf(formula)
    assert free_vars(transformed) <= free_vars(formula)
    assert naive_query(transformed, structure, frame) == expected


@settings(max_examples=120, deadline=None)
@given(formulas(), structures())
def test_simplify_preserves_semantics(formula, structure):
    frame, expected = _rows(formula, structure)
    transformed = simplify(formula)
    assert naive_query(transformed, structure, frame) == expected


@settings(max_examples=120, deadline=None)
@given(formulas(), structures())
def test_standardize_apart_preserves_semantics(formula, structure):
    frame, expected = _rows(formula, structure)
    transformed = standardize_apart(formula)
    assert free_vars(transformed) == free_vars(formula)
    assert naive_query(transformed, structure, frame) == expected


@settings(max_examples=80, deadline=None)
@given(formulas(), structures())
def test_nnf_then_simplify_composes(formula, structure):
    frame, expected = _rows(formula, structure)
    transformed = simplify(to_nnf(formula))
    assert naive_query(transformed, structure, frame) == expected
