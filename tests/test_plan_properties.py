"""Property tests: compiled-plan execution agrees with the naive oracle.

``naive_query`` is the semantics; :func:`compile_formula` + either executor
must agree with it on random formulas over random structures — including
symbolic update parameters (the engine's ``a``/``b``), vocabulary
constants, ``Bit`` atoms, and both settings of the backend-sensitive
``distribute`` flag.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import DenseEvaluator, RelationalEvaluator, naive_query
from repro.logic.plan import compile_formula
from repro.logic.transform import free_vars

from .formula_gen import UNIVERSE, VARS, formulas, structures

# symbolic update parameters, resolved via the params mapping per execution
PARAMS = ("a", "b")
param_values = st.fixed_dictionaries(
    {name: st.integers(0, UNIVERSE - 1) for name in PARAMS}
)


@settings(max_examples=120, deadline=None)
@given(formulas(extra_consts=PARAMS), structures(), param_values, st.booleans())
def test_compiled_relational_matches_naive(formula, structure, params, distribute):
    frame = tuple(sorted(free_vars(formula)))
    expected = naive_query(formula, structure, frame, params)
    plan = compile_formula(formula, frame, distribute=distribute)
    assert RelationalEvaluator(structure, params).execute(plan) == expected


@settings(max_examples=120, deadline=None)
@given(formulas(extra_consts=PARAMS), structures(), param_values, st.booleans())
def test_compiled_dense_matches_naive(formula, structure, params, distribute):
    frame = tuple(sorted(free_vars(formula)))
    expected = naive_query(formula, structure, frame, params)
    plan = compile_formula(formula, frame, distribute=distribute)
    assert DenseEvaluator(structure, params).execute(plan) == expected


@settings(max_examples=60, deadline=None)
@given(formulas(extra_consts=PARAMS), structures(), structures(), param_values)
def test_one_plan_many_structures(formula, first, second, params):
    """The compile-once property: a single plan object is data independent,
    replaying correctly against different structures and both executors."""
    frame = tuple(sorted(free_vars(formula)))
    plan = compile_formula(formula, frame)
    for structure in (first, second):
        expected = naive_query(formula, structure, frame, params)
        assert RelationalEvaluator(structure, params).execute(plan) == expected
        assert DenseEvaluator(structure, params).execute(plan) == expected


@settings(max_examples=60, deadline=None)
@given(formulas(extra_consts=PARAMS), structures(), param_values)
def test_extended_frame_agreement(formula, structure, params):
    """Extra unconstrained frame columns widen, never change, the answer."""
    frame = tuple(VARS)
    expected = naive_query(formula, structure, frame, params)
    plan = compile_formula(formula, frame)
    assert RelationalEvaluator(structure, params).execute(plan) == expected
    assert DenseEvaluator(structure, params).execute(plan) == expected
