"""The serving layer: sessions, scheduling, protocol, clients, CLI.

Most tests run the in-process :class:`ServiceClient`, which exercises the
exact dispatch/scheduling/error paths the TCP front end uses; a handful go
over a real socket to pin down framing, connection survival, and
read-your-writes across clients.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.dynfo import BACKENDS
from repro.dynfo.errors import RequestValidationError
from repro.dynfo.requests import Delete, Insert
from repro.service import (
    DynFOServer,
    DynFOService,
    OverloadError,
    ProtocolError,
    ServiceClient,
    SessionError,
    TCPServiceClient,
    code_for,
    error_from_wire,
    error_to_wire,
)
from repro.service.protocol import decode_frame, encode_frame


def make_service(**kwargs) -> DynFOService:
    kwargs.setdefault("read_workers", 4)
    return DynFOService(**kwargs)


@pytest.fixture
def service():
    svc = make_service()
    yield svc
    svc.close(snapshot=False)


@pytest.fixture
def client(service):
    return ServiceClient(service)


@pytest.fixture
def tcp_server():
    server = DynFOServer(port=0, service=make_service())
    server.serve_in_background()
    yield server
    server.stop(snapshot=False)


def slow_backend(delay: float):
    """A backend whose every evaluation sleeps — writes become slow enough
    to queue behind deterministically."""

    def factory(structure, params):
        time.sleep(delay)
        return BACKENDS["relational"](structure, params)

    return factory


# -- basic ops ------------------------------------------------------------


def test_open_apply_ask_query(client):
    info = client.open("g", "reach_u", n=8)
    assert info == {
        "session": "g",
        "program": "reach_u",
        "n": 8,
        "backend": "relational",
        "requests_applied": 0,
        "durable": False,
        "recovered": False,
    }
    client.apply("g", Insert("E", 0, 1))
    client.apply("g", Insert("E", 1, 2))
    assert client.ask("g", "reach", s=0, t=2)
    assert not client.ask("g", "reach", s=0, t=5)
    assert (0, 2) in client.query("g", "connected")
    assert client.sessions() == ["g"]


def test_open_is_idempotent_but_shape_checked(client):
    client.open("g", "reach_u", n=8)
    assert client.open("g")["requests_applied"] == 0
    assert client.open("g", "reach_u", n=8)["session"] == "g"
    with pytest.raises(SessionError):
        client.open("g", "reach_u", n=16)
    with pytest.raises(SessionError):
        client.open("g", "parity", n=8)


def test_apply_script_reports_requests_applied(client):
    client.open("g", "reach_u", n=8)
    result = client.apply_script("g", [Insert("E", i, i + 1) for i in range(5)])
    assert result["applied"] == 5
    assert result["requests_applied"] == 5


# -- typed errors over the wire -------------------------------------------


def test_unknown_session_is_session_error(client):
    with pytest.raises(SessionError):
        client.ask("ghost", "reach", s=0, t=1)


def test_invalid_session_name_rejected(client):
    for bad in ("", "../escape", "a/b", "x" * 65, ".hidden"):
        with pytest.raises(SessionError):
            client.open(bad, "reach_u", n=4)


def test_unknown_program_and_backend(client):
    with pytest.raises(SessionError):
        client.open("g", "no_such_program", n=4)
    with pytest.raises(SessionError):
        client.open("g", "reach_u", n=4, backend="quantum")


def test_validation_errors_keep_their_type(client):
    client.open("g", "reach_u", n=4)
    with pytest.raises(RequestValidationError):
        client.apply("g", Insert("E", 0, 99))  # outside the universe
    # an unsupported request kind maps to its own stable code
    from repro.dynfo import UnsupportedRequest
    from repro.dynfo.requests import SetConst

    with pytest.raises(UnsupportedRequest):
        client.apply("g", SetConst("c", 1))
    # the failed requests consumed no version numbers
    assert client.open("g")["requests_applied"] == 0


def test_protocol_errors_for_malformed_frames(client):
    for item, fragment in [
        ({"op": "nope"}, "unknown op"),
        ({"op": "ask", "session": "g"}, "needs a 'name'"),
        ({"op": "ask", "session": 7, "name": "reach"}, "must be str"),
        ({"op": "apply", "session": "g"}, "needs a 'request'"),
    ]:
        client.open("g", "reach_u", n=4)
        with pytest.raises(ProtocolError, match=fragment):
            client.request(item)


def test_error_codes_are_stable_and_roundtrip():
    from repro.dynfo.errors import IntegrityError, JournalError

    cases = [
        (OverloadError("x"), "OVERLOADED"),
        (SessionError("x"), "SESSION_ERROR"),
        (ProtocolError("x"), "PROTOCOL_ERROR"),
        (RequestValidationError("x"), "REQUEST_INVALID"),
        (JournalError("x"), "JOURNAL_CORRUPT"),
        (IntegrityError("x"), "INTEGRITY_VIOLATION"),
        (ValueError("x"), "INTERNAL_ERROR"),
    ]
    for error, code in cases:
        assert code_for(error) == code, error
    wire = error_to_wire(OverloadError("back off"))
    rebuilt = error_from_wire(wire)
    assert isinstance(rebuilt, OverloadError)
    assert "back off" in str(rebuilt)
    assert "OVERLOADED" in str(rebuilt)
    # a future server's unknown code still decodes to a typed error
    from repro.service import ServiceError

    assert isinstance(error_from_wire({"code": "FROM_THE_FUTURE"}), ServiceError)


def test_responses_never_carry_tracebacks(client):
    client.open("g", "reach_u", n=4)
    response = client.call({"op": "apply", "session": "g", "request": {"op": "???"}})
    assert response["ok"] is False
    payload = json.dumps(response)
    assert "Traceback" not in payload and "File \"" not in payload
    assert response["error"]["code"] == "PROTOCOL_ERROR"


# -- admission control ----------------------------------------------------


def test_session_table_overload():
    svc = make_service(max_sessions=2)
    try:
        client = ServiceClient(svc)
        client.open("a", "parity", n=4)
        client.open("b", "parity", n=4)
        with pytest.raises(OverloadError):
            client.open("c", "parity", n=4)
        client.close_session("a")
        client.open("c", "parity", n=4)  # freed slot is reusable
    finally:
        svc.close(snapshot=False)


def test_queue_depth_overload():
    svc = make_service(max_queue_depth=4)
    try:
        client = ServiceClient(svc)
        client.open("g", "reach_u", n=8)
        with pytest.raises(OverloadError):
            client.apply_script("g", [Insert("E", 0, 1)] * 5)
        # the rejected script applied nothing
        assert client.open("g")["requests_applied"] == 0
        client.apply_script("g", [Insert("E", i, i + 1) for i in range(4)])
    finally:
        svc.close(snapshot=False)


def test_deadline_overload_while_queued():
    svc = make_service()
    try:
        manager = svc.sessions
        session = manager.open("slow", "reach_u", n=6, backend=slow_backend(0.05))
        first_started = threading.Event()

        def long_write():
            first_started.set()
            svc.scheduler.apply(session, Insert("E", 0, 1))

        writer = threading.Thread(target=long_write)
        writer.start()
        first_started.wait()
        time.sleep(0.02)  # let the first batch take the writer lock
        with pytest.raises(OverloadError, match="deadline"):
            svc.scheduler.apply(session, Insert("E", 1, 2), deadline=0.001)
        writer.join()
        # the first write committed; the expired one did not
        assert session.engine.requests_applied == 1
        assert session.metrics.snapshot()["overloads"] >= 1
    finally:
        svc.close(snapshot=False)


# -- batching & collapsing -------------------------------------------------


def test_contiguous_script_commits_as_one_batch(client):
    client.open("g", "reach_u", n=12)
    client.apply_script("g", [Insert("E", i, i + 1) for i in range(10)])
    stats = client.stats("g")["g"]
    assert stats["batches"] == 1
    assert stats["batch_size_max"] == 10
    assert stats["writes"] == 10


def test_batched_and_serial_commits_agree(client):
    script = [Insert("E", i, i + 1) for i in range(9)] + [Delete("E", 3, 4)]
    client.open("batched", "reach_u", n=12)
    client.apply_script("batched", script)
    client.open("serial", "reach_u", n=12)
    for request in script:
        client.apply("serial", request)
    for s, t in [(0, 9), (0, 3), (4, 9), (3, 5)]:
        assert client.ask("batched", "reach", s=s, t=t) == client.ask(
            "serial", "reach", s=s, t=t
        )
    assert client.query("batched", "connected") == client.query("serial", "connected")


def test_identical_reads_collapse_and_agree(service, client):
    client.open("g", "reach_u", n=16)
    client.apply_script("g", [Insert("E", i, i + 1) for i in range(15)])
    answers, errors = [], []

    def reader():
        try:
            local = ServiceClient(service)
            for _ in range(5):
                answers.append(len(local.query("g", "connected")))
        except Exception as error:  # pragma: no cover
            errors.append(error)

    threads = [threading.Thread(target=reader) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert set(answers) == {16 * 15}
    assert client.stats("g")["g"]["reads_collapsed"] > 0


def test_stats_exposes_all_counter_groups(client):
    client.open("g", "reach_u", n=8)
    client.apply("g", Insert("E", 0, 1))
    client.ask("g", "reach", s=0, t=1)
    payload = client.stats()
    assert payload["service"]["requests"] >= 3
    assert payload["service"]["sessions"] == 1
    session = payload["sessions"]["g"]
    for key in (
        "requests",
        "reads",
        "reads_collapsed",
        "writes",
        "batches",
        "batch_size_avg",
        "queue_wait_us_avg",
        "plan_cache",
        "requests_applied",
    ):
        assert key in session, key
    assert session["plan_cache"]["misses"] >= 1


# -- the TCP front end -----------------------------------------------------


def test_tcp_roundtrip_and_connection_survives_bad_frames(tcp_server):
    with TCPServiceClient(port=tcp_server.port) as client:
        client.open("g", "reach_u", n=6)
        client.apply("g", Insert("E", 0, 1))
        # raw garbage: typed error back, connection still usable
        client._sock.sendall(b"{not json}\n")
        response = decode_frame(client._rfile.readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "PROTOCOL_ERROR"
        assert client.ping() == "pong"
        assert client.ask("g", "reach", s=0, t=1)


def test_tcp_read_your_writes_across_clients(tcp_server):
    with TCPServiceClient(port=tcp_server.port) as writer, TCPServiceClient(
        port=tcp_server.port
    ) as reader:
        writer.open("shared", "reach_u", n=8)
        assert not reader.ask("shared", "reach", s=0, t=3)
        writer.apply_script(
            "shared", [Insert("E", 0, 1), Insert("E", 1, 2), Insert("E", 2, 3)]
        )
        # the write was ACKed durably; any later read must see it
        assert reader.ask("shared", "reach", s=0, t=3)


def test_tcp_pipelining_matches_ids(tcp_server):
    with TCPServiceClient(port=tcp_server.port) as client:
        client.open("g", "reach_u", n=6)
        responses = client.pipeline(
            [{"op": "ping"}]
            + [
                {"op": "ask", "session": "g", "name": "reach", "params": {"s": 0, "t": t}}
                for t in range(1, 4)
            ]
        )
        assert [r["ok"] for r in responses] == [True] * 4
        assert responses[0]["result"] == "pong"


def test_frame_encode_decode_roundtrip():
    frame = {"id": 3, "op": "ask", "params": {"s": 1}}
    assert decode_frame(encode_frame(frame)) == frame
    with pytest.raises(ProtocolError):
        decode_frame(b"[1, 2, 3]\n")
    with pytest.raises(ProtocolError):
        decode_frame(b"\xff\xfe\n")


# -- CLI -------------------------------------------------------------------


def test_cli_client_against_live_server(tcp_server, capsys):
    port = str(tcp_server.port)
    assert cli_main(["client", "--port", port, "ping"]) == 0
    assert capsys.readouterr().out.strip() == "pong"
    assert cli_main(["client", "--port", port, "open", "chat", "reach_u", "8"]) == 0
    capsys.readouterr()
    assert cli_main(["client", "--port", port, "ins", "chat", "E", "0", "1"]) == 0
    assert cli_main(["client", "--port", port, "ins", "chat", "E", "1", "2"]) == 0
    capsys.readouterr()
    assert cli_main(["client", "--port", port, "ask", "chat", "reach", "s=0", "t=2"]) == 0
    assert capsys.readouterr().out.strip() == "True"
    assert cli_main(["client", "--port", port, "query", "chat", "connected"]) == 0
    rows = capsys.readouterr().out.strip().splitlines()
    assert "0 2" in rows
    assert cli_main(["client", "--port", port, "stats", "chat"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["chat"]["writes"] == 2
    assert cli_main(["client", "--port", port, "sessions"]) == 0
    assert "chat" in capsys.readouterr().out


def test_cli_client_reports_typed_errors(tcp_server, capsys):
    port = str(tcp_server.port)
    assert cli_main(["client", "--port", port, "ask", "ghost", "reach", "s=0", "t=1"]) == 1
    err = capsys.readouterr().err
    assert "SESSION_ERROR" in err and "Traceback" not in err


def test_cli_client_connection_refused(capsys):
    assert cli_main(["client", "--port", "1", "ping"]) == 1
    assert "cannot reach" in capsys.readouterr().err
