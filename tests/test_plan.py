"""Units for the physical-plan IR and compiler (logic/plan.py)."""

import pytest

from repro.logic import Structure, Vocabulary
from repro.logic.dsl import Rel, bit, c, eq, exists, forall, le, lit
from repro.logic.explain import render_plan
from repro.logic.plan import (
    AtomScan,
    ConstBind,
    Filter,
    HashJoin,
    Plan,
    PlanError,
    Project,
    Union,
    cached_plan,
    compile_formula,
    plan_children,
    plan_depth,
    plan_nodes,
)
from repro.logic.relational import RelationalEvaluator
from repro.logic.syntax import And, Not

E = Rel("E")
U = Rel("U")
VOCAB = Vocabulary.parse("E^2, U^1, s, t")


def small_structure():
    return Structure(
        VOCAB,
        4,
        relations={"E": [(0, 1), (1, 2), (2, 3)], "U": [(1,), (3,)]},
        constants={"s": 0, "t": 3},
    )


class TestCompile:
    def test_frame_must_cover_free_vars(self):
        with pytest.raises(PlanError):
            compile_formula(E("x", "y"), ("x",))

    def test_plan_columns_match_frame_exactly(self):
        plan = compile_formula(E("x", "y"), ("y", "q", "x"))
        assert plan.columns == ("y", "q", "x")

    def test_direct_atom_scan(self):
        plan = compile_formula(E("x", "y"), ("x", "y"))
        assert isinstance(plan, AtomScan)
        assert plan.direct and plan.rel == "E"

    def test_constant_atom_not_direct(self):
        plan = compile_formula(E("x", c("s")), ("x",))
        assert isinstance(plan, AtomScan)
        assert not plan.direct and plan.fixed

    def test_repeated_var_atom_not_direct(self):
        plan = compile_formula(E("x", "x"), ("x",))
        assert isinstance(plan, AtomScan)
        assert not plan.direct and plan.var_cols == (("x", (0, 1)),)

    def test_eq_with_constant_compiles_to_const_bind(self):
        plan = compile_formula(eq("x", lit(2)), ("x",))
        assert isinstance(plan, ConstBind)

    def test_exists_projects(self):
        plan = compile_formula(exists("z", E("x", "z") & E("z", "y")), ("x", "y"))
        assert isinstance(plan, Project)
        assert isinstance(plan.source, HashJoin)

    def test_negated_conjunct_becomes_filter_with_fallback(self):
        formula = And.of(E("x", "y"), Not(U("y")))
        plan = compile_formula(formula, ("x", "y"))
        assert isinstance(plan, Filter) and plan.negated
        assert plan.fallback is not None

    def test_shared_subformula_shares_plan_node(self):
        guard = U("x")
        formula = And.of(guard, exists("y", E("x", "y") & guard))
        plan = compile_formula(formula, ("x",))
        nodes = plan_nodes(plan)
        guards = [
            node
            for node in nodes
            if isinstance(node, AtomScan) and node.rel == "U"
        ]
        # one shared node, listed once by the DAG traversal
        assert len(guards) == 1

    def test_distribute_flag_changes_plan_shape(self):
        wide_or = E("x", "y") | E("y", "z") | E("z", "x")
        formula = And.of(E("x", "y"), wide_or)
        dist = compile_formula(formula, ("x", "y", "z"), distribute=True)
        nodist = compile_formula(formula, ("x", "y", "z"), distribute=False)
        assert isinstance(dist, Union)
        # without distribution the conjunction stays one join pipeline
        assert not isinstance(nodist, Union)

    def test_quantifier_projection_keeps_plans_narrow(self):
        # nested sibling quantifiers must not widen the plan to all vars
        formula = exists("u", E("x", "u")) & exists("v", E("v", "y"))
        plan = compile_formula(formula, ("x", "y"))
        widest = max(len(node.columns) for node in plan_nodes(plan))
        assert widest <= 2


class TestTraversal:
    def test_plan_nodes_and_children(self):
        plan = compile_formula(exists("z", E("x", "z") & E("z", "y")), ("x", "y"))
        nodes = plan_nodes(plan)
        assert plan in nodes
        assert all(isinstance(node, Plan) for node in nodes)
        assert plan_children(plan) == (plan.source,)
        assert plan_depth(plan) == 3

    def test_leaves_have_no_children(self):
        plan = compile_formula(E("x", "y"), ("x", "y"))
        assert plan_children(plan) == ()
        assert plan_depth(plan) == 1


class TestCachedPlan:
    def test_identity_memoized(self):
        formula = exists("z", E("x", "z"))
        assert cached_plan(formula, ("x",)) is cached_plan(formula, ("x",))

    def test_distinct_formula_objects_compile_separately(self):
        a, b = E("x", "y"), E("x", "y")
        assert cached_plan(a, ("x", "y")) is not cached_plan(b, ("x", "y"))

    def test_distribute_flag_keys_the_cache(self):
        wide_or = E("x", "y") | E("y", "z") | E("z", "x")
        formula = And.of(E("x", "y"), wide_or)
        frame = ("x", "y", "z")
        with_dist = cached_plan(formula, frame, distribute=True)
        without = cached_plan(formula, frame, distribute=False)
        assert with_dist is not without


class TestExecutableSemantics:
    """Spot checks that specific plan shapes compute the right answers
    (the broad net is tests/test_plan_properties.py)."""

    def test_forall_via_double_negation(self):
        structure = small_structure()
        formula = forall("y", eq("x", "y") | E("x", "y") | E("y", "x") | U("y"))
        plan = compile_formula(formula, ("x",))
        evaluator = RelationalEvaluator(structure)
        expected = {(x,) for x in range(4) if all(
            x == y or (x, y) in {(0, 1), (1, 2), (2, 3)}
            or (y, x) in {(0, 1), (1, 2), (2, 3)} or y in (1, 3)
            for y in range(4)
        )}
        assert evaluator.execute(plan) == expected

    def test_bit_and_order_predicates(self):
        structure = small_structure()
        plan = compile_formula(bit("x", lit(0)) & le("x", lit(2)), ("x",))
        assert RelationalEvaluator(structure).execute(plan) == {(1,)}

    def test_symbolic_params_resolved_per_execution(self):
        structure = small_structure()
        formula = E(c("p"), "y")
        plan = compile_formula(formula, ("y",))
        assert RelationalEvaluator(structure, {"p": 0}).execute(plan) == {(1,)}
        assert RelationalEvaluator(structure, {"p": 1}).execute(plan) == {(2,)}

    def test_sentence_plan(self):
        structure = small_structure()
        plan = compile_formula(exists(("x", "y"), E("x", "y")), ())
        assert plan.columns == ()
        assert RelationalEvaluator(structure).execute(plan) == {()}


class TestRenderPlan:
    def test_render_contains_structure(self):
        plan = compile_formula(exists("z", E("x", "z") & E("z", "y")), ("x", "y"))
        text = render_plan(plan)
        assert "nodes" in text and "depth" in text
        assert "AtomScan E(x, z) [direct]" in text
        assert "HashJoin" in text

    def test_render_marks_shared_nodes(self):
        guard = U("x")
        formula = And.of(guard, Not(And.of(guard, E("x", "x"))))
        plan = compile_formula(formula, ("x",))
        text = render_plan(plan)
        assert "(shared)" in text
