"""The dense (CRAM-style) evaluator: hand cases and the parallel-step
accounting that experiment E16 relies on."""

import pytest

from repro.logic import (
    Bit,
    DenseEvaluator,
    EvaluationError,
    Structure,
    Vocabulary,
    connective_depth,
)
from repro.logic.dsl import Rel, c, eq, exists, forall, le

E = Rel("E")


@pytest.fixture
def structure():
    voc = Vocabulary.parse("E^2, b^0, s")
    return Structure(
        voc,
        5,
        relations={"E": [(0, 1), (1, 2), (3, 3)]},
        constants={"s": 1},
    )


class TestDense:
    def test_rows(self, structure):
        rows = DenseEvaluator(structure).rows(
            exists("z", E("x", "z") & E("z", "y")), ("x", "y")
        )
        assert rows == {(0, 2), (3, 3)}

    def test_truth(self, structure):
        assert DenseEvaluator(structure).truth(
            forall("x y", E("x", "y") >> le("x", "y"))
        )

    def test_constants_and_bit(self, structure):
        evaluator = DenseEvaluator(structure)
        assert evaluator.rows(E(c("s"), "y"), ("y",)) == {(2,)}
        assert evaluator.rows(Bit("x", 1), ("x",)) == {(2,), (3,)}

    def test_nullary(self, structure):
        evaluator = DenseEvaluator(structure)
        assert not evaluator.truth(Rel("b")())
        structure.add("b", ())
        assert DenseEvaluator(structure).truth(Rel("b")())

    def test_empty_frame(self, structure):
        assert DenseEvaluator(structure).rows(eq(1, 1), ()) == {()}
        assert DenseEvaluator(structure).rows(eq(0, 1), ()) == set()

    def test_repeated_variable_atom(self, structure):
        assert DenseEvaluator(structure).rows(E("x", "x"), ("x",)) == {(3,)}

    def test_cell_budget_guard(self, structure):
        evaluator = DenseEvaluator(structure, max_cells=10)
        with pytest.raises(EvaluationError):
            evaluator.rows(E("x", "y"), ("x", "y"))

    def test_parallel_steps_tracks_connective_depth(self, structure):
        """Each connective/quantifier is >= 1 vectorized op, and the count
        is structure-size independent (the CRAM[1] claim)."""
        formula = forall("x", exists("y", E("x", "y") | eq("x", "y")))
        small = DenseEvaluator(structure)
        small.truth(formula)
        steps_small = small.parallel_steps
        big_structure = Structure(structure.vocabulary, 9)
        big = DenseEvaluator(big_structure)
        big.truth(formula)
        assert steps_small == big.parallel_steps
        assert steps_small >= connective_depth(formula)


class TestAxisSharing:
    def test_sibling_scopes_share_axes(self, structure):
        from repro.logic.dense import _assign_axes
        from repro.logic.transform import standardize_apart

        formula = standardize_apart(
            exists("u", E("x", "u")) & exists("v", E("v", "x"))
        )
        axes, total = _assign_axes(formula, ("x",))
        assert total == 2  # frame axis + ONE shared bound axis

    def test_nested_scopes_get_distinct_axes(self, structure):
        from repro.logic.dense import _assign_axes
        from repro.logic.transform import standardize_apart

        formula = standardize_apart(
            exists("u", forall("v", E("u", "v")))
        )
        axes, total = _assign_axes(formula, ())
        assert total == 2

    def test_wide_formula_stays_feasible(self, structure):
        """The 26-distinct-variable matching delete runs dense thanks to
        axis sharing (it needs n^26 cells otherwise)."""
        from repro.dynfo import DynFOEngine
        from repro.programs import make_matching_program

        engine = DynFOEngine(make_matching_program(), 6, backend="dense")
        engine.insert("E", 0, 1)
        engine.insert("E", 1, 2)
        engine.delete("E", 0, 1)
        assert engine.query("matching") == {(1, 2), (2, 1)} or engine.query(
            "matching"
        ) == {(0, 1), (1, 0)}
