"""Theorem 4.2 / Example 2.1 / Prop 5.3: REACH_d via transferred reduction."""

import random

import pytest

from repro.baselines import deterministic_reachable
from repro.dynfo import apply_request
from repro.logic import Structure
from repro.programs import make_reach_d_engine
from repro.workloads import reach_d_script


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_against_direct_search(seed):
    n = 6
    engine = make_reach_d_engine(n)
    shadow = Structure.initial(engine.reduction.source, n)
    for request in reach_d_script(n, 90, seed):
        engine.apply(request)
        apply_request(shadow, request)
        got = engine.ask("reach")
        want = deterministic_reachable(
            n, set(shadow.relation_view("E")), shadow.constant("s"), shadow.constant("t")
        )
        assert got == want, (request, shadow.describe())


def test_bounded_translation_per_request():
    """Each source request must map to O(1) target requests (Prop 5.3)."""
    n = 7
    engine = make_reach_d_engine(n)
    rng = random.Random(5)
    for request in reach_d_script(n, 120, rng):
        translated = engine.apply(request)
        assert len(translated) <= engine.max_expansion
    assert engine.max_delta_seen <= 6


def test_branching_kills_determinism():
    engine = make_reach_d_engine(6)
    engine.set_const("s", 0)
    engine.set_const("t", 2)
    engine.insert("E", 0, 1)
    engine.insert("E", 1, 2)
    assert engine.ask("reach")
    engine.insert("E", 1, 3)  # vertex 1 now branches: path no longer deterministic
    assert not engine.ask("reach")
    engine.delete("E", 1, 3)
    assert engine.ask("reach")


def test_edges_out_of_t_ignored():
    engine = make_reach_d_engine(6)
    engine.set_const("s", 0)
    engine.set_const("t", 1)
    engine.insert("E", 0, 1)
    engine.insert("E", 1, 0)  # out-edge of t must not matter
    assert engine.ask("reach")
